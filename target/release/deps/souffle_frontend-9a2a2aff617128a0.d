/root/repo/target/release/deps/souffle_frontend-9a2a2aff617128a0.d: crates/frontend/src/lib.rs crates/frontend/src/graph.rs crates/frontend/src/models/mod.rs crates/frontend/src/models/bert.rs crates/frontend/src/models/efficientnet.rs crates/frontend/src/models/lstm.rs crates/frontend/src/models/mmoe.rs crates/frontend/src/models/resnext.rs crates/frontend/src/models/swin.rs

/root/repo/target/release/deps/libsouffle_frontend-9a2a2aff617128a0.rlib: crates/frontend/src/lib.rs crates/frontend/src/graph.rs crates/frontend/src/models/mod.rs crates/frontend/src/models/bert.rs crates/frontend/src/models/efficientnet.rs crates/frontend/src/models/lstm.rs crates/frontend/src/models/mmoe.rs crates/frontend/src/models/resnext.rs crates/frontend/src/models/swin.rs

/root/repo/target/release/deps/libsouffle_frontend-9a2a2aff617128a0.rmeta: crates/frontend/src/lib.rs crates/frontend/src/graph.rs crates/frontend/src/models/mod.rs crates/frontend/src/models/bert.rs crates/frontend/src/models/efficientnet.rs crates/frontend/src/models/lstm.rs crates/frontend/src/models/mmoe.rs crates/frontend/src/models/resnext.rs crates/frontend/src/models/swin.rs

crates/frontend/src/lib.rs:
crates/frontend/src/graph.rs:
crates/frontend/src/models/mod.rs:
crates/frontend/src/models/bert.rs:
crates/frontend/src/models/efficientnet.rs:
crates/frontend/src/models/lstm.rs:
crates/frontend/src/models/mmoe.rs:
crates/frontend/src/models/resnext.rs:
crates/frontend/src/models/swin.rs:
