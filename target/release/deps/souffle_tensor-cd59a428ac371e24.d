/root/repo/target/release/deps/souffle_tensor-cd59a428ac371e24.d: crates/tensor/src/lib.rs crates/tensor/src/dtype.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libsouffle_tensor-cd59a428ac371e24.rlib: crates/tensor/src/lib.rs crates/tensor/src/dtype.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libsouffle_tensor-cd59a428ac371e24.rmeta: crates/tensor/src/lib.rs crates/tensor/src/dtype.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/dtype.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
