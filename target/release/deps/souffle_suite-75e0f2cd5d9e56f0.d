/root/repo/target/release/deps/souffle_suite-75e0f2cd5d9e56f0.d: src/lib.rs

/root/repo/target/release/deps/libsouffle_suite-75e0f2cd5d9e56f0.rlib: src/lib.rs

/root/repo/target/release/deps/libsouffle_suite-75e0f2cd5d9e56f0.rmeta: src/lib.rs

src/lib.rs:
