/root/repo/target/release/deps/souffle_bench-6de41d051b0e2b2d.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsouffle_bench-6de41d051b0e2b2d.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsouffle_bench-6de41d051b0e2b2d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
