/root/repo/target/release/deps/overhead-c811fa725ac1f9b5.d: crates/bench/src/bin/overhead.rs

/root/repo/target/release/deps/overhead-c811fa725ac1f9b5: crates/bench/src/bin/overhead.rs

crates/bench/src/bin/overhead.rs:
