/root/repo/target/release/deps/experiments-0d93a59fc218c971.d: crates/bench/benches/experiments.rs

/root/repo/target/release/deps/experiments-0d93a59fc218c971: crates/bench/benches/experiments.rs

crates/bench/benches/experiments.rs:
