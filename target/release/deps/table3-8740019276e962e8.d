/root/repo/target/release/deps/table3-8740019276e962e8.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-8740019276e962e8: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
