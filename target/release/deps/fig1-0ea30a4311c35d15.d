/root/repo/target/release/deps/fig1-0ea30a4311c35d15.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-0ea30a4311c35d15: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
