/root/repo/target/release/deps/testkit_generated-a72d35eeefa71bb9.d: crates/te/tests/testkit_generated.rs

/root/repo/target/release/deps/testkit_generated-a72d35eeefa71bb9: crates/te/tests/testkit_generated.rs

crates/te/tests/testkit_generated.rs:
