/root/repo/target/release/deps/fig1d-7e90afd8a4aab025.d: crates/bench/src/bin/fig1d.rs

/root/repo/target/release/deps/fig1d-7e90afd8a4aab025: crates/bench/src/bin/fig1d.rs

crates/bench/src/bin/fig1d.rs:
