/root/repo/target/release/deps/table3-c3b03e9532841eed.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-c3b03e9532841eed: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
