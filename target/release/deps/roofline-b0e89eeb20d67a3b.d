/root/repo/target/release/deps/roofline-b0e89eeb20d67a3b.d: crates/bench/src/bin/roofline.rs

/root/repo/target/release/deps/roofline-b0e89eeb20d67a3b: crates/bench/src/bin/roofline.rs

crates/bench/src/bin/roofline.rs:
