/root/repo/target/release/deps/fig1-31514da625165384.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-31514da625165384: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
