/root/repo/target/release/deps/roofline-49f438b2d216951c.d: crates/bench/src/bin/roofline.rs

/root/repo/target/release/deps/roofline-49f438b2d216951c: crates/bench/src/bin/roofline.rs

crates/bench/src/bin/roofline.rs:
