/root/repo/target/release/deps/souffle_baselines-bfbe9f7541f77ad0.d: crates/baselines/src/lib.rs crates/baselines/src/ansor.rs crates/baselines/src/apollo.rs crates/baselines/src/iree.rs crates/baselines/src/rammer.rs crates/baselines/src/strategy.rs crates/baselines/src/tensorrt.rs crates/baselines/src/xla.rs

/root/repo/target/release/deps/libsouffle_baselines-bfbe9f7541f77ad0.rlib: crates/baselines/src/lib.rs crates/baselines/src/ansor.rs crates/baselines/src/apollo.rs crates/baselines/src/iree.rs crates/baselines/src/rammer.rs crates/baselines/src/strategy.rs crates/baselines/src/tensorrt.rs crates/baselines/src/xla.rs

/root/repo/target/release/deps/libsouffle_baselines-bfbe9f7541f77ad0.rmeta: crates/baselines/src/lib.rs crates/baselines/src/ansor.rs crates/baselines/src/apollo.rs crates/baselines/src/iree.rs crates/baselines/src/rammer.rs crates/baselines/src/strategy.rs crates/baselines/src/tensorrt.rs crates/baselines/src/xla.rs

crates/baselines/src/lib.rs:
crates/baselines/src/ansor.rs:
crates/baselines/src/apollo.rs:
crates/baselines/src/iree.rs:
crates/baselines/src/rammer.rs:
crates/baselines/src/strategy.rs:
crates/baselines/src/tensorrt.rs:
crates/baselines/src/xla.rs:
