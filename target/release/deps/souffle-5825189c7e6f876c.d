/root/repo/target/release/deps/souffle-5825189c7e6f876c.d: crates/souffle/src/lib.rs crates/souffle/src/dynamic.rs crates/souffle/src/options.rs crates/souffle/src/pipeline.rs crates/souffle/src/report.rs

/root/repo/target/release/deps/libsouffle-5825189c7e6f876c.rlib: crates/souffle/src/lib.rs crates/souffle/src/dynamic.rs crates/souffle/src/options.rs crates/souffle/src/pipeline.rs crates/souffle/src/report.rs

/root/repo/target/release/deps/libsouffle-5825189c7e6f876c.rmeta: crates/souffle/src/lib.rs crates/souffle/src/dynamic.rs crates/souffle/src/options.rs crates/souffle/src/pipeline.rs crates/souffle/src/report.rs

crates/souffle/src/lib.rs:
crates/souffle/src/dynamic.rs:
crates/souffle/src/options.rs:
crates/souffle/src/pipeline.rs:
crates/souffle/src/report.rs:
