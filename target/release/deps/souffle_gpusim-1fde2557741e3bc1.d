/root/repo/target/release/deps/souffle_gpusim-1fde2557741e3bc1.d: crates/gpusim/src/lib.rs crates/gpusim/src/profile.rs crates/gpusim/src/sim.rs crates/gpusim/src/timeline.rs

/root/repo/target/release/deps/libsouffle_gpusim-1fde2557741e3bc1.rlib: crates/gpusim/src/lib.rs crates/gpusim/src/profile.rs crates/gpusim/src/sim.rs crates/gpusim/src/timeline.rs

/root/repo/target/release/deps/libsouffle_gpusim-1fde2557741e3bc1.rmeta: crates/gpusim/src/lib.rs crates/gpusim/src/profile.rs crates/gpusim/src/sim.rs crates/gpusim/src/timeline.rs

crates/gpusim/src/lib.rs:
crates/gpusim/src/profile.rs:
crates/gpusim/src/sim.rs:
crates/gpusim/src/timeline.rs:
