/root/repo/target/release/deps/table4-010cbdbc6cc1f18c.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-010cbdbc6cc1f18c: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
