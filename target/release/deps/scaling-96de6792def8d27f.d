/root/repo/target/release/deps/scaling-96de6792def8d27f.d: crates/bench/src/bin/scaling.rs

/root/repo/target/release/deps/scaling-96de6792def8d27f: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
