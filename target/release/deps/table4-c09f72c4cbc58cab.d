/root/repo/target/release/deps/table4-c09f72c4cbc58cab.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-c09f72c4cbc58cab: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
