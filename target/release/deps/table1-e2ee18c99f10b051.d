/root/repo/target/release/deps/table1-e2ee18c99f10b051.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-e2ee18c99f10b051: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
