/root/repo/target/release/deps/table1-3f4153e7c439f897.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-3f4153e7c439f897: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
