/root/repo/target/release/deps/design_ablation-d1d55b02579af76a.d: crates/bench/src/bin/design_ablation.rs

/root/repo/target/release/deps/design_ablation-d1d55b02579af76a: crates/bench/src/bin/design_ablation.rs

crates/bench/src/bin/design_ablation.rs:
