/root/repo/target/release/deps/souffle_sched-82a51df00b3cedc5.d: crates/sched/src/lib.rs crates/sched/src/cost.rs crates/sched/src/device.rs crates/sched/src/occupancy.rs crates/sched/src/primitives.rs crates/sched/src/schedule.rs crates/sched/src/search.rs

/root/repo/target/release/deps/libsouffle_sched-82a51df00b3cedc5.rlib: crates/sched/src/lib.rs crates/sched/src/cost.rs crates/sched/src/device.rs crates/sched/src/occupancy.rs crates/sched/src/primitives.rs crates/sched/src/schedule.rs crates/sched/src/search.rs

/root/repo/target/release/deps/libsouffle_sched-82a51df00b3cedc5.rmeta: crates/sched/src/lib.rs crates/sched/src/cost.rs crates/sched/src/device.rs crates/sched/src/occupancy.rs crates/sched/src/primitives.rs crates/sched/src/schedule.rs crates/sched/src/search.rs

crates/sched/src/lib.rs:
crates/sched/src/cost.rs:
crates/sched/src/device.rs:
crates/sched/src/occupancy.rs:
crates/sched/src/primitives.rs:
crates/sched/src/schedule.rs:
crates/sched/src/search.rs:
