/root/repo/target/release/deps/fig6-0a9f1fd65b7175f5.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-0a9f1fd65b7175f5: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
