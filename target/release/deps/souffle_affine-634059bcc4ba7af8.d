/root/repo/target/release/deps/souffle_affine-634059bcc4ba7af8.d: crates/affine/src/lib.rs crates/affine/src/expr.rs crates/affine/src/map.rs crates/affine/src/relation.rs

/root/repo/target/release/deps/libsouffle_affine-634059bcc4ba7af8.rlib: crates/affine/src/lib.rs crates/affine/src/expr.rs crates/affine/src/map.rs crates/affine/src/relation.rs

/root/repo/target/release/deps/libsouffle_affine-634059bcc4ba7af8.rmeta: crates/affine/src/lib.rs crates/affine/src/expr.rs crates/affine/src/map.rs crates/affine/src/relation.rs

crates/affine/src/lib.rs:
crates/affine/src/expr.rs:
crates/affine/src/map.rs:
crates/affine/src/relation.rs:
