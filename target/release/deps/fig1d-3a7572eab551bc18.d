/root/repo/target/release/deps/fig1d-3a7572eab551bc18.d: crates/bench/src/bin/fig1d.rs

/root/repo/target/release/deps/fig1d-3a7572eab551bc18: crates/bench/src/bin/fig1d.rs

crates/bench/src/bin/fig1d.rs:
