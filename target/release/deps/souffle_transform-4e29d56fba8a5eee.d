/root/repo/target/release/deps/souffle_transform-4e29d56fba8a5eee.d: crates/transform/src/lib.rs crates/transform/src/horizontal.rs crates/transform/src/vertical.rs crates/transform/src/rewrite.rs

/root/repo/target/release/deps/libsouffle_transform-4e29d56fba8a5eee.rlib: crates/transform/src/lib.rs crates/transform/src/horizontal.rs crates/transform/src/vertical.rs crates/transform/src/rewrite.rs

/root/repo/target/release/deps/libsouffle_transform-4e29d56fba8a5eee.rmeta: crates/transform/src/lib.rs crates/transform/src/horizontal.rs crates/transform/src/vertical.rs crates/transform/src/rewrite.rs

crates/transform/src/lib.rs:
crates/transform/src/horizontal.rs:
crates/transform/src/vertical.rs:
crates/transform/src/rewrite.rs:
