/root/repo/target/release/deps/overhead-45c39c2f62786294.d: crates/bench/src/bin/overhead.rs

/root/repo/target/release/deps/overhead-45c39c2f62786294: crates/bench/src/bin/overhead.rs

crates/bench/src/bin/overhead.rs:
