/root/repo/target/release/deps/souffle_te-99e8999eced0c64f.d: crates/te/src/lib.rs crates/te/src/builders.rs crates/te/src/compile.rs crates/te/src/expr.rs crates/te/src/grad.rs crates/te/src/interp.rs crates/te/src/program.rs crates/te/src/source.rs crates/te/src/te.rs crates/te/src/vm.rs

/root/repo/target/release/deps/souffle_te-99e8999eced0c64f: crates/te/src/lib.rs crates/te/src/builders.rs crates/te/src/compile.rs crates/te/src/expr.rs crates/te/src/grad.rs crates/te/src/interp.rs crates/te/src/program.rs crates/te/src/source.rs crates/te/src/te.rs crates/te/src/vm.rs

crates/te/src/lib.rs:
crates/te/src/builders.rs:
crates/te/src/compile.rs:
crates/te/src/expr.rs:
crates/te/src/grad.rs:
crates/te/src/interp.rs:
crates/te/src/program.rs:
crates/te/src/source.rs:
crates/te/src/te.rs:
crates/te/src/vm.rs:
