/root/repo/target/release/deps/souffle_kernel-1e24212e4cec421f.d: crates/kernel/src/lib.rs crates/kernel/src/codegen.rs crates/kernel/src/lower.rs crates/kernel/src/lru.rs crates/kernel/src/passes.rs crates/kernel/src/instr.rs crates/kernel/src/kernel.rs

/root/repo/target/release/deps/libsouffle_kernel-1e24212e4cec421f.rlib: crates/kernel/src/lib.rs crates/kernel/src/codegen.rs crates/kernel/src/lower.rs crates/kernel/src/lru.rs crates/kernel/src/passes.rs crates/kernel/src/instr.rs crates/kernel/src/kernel.rs

/root/repo/target/release/deps/libsouffle_kernel-1e24212e4cec421f.rmeta: crates/kernel/src/lib.rs crates/kernel/src/codegen.rs crates/kernel/src/lower.rs crates/kernel/src/lru.rs crates/kernel/src/passes.rs crates/kernel/src/instr.rs crates/kernel/src/kernel.rs

crates/kernel/src/lib.rs:
crates/kernel/src/codegen.rs:
crates/kernel/src/lower.rs:
crates/kernel/src/lru.rs:
crates/kernel/src/passes.rs:
crates/kernel/src/instr.rs:
crates/kernel/src/kernel.rs:
