/root/repo/target/release/deps/pipeline-95014652b1ca3131.d: crates/bench/benches/pipeline.rs

/root/repo/target/release/deps/pipeline-95014652b1ca3131: crates/bench/benches/pipeline.rs

crates/bench/benches/pipeline.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
