/root/repo/target/release/deps/souffle_testkit-b64353ae368b6028.d: crates/testkit/src/lib.rs crates/testkit/src/oracle.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs crates/testkit/src/shrink.rs crates/testkit/src/teprog.rs crates/testkit/src/timer.rs

/root/repo/target/release/deps/libsouffle_testkit-b64353ae368b6028.rlib: crates/testkit/src/lib.rs crates/testkit/src/oracle.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs crates/testkit/src/shrink.rs crates/testkit/src/teprog.rs crates/testkit/src/timer.rs

/root/repo/target/release/deps/libsouffle_testkit-b64353ae368b6028.rmeta: crates/testkit/src/lib.rs crates/testkit/src/oracle.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs crates/testkit/src/shrink.rs crates/testkit/src/teprog.rs crates/testkit/src/timer.rs

crates/testkit/src/lib.rs:
crates/testkit/src/oracle.rs:
crates/testkit/src/prop.rs:
crates/testkit/src/rng.rs:
crates/testkit/src/shrink.rs:
crates/testkit/src/teprog.rs:
crates/testkit/src/timer.rs:
