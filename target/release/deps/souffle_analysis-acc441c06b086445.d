/root/repo/target/release/deps/souffle_analysis-acc441c06b086445.d: crates/analysis/src/lib.rs crates/analysis/src/classify.rs crates/analysis/src/graph.rs crates/analysis/src/liveness.rs crates/analysis/src/partition.rs crates/analysis/src/reuse.rs crates/analysis/src/result.rs

/root/repo/target/release/deps/libsouffle_analysis-acc441c06b086445.rlib: crates/analysis/src/lib.rs crates/analysis/src/classify.rs crates/analysis/src/graph.rs crates/analysis/src/liveness.rs crates/analysis/src/partition.rs crates/analysis/src/reuse.rs crates/analysis/src/result.rs

/root/repo/target/release/deps/libsouffle_analysis-acc441c06b086445.rmeta: crates/analysis/src/lib.rs crates/analysis/src/classify.rs crates/analysis/src/graph.rs crates/analysis/src/liveness.rs crates/analysis/src/partition.rs crates/analysis/src/reuse.rs crates/analysis/src/result.rs

crates/analysis/src/lib.rs:
crates/analysis/src/classify.rs:
crates/analysis/src/graph.rs:
crates/analysis/src/liveness.rs:
crates/analysis/src/partition.rs:
crates/analysis/src/reuse.rs:
crates/analysis/src/result.rs:
