/root/repo/target/release/deps/souffle_bench-aa873faf0007f590.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/souffle_bench-aa873faf0007f590: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
