/root/repo/target/release/deps/table5-ea849b21a3c6eed4.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-ea849b21a3c6eed4: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
