/root/repo/target/release/deps/scaling-2e5ecdf5f4d997b4.d: crates/bench/src/bin/scaling.rs

/root/repo/target/release/deps/scaling-2e5ecdf5f4d997b4: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
