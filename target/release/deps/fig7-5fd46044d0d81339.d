/root/repo/target/release/deps/fig7-5fd46044d0d81339.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-5fd46044d0d81339: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
