/root/repo/target/release/deps/souffle_suite-3272498391fcc5c1.d: src/lib.rs

/root/repo/target/release/deps/souffle_suite-3272498391fcc5c1: src/lib.rs

src/lib.rs:
