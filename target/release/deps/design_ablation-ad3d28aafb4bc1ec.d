/root/repo/target/release/deps/design_ablation-ad3d28aafb4bc1ec.d: crates/bench/src/bin/design_ablation.rs

/root/repo/target/release/deps/design_ablation-ad3d28aafb4bc1ec: crates/bench/src/bin/design_ablation.rs

crates/bench/src/bin/design_ablation.rs:
