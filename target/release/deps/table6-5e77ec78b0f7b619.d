/root/repo/target/release/deps/table6-5e77ec78b0f7b619.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-5e77ec78b0f7b619: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
