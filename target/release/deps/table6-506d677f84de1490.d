/root/repo/target/release/deps/table6-506d677f84de1490.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-506d677f84de1490: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
