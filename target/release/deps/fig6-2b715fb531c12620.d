/root/repo/target/release/deps/fig6-2b715fb531c12620.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-2b715fb531c12620: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
