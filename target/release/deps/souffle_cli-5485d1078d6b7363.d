/root/repo/target/release/deps/souffle_cli-5485d1078d6b7363.d: crates/souffle/src/bin/souffle-cli.rs

/root/repo/target/release/deps/souffle_cli-5485d1078d6b7363: crates/souffle/src/bin/souffle-cli.rs

crates/souffle/src/bin/souffle-cli.rs:
