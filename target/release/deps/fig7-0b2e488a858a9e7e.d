/root/repo/target/release/deps/fig7-0b2e488a858a9e7e.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-0b2e488a858a9e7e: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
