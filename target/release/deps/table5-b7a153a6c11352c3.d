/root/repo/target/release/deps/table5-b7a153a6c11352c3.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-b7a153a6c11352c3: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
