/root/repo/target/release/examples/scalarcheck-18d3eedc48120e1e.d: examples/scalarcheck.rs

/root/repo/target/release/examples/scalarcheck-18d3eedc48120e1e: examples/scalarcheck.rs

examples/scalarcheck.rs:
