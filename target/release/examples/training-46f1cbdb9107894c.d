/root/repo/target/release/examples/training-46f1cbdb9107894c.d: examples/training.rs

/root/repo/target/release/examples/training-46f1cbdb9107894c: examples/training.rs

examples/training.rs:
