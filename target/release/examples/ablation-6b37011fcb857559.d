/root/repo/target/release/examples/ablation-6b37011fcb857559.d: examples/ablation.rs

/root/repo/target/release/examples/ablation-6b37011fcb857559: examples/ablation.rs

examples/ablation.rs:
