/root/repo/target/release/examples/evalspeed-fac58f7faa301d2b.d: crates/bench/examples/evalspeed.rs

/root/repo/target/release/examples/evalspeed-fac58f7faa301d2b: crates/bench/examples/evalspeed.rs

crates/bench/examples/evalspeed.rs:
