/root/repo/target/release/libsouffle_affine.rlib: /root/repo/crates/affine/src/expr.rs /root/repo/crates/affine/src/lib.rs /root/repo/crates/affine/src/map.rs /root/repo/crates/affine/src/relation.rs
