/root/repo/target/debug/deps/proptest_grad-641c8057a32a9b37.d: tests/proptest_grad.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_grad-641c8057a32a9b37.rmeta: tests/proptest_grad.rs Cargo.toml

tests/proptest_grad.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
