/root/repo/target/debug/deps/souffle_transform-c227a8d625b1ff35.d: crates/transform/src/lib.rs crates/transform/src/horizontal.rs crates/transform/src/vertical.rs crates/transform/src/rewrite.rs

/root/repo/target/debug/deps/libsouffle_transform-c227a8d625b1ff35.rlib: crates/transform/src/lib.rs crates/transform/src/horizontal.rs crates/transform/src/vertical.rs crates/transform/src/rewrite.rs

/root/repo/target/debug/deps/libsouffle_transform-c227a8d625b1ff35.rmeta: crates/transform/src/lib.rs crates/transform/src/horizontal.rs crates/transform/src/vertical.rs crates/transform/src/rewrite.rs

crates/transform/src/lib.rs:
crates/transform/src/horizontal.rs:
crates/transform/src/vertical.rs:
crates/transform/src/rewrite.rs:
