/root/repo/target/debug/deps/overhead-55ab55342cd37031.d: crates/bench/src/bin/overhead.rs Cargo.toml

/root/repo/target/debug/deps/liboverhead-55ab55342cd37031.rmeta: crates/bench/src/bin/overhead.rs Cargo.toml

crates/bench/src/bin/overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
