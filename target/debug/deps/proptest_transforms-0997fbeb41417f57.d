/root/repo/target/debug/deps/proptest_transforms-0997fbeb41417f57.d: tests/proptest_transforms.rs

/root/repo/target/debug/deps/proptest_transforms-0997fbeb41417f57: tests/proptest_transforms.rs

tests/proptest_transforms.rs:
