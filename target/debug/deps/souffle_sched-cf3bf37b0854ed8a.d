/root/repo/target/debug/deps/souffle_sched-cf3bf37b0854ed8a.d: crates/sched/src/lib.rs crates/sched/src/cost.rs crates/sched/src/device.rs crates/sched/src/occupancy.rs crates/sched/src/primitives.rs crates/sched/src/schedule.rs crates/sched/src/search.rs

/root/repo/target/debug/deps/libsouffle_sched-cf3bf37b0854ed8a.rlib: crates/sched/src/lib.rs crates/sched/src/cost.rs crates/sched/src/device.rs crates/sched/src/occupancy.rs crates/sched/src/primitives.rs crates/sched/src/schedule.rs crates/sched/src/search.rs

/root/repo/target/debug/deps/libsouffle_sched-cf3bf37b0854ed8a.rmeta: crates/sched/src/lib.rs crates/sched/src/cost.rs crates/sched/src/device.rs crates/sched/src/occupancy.rs crates/sched/src/primitives.rs crates/sched/src/schedule.rs crates/sched/src/search.rs

crates/sched/src/lib.rs:
crates/sched/src/cost.rs:
crates/sched/src/device.rs:
crates/sched/src/occupancy.rs:
crates/sched/src/primitives.rs:
crates/sched/src/schedule.rs:
crates/sched/src/search.rs:
