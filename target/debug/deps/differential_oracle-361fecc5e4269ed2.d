/root/repo/target/debug/deps/differential_oracle-361fecc5e4269ed2.d: tests/differential_oracle.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential_oracle-361fecc5e4269ed2.rmeta: tests/differential_oracle.rs Cargo.toml

tests/differential_oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
