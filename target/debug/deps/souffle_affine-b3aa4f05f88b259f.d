/root/repo/target/debug/deps/souffle_affine-b3aa4f05f88b259f.d: crates/affine/src/lib.rs crates/affine/src/expr.rs crates/affine/src/map.rs crates/affine/src/relation.rs

/root/repo/target/debug/deps/souffle_affine-b3aa4f05f88b259f: crates/affine/src/lib.rs crates/affine/src/expr.rs crates/affine/src/map.rs crates/affine/src/relation.rs

crates/affine/src/lib.rs:
crates/affine/src/expr.rs:
crates/affine/src/map.rs:
crates/affine/src/relation.rs:
