/root/repo/target/debug/deps/design_ablation-f25b832122683b82.d: crates/bench/src/bin/design_ablation.rs

/root/repo/target/debug/deps/design_ablation-f25b832122683b82: crates/bench/src/bin/design_ablation.rs

crates/bench/src/bin/design_ablation.rs:
