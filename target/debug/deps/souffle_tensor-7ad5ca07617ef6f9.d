/root/repo/target/debug/deps/souffle_tensor-7ad5ca07617ef6f9.d: crates/tensor/src/lib.rs crates/tensor/src/dtype.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libsouffle_tensor-7ad5ca07617ef6f9.rlib: crates/tensor/src/lib.rs crates/tensor/src/dtype.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libsouffle_tensor-7ad5ca07617ef6f9.rmeta: crates/tensor/src/lib.rs crates/tensor/src/dtype.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/dtype.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
