/root/repo/target/debug/deps/souffle_testkit-99fc4c63b5d866f9.d: crates/testkit/src/lib.rs crates/testkit/src/oracle.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs crates/testkit/src/shrink.rs crates/testkit/src/teprog.rs crates/testkit/src/timer.rs Cargo.toml

/root/repo/target/debug/deps/libsouffle_testkit-99fc4c63b5d866f9.rmeta: crates/testkit/src/lib.rs crates/testkit/src/oracle.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs crates/testkit/src/shrink.rs crates/testkit/src/teprog.rs crates/testkit/src/timer.rs Cargo.toml

crates/testkit/src/lib.rs:
crates/testkit/src/oracle.rs:
crates/testkit/src/prop.rs:
crates/testkit/src/rng.rs:
crates/testkit/src/shrink.rs:
crates/testkit/src/teprog.rs:
crates/testkit/src/timer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
