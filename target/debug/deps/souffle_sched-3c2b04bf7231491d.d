/root/repo/target/debug/deps/souffle_sched-3c2b04bf7231491d.d: crates/sched/src/lib.rs crates/sched/src/cost.rs crates/sched/src/device.rs crates/sched/src/occupancy.rs crates/sched/src/primitives.rs crates/sched/src/schedule.rs crates/sched/src/search.rs Cargo.toml

/root/repo/target/debug/deps/libsouffle_sched-3c2b04bf7231491d.rmeta: crates/sched/src/lib.rs crates/sched/src/cost.rs crates/sched/src/device.rs crates/sched/src/occupancy.rs crates/sched/src/primitives.rs crates/sched/src/schedule.rs crates/sched/src/search.rs Cargo.toml

crates/sched/src/lib.rs:
crates/sched/src/cost.rs:
crates/sched/src/device.rs:
crates/sched/src/occupancy.rs:
crates/sched/src/primitives.rs:
crates/sched/src/schedule.rs:
crates/sched/src/search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
