/root/repo/target/debug/deps/souffle_gpusim-02620bdbd669efa7.d: crates/gpusim/src/lib.rs crates/gpusim/src/profile.rs crates/gpusim/src/sim.rs crates/gpusim/src/timeline.rs

/root/repo/target/debug/deps/souffle_gpusim-02620bdbd669efa7: crates/gpusim/src/lib.rs crates/gpusim/src/profile.rs crates/gpusim/src/sim.rs crates/gpusim/src/timeline.rs

crates/gpusim/src/lib.rs:
crates/gpusim/src/profile.rs:
crates/gpusim/src/sim.rs:
crates/gpusim/src/timeline.rs:
