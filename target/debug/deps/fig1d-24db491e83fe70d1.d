/root/repo/target/debug/deps/fig1d-24db491e83fe70d1.d: crates/bench/src/bin/fig1d.rs Cargo.toml

/root/repo/target/debug/deps/libfig1d-24db491e83fe70d1.rmeta: crates/bench/src/bin/fig1d.rs Cargo.toml

crates/bench/src/bin/fig1d.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
