/root/repo/target/debug/deps/evaluator_equivalence-2727cd026e482935.d: tests/evaluator_equivalence.rs

/root/repo/target/debug/deps/evaluator_equivalence-2727cd026e482935: tests/evaluator_equivalence.rs

tests/evaluator_equivalence.rs:
