/root/repo/target/debug/deps/souffle_kernel-534bcc6bfac6a562.d: crates/kernel/src/lib.rs crates/kernel/src/codegen.rs crates/kernel/src/lower.rs crates/kernel/src/lru.rs crates/kernel/src/passes.rs crates/kernel/src/instr.rs crates/kernel/src/kernel.rs Cargo.toml

/root/repo/target/debug/deps/libsouffle_kernel-534bcc6bfac6a562.rmeta: crates/kernel/src/lib.rs crates/kernel/src/codegen.rs crates/kernel/src/lower.rs crates/kernel/src/lru.rs crates/kernel/src/passes.rs crates/kernel/src/instr.rs crates/kernel/src/kernel.rs Cargo.toml

crates/kernel/src/lib.rs:
crates/kernel/src/codegen.rs:
crates/kernel/src/lower.rs:
crates/kernel/src/lru.rs:
crates/kernel/src/passes.rs:
crates/kernel/src/instr.rs:
crates/kernel/src/kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
