/root/repo/target/debug/deps/souffle-f3c63d510c6ad73a.d: crates/souffle/src/lib.rs crates/souffle/src/dynamic.rs crates/souffle/src/options.rs crates/souffle/src/pipeline.rs crates/souffle/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libsouffle-f3c63d510c6ad73a.rmeta: crates/souffle/src/lib.rs crates/souffle/src/dynamic.rs crates/souffle/src/options.rs crates/souffle/src/pipeline.rs crates/souffle/src/report.rs Cargo.toml

crates/souffle/src/lib.rs:
crates/souffle/src/dynamic.rs:
crates/souffle/src/options.rs:
crates/souffle/src/pipeline.rs:
crates/souffle/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
