/root/repo/target/debug/deps/testkit_generated-e7db7220cfc521d1.d: crates/te/tests/testkit_generated.rs

/root/repo/target/debug/deps/testkit_generated-e7db7220cfc521d1: crates/te/tests/testkit_generated.rs

crates/te/tests/testkit_generated.rs:
