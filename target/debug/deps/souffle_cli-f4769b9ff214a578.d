/root/repo/target/debug/deps/souffle_cli-f4769b9ff214a578.d: crates/souffle/src/bin/souffle-cli.rs

/root/repo/target/debug/deps/souffle_cli-f4769b9ff214a578: crates/souffle/src/bin/souffle-cli.rs

crates/souffle/src/bin/souffle-cli.rs:
