/root/repo/target/debug/deps/souffle_transform-70cbd93603bd65a7.d: crates/transform/src/lib.rs crates/transform/src/horizontal.rs crates/transform/src/vertical.rs crates/transform/src/rewrite.rs

/root/repo/target/debug/deps/souffle_transform-70cbd93603bd65a7: crates/transform/src/lib.rs crates/transform/src/horizontal.rs crates/transform/src/vertical.rs crates/transform/src/rewrite.rs

crates/transform/src/lib.rs:
crates/transform/src/horizontal.rs:
crates/transform/src/vertical.rs:
crates/transform/src/rewrite.rs:
