/root/repo/target/debug/deps/souffle_testkit-11b743a4453d5013.d: crates/testkit/src/lib.rs crates/testkit/src/oracle.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs crates/testkit/src/shrink.rs crates/testkit/src/teprog.rs crates/testkit/src/timer.rs

/root/repo/target/debug/deps/souffle_testkit-11b743a4453d5013: crates/testkit/src/lib.rs crates/testkit/src/oracle.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs crates/testkit/src/shrink.rs crates/testkit/src/teprog.rs crates/testkit/src/timer.rs

crates/testkit/src/lib.rs:
crates/testkit/src/oracle.rs:
crates/testkit/src/prop.rs:
crates/testkit/src/rng.rs:
crates/testkit/src/shrink.rs:
crates/testkit/src/teprog.rs:
crates/testkit/src/timer.rs:
