/root/repo/target/debug/deps/roofline-a894018680915726.d: crates/bench/src/bin/roofline.rs Cargo.toml

/root/repo/target/debug/deps/libroofline-a894018680915726.rmeta: crates/bench/src/bin/roofline.rs Cargo.toml

crates/bench/src/bin/roofline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
