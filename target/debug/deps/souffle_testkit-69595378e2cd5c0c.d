/root/repo/target/debug/deps/souffle_testkit-69595378e2cd5c0c.d: crates/testkit/src/lib.rs crates/testkit/src/oracle.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs crates/testkit/src/shrink.rs crates/testkit/src/teprog.rs crates/testkit/src/timer.rs

/root/repo/target/debug/deps/libsouffle_testkit-69595378e2cd5c0c.rlib: crates/testkit/src/lib.rs crates/testkit/src/oracle.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs crates/testkit/src/shrink.rs crates/testkit/src/teprog.rs crates/testkit/src/timer.rs

/root/repo/target/debug/deps/libsouffle_testkit-69595378e2cd5c0c.rmeta: crates/testkit/src/lib.rs crates/testkit/src/oracle.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs crates/testkit/src/shrink.rs crates/testkit/src/teprog.rs crates/testkit/src/timer.rs

crates/testkit/src/lib.rs:
crates/testkit/src/oracle.rs:
crates/testkit/src/prop.rs:
crates/testkit/src/rng.rs:
crates/testkit/src/shrink.rs:
crates/testkit/src/teprog.rs:
crates/testkit/src/timer.rs:
