/root/repo/target/debug/deps/fig1d-094b8817a24d2bac.d: crates/bench/src/bin/fig1d.rs

/root/repo/target/debug/deps/fig1d-094b8817a24d2bac: crates/bench/src/bin/fig1d.rs

crates/bench/src/bin/fig1d.rs:
