/root/repo/target/debug/deps/souffle_analysis-7f0648b7f6d48571.d: crates/analysis/src/lib.rs crates/analysis/src/classify.rs crates/analysis/src/graph.rs crates/analysis/src/liveness.rs crates/analysis/src/partition.rs crates/analysis/src/reuse.rs crates/analysis/src/result.rs

/root/repo/target/debug/deps/libsouffle_analysis-7f0648b7f6d48571.rlib: crates/analysis/src/lib.rs crates/analysis/src/classify.rs crates/analysis/src/graph.rs crates/analysis/src/liveness.rs crates/analysis/src/partition.rs crates/analysis/src/reuse.rs crates/analysis/src/result.rs

/root/repo/target/debug/deps/libsouffle_analysis-7f0648b7f6d48571.rmeta: crates/analysis/src/lib.rs crates/analysis/src/classify.rs crates/analysis/src/graph.rs crates/analysis/src/liveness.rs crates/analysis/src/partition.rs crates/analysis/src/reuse.rs crates/analysis/src/result.rs

crates/analysis/src/lib.rs:
crates/analysis/src/classify.rs:
crates/analysis/src/graph.rs:
crates/analysis/src/liveness.rs:
crates/analysis/src/partition.rs:
crates/analysis/src/reuse.rs:
crates/analysis/src/result.rs:
