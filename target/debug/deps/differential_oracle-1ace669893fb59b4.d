/root/repo/target/debug/deps/differential_oracle-1ace669893fb59b4.d: tests/differential_oracle.rs

/root/repo/target/debug/deps/differential_oracle-1ace669893fb59b4: tests/differential_oracle.rs

tests/differential_oracle.rs:
