/root/repo/target/debug/deps/souffle_affine-2499d51ca635d6e3.d: crates/affine/src/lib.rs crates/affine/src/expr.rs crates/affine/src/map.rs crates/affine/src/relation.rs Cargo.toml

/root/repo/target/debug/deps/libsouffle_affine-2499d51ca635d6e3.rmeta: crates/affine/src/lib.rs crates/affine/src/expr.rs crates/affine/src/map.rs crates/affine/src/relation.rs Cargo.toml

crates/affine/src/lib.rs:
crates/affine/src/expr.rs:
crates/affine/src/map.rs:
crates/affine/src/relation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
