/root/repo/target/debug/deps/table6-48ab7a22a3cde3da.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-48ab7a22a3cde3da: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
