/root/repo/target/debug/deps/experiment_shapes-697c502cfa1830fe.d: tests/experiment_shapes.rs

/root/repo/target/debug/deps/experiment_shapes-697c502cfa1830fe: tests/experiment_shapes.rs

tests/experiment_shapes.rs:
