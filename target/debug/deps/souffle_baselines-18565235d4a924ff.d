/root/repo/target/debug/deps/souffle_baselines-18565235d4a924ff.d: crates/baselines/src/lib.rs crates/baselines/src/ansor.rs crates/baselines/src/apollo.rs crates/baselines/src/iree.rs crates/baselines/src/rammer.rs crates/baselines/src/strategy.rs crates/baselines/src/tensorrt.rs crates/baselines/src/xla.rs Cargo.toml

/root/repo/target/debug/deps/libsouffle_baselines-18565235d4a924ff.rmeta: crates/baselines/src/lib.rs crates/baselines/src/ansor.rs crates/baselines/src/apollo.rs crates/baselines/src/iree.rs crates/baselines/src/rammer.rs crates/baselines/src/strategy.rs crates/baselines/src/tensorrt.rs crates/baselines/src/xla.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/ansor.rs:
crates/baselines/src/apollo.rs:
crates/baselines/src/iree.rs:
crates/baselines/src/rammer.rs:
crates/baselines/src/strategy.rs:
crates/baselines/src/tensorrt.rs:
crates/baselines/src/xla.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
