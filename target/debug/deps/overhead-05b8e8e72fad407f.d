/root/repo/target/debug/deps/overhead-05b8e8e72fad407f.d: crates/bench/src/bin/overhead.rs

/root/repo/target/debug/deps/overhead-05b8e8e72fad407f: crates/bench/src/bin/overhead.rs

crates/bench/src/bin/overhead.rs:
