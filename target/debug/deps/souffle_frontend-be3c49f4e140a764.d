/root/repo/target/debug/deps/souffle_frontend-be3c49f4e140a764.d: crates/frontend/src/lib.rs crates/frontend/src/graph.rs crates/frontend/src/models/mod.rs crates/frontend/src/models/bert.rs crates/frontend/src/models/efficientnet.rs crates/frontend/src/models/lstm.rs crates/frontend/src/models/mmoe.rs crates/frontend/src/models/resnext.rs crates/frontend/src/models/swin.rs

/root/repo/target/debug/deps/libsouffle_frontend-be3c49f4e140a764.rlib: crates/frontend/src/lib.rs crates/frontend/src/graph.rs crates/frontend/src/models/mod.rs crates/frontend/src/models/bert.rs crates/frontend/src/models/efficientnet.rs crates/frontend/src/models/lstm.rs crates/frontend/src/models/mmoe.rs crates/frontend/src/models/resnext.rs crates/frontend/src/models/swin.rs

/root/repo/target/debug/deps/libsouffle_frontend-be3c49f4e140a764.rmeta: crates/frontend/src/lib.rs crates/frontend/src/graph.rs crates/frontend/src/models/mod.rs crates/frontend/src/models/bert.rs crates/frontend/src/models/efficientnet.rs crates/frontend/src/models/lstm.rs crates/frontend/src/models/mmoe.rs crates/frontend/src/models/resnext.rs crates/frontend/src/models/swin.rs

crates/frontend/src/lib.rs:
crates/frontend/src/graph.rs:
crates/frontend/src/models/mod.rs:
crates/frontend/src/models/bert.rs:
crates/frontend/src/models/efficientnet.rs:
crates/frontend/src/models/lstm.rs:
crates/frontend/src/models/mmoe.rs:
crates/frontend/src/models/resnext.rs:
crates/frontend/src/models/swin.rs:
