/root/repo/target/debug/deps/souffle_analysis-7d1cc8164171a788.d: crates/analysis/src/lib.rs crates/analysis/src/classify.rs crates/analysis/src/graph.rs crates/analysis/src/liveness.rs crates/analysis/src/partition.rs crates/analysis/src/reuse.rs crates/analysis/src/result.rs

/root/repo/target/debug/deps/souffle_analysis-7d1cc8164171a788: crates/analysis/src/lib.rs crates/analysis/src/classify.rs crates/analysis/src/graph.rs crates/analysis/src/liveness.rs crates/analysis/src/partition.rs crates/analysis/src/reuse.rs crates/analysis/src/result.rs

crates/analysis/src/lib.rs:
crates/analysis/src/classify.rs:
crates/analysis/src/graph.rs:
crates/analysis/src/liveness.rs:
crates/analysis/src/partition.rs:
crates/analysis/src/reuse.rs:
crates/analysis/src/result.rs:
