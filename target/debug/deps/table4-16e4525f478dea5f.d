/root/repo/target/debug/deps/table4-16e4525f478dea5f.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-16e4525f478dea5f: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
