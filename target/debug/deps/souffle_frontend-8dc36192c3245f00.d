/root/repo/target/debug/deps/souffle_frontend-8dc36192c3245f00.d: crates/frontend/src/lib.rs crates/frontend/src/graph.rs crates/frontend/src/models/mod.rs crates/frontend/src/models/bert.rs crates/frontend/src/models/efficientnet.rs crates/frontend/src/models/lstm.rs crates/frontend/src/models/mmoe.rs crates/frontend/src/models/resnext.rs crates/frontend/src/models/swin.rs Cargo.toml

/root/repo/target/debug/deps/libsouffle_frontend-8dc36192c3245f00.rmeta: crates/frontend/src/lib.rs crates/frontend/src/graph.rs crates/frontend/src/models/mod.rs crates/frontend/src/models/bert.rs crates/frontend/src/models/efficientnet.rs crates/frontend/src/models/lstm.rs crates/frontend/src/models/mmoe.rs crates/frontend/src/models/resnext.rs crates/frontend/src/models/swin.rs Cargo.toml

crates/frontend/src/lib.rs:
crates/frontend/src/graph.rs:
crates/frontend/src/models/mod.rs:
crates/frontend/src/models/bert.rs:
crates/frontend/src/models/efficientnet.rs:
crates/frontend/src/models/lstm.rs:
crates/frontend/src/models/mmoe.rs:
crates/frontend/src/models/resnext.rs:
crates/frontend/src/models/swin.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
