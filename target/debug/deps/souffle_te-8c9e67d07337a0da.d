/root/repo/target/debug/deps/souffle_te-8c9e67d07337a0da.d: crates/te/src/lib.rs crates/te/src/builders.rs crates/te/src/compile.rs crates/te/src/expr.rs crates/te/src/grad.rs crates/te/src/interp.rs crates/te/src/program.rs crates/te/src/source.rs crates/te/src/te.rs crates/te/src/vm.rs Cargo.toml

/root/repo/target/debug/deps/libsouffle_te-8c9e67d07337a0da.rmeta: crates/te/src/lib.rs crates/te/src/builders.rs crates/te/src/compile.rs crates/te/src/expr.rs crates/te/src/grad.rs crates/te/src/interp.rs crates/te/src/program.rs crates/te/src/source.rs crates/te/src/te.rs crates/te/src/vm.rs Cargo.toml

crates/te/src/lib.rs:
crates/te/src/builders.rs:
crates/te/src/compile.rs:
crates/te/src/expr.rs:
crates/te/src/grad.rs:
crates/te/src/interp.rs:
crates/te/src/program.rs:
crates/te/src/source.rs:
crates/te/src/te.rs:
crates/te/src/vm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
