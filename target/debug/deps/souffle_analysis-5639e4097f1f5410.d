/root/repo/target/debug/deps/souffle_analysis-5639e4097f1f5410.d: crates/analysis/src/lib.rs crates/analysis/src/classify.rs crates/analysis/src/graph.rs crates/analysis/src/liveness.rs crates/analysis/src/partition.rs crates/analysis/src/reuse.rs crates/analysis/src/result.rs Cargo.toml

/root/repo/target/debug/deps/libsouffle_analysis-5639e4097f1f5410.rmeta: crates/analysis/src/lib.rs crates/analysis/src/classify.rs crates/analysis/src/graph.rs crates/analysis/src/liveness.rs crates/analysis/src/partition.rs crates/analysis/src/reuse.rs crates/analysis/src/result.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/classify.rs:
crates/analysis/src/graph.rs:
crates/analysis/src/liveness.rs:
crates/analysis/src/partition.rs:
crates/analysis/src/reuse.rs:
crates/analysis/src/result.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
