/root/repo/target/debug/deps/souffle_sched-c4789764c5a8496c.d: crates/sched/src/lib.rs crates/sched/src/cost.rs crates/sched/src/device.rs crates/sched/src/occupancy.rs crates/sched/src/primitives.rs crates/sched/src/schedule.rs crates/sched/src/search.rs

/root/repo/target/debug/deps/souffle_sched-c4789764c5a8496c: crates/sched/src/lib.rs crates/sched/src/cost.rs crates/sched/src/device.rs crates/sched/src/occupancy.rs crates/sched/src/primitives.rs crates/sched/src/schedule.rs crates/sched/src/search.rs

crates/sched/src/lib.rs:
crates/sched/src/cost.rs:
crates/sched/src/device.rs:
crates/sched/src/occupancy.rs:
crates/sched/src/primitives.rs:
crates/sched/src/schedule.rs:
crates/sched/src/search.rs:
