/root/repo/target/debug/deps/paper_scale-23bb85852fc9220b.d: tests/paper_scale.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_scale-23bb85852fc9220b.rmeta: tests/paper_scale.rs Cargo.toml

tests/paper_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
