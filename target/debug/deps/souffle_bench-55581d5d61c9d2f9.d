/root/repo/target/debug/deps/souffle_bench-55581d5d61c9d2f9.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsouffle_bench-55581d5d61c9d2f9.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
