/root/repo/target/debug/deps/testkit_generated-f46b54e79cff8177.d: crates/te/tests/testkit_generated.rs Cargo.toml

/root/repo/target/debug/deps/libtestkit_generated-f46b54e79cff8177.rmeta: crates/te/tests/testkit_generated.rs Cargo.toml

crates/te/tests/testkit_generated.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
