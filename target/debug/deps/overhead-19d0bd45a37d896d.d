/root/repo/target/debug/deps/overhead-19d0bd45a37d896d.d: crates/bench/src/bin/overhead.rs Cargo.toml

/root/repo/target/debug/deps/liboverhead-19d0bd45a37d896d.rmeta: crates/bench/src/bin/overhead.rs Cargo.toml

crates/bench/src/bin/overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
