/root/repo/target/debug/deps/fig1d-d5dc9e22bec5cb7d.d: crates/bench/src/bin/fig1d.rs Cargo.toml

/root/repo/target/debug/deps/libfig1d-d5dc9e22bec5cb7d.rmeta: crates/bench/src/bin/fig1d.rs Cargo.toml

crates/bench/src/bin/fig1d.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
