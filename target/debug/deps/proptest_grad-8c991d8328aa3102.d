/root/repo/target/debug/deps/proptest_grad-8c991d8328aa3102.d: tests/proptest_grad.rs

/root/repo/target/debug/deps/proptest_grad-8c991d8328aa3102: tests/proptest_grad.rs

tests/proptest_grad.rs:
