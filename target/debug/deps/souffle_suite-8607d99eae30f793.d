/root/repo/target/debug/deps/souffle_suite-8607d99eae30f793.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsouffle_suite-8607d99eae30f793.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
