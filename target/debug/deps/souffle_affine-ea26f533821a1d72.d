/root/repo/target/debug/deps/souffle_affine-ea26f533821a1d72.d: crates/affine/src/lib.rs crates/affine/src/expr.rs crates/affine/src/map.rs crates/affine/src/relation.rs

/root/repo/target/debug/deps/libsouffle_affine-ea26f533821a1d72.rlib: crates/affine/src/lib.rs crates/affine/src/expr.rs crates/affine/src/map.rs crates/affine/src/relation.rs

/root/repo/target/debug/deps/libsouffle_affine-ea26f533821a1d72.rmeta: crates/affine/src/lib.rs crates/affine/src/expr.rs crates/affine/src/map.rs crates/affine/src/relation.rs

crates/affine/src/lib.rs:
crates/affine/src/expr.rs:
crates/affine/src/map.rs:
crates/affine/src/relation.rs:
