/root/repo/target/debug/deps/design_ablation-933ef63753237853.d: crates/bench/src/bin/design_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libdesign_ablation-933ef63753237853.rmeta: crates/bench/src/bin/design_ablation.rs Cargo.toml

crates/bench/src/bin/design_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
