/root/repo/target/debug/deps/fig6-f9cf067940620bc0.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-f9cf067940620bc0: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
