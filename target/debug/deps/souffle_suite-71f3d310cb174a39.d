/root/repo/target/debug/deps/souffle_suite-71f3d310cb174a39.d: src/lib.rs

/root/repo/target/debug/deps/libsouffle_suite-71f3d310cb174a39.rlib: src/lib.rs

/root/repo/target/debug/deps/libsouffle_suite-71f3d310cb174a39.rmeta: src/lib.rs

src/lib.rs:
