/root/repo/target/debug/deps/souffle_tensor-2c96a6c1734e0598.d: crates/tensor/src/lib.rs crates/tensor/src/dtype.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs Cargo.toml

/root/repo/target/debug/deps/libsouffle_tensor-2c96a6c1734e0598.rmeta: crates/tensor/src/lib.rs crates/tensor/src/dtype.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/dtype.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
