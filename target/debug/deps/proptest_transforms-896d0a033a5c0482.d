/root/repo/target/debug/deps/proptest_transforms-896d0a033a5c0482.d: tests/proptest_transforms.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_transforms-896d0a033a5c0482.rmeta: tests/proptest_transforms.rs Cargo.toml

tests/proptest_transforms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
