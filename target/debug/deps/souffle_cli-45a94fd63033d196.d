/root/repo/target/debug/deps/souffle_cli-45a94fd63033d196.d: crates/souffle/src/bin/souffle-cli.rs Cargo.toml

/root/repo/target/debug/deps/libsouffle_cli-45a94fd63033d196.rmeta: crates/souffle/src/bin/souffle-cli.rs Cargo.toml

crates/souffle/src/bin/souffle-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
