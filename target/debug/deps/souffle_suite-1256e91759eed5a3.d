/root/repo/target/debug/deps/souffle_suite-1256e91759eed5a3.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsouffle_suite-1256e91759eed5a3.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
