/root/repo/target/debug/deps/souffle-1887d0835b977652.d: crates/souffle/src/lib.rs crates/souffle/src/dynamic.rs crates/souffle/src/options.rs crates/souffle/src/pipeline.rs crates/souffle/src/report.rs

/root/repo/target/debug/deps/souffle-1887d0835b977652: crates/souffle/src/lib.rs crates/souffle/src/dynamic.rs crates/souffle/src/options.rs crates/souffle/src/pipeline.rs crates/souffle/src/report.rs

crates/souffle/src/lib.rs:
crates/souffle/src/dynamic.rs:
crates/souffle/src/options.rs:
crates/souffle/src/pipeline.rs:
crates/souffle/src/report.rs:
