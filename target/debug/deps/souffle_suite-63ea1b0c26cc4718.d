/root/repo/target/debug/deps/souffle_suite-63ea1b0c26cc4718.d: src/lib.rs

/root/repo/target/debug/deps/souffle_suite-63ea1b0c26cc4718: src/lib.rs

src/lib.rs:
