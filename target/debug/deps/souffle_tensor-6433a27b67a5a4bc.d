/root/repo/target/debug/deps/souffle_tensor-6433a27b67a5a4bc.d: crates/tensor/src/lib.rs crates/tensor/src/dtype.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/souffle_tensor-6433a27b67a5a4bc: crates/tensor/src/lib.rs crates/tensor/src/dtype.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/dtype.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
