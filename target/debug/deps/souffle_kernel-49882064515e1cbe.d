/root/repo/target/debug/deps/souffle_kernel-49882064515e1cbe.d: crates/kernel/src/lib.rs crates/kernel/src/codegen.rs crates/kernel/src/lower.rs crates/kernel/src/lru.rs crates/kernel/src/passes.rs crates/kernel/src/instr.rs crates/kernel/src/kernel.rs

/root/repo/target/debug/deps/libsouffle_kernel-49882064515e1cbe.rlib: crates/kernel/src/lib.rs crates/kernel/src/codegen.rs crates/kernel/src/lower.rs crates/kernel/src/lru.rs crates/kernel/src/passes.rs crates/kernel/src/instr.rs crates/kernel/src/kernel.rs

/root/repo/target/debug/deps/libsouffle_kernel-49882064515e1cbe.rmeta: crates/kernel/src/lib.rs crates/kernel/src/codegen.rs crates/kernel/src/lower.rs crates/kernel/src/lru.rs crates/kernel/src/passes.rs crates/kernel/src/instr.rs crates/kernel/src/kernel.rs

crates/kernel/src/lib.rs:
crates/kernel/src/codegen.rs:
crates/kernel/src/lower.rs:
crates/kernel/src/lru.rs:
crates/kernel/src/passes.rs:
crates/kernel/src/instr.rs:
crates/kernel/src/kernel.rs:
