/root/repo/target/debug/deps/fig7-cb32ece4f07f1789.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-cb32ece4f07f1789: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
