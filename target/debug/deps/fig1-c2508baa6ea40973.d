/root/repo/target/debug/deps/fig1-c2508baa6ea40973.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-c2508baa6ea40973: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
