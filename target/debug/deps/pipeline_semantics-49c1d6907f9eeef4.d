/root/repo/target/debug/deps/pipeline_semantics-49c1d6907f9eeef4.d: tests/pipeline_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_semantics-49c1d6907f9eeef4.rmeta: tests/pipeline_semantics.rs Cargo.toml

tests/pipeline_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
