/root/repo/target/debug/deps/pipeline-5432cd230392e7c4.d: crates/bench/benches/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-5432cd230392e7c4.rmeta: crates/bench/benches/pipeline.rs Cargo.toml

crates/bench/benches/pipeline.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
