/root/repo/target/debug/deps/training_loop-393b7e04950da1ad.d: tests/training_loop.rs

/root/repo/target/debug/deps/training_loop-393b7e04950da1ad: tests/training_loop.rs

tests/training_loop.rs:
