/root/repo/target/debug/deps/table5-53910ab92787b7e8.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-53910ab92787b7e8: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
