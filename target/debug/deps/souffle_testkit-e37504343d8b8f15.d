/root/repo/target/debug/deps/souffle_testkit-e37504343d8b8f15.d: crates/testkit/src/lib.rs crates/testkit/src/oracle.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs crates/testkit/src/shrink.rs crates/testkit/src/teprog.rs crates/testkit/src/timer.rs Cargo.toml

/root/repo/target/debug/deps/libsouffle_testkit-e37504343d8b8f15.rmeta: crates/testkit/src/lib.rs crates/testkit/src/oracle.rs crates/testkit/src/prop.rs crates/testkit/src/rng.rs crates/testkit/src/shrink.rs crates/testkit/src/teprog.rs crates/testkit/src/timer.rs Cargo.toml

crates/testkit/src/lib.rs:
crates/testkit/src/oracle.rs:
crates/testkit/src/prop.rs:
crates/testkit/src/rng.rs:
crates/testkit/src/shrink.rs:
crates/testkit/src/teprog.rs:
crates/testkit/src/timer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
