/root/repo/target/debug/deps/souffle_baselines-3d76ded7ca14ee89.d: crates/baselines/src/lib.rs crates/baselines/src/ansor.rs crates/baselines/src/apollo.rs crates/baselines/src/iree.rs crates/baselines/src/rammer.rs crates/baselines/src/strategy.rs crates/baselines/src/tensorrt.rs crates/baselines/src/xla.rs

/root/repo/target/debug/deps/souffle_baselines-3d76ded7ca14ee89: crates/baselines/src/lib.rs crates/baselines/src/ansor.rs crates/baselines/src/apollo.rs crates/baselines/src/iree.rs crates/baselines/src/rammer.rs crates/baselines/src/strategy.rs crates/baselines/src/tensorrt.rs crates/baselines/src/xla.rs

crates/baselines/src/lib.rs:
crates/baselines/src/ansor.rs:
crates/baselines/src/apollo.rs:
crates/baselines/src/iree.rs:
crates/baselines/src/rammer.rs:
crates/baselines/src/strategy.rs:
crates/baselines/src/tensorrt.rs:
crates/baselines/src/xla.rs:
