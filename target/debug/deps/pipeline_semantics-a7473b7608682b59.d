/root/repo/target/debug/deps/pipeline_semantics-a7473b7608682b59.d: tests/pipeline_semantics.rs

/root/repo/target/debug/deps/pipeline_semantics-a7473b7608682b59: tests/pipeline_semantics.rs

tests/pipeline_semantics.rs:
