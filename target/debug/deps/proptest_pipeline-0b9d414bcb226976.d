/root/repo/target/debug/deps/proptest_pipeline-0b9d414bcb226976.d: tests/proptest_pipeline.rs

/root/repo/target/debug/deps/proptest_pipeline-0b9d414bcb226976: tests/proptest_pipeline.rs

tests/proptest_pipeline.rs:
