/root/repo/target/debug/deps/scaling-573c6de9d6876a1c.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/scaling-573c6de9d6876a1c: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
