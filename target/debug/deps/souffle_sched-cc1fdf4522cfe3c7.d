/root/repo/target/debug/deps/souffle_sched-cc1fdf4522cfe3c7.d: crates/sched/src/lib.rs crates/sched/src/cost.rs crates/sched/src/device.rs crates/sched/src/occupancy.rs crates/sched/src/primitives.rs crates/sched/src/schedule.rs crates/sched/src/search.rs

/root/repo/target/debug/deps/souffle_sched-cc1fdf4522cfe3c7: crates/sched/src/lib.rs crates/sched/src/cost.rs crates/sched/src/device.rs crates/sched/src/occupancy.rs crates/sched/src/primitives.rs crates/sched/src/schedule.rs crates/sched/src/search.rs

crates/sched/src/lib.rs:
crates/sched/src/cost.rs:
crates/sched/src/device.rs:
crates/sched/src/occupancy.rs:
crates/sched/src/primitives.rs:
crates/sched/src/schedule.rs:
crates/sched/src/search.rs:
