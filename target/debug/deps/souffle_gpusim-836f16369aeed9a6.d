/root/repo/target/debug/deps/souffle_gpusim-836f16369aeed9a6.d: crates/gpusim/src/lib.rs crates/gpusim/src/profile.rs crates/gpusim/src/sim.rs crates/gpusim/src/timeline.rs Cargo.toml

/root/repo/target/debug/deps/libsouffle_gpusim-836f16369aeed9a6.rmeta: crates/gpusim/src/lib.rs crates/gpusim/src/profile.rs crates/gpusim/src/sim.rs crates/gpusim/src/timeline.rs Cargo.toml

crates/gpusim/src/lib.rs:
crates/gpusim/src/profile.rs:
crates/gpusim/src/sim.rs:
crates/gpusim/src/timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
