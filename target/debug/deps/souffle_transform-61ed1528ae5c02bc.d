/root/repo/target/debug/deps/souffle_transform-61ed1528ae5c02bc.d: crates/transform/src/lib.rs crates/transform/src/horizontal.rs crates/transform/src/vertical.rs crates/transform/src/rewrite.rs Cargo.toml

/root/repo/target/debug/deps/libsouffle_transform-61ed1528ae5c02bc.rmeta: crates/transform/src/lib.rs crates/transform/src/horizontal.rs crates/transform/src/vertical.rs crates/transform/src/rewrite.rs Cargo.toml

crates/transform/src/lib.rs:
crates/transform/src/horizontal.rs:
crates/transform/src/vertical.rs:
crates/transform/src/rewrite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
