/root/repo/target/debug/deps/roofline-de5149518f05d9e2.d: crates/bench/src/bin/roofline.rs

/root/repo/target/debug/deps/roofline-de5149518f05d9e2: crates/bench/src/bin/roofline.rs

crates/bench/src/bin/roofline.rs:
