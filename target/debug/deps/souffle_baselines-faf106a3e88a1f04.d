/root/repo/target/debug/deps/souffle_baselines-faf106a3e88a1f04.d: crates/baselines/src/lib.rs crates/baselines/src/ansor.rs crates/baselines/src/apollo.rs crates/baselines/src/iree.rs crates/baselines/src/rammer.rs crates/baselines/src/strategy.rs crates/baselines/src/tensorrt.rs crates/baselines/src/xla.rs Cargo.toml

/root/repo/target/debug/deps/libsouffle_baselines-faf106a3e88a1f04.rmeta: crates/baselines/src/lib.rs crates/baselines/src/ansor.rs crates/baselines/src/apollo.rs crates/baselines/src/iree.rs crates/baselines/src/rammer.rs crates/baselines/src/strategy.rs crates/baselines/src/tensorrt.rs crates/baselines/src/xla.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/ansor.rs:
crates/baselines/src/apollo.rs:
crates/baselines/src/iree.rs:
crates/baselines/src/rammer.rs:
crates/baselines/src/strategy.rs:
crates/baselines/src/tensorrt.rs:
crates/baselines/src/xla.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
