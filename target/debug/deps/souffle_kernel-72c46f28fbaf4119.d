/root/repo/target/debug/deps/souffle_kernel-72c46f28fbaf4119.d: crates/kernel/src/lib.rs crates/kernel/src/codegen.rs crates/kernel/src/lower.rs crates/kernel/src/lru.rs crates/kernel/src/passes.rs crates/kernel/src/instr.rs crates/kernel/src/kernel.rs

/root/repo/target/debug/deps/souffle_kernel-72c46f28fbaf4119: crates/kernel/src/lib.rs crates/kernel/src/codegen.rs crates/kernel/src/lower.rs crates/kernel/src/lru.rs crates/kernel/src/passes.rs crates/kernel/src/instr.rs crates/kernel/src/kernel.rs

crates/kernel/src/lib.rs:
crates/kernel/src/codegen.rs:
crates/kernel/src/lower.rs:
crates/kernel/src/lru.rs:
crates/kernel/src/passes.rs:
crates/kernel/src/instr.rs:
crates/kernel/src/kernel.rs:
