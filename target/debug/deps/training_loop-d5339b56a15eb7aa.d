/root/repo/target/debug/deps/training_loop-d5339b56a15eb7aa.d: tests/training_loop.rs Cargo.toml

/root/repo/target/debug/deps/libtraining_loop-d5339b56a15eb7aa.rmeta: tests/training_loop.rs Cargo.toml

tests/training_loop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
