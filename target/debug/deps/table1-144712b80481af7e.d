/root/repo/target/debug/deps/table1-144712b80481af7e.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-144712b80481af7e: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
