/root/repo/target/debug/deps/souffle_bench-ed45bdf201bdcc53.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsouffle_bench-ed45bdf201bdcc53.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsouffle_bench-ed45bdf201bdcc53.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
