/root/repo/target/debug/deps/souffle_frontend-63584a400c930863.d: crates/frontend/src/lib.rs crates/frontend/src/graph.rs crates/frontend/src/models/mod.rs crates/frontend/src/models/bert.rs crates/frontend/src/models/efficientnet.rs crates/frontend/src/models/lstm.rs crates/frontend/src/models/mmoe.rs crates/frontend/src/models/resnext.rs crates/frontend/src/models/swin.rs

/root/repo/target/debug/deps/souffle_frontend-63584a400c930863: crates/frontend/src/lib.rs crates/frontend/src/graph.rs crates/frontend/src/models/mod.rs crates/frontend/src/models/bert.rs crates/frontend/src/models/efficientnet.rs crates/frontend/src/models/lstm.rs crates/frontend/src/models/mmoe.rs crates/frontend/src/models/resnext.rs crates/frontend/src/models/swin.rs

crates/frontend/src/lib.rs:
crates/frontend/src/graph.rs:
crates/frontend/src/models/mod.rs:
crates/frontend/src/models/bert.rs:
crates/frontend/src/models/efficientnet.rs:
crates/frontend/src/models/lstm.rs:
crates/frontend/src/models/mmoe.rs:
crates/frontend/src/models/resnext.rs:
crates/frontend/src/models/swin.rs:
