/root/repo/target/debug/deps/souffle_baselines-4ab5cb9c962405d4.d: crates/baselines/src/lib.rs crates/baselines/src/ansor.rs crates/baselines/src/apollo.rs crates/baselines/src/iree.rs crates/baselines/src/rammer.rs crates/baselines/src/strategy.rs crates/baselines/src/tensorrt.rs crates/baselines/src/xla.rs

/root/repo/target/debug/deps/libsouffle_baselines-4ab5cb9c962405d4.rlib: crates/baselines/src/lib.rs crates/baselines/src/ansor.rs crates/baselines/src/apollo.rs crates/baselines/src/iree.rs crates/baselines/src/rammer.rs crates/baselines/src/strategy.rs crates/baselines/src/tensorrt.rs crates/baselines/src/xla.rs

/root/repo/target/debug/deps/libsouffle_baselines-4ab5cb9c962405d4.rmeta: crates/baselines/src/lib.rs crates/baselines/src/ansor.rs crates/baselines/src/apollo.rs crates/baselines/src/iree.rs crates/baselines/src/rammer.rs crates/baselines/src/strategy.rs crates/baselines/src/tensorrt.rs crates/baselines/src/xla.rs

crates/baselines/src/lib.rs:
crates/baselines/src/ansor.rs:
crates/baselines/src/apollo.rs:
crates/baselines/src/iree.rs:
crates/baselines/src/rammer.rs:
crates/baselines/src/strategy.rs:
crates/baselines/src/tensorrt.rs:
crates/baselines/src/xla.rs:
