/root/repo/target/debug/deps/souffle_gpusim-1db89afc84ac68a1.d: crates/gpusim/src/lib.rs crates/gpusim/src/profile.rs crates/gpusim/src/sim.rs crates/gpusim/src/timeline.rs

/root/repo/target/debug/deps/libsouffle_gpusim-1db89afc84ac68a1.rlib: crates/gpusim/src/lib.rs crates/gpusim/src/profile.rs crates/gpusim/src/sim.rs crates/gpusim/src/timeline.rs

/root/repo/target/debug/deps/libsouffle_gpusim-1db89afc84ac68a1.rmeta: crates/gpusim/src/lib.rs crates/gpusim/src/profile.rs crates/gpusim/src/sim.rs crates/gpusim/src/timeline.rs

crates/gpusim/src/lib.rs:
crates/gpusim/src/profile.rs:
crates/gpusim/src/sim.rs:
crates/gpusim/src/timeline.rs:
