/root/repo/target/debug/deps/souffle-ec4691d31c7229e3.d: crates/souffle/src/lib.rs crates/souffle/src/dynamic.rs crates/souffle/src/options.rs crates/souffle/src/pipeline.rs crates/souffle/src/report.rs

/root/repo/target/debug/deps/libsouffle-ec4691d31c7229e3.rlib: crates/souffle/src/lib.rs crates/souffle/src/dynamic.rs crates/souffle/src/options.rs crates/souffle/src/pipeline.rs crates/souffle/src/report.rs

/root/repo/target/debug/deps/libsouffle-ec4691d31c7229e3.rmeta: crates/souffle/src/lib.rs crates/souffle/src/dynamic.rs crates/souffle/src/options.rs crates/souffle/src/pipeline.rs crates/souffle/src/report.rs

crates/souffle/src/lib.rs:
crates/souffle/src/dynamic.rs:
crates/souffle/src/options.rs:
crates/souffle/src/pipeline.rs:
crates/souffle/src/report.rs:
