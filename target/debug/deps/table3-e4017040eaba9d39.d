/root/repo/target/debug/deps/table3-e4017040eaba9d39.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-e4017040eaba9d39: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
