/root/repo/target/debug/deps/souffle_bench-f7134631bac21d44.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/souffle_bench-f7134631bac21d44: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
