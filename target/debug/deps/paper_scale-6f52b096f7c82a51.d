/root/repo/target/debug/deps/paper_scale-6f52b096f7c82a51.d: tests/paper_scale.rs

/root/repo/target/debug/deps/paper_scale-6f52b096f7c82a51: tests/paper_scale.rs

tests/paper_scale.rs:
