/root/repo/target/debug/deps/evaluator_equivalence-2cc4bfa14c3b8b4a.d: tests/evaluator_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libevaluator_equivalence-2cc4bfa14c3b8b4a.rmeta: tests/evaluator_equivalence.rs Cargo.toml

tests/evaluator_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
