/root/repo/target/debug/deps/roofline-f3a247ff1c534c2b.d: crates/bench/src/bin/roofline.rs Cargo.toml

/root/repo/target/debug/deps/libroofline-f3a247ff1c534c2b.rmeta: crates/bench/src/bin/roofline.rs Cargo.toml

crates/bench/src/bin/roofline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
