/root/repo/target/debug/examples/custom_graph-8a5d46088bb21136.d: examples/custom_graph.rs

/root/repo/target/debug/examples/custom_graph-8a5d46088bb21136: examples/custom_graph.rs

examples/custom_graph.rs:
