/root/repo/target/debug/examples/ablation-3a99f6a275c1beed.d: examples/ablation.rs Cargo.toml

/root/repo/target/debug/examples/libablation-3a99f6a275c1beed.rmeta: examples/ablation.rs Cargo.toml

examples/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
