/root/repo/target/debug/examples/quickstart-03c1cb82758b8825.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-03c1cb82758b8825.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
