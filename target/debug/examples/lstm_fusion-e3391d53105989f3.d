/root/repo/target/debug/examples/lstm_fusion-e3391d53105989f3.d: examples/lstm_fusion.rs Cargo.toml

/root/repo/target/debug/examples/liblstm_fusion-e3391d53105989f3.rmeta: examples/lstm_fusion.rs Cargo.toml

examples/lstm_fusion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
