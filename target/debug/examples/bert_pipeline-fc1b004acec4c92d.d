/root/repo/target/debug/examples/bert_pipeline-fc1b004acec4c92d.d: examples/bert_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libbert_pipeline-fc1b004acec4c92d.rmeta: examples/bert_pipeline.rs Cargo.toml

examples/bert_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
