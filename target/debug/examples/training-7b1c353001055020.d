/root/repo/target/debug/examples/training-7b1c353001055020.d: examples/training.rs

/root/repo/target/debug/examples/training-7b1c353001055020: examples/training.rs

examples/training.rs:
