/root/repo/target/debug/examples/lstm_fusion-3acabc29203b33e3.d: examples/lstm_fusion.rs

/root/repo/target/debug/examples/lstm_fusion-3acabc29203b33e3: examples/lstm_fusion.rs

examples/lstm_fusion.rs:
