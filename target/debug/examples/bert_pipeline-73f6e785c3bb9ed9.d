/root/repo/target/debug/examples/bert_pipeline-73f6e785c3bb9ed9.d: examples/bert_pipeline.rs

/root/repo/target/debug/examples/bert_pipeline-73f6e785c3bb9ed9: examples/bert_pipeline.rs

examples/bert_pipeline.rs:
