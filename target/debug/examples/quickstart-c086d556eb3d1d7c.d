/root/repo/target/debug/examples/quickstart-c086d556eb3d1d7c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c086d556eb3d1d7c: examples/quickstart.rs

examples/quickstart.rs:
