/root/repo/target/debug/examples/training-b87256fcc099b624.d: examples/training.rs Cargo.toml

/root/repo/target/debug/examples/libtraining-b87256fcc099b624.rmeta: examples/training.rs Cargo.toml

examples/training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
