/root/repo/target/debug/examples/custom_graph-0c2add89b7fcffa1.d: examples/custom_graph.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_graph-0c2add89b7fcffa1.rmeta: examples/custom_graph.rs Cargo.toml

examples/custom_graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
