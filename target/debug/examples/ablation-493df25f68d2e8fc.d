/root/repo/target/debug/examples/ablation-493df25f68d2e8fc.d: examples/ablation.rs

/root/repo/target/debug/examples/ablation-493df25f68d2e8fc: examples/ablation.rs

examples/ablation.rs:
