#![warn(missing_docs)]
//! `souffle-suite`: the workspace façade hosting the runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`) of the
//! Souffle (ASPLOS 2024) reproduction.
//!
//! The library surface simply re-exports the component crates; depend on
//! [`souffle`] directly for the compiler API.

pub use souffle;
pub use souffle_affine as affine;
pub use souffle_analysis as analysis;
pub use souffle_baselines as baselines;
pub use souffle_frontend as frontend;
pub use souffle_gpusim as gpusim;
pub use souffle_kernel as kernel;
pub use souffle_sched as sched;
pub use souffle_te as te;
pub use souffle_tensor as tensor;
pub use souffle_transform as transform;
