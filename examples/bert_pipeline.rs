//! Walks the whole Souffle pipeline over BERT-base, printing what each
//! stage of the paper (§4–§6) discovers — the Fig. 2 workflow at model
//! scale — and compares the result against the six baselines.
//!
//! ```sh
//! cargo run --release --example bert_pipeline
//! ```

use souffle::{Souffle, SouffleOptions};
use souffle_analysis::AnalysisResult;
use souffle_baselines::{all_baselines, StrategyContext};
use souffle_frontend::{build_model, Model, ModelConfig};
use souffle_gpusim::simulate;
use souffle_sched::GpuSpec;

fn main() {
    let program = build_model(Model::Bert, ModelConfig::Paper);
    let spec = GpuSpec::a100();
    println!("== 1. TE lowering ==");
    println!(
        "BERT-base (12 layers, seq 384, hidden 768) -> {} TEs, {} tensors, {:.1} MB of weights",
        program.num_tes(),
        program.num_tensors(),
        program.weight_bytes() as f64 / 1e6
    );

    println!("\n== 2. Global computation graph analysis (§5) ==");
    let analysis = AnalysisResult::analyze(&program, &spec);
    println!(
        "one-relies-on-one TEs: {}, one-relies-on-many TEs: {}",
        analysis.one_relies_on_one().len(),
        analysis.one_relies_on_many().len()
    );
    println!(
        "compute-intensive: {}, memory-intensive: {}",
        analysis.compute_intensive().len(),
        analysis.memory_intensive().len()
    );
    println!(
        "data reuse: {} spatial tensor(s), {} temporal tensor(s)",
        analysis.reuse.spatial.len(),
        analysis.reuse.temporal.len()
    );
    println!(
        "resource-aware partition: {} subprogram(s)",
        analysis.partition.num_kernels()
    );

    println!("\n== 3-5. Transform, schedule, merge, optimize (§6) ==");
    let souffle = Souffle::new(SouffleOptions::full());
    let compiled = souffle.compile(&program);
    println!(
        "TEs {} -> {} after transformation ({} horizontal groups, {} inlinings)",
        compiled.stats.transform.tes_before,
        compiled.stats.transform.tes_after,
        compiled.stats.transform.horizontal_groups,
        compiled.stats.transform.vertical_fused
    );
    println!(
        "kernels: {}; LRU reuse eliminated {} loads ({:.1} MB); {} stage(s) pipelined",
        compiled.num_kernels(),
        compiled.stats.reuse.loads_eliminated,
        compiled.stats.reuse.bytes_saved as f64 / 1e6,
        compiled.stats.pipeline.stages_pipelined
    );

    println!("\n== 6. Simulated A100 execution ==");
    let ours = souffle.simulate(&compiled);
    println!(
        "Souffle    {:>8.3} ms  {:>4} kernels  {:>7.1} MB",
        ours.total_time_ms(),
        ours.num_kernel_calls(),
        ours.global_transfer_bytes() as f64 / 1e6
    );
    for strategy in all_baselines() {
        if !strategy.supports(Model::Bert) {
            continue;
        }
        let ctx = StrategyContext::new(&program, &spec);
        let base = strategy.compile(&ctx);
        let prof = simulate(&base.kernels, &strategy.sim_config());
        println!(
            "{:<10} {:>8.3} ms  {:>4} kernels  {:>7.1} MB  ({:.2}x slower)",
            strategy.name(),
            prof.total_time_ms(),
            prof.num_kernel_calls(),
            prof.global_transfer_bytes() as f64 / 1e6,
            prof.total_time_s() / ours.total_time_s()
        );
    }
}
