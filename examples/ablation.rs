//! Builds a *custom* network with the public TE API (the Fig. 2 working
//! example), verifies every Souffle transformation is
//! semantics-preserving with the reference interpreter, and sweeps the
//! ablation variants V0–V4.
//!
//! ```sh
//! cargo run --release --example ablation
//! ```

use souffle::{Souffle, SouffleOptions};
use souffle_te::{builders, interp, TeProgram};
use souffle_tensor::{DType, Shape};

fn fig2_program() -> TeProgram {
    let mut p = TeProgram::new();
    let i0 = p.add_input("I0", Shape::new(vec![64, 64]), DType::F16);
    let w0 = p.add_weight("W0", Shape::new(vec![64, 64]), DType::F16);
    let o0 = builders::matmul(&mut p, "TE0", i0, w0);
    let o1 = builders::sigmoid(&mut p, "TE1", o0);
    let w2 = p.add_weight("W2", Shape::new(vec![64, 64]), DType::F16);
    let o2 = builders::matmul(&mut p, "TE2", o1, w2);
    let o3 = builders::add(&mut p, "TE3", o0, o2);
    let w4 = p.add_weight("W4", Shape::new(vec![64, 256]), DType::F16);
    let o4 = builders::matmul(&mut p, "TE4", o3, w4);
    p.mark_output(o4);
    p
}

fn main() {
    let program = fig2_program();
    program.validate().expect("hand-built program validates");
    println!(
        "Fig. 2 working example: {} TEs (TE0..TE4), output {}",
        program.num_tes(),
        program.tensor(program.outputs()[0]).shape
    );

    // Semantic check: the transformed program must compute the same
    // numbers as the original, verified with the reference interpreter.
    let reference = interp::eval_with_random_inputs(&program, 2024).expect("reference run");
    let (transformed, stats) = souffle_transform::transform_program(&program);
    let optimized = interp::eval_with_random_inputs(&transformed, 2024).expect("optimized run");
    for (id, want) in &reference {
        let got = &optimized[id];
        assert!(
            want.allclose(got, 1e-3, 1e-3),
            "transformation changed semantics!"
        );
    }
    println!(
        "semantics preserved after {} horizontal group(s) and {} inlining(s) ({} -> {} TEs)\n",
        stats.horizontal_groups, stats.vertical_fused, stats.tes_before, stats.tes_after
    );

    println!(
        "{:<6} {:>10} {:>9} {:>12} {:>11}",
        "step", "time (us)", "kernels", "bytes (KB)", "grid syncs"
    );
    for (name, opts) in SouffleOptions::ablation() {
        let (compiled, prof) = Souffle::new(opts).run(&program);
        println!(
            "{:<6} {:>10.2} {:>9} {:>12.1} {:>11}",
            name,
            prof.total_time_us(),
            compiled.num_kernels(),
            prof.global_transfer_bytes() as f64 / 1e3,
            prof.grid_syncs()
        );
    }
}
