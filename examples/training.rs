//! DL-training extension (§9 "Fusion in DL training", left as future work
//! by the paper): differentiate a TE program with reverse-mode autodiff,
//! verify gradients numerically, and compile forward + backward with
//! Souffle — observing that the saved activations the backward pass needs
//! must stay in global memory, which restricts fusion exactly as §9
//! predicts.
//!
//! ```sh
//! cargo run --release --example training
//! ```

use souffle::{Souffle, SouffleOptions};
use souffle_te::{builders, grad, BinaryOp, ReduceOp, TeProgram};
use souffle_tensor::{DType, Shape, Tensor};
use std::collections::HashMap;

fn main() {
    // A 2-layer MLP with MSE loss: x(32,64) -> 128 -> 64 -> loss.
    let mut p = TeProgram::new();
    let x = p.add_input("x", Shape::new(vec![32, 64]), DType::F32);
    let w1 = p.add_input("w1", Shape::new(vec![64, 128]), DType::F32);
    let b1 = p.add_input("b1", Shape::new(vec![128]), DType::F32);
    let w2 = p.add_input("w2", Shape::new(vec![128, 64]), DType::F32);
    let target = p.add_input("t", Shape::new(vec![32, 64]), DType::F32);
    let h = builders::matmul(&mut p, "fc1", x, w1);
    let h = builders::bias_add(&mut p, "fc1.bias", h, b1);
    let h = builders::relu(&mut p, "fc1.relu", h);
    let y = builders::matmul(&mut p, "fc2", h, w2);
    let diff = builders::binary(&mut p, "diff", BinaryOp::Sub, y, target);
    let sq = builders::mul(&mut p, "sq", diff, diff);
    let rows = builders::reduce_last(&mut p, "rows", ReduceOp::Sum, sq);
    let loss = builders::reduce_last(&mut p, "loss", ReduceOp::Sum, rows);
    p.mark_output(loss);
    p.validate().expect("forward validates");
    println!("forward: {} TEs", p.num_tes());

    // Differentiate with respect to both weight matrices and the bias.
    let g = grad::backward(&p, loss, &[w1, b1, w2]).expect("differentiable");
    g.program.validate().expect("backward validates");
    println!(
        "backward: {} TEs, {} saved activations become global-memory inputs (§9)",
        g.program.num_tes(),
        g.saved.len()
    );

    // Numerical spot-check of one dW2 entry via finite differences.
    let mut binds: HashMap<_, _> = p
        .free_tensors()
        .into_iter()
        .enumerate()
        .map(|(i, id)| {
            (
                id,
                Tensor::random(p.tensor(id).shape.clone(), 40 + i as u64).map(|v| v * 0.2),
            )
        })
        .collect();
    let fwd = souffle_te::interp::eval_program(&p, &binds).expect("forward eval");
    let mut bwd_binds = HashMap::new();
    for (&fid, &sid) in &g.saved {
        let v = binds
            .get(&fid)
            .cloned()
            .unwrap_or_else(|| fwd[&fid].clone());
        bwd_binds.insert(sid, v);
    }
    let grads = souffle_te::interp::eval_program(&g.program, &bwd_binds).expect("backward eval");
    let analytic = grads[&g.grads[&w2]].at(&[0, 0]);
    let eps = 1e-2f32;
    let probe = |delta: f32| {
        let mut b = binds.clone();
        let mut t = b[&w2].clone();
        t.set(&[0, 0], t.at(&[0, 0]) + delta);
        b.insert(w2, t);
        souffle_te::interp::eval_program(&p, &b).unwrap()[&loss].data()[0]
    };
    let numeric = (probe(eps) - probe(-eps)) / (2.0 * eps);
    println!("dLoss/dW2[0,0]: analytic {analytic:.5} vs finite-difference {numeric:.5}");
    assert!((analytic - numeric).abs() < 2e-2 * (1.0 + numeric.abs()));
    binds.clear();

    // Compile both passes with Souffle.
    let souffle = Souffle::new(SouffleOptions::full());
    let (cf, pf) = souffle.run(&p);
    let (cb, pb) = souffle.run(&g.program);
    println!(
        "\nforward compiled:  {} kernels, {:6.2} us, {:.2} MB traffic",
        cf.num_kernels(),
        pf.total_time_s() * 1e6,
        pf.global_transfer_bytes() as f64 / 1e6
    );
    println!(
        "backward compiled: {} kernels, {:6.2} us, {:.2} MB traffic",
        cb.num_kernels(),
        pb.total_time_s() * 1e6,
        pb.global_transfer_bytes() as f64 / 1e6
    );
    println!(
        "\nThe backward pass re-reads {} saved tensors from global memory — the\n\
         §9 constraint that restricts operator fusion in training.",
        g.saved.len()
    );
}
