//! Quickstart: compile and "run" a model with Souffle in ten lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use souffle::{Souffle, SouffleOptions};
use souffle_frontend::{build_model, Model, ModelConfig};

fn main() {
    // 1. Build a model as a TE program (here: the MMoE recommender).
    let program = build_model(Model::Mmoe, ModelConfig::Paper);
    println!(
        "MMoE lowered to {} tensor expressions over {} tensors",
        program.num_tes(),
        program.num_tensors()
    );

    // 2. Compile with the full Souffle pipeline.
    let souffle = Souffle::new(SouffleOptions::full());
    let compiled = souffle.compile(&program);
    println!(
        "compiled into {} kernel(s); transformations: {} horizontal group(s), {} vertical inlining(s)",
        compiled.num_kernels(),
        compiled.stats.transform.horizontal_groups,
        compiled.stats.transform.vertical_fused,
    );

    // 3. Execute on the simulated A100 and read the Nsight-lite profile.
    let profile = souffle.simulate(&compiled);
    println!(
        "simulated inference: {:.3} ms, {:.3} MB global traffic, {} grid sync(s)",
        profile.total_time_ms(),
        profile.global_transfer_bytes() as f64 / 1e6,
        profile.grid_syncs()
    );
}
