//! Compiling a hand-built *operator graph* (the ONNX/TF-style frontend),
//! including a TE-unsupported operator (`Resize`) that falls back to a
//! library kernel (§9), and dumping the generated CUDA-like source.
//!
//! ```sh
//! cargo run --release --example custom_graph
//! ```

use souffle::{GraphPart, Souffle, SouffleOptions};
use souffle_frontend::{OpGraph, OpKind};
use souffle_te::UnaryOp;
use souffle_tensor::{DType, Shape};

fn main() {
    // A small detection-style head: conv -> relu -> resize (library op!)
    // -> conv -> softmax over channels.
    let mut g = OpGraph::new();
    let x = g
        .add(
            "image",
            OpKind::Input(Shape::new(vec![1, 3, 32, 32]), DType::F16),
            &[],
        )
        .expect("input");
    let w1 = g
        .add(
            "w1",
            OpKind::Weight(Shape::new(vec![8, 3, 3, 3]), DType::F16),
            &[],
        )
        .expect("w1");
    let c1 = g
        .add(
            "conv1",
            OpKind::Conv2d {
                stride: 1,
                pad: 1,
                groups: 1,
            },
            &[x, w1],
        )
        .expect("conv1");
    let r1 = g
        .add("relu1", OpKind::Unary(UnaryOp::Relu), &[c1])
        .expect("relu1");
    // `resize` is not expressible as a tensor expression: Souffle maps it
    // to a back-end library kernel and fuses around it.
    let up = g
        .add("upsample", OpKind::Resize { size: 64 }, &[r1])
        .expect("resize");
    let w2 = g
        .add(
            "w2",
            OpKind::Weight(Shape::new(vec![4, 8, 1, 1]), DType::F16),
            &[],
        )
        .expect("w2");
    let c2 = g
        .add(
            "conv2",
            OpKind::Conv2d {
                stride: 1,
                pad: 0,
                groups: 1,
            },
            &[up, w2],
        )
        .expect("conv2");
    let flat = g
        .add(
            "flatten",
            OpKind::Reshape(Shape::new(vec![4, 64 * 64])),
            &[c2],
        )
        .expect("reshape");
    let sm = g.add("probs", OpKind::Softmax, &[flat]).expect("softmax");
    g.mark_output(sm);

    println!("operator graph: {} nodes", g.len());
    for n in g.nodes() {
        println!(
            "  {:<10} {:<28} -> {} {}",
            n.name,
            format!("{:?}", n.kind).chars().take(28).collect::<String>(),
            n.shape,
            if n.kind.te_expressible() {
                ""
            } else {
                "  [library fallback]"
            }
        );
    }

    let souffle = Souffle::new(SouffleOptions::full());
    let compiled = souffle.compile_graph(&g).expect("graph compiles");
    println!(
        "\ncompiled: {} kernels total, {} of them library calls",
        compiled.num_kernels(),
        compiled.num_library_kernels()
    );
    let profile = souffle.simulate_graph(&compiled);
    println!(
        "simulated: {:.1} us, {:.2} MB traffic\n",
        profile.total_time_s() * 1e6,
        profile.global_transfer_bytes() as f64 / 1e6
    );

    // Show the generated source of the first Souffle-compiled segment.
    for part in &compiled.parts {
        if let GraphPart::Te(segment) = part {
            println!("--- generated CUDA-like source (first segment) ---");
            let src = segment.emit_cuda();
            for line in src.lines().take(30) {
                println!("{line}");
            }
            println!("...");
            break;
        }
    }
}
