//! The §8.4 LSTM case study as a runnable example: wavefront execution
//! (Rammer) vs Souffle's single grid-synchronized kernel with on-chip
//! weight reuse.
//!
//! ```sh
//! cargo run --release --example lstm_fusion
//! ```

use souffle::{Souffle, SouffleOptions};
use souffle_baselines::{RammerStrategy, Strategy, StrategyContext};
use souffle_frontend::{build_model, Model, ModelConfig};
use souffle_gpusim::simulate;
use souffle_sched::GpuSpec;

fn main() {
    let program = build_model(Model::Lstm, ModelConfig::Paper);
    println!(
        "LSTM: 10 cells x 100 steps unrolled -> {} TEs ({} GEMVs)",
        program.num_tes(),
        program.tes().iter().filter(|t| t.is_reduction()).count()
    );

    // Rammer: wavefront co-scheduling, one kernel per dependence level.
    let spec = GpuSpec::a100();
    let ctx = StrategyContext::new(&program, &spec);
    let rammer_groups = RammerStrategy.group(&ctx);
    let rammer = RammerStrategy.compile(&ctx);
    let rammer_prof = simulate(&rammer.kernels, &RammerStrategy.sim_config());
    println!(
        "\nRammer: {} wavefront kernels (first wave has {} independent rTasks)",
        rammer_groups.len(),
        rammer_groups[0].len()
    );
    println!(
        "  {:.3} ms, {:.1} MB global traffic (weights reloaded every wave)",
        rammer_prof.total_time_ms(),
        rammer_prof.global_transfer_bytes() as f64 / 1e6
    );

    // Souffle: horizontal transformation packs the wavefront GEMVs, the
    // partitioner keeps the whole model in one kernel, and the LRU pass
    // pins each cell's weights on-chip across all 100 time steps.
    let souffle = Souffle::new(SouffleOptions::full());
    let (compiled, prof) = souffle.run(&program);
    println!(
        "\nSouffle: {} kernel(s), {} grid syncs",
        compiled.num_kernels(),
        prof.grid_syncs()
    );
    println!(
        "  horizontal groups merged: {}; loads eliminated by LRU reuse: {} ({:.1} MB)",
        compiled.stats.transform.horizontal_groups,
        compiled.stats.reuse.loads_eliminated,
        compiled.stats.reuse.bytes_saved as f64 / 1e6
    );
    println!(
        "  {:.3} ms, {:.1} MB global traffic",
        prof.total_time_ms(),
        prof.global_transfer_bytes() as f64 / 1e6
    );
    println!(
        "\nSpeedup over Rammer: {:.1}x; traffic reduction: {:.0}x (paper: 2.2x and ~90x)",
        rammer_prof.total_time_s() / prof.total_time_s(),
        rammer_prof.global_transfer_bytes() as f64 / prof.global_transfer_bytes() as f64
    );
}
