//! The TE layer exercised with testkit-generated programs: every random
//! well-formed program must validate, evaluate deterministically, and
//! produce exactly the outputs it declares.

use souffle_te::interp::eval_with_random_inputs;
use souffle_testkit::teprog::gen_spec;
use souffle_testkit::{forall, tk_assert, tk_assert_eq, Config};

forall!(
    generated_programs_validate_and_evaluate,
    Config::with_cases(48),
    |rng| (gen_spec(rng, 10), rng.u64_in(0..1000)),
    |(spec, seed)| {
        if spec.ops.is_empty() {
            return Ok(()); // shrunk-out-of-domain candidate
        }
        let p = spec.build();
        tk_assert!(p.validate().is_ok(), "invalid program from {spec:?}");
        let outs = eval_with_random_inputs(&p, *seed).map_err(|e| format!("eval: {e}"))?;
        tk_assert_eq!(outs.len(), p.outputs().len());
        for id in p.outputs() {
            let t = outs
                .get(&id)
                .ok_or_else(|| format!("output {id} missing from eval result"))?;
            tk_assert_eq!(t.shape(), &p.tensor(id).shape);
        }
        Ok(())
    }
);

forall!(
    interpreter_is_deterministic_in_seed,
    Config::with_cases(24),
    |rng| (gen_spec(rng, 8), rng.u64_in(0..1000)),
    |(spec, seed)| {
        if spec.ops.is_empty() {
            return Ok(());
        }
        let p = spec.build();
        let a = eval_with_random_inputs(&p, *seed).map_err(|e| e.to_string())?;
        let b = eval_with_random_inputs(&p, *seed).map_err(|e| e.to_string())?;
        for (id, t) in &a {
            tk_assert_eq!(t, &b[id], "output {} differs across identical runs", id);
        }
        Ok(())
    }
);
