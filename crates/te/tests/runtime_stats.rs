//! Regression tests for `Runtime::take_stats` windowing and the traced
//! evaluation path.
//!
//! The arena bug this pins down: `BufferArena` counters used to
//! accumulate across `eval` calls with no reset, so any per-evaluation
//! reading (including tracer counters) double-counted every earlier run.
//! `take_stats` must return exactly one evaluation's worth of counters
//! per call, identically for every pool size.

use souffle_te::interp::{eval_program, random_bindings};
use souffle_te::{builders, compile_program, PoolStats, Runtime, TeProgram};
use souffle_tensor::{DType, Shape};
use souffle_trace::Tracer;

/// mm -> (sigmoid, exp) -> add: three wavefront levels, four TEs.
fn diamond() -> TeProgram {
    let mut p = TeProgram::new();
    let a = p.add_input("A", Shape::new(vec![12, 16]), DType::F32);
    let w = p.add_weight("W", Shape::new(vec![16, 8]), DType::F32);
    let mm = builders::matmul(&mut p, "mm", a, w);
    let s = builders::sigmoid(&mut p, "sig", mm);
    let e = builders::exp(&mut p, "exp", mm);
    let out = builders::add(&mut p, "add", s, e);
    p.mark_output(out);
    p.validate().unwrap();
    p
}

#[test]
fn take_stats_windows_per_eval_across_pool_sizes() {
    let p = diamond();
    let cp = compile_program(&p);
    let bindings = random_bindings(&p, 3);
    for threads in [1, 2, 8] {
        let rt = Runtime::with_threads(threads);

        // Eval 1: mm/sig/exp are fresh allocations; `add` reuses mm's
        // buffer (freed after level 1, before level 2 acquires).
        rt.eval(&cp, &bindings).unwrap();
        let first = rt.take_stats();
        assert_eq!(
            (first.arena.allocated, first.arena.reused),
            (3, 1),
            "threads={threads}: first eval allocates 3, reuses 1"
        );
        // sig+exp (96 f32 each) are parked between evals.
        assert!(
            first.arena.high_water_bytes >= 2 * 96 * 4,
            "threads={threads}: high water {} too low",
            first.arena.high_water_bytes
        );

        // Evals 2 and 3: steady state — every window reports the *same*
        // counts, which is exactly what the accumulate-forever bug broke.
        let mut windows = Vec::new();
        for _ in 0..2 {
            rt.eval(&cp, &bindings).unwrap();
            windows.push(rt.take_stats());
        }
        for w in &windows {
            assert_eq!(
                (w.arena.reused, w.arena.allocated),
                (3, 1),
                "threads={threads}: steady-state eval reuses 3, allocates 1 (output escapes)"
            );
            assert_eq!(
                w.arena.high_water_bytes, windows[0].arena.high_water_bytes,
                "threads={threads}: steady-state high water must not grow"
            );
        }

        if threads == 1 {
            assert_eq!(first.pool, PoolStats::default(), "no pool, no pool stats");
        }
    }
}

#[test]
fn take_stats_drains_pool_counters() {
    let p = diamond();
    let cp = compile_program(&p);
    let bindings = random_bindings(&p, 4);
    let rt = Runtime::with_threads(4);
    rt.eval(&cp, &bindings).unwrap();
    let first = rt.take_stats();
    // Level 1 (sig ‖ exp) submits through the pool.
    assert!(first.pool.tasks >= 2, "pooled level must submit tasks");
    assert!(first.pool.max_queue_depth >= 1);
    // Window semantics: an immediate second take sees nothing.
    let empty = rt.take_stats();
    assert_eq!(empty.pool, PoolStats::default());
    assert_eq!((empty.arena.reused, empty.arena.allocated), (0, 0));
}

#[test]
fn traced_eval_is_bit_identical_and_well_formed() {
    let p = diamond();
    let cp = compile_program(&p);
    let bindings = random_bindings(&p, 5);
    let want = eval_program(&p, &bindings).unwrap();
    for threads in [1, 2, 8] {
        let rt = Runtime::with_threads(threads);
        let tracer = Tracer::new();
        let got = rt.eval_traced(&cp, &bindings, &tracer, None).unwrap();
        for id in p.outputs() {
            for (a, b) in want[&id].data().iter().zip(got[&id].data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
        let trace = tracer.take();
        trace
            .well_formed()
            .unwrap_or_else(|e| panic!("threads={threads}: {e}"));
        // Structure: eval → level:0..2 → 4 te spans, independent of pool
        // size.
        assert_eq!(
            trace.structure(),
            "eval\n  level:0\n    te:mm\n  level:1\n    te:sig\n    te:exp\n  level:2\n    te:add\n",
            "threads={threads}"
        );
    }
}

#[test]
fn disabled_tracer_records_nothing() {
    let p = diamond();
    let cp = compile_program(&p);
    let bindings = random_bindings(&p, 6);
    let rt = Runtime::with_threads(2);
    let tracer = Tracer::disabled();
    rt.eval_traced(&cp, &bindings, &tracer, None).unwrap();
    assert!(tracer.take().spans.is_empty());
}
