//! Evaluator agreement for inline-fold (`ScalarExpr::Reduce`) bodies: the
//! tree-walking interpreter and the compiled VM must produce bit-identical
//! results, and a fused softmax body (fold in place of a materialized
//! denominator) must be bit-identical to the unfused TE chain.

use souffle_affine::IndexExpr;
use souffle_te::interp::{eval_program, random_bindings};
use souffle_te::{
    builders, compile_program, ReduceOp, ScalarExpr, TeProgram, TensorExpr, TensorKind, UnaryOp,
};
use souffle_tensor::{DType, Shape};

/// `out[i, j] = exp(A[i, j]) / fold_sum(k < n, exp(A[i, k]))` — the shape
/// reduction fusion produces for a softmax-style chain (without the
/// numerical max-shift, which is irrelevant to evaluator agreement).
fn fused_softmax(rows: i64, cols: i64) -> TeProgram {
    let mut p = TeProgram::new();
    let a = p.add_input("A", Shape::new(vec![rows, cols]), DType::F32);
    let out = p.add_tensor(
        "sm",
        Shape::new(vec![rows, cols]),
        DType::F32,
        TensorKind::Output,
    );
    // Binder sits above the 2 free iteration variables.
    let num = ScalarExpr::unary(
        UnaryOp::Exp,
        ScalarExpr::input(0, vec![IndexExpr::var(0), IndexExpr::var(1)]),
    );
    let den = ScalarExpr::fold(
        ReduceOp::Sum,
        2,
        cols,
        ScalarExpr::unary(
            UnaryOp::Exp,
            ScalarExpr::input(0, vec![IndexExpr::var(0), IndexExpr::var(2)]),
        ),
    );
    p.push_te(TensorExpr {
        name: "sm".into(),
        output: out,
        inputs: vec![a],
        reduce: vec![],
        reduce_op: None,
        body: ScalarExpr::binary(souffle_te::BinaryOp::Div, num, den),
    });
    p.validate().expect("fused softmax validates");
    p
}

/// The same function as an unfused two-TE chain: a materialized row-sum
/// reduction, then the element-wise divide.
fn unfused_softmax(rows: i64, cols: i64) -> TeProgram {
    let mut p = TeProgram::new();
    let a = p.add_input("A", Shape::new(vec![rows, cols]), DType::F32);
    let e = builders::exp(&mut p, "e", a);
    let s = builders::reduce_last(&mut p, "s", ReduceOp::Sum, e);
    let den = p.tensor(s).shape.clone();
    assert_eq!(den.rank(), 1);
    let out = p.add_tensor(
        "sm",
        Shape::new(vec![rows, cols]),
        DType::F32,
        TensorKind::Output,
    );
    p.push_te(TensorExpr {
        name: "sm".into(),
        output: out,
        inputs: vec![e, s],
        reduce: vec![],
        reduce_op: None,
        body: ScalarExpr::binary(
            souffle_te::BinaryOp::Div,
            ScalarExpr::input(0, vec![IndexExpr::var(0), IndexExpr::var(1)]),
            ScalarExpr::input(1, vec![IndexExpr::var(0)]),
        ),
    });
    p.mark_output(out);
    p.validate().expect("unfused softmax validates");
    p
}

#[test]
fn fold_interp_and_vm_agree_bitwise() {
    for (rows, cols) in [(1, 1), (3, 7), (8, 33), (64, 64)] {
        let p = fused_softmax(rows, cols);
        let binds = random_bindings(&p, 42);
        let want = eval_program(&p, &binds).expect("interp");
        let got = compile_program(&p).eval(&binds).expect("vm");
        for id in p.outputs() {
            for (x, y) in want[&id].data().iter().zip(got[&id].data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{rows}x{cols}");
            }
        }
    }
}

#[test]
fn fused_fold_matches_unfused_chain_bitwise() {
    for (rows, cols) in [(2, 5), (16, 16), (64, 48)] {
        let fused = fused_softmax(rows, cols);
        let unfused = unfused_softmax(rows, cols);
        let binds = random_bindings(&fused, 7);
        let got = compile_program(&fused).eval(&binds).expect("fused vm");
        let want = compile_program(&unfused).eval(&binds).expect("unfused vm");
        let fid = fused.outputs()[0];
        let uid = *unfused.outputs().last().expect("output");
        for (x, y) in want[&uid].data().iter().zip(got[&fid].data()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{rows}x{cols}");
        }
    }
}

#[test]
fn nested_folds_evaluate_correctly() {
    // out[i] = fold_sum(j < n, A[i, j] - fold_max(k < n, A[i, k]) )
    // The inner fold is row-invariant; the outer fold nests it.
    let (rows, cols) = (5, 9);
    let mut p = TeProgram::new();
    let a = p.add_input("A", Shape::new(vec![rows, cols]), DType::F32);
    let out = p.add_tensor("o", Shape::new(vec![rows]), DType::F32, TensorKind::Output);
    let inner = ScalarExpr::fold(
        ReduceOp::Max,
        2,
        cols,
        ScalarExpr::input(0, vec![IndexExpr::var(0), IndexExpr::var(2)]),
    );
    let body = ScalarExpr::fold(
        ReduceOp::Sum,
        1,
        cols,
        ScalarExpr::binary(
            souffle_te::BinaryOp::Sub,
            ScalarExpr::input(0, vec![IndexExpr::var(0), IndexExpr::var(1)]),
            inner,
        ),
    );
    p.push_te(TensorExpr {
        name: "o".into(),
        output: out,
        inputs: vec![a],
        reduce: vec![],
        reduce_op: None,
        body,
    });
    p.validate().expect("nested folds validate");
    let binds = random_bindings(&p, 11);
    let want = eval_program(&p, &binds).expect("interp");
    let got = compile_program(&p).eval(&binds).expect("vm");
    let id = p.outputs()[0];
    // Reference by hand.
    let data = binds[&p.free_tensors()[0]].data();
    for i in 0..rows as usize {
        let row = &data[i * cols as usize..(i + 1) * cols as usize];
        let m = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let s: f32 = row.iter().fold(0.0, |a, &b| a + (b - m));
        assert_eq!(want[&id].data()[i].to_bits(), got[&id].data()[i].to_bits());
        let err = (got[&id].data()[i] - s).abs();
        assert!(err <= 1e-4 * s.abs().max(1.0), "row {i}: {err}");
    }
}
