//! Tensor expressions and their dependence metadata.

use crate::expr::ScalarExpr;
use crate::program::TensorId;
use souffle_affine::{DependenceKind, IndexMap, IterDomain, Relation};
use souffle_tensor::Shape;
use std::fmt;

/// Identifier of a tensor expression within a [`crate::TeProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TeId(pub usize);

impl fmt::Display for TeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TE{}", self.0)
    }
}

/// Reduction combinators supported by TEs with reduction axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Sum-reduction (GEMM, conv, reduce_sum, …).
    Sum,
    /// Max-reduction (softmax max, max-pool, …).
    Max,
    /// Min-reduction.
    Min,
}

impl ReduceOp {
    /// The identity element of the reduction.
    pub fn init(self) -> f32 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Max => f32::NEG_INFINITY,
            ReduceOp::Min => f32::INFINITY,
        }
    }

    /// Combines an accumulator with a new value.
    pub fn combine(self, acc: f32, x: f32) -> f32 {
        match self {
            ReduceOp::Sum => acc + x,
            ReduceOp::Max => acc.max(x),
            ReduceOp::Min => acc.min(x),
        }
    }

    /// Whether partial results can be combined with device atomics
    /// (the paper's two-phase reduction uses `atomicAdd`, §2.3; max/min have
    /// atomic equivalents on the simulated device as well).
    pub fn has_atomic(self) -> bool {
        true
    }
}

/// A single tensor expression: `output[i0..in] = reduce(body)` over the
/// reduction axes, or `output[i0..in] = body` when no axes are present.
///
/// Index variables in `body` are `0..rank` (iteration variables implied by
/// the output shape) followed by `rank..rank+reduce.len()` (reduction
/// variables).
#[derive(Debug, Clone, PartialEq)]
pub struct TensorExpr {
    /// Human-readable name (e.g. `"TE0"`, `"bert.l3.qkv_matmul"`).
    pub name: String,
    /// The tensor this TE defines.
    pub output: TensorId,
    /// Input tensors, referenced positionally by `ScalarExpr::Input`.
    pub inputs: Vec<TensorId>,
    /// Extents of the reduction axes (empty for element-wise TEs).
    pub reduce: Vec<i64>,
    /// Reduction combinator; `None` iff `reduce` is empty.
    pub reduce_op: Option<ReduceOp>,
    /// The scalar body.
    pub body: ScalarExpr,
}

impl TensorExpr {
    /// Dependence classification (§5.2): TEs with a reduction axis — or an
    /// inline fold left by reduction fusion — are *one-relies-on-many*; all
    /// others are *one-relies-on-one*.
    pub fn dependence_kind(&self) -> DependenceKind {
        if self.reduce.is_empty() && !self.body.has_fold() {
            DependenceKind::OneReliesOnOne
        } else {
            DependenceKind::OneReliesOnMany
        }
    }

    /// Whether this TE has a reduction axis.
    pub fn is_reduction(&self) -> bool {
        !self.reduce.is_empty()
    }

    /// Number of points in the output iteration space.
    pub fn output_points(&self, output_shape: &Shape) -> i64 {
        output_shape.numel()
    }

    /// Number of body evaluations (output points × reduction points).
    pub fn total_points(&self, output_shape: &Shape) -> i64 {
        output_shape.numel() * self.reduce.iter().product::<i64>()
    }

    /// Arithmetic instructions per full output computation. Inline folds
    /// (reduction fusion) are invariant along the innermost output axis by
    /// construction, and both the VM's per-slice fold cache and a tiled
    /// kernel evaluate them once per slice — so their arithmetic is priced
    /// per slice, not per point (pricing recompute per point is what made
    /// a fused softmax look compute-bound at paper scale).
    pub fn flops(&self, output_shape: &Shape) -> u64 {
        let (per_point, per_slice) = self.body.arith_cost_split();
        let per_point = per_point.max(1);
        let reduce_combine: u64 = u64::from(self.is_reduction());
        let total = self.total_points(output_shape) as u64;
        let inner = output_shape.dims().last().copied().unwrap_or(1).max(1) as u64;
        (per_point + reduce_combine) * total + per_slice * total.div_ceil(inner)
    }

    /// The compute/memory ratio from §5.3: arithmetic instructions divided
    /// by memory accesses (input reads + one output write per point).
    pub fn compute_memory_ratio(&self, output_shape: &Shape) -> f64 {
        let total = self.total_points(output_shape) as f64;
        let arith = (self.body.arith_cost().max(1) as f64) * total;
        let reads = (self.body.access_cost() as f64) * total;
        let writes = output_shape.numel() as f64;
        arith / (reads + writes).max(1.0)
    }

    /// Element-wise dependence relations, one per access in the body, in
    /// the paper's polyhedral notation (§5.2). Accesses with non-index
    /// operands (none in practice) are skipped.
    pub fn relations(&self, output_shape: &Shape) -> Vec<(usize, Relation)> {
        let domain = IterDomain::new(output_shape.dims().to_vec());
        let rank = output_shape.rank();
        let n_free = rank + self.reduce.len();
        // Fold binders introduced by reduction fusion live above the free
        // variables; treat them as extra reduction axes so the relation's
        // footprint reflects the recomputed slice.
        let n_all = n_free.max(self.body.max_var().map_or(0, |m| m + 1));
        let mut extents = self.reduce.clone();
        extents.resize(n_all - rank, 1);
        for (var, extent) in self.body.collect_folds() {
            if var >= n_free {
                extents[var - rank] = extent;
            }
        }
        self.body
            .accesses()
            .into_iter()
            .map(|(operand, indices)| {
                let map = IndexMap::new(n_all, indices.to_vec());
                (operand, Relation::new(domain.clone(), map, extents.clone()))
            })
            .collect()
    }

    /// For one-relies-on-one TEs whose body is a *pure view* of a single
    /// input (no arithmetic), the index map of the view. Used to recognise
    /// memory operators like reshape/transpose/slice.
    pub fn view_map(&self, output_rank: usize) -> Option<IndexMap> {
        if self.is_reduction() {
            return None;
        }
        match &self.body {
            ScalarExpr::Input { indices, .. } => Some(IndexMap::new(output_rank, indices.clone())),
            _ => None,
        }
    }
}

impl fmt::Display for TensorExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: t{} = ", self.name, self.output.0)?;
        if let Some(op) = self.reduce_op {
            write!(f, "{op:?}[{:?}] ", self.reduce)?;
        }
        write!(f, "{}", self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinaryOp, ScalarExpr};
    use souffle_affine::IndexExpr;

    fn gemm_te() -> TensorExpr {
        // O[i,j] = sum_rk I[i,rk] * W[rk,j]
        TensorExpr {
            name: "gemm".into(),
            output: TensorId(2),
            inputs: vec![TensorId(0), TensorId(1)],
            reduce: vec![64],
            reduce_op: Some(ReduceOp::Sum),
            body: ScalarExpr::binary(
                BinaryOp::Mul,
                ScalarExpr::input(0, vec![IndexExpr::var(0), IndexExpr::var(2)]),
                ScalarExpr::input(1, vec![IndexExpr::var(2), IndexExpr::var(1)]),
            ),
        }
    }

    #[test]
    fn reduce_op_identities() {
        assert_eq!(ReduceOp::Sum.init(), 0.0);
        assert_eq!(ReduceOp::Max.init(), f32::NEG_INFINITY);
        assert_eq!(ReduceOp::Sum.combine(1.0, 2.0), 3.0);
        assert_eq!(ReduceOp::Max.combine(1.0, 2.0), 2.0);
        assert_eq!(ReduceOp::Min.combine(1.0, 2.0), 1.0);
    }

    #[test]
    fn gemm_is_one_relies_on_many_and_compute_intensive() {
        let te = gemm_te();
        let shape = Shape::new(vec![64, 64]);
        assert_eq!(te.dependence_kind(), DependenceKind::OneReliesOnMany);
        // ratio: 1 mul + 1 reduce-add per point over 2 reads + amortized write
        assert!(te.compute_memory_ratio(&shape) < 3.0); // mul-only body is ~0.5/access
        assert_eq!(te.total_points(&shape), 64 * 64 * 64);
        assert!(te.flops(&shape) >= 2 * 64 * 64 * 64);
    }

    #[test]
    fn relations_expose_reduction_region() {
        let te = gemm_te();
        let shape = Shape::new(vec![64, 64]);
        let rels = te.relations(&shape);
        assert_eq!(rels.len(), 2);
        let (operand, r) = &rels[0];
        assert_eq!(*operand, 0);
        assert_eq!(r.footprint_per_output(), 64);
        assert_eq!(r.sources_of(&[1, 2])[0], vec![1, 0]);
    }

    #[test]
    fn view_map_recognises_pure_views() {
        // transpose view: O[i,j] = A[j,i]
        let te = TensorExpr {
            name: "transpose".into(),
            output: TensorId(1),
            inputs: vec![TensorId(0)],
            reduce: vec![],
            reduce_op: None,
            body: ScalarExpr::input(0, vec![IndexExpr::var(1), IndexExpr::var(0)]),
        };
        let m = te.view_map(2).unwrap();
        assert_eq!(m.eval(&[3, 5]), vec![5, 3]);
        assert!(gemm_te().view_map(2).is_none());
    }

    #[test]
    fn elementwise_dependence_kind() {
        let te = TensorExpr {
            name: "exp".into(),
            output: TensorId(1),
            inputs: vec![TensorId(0)],
            reduce: vec![],
            reduce_op: None,
            body: ScalarExpr::unary(
                crate::UnaryOp::Exp,
                ScalarExpr::input(0, vec![IndexExpr::var(0)]),
            ),
        };
        assert_eq!(te.dependence_kind(), DependenceKind::OneReliesOnOne);
        assert!(!te.is_reduction());
    }
}
