//! Execution of compiled TE programs.
//!
//! The VM runs each TE's bytecode once per point of the output iteration
//! space. Two things make it fast relative to the naive interpreter while
//! keeping results bit-identical:
//!
//! - **Strength-reduced indexing.** Every affine operand access carries a
//!   flat offset that the odometer loops update incrementally (one add per
//!   loop step, one subtract per wrap) instead of re-evaluating index
//!   expressions per element. The arithmetic is exact integer math, so the
//!   element loaded is exactly the one the interpreter loads.
//! - **Specialized body shapes.** Bodies the compiler recognizes (a lone
//!   affine load, or the `a * b` inner-product body of matmul and unpadded
//!   conv) skip instruction dispatch entirely and run as tight loops over
//!   local offset accumulators — the same loads and float ops in the same
//!   order, so no result bit changes.
//! - **Wavefront threading.** Execution is handled by
//!   [`crate::runtime`]: independent TEs (same dependency level) run
//!   concurrently, and each TE's flat output range is split into
//!   contiguous chunks submitted as stealable tasks to a persistent
//!   work-stealing pool, each task writing a disjoint `&mut [f32]` slice.
//!   Elements are computed independently in both evaluators, so the split
//!   cannot change any result bit. The thread count comes from
//!   `SOUFFLE_EVAL_THREADS` when set, otherwise from
//!   [`std::thread::available_parallelism`]; tiny iteration spaces run
//!   serially to avoid dispatch overhead.
//!
//! Floating-point evaluation order inside one element — including the
//! reduction combine order — is byte-for-byte the interpreter's, which is
//! what the `evaluator_equivalence` differential suite locks down.

use crate::compile::{BodyKind, CompiledProgram, CompiledTe, Instr};
use crate::interp::EvalError;
use crate::kernels::{self, ExecOpts, KernelSel};
use crate::program::TensorId;
use souffle_tensor::Tensor;
use std::collections::HashMap;

/// Environment variable overriding the evaluation thread count.
pub const THREADS_ENV: &str = "SOUFFLE_EVAL_THREADS";

/// Below this many body evaluations a TE (or chunk) is run serially:
/// dispatch cost would dominate.
pub(crate) const SERIAL_THRESHOLD: usize = 8192;

impl CompiledProgram {
    /// Evaluates the compiled program, mirroring
    /// [`crate::interp::eval_program`]: `bindings` must cover every free
    /// tensor, and the result maps each TE-produced tensor to its value
    /// (with the caller's non-output bindings dropped).
    ///
    /// # Errors
    ///
    /// Returns the same [`EvalError`]s as the interpreter: missing or
    /// mis-shaped bindings, and out-of-bounds reads on taken branches.
    ///
    /// Execution goes through the process-global wavefront
    /// [`crate::runtime::Runtime`] (persistent work-stealing pool); use an
    /// explicitly configured [`crate::runtime::Runtime`] for control over
    /// pool size and arena behavior plus an outputs-only result.
    pub fn eval(
        &self,
        bindings: &HashMap<TensorId, Tensor>,
    ) -> Result<HashMap<TensorId, Tensor>, EvalError> {
        crate::runtime::global().eval_keeping_intermediates(self, bindings)
    }
}

/// The explicit `SOUFFLE_EVAL_THREADS` override, if set and parseable
/// (clamped to at least 1). An explicit override is honored verbatim —
/// it is never capped at the detected machine parallelism.
pub(crate) fn env_threads() -> Option<usize> {
    std::env::var(THREADS_ENV)
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .map(|n| n.max(1))
}

/// The machine's available parallelism (1 when it cannot be queried).
pub(crate) fn detected_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Resolves the thread count: `SOUFFLE_EVAL_THREADS` if set (clamped to at
/// least 1), otherwise the machine's available parallelism.
pub fn thread_count() -> usize {
    env_threads().unwrap_or_else(detected_parallelism)
}

/// Evaluates output elements `start .. start + out.len()` (flat row-major
/// order) into `out`.
///
/// When `exec.kernels` is set and the compiler selected a specialized
/// kernel for this TE ([`crate::kernels`]), the monomorphized native loop
/// runs instead of the bytecode below; selection excludes every body that
/// can fail, so the kernel path is infallible and the error contract is
/// carried entirely by the bytecode path.
pub(crate) fn run_chunk(
    te: &CompiledTe,
    start: usize,
    out: &mut [f32],
    operands: &[&[f32]],
    exec: ExecOpts,
) -> Result<(), EvalError> {
    if exec.kernels && !matches!(te.tier, KernelSel::Fallback(_)) {
        kernels::run(te, start, out, operands, exec.fast_math);
        return Ok(());
    }
    let n_iter = te.out_shape.rank();
    let dims = te.out_shape.dims();
    let mut vars = vec![0i64; te.n_vars];
    let mut rem = start as i64;
    for axis in (0..n_iter).rev() {
        vars[axis] = rem % dims[axis];
        rem /= dims[axis];
    }
    let mut offsets: Vec<i64> = te
        .affine
        .iter()
        .map(|a| a.base + a.coeffs.iter().zip(&vars).map(|(c, v)| c * v).sum::<i64>())
        .collect();
    let mut regs = vec![0.0f32; te.n_regs];
    let mut fold_eval = FoldEval::new(te.folds.len());
    for slot in out.iter_mut() {
        let value = if te.reduce.is_empty() {
            match te.kind {
                // Specialized bodies do the exact loads and float ops the
                // bytecode would, in the same order — only the dispatch is
                // gone — so every result bit is unchanged.
                BodyKind::AffineLoad { access } => {
                    operands[te.affine[access].operand][offsets[access] as usize]
                }
                BodyKind::MulAffine { a, b } => {
                    operands[te.affine[a].operand][offsets[a] as usize]
                        * operands[te.affine[b].operand][offsets[b] as usize]
                }
                BodyKind::Generic => run_body(
                    te,
                    &mut regs,
                    &mut vars,
                    &mut offsets,
                    operands,
                    &mut fold_eval,
                )?,
            }
        } else {
            let op = te.reduce_op.expect("validated reduction");
            match (te.reduce.as_slice(), &te.kind) {
                // Single-axis inner product (matmul / unpadded conv): a
                // tight multiply-accumulate over local offset copies. The
                // loop visits the same elements in the same order as the
                // odometer below, and `op.init()` + `combine` give the
                // identical float sequence.
                (&[ext], &BodyKind::MulAffine { a, b }) => {
                    let (aa, ab) = (&te.affine[a], &te.affine[b]);
                    let (da, db) = (operands[aa.operand], operands[ab.operand]);
                    let (mut oa, mut ob) = (offsets[a], offsets[b]);
                    let (ca, cb) = (aa.coeffs[n_iter], ab.coeffs[n_iter]);
                    match op {
                        crate::te::ReduceOp::Sum => {
                            let mut acc = op.init();
                            for _ in 0..ext {
                                acc += da[oa as usize] * db[ob as usize];
                                oa += ca;
                                ob += cb;
                            }
                            acc
                        }
                        _ => {
                            let mut acc = op.init();
                            for _ in 0..ext {
                                acc = op.combine(acc, da[oa as usize] * db[ob as usize]);
                                oa += ca;
                                ob += cb;
                            }
                            acc
                        }
                    }
                }
                // Single-axis single-load reduction (sum/max/min over an
                // axis, e.g. softmax's row max and row sum).
                (&[ext], &BodyKind::AffineLoad { access }) => {
                    let aa = &te.affine[access];
                    let da = operands[aa.operand];
                    let mut oa = offsets[access];
                    let ca = aa.coeffs[n_iter];
                    let mut acc = op.init();
                    for _ in 0..ext {
                        acc = op.combine(acc, da[oa as usize]);
                        oa += ca;
                    }
                    acc
                }
                _ => {
                    let mut acc = op.init();
                    'reduce: loop {
                        let v = match te.kind {
                            BodyKind::AffineLoad { access } => {
                                operands[te.affine[access].operand][offsets[access] as usize]
                            }
                            BodyKind::MulAffine { a, b } => {
                                operands[te.affine[a].operand][offsets[a] as usize]
                                    * operands[te.affine[b].operand][offsets[b] as usize]
                            }
                            BodyKind::Generic => run_body(
                                te,
                                &mut regs,
                                &mut vars,
                                &mut offsets,
                                operands,
                                &mut fold_eval,
                            )?,
                        };
                        acc = op.combine(acc, v);
                        let mut axis = te.reduce.len();
                        loop {
                            if axis == 0 {
                                break 'reduce; // reduction vars back at 0, offsets restored
                            }
                            axis -= 1;
                            let vi = n_iter + axis;
                            vars[vi] += 1;
                            if !te.folds.is_empty() {
                                fold_eval.invalidate(te, vi);
                            }
                            if vars[vi] < te.reduce[axis] {
                                for (off, a) in offsets.iter_mut().zip(&te.affine) {
                                    *off += a.coeffs[vi];
                                }
                                break;
                            }
                            vars[vi] = 0;
                            for (off, a) in offsets.iter_mut().zip(&te.affine) {
                                *off -= a.coeffs[vi] * (te.reduce[axis] - 1);
                            }
                        }
                    }
                    acc
                }
            }
        };
        *slot = value;
        // Advance the iteration odometer, keeping affine offsets in step.
        let mut axis = n_iter;
        loop {
            if axis == 0 {
                break; // iteration space exhausted (last element of last chunk)
            }
            axis -= 1;
            vars[axis] += 1;
            if !te.folds.is_empty() {
                fold_eval.invalidate(te, axis);
            }
            if vars[axis] < dims[axis] {
                for (off, a) in offsets.iter_mut().zip(&te.affine) {
                    *off += a.coeffs[axis];
                }
                break;
            }
            vars[axis] = 0;
            for (off, a) in offsets.iter_mut().zip(&te.affine) {
                *off -= a.coeffs[axis] * (dims[axis] - 1);
            }
        }
    }
    Ok(())
}

/// Per-fold value cache for [`Instr::Fold`] execution. A fold's combined
/// value only depends on its `deps` variables, so the cached value stays
/// valid while the odometer walks variables outside that set — the
/// row-invariant folds left by reduction fusion (softmax denominator,
/// layernorm mean/var) are recomputed once per slice instead of once per
/// element. A cache hit returns the exact bits recomputation would
/// produce (same code, same variable values), so caching cannot change
/// any result bit.
pub(crate) struct FoldEval {
    vals: Vec<f32>,
    valid: Vec<bool>,
}

impl FoldEval {
    pub(crate) fn new(n: usize) -> Self {
        FoldEval {
            vals: vec![0.0; n],
            valid: vec![false; n],
        }
    }

    /// Drops cached values of every fold whose dependency set contains
    /// `var` (called when the odometer or an enclosing fold steps it).
    #[inline]
    pub(crate) fn invalidate(&mut self, te: &CompiledTe, var: usize) {
        for (i, f) in te.folds.iter().enumerate() {
            if f.deps.contains(&var) {
                self.valid[i] = false;
            }
        }
    }
}

/// One execution of the body bytecode at the current loop point. Returns
/// the value of the result register. `vars`/`offsets` are mutated only
/// transiently by inline fold loops and are restored before returning.
#[inline]
pub(crate) fn run_body(
    te: &CompiledTe,
    regs: &mut [f32],
    vars: &mut [i64],
    offsets: &mut [i64],
    operands: &[&[f32]],
    fold_eval: &mut FoldEval,
) -> Result<f32, EvalError> {
    run_code(
        te, &te.code, te.result, regs, vars, offsets, operands, fold_eval,
    )
}

/// Executes one code sequence (the TE body or a fold body) and returns the
/// value of `result`.
#[allow(clippy::too_many_arguments)]
fn run_code(
    te: &CompiledTe,
    code: &[Instr],
    result: u32,
    regs: &mut [f32],
    vars: &mut [i64],
    offsets: &mut [i64],
    operands: &[&[f32]],
    fold_eval: &mut FoldEval,
) -> Result<f32, EvalError> {
    let mut pc = 0usize;
    while pc < code.len() {
        match &code[pc] {
            Instr::Const { dst, value } => {
                regs[*dst as usize] = *value;
                pc += 1;
            }
            Instr::LoadAffine { dst, access } => {
                let a = &te.affine[*access as usize];
                regs[*dst as usize] = operands[a.operand][offsets[*access as usize] as usize];
                pc += 1;
            }
            Instr::LoadGeneric { dst, access } => {
                let g = &te.generic[*access as usize];
                if g.indices.len() != g.dims.len() {
                    return Err(oob(te, g, vars));
                }
                let mut flat = 0i64;
                for (idx, &d) in g.indices.iter().zip(&g.dims) {
                    let i = idx.eval(vars);
                    if !(0..d).contains(&i) {
                        return Err(oob(te, g, vars));
                    }
                    flat = flat * d + i;
                }
                regs[*dst as usize] = operands[g.operand][flat as usize];
                pc += 1;
            }
            Instr::Index { dst, expr } => {
                regs[*dst as usize] = te.index_exprs[*expr as usize].eval(vars) as f32;
                pc += 1;
            }
            Instr::Unary { dst, op, src } => {
                regs[*dst as usize] = op.apply(regs[*src as usize]);
                pc += 1;
            }
            Instr::Binary { dst, op, lhs, rhs } => {
                regs[*dst as usize] = op.apply(regs[*lhs as usize], regs[*rhs as usize]);
                pc += 1;
            }
            Instr::JumpIfNot { cond, target } => {
                if te.conds[*cond as usize].eval(vars) {
                    pc += 1;
                } else {
                    pc = *target as usize;
                }
            }
            Instr::Jump { target } => pc = *target as usize,
            Instr::Fold { dst, fold } => {
                let fi = *fold as usize;
                let value = if fold_eval.valid[fi] {
                    fold_eval.vals[fi]
                } else {
                    let f = &te.folds[fi];
                    let mut acc = f.op.init();
                    for _ in 0..f.extent {
                        // Nested folds that read this binder must be
                        // recomputed each trip (and stale values from a
                        // previous evaluation discarded on the first).
                        fold_eval.invalidate(te, f.var);
                        let v = run_code(
                            te, &f.code, f.result, regs, vars, offsets, operands, fold_eval,
                        )?;
                        acc = f.op.combine(acc, v);
                        vars[f.var] += 1;
                        for (off, a) in offsets.iter_mut().zip(&te.affine) {
                            *off += a.coeffs[f.var];
                        }
                    }
                    // Restore the binder and offsets to their pre-loop state.
                    vars[f.var] = 0;
                    for (off, a) in offsets.iter_mut().zip(&te.affine) {
                        *off -= a.coeffs[f.var] * f.extent;
                    }
                    fold_eval.invalidate(te, f.var);
                    fold_eval.vals[fi] = acc;
                    fold_eval.valid[fi] = true;
                    acc
                };
                regs[*dst as usize] = value;
                pc += 1;
            }
        }
    }
    Ok(regs[result as usize])
}

/// Builds the structured out-of-bounds error for a failing generic access
/// by re-deriving the full evaluated index vector, then delegating to the
/// shared [`EvalError::oob_access`] constructor — the single construction
/// site both evaluator tiers use, so their errors cannot drift.
fn oob(te: &CompiledTe, g: &crate::compile::GenericAccess, vars: &[i64]) -> EvalError {
    EvalError::oob_access(
        &te.name,
        g.operand,
        g.indices.iter().map(|e| e.eval(vars)).collect(),
        &g.dims,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::compile::compile_program;
    use crate::interp::{eval_program, random_bindings};
    use crate::program::TeProgram;
    use souffle_tensor::{DType, Shape};

    fn assert_bit_equal(p: &TeProgram, seed: u64) {
        let bindings = random_bindings(p, seed);
        let want = eval_program(p, &bindings).unwrap();
        let got = compile_program(p).eval(&bindings).unwrap();
        assert_eq!(want.len(), got.len());
        for (id, w) in &want {
            let g = &got[id];
            assert_eq!(w.shape(), g.shape());
            for (a, b) in w.data().iter().zip(g.data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{id} diverged");
            }
        }
    }

    #[test]
    fn matmul_matches_interpreter() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![5, 7]), DType::F32);
        let b = p.add_weight("B", Shape::new(vec![7, 3]), DType::F32);
        let c = builders::matmul(&mut p, "mm", a, b);
        p.mark_output(c);
        assert_bit_equal(&p, 11);
    }

    #[test]
    fn padded_conv_matches_interpreter() {
        // conv2d with padding exercises the guarded (generic) load path:
        // the untaken Select branch reads out of bounds and must be skipped.
        let mut p = TeProgram::new();
        let x = p.add_input("X", Shape::new(vec![1, 2, 6, 6]), DType::F32);
        let w = p.add_weight("W", Shape::new(vec![3, 2, 3, 3]), DType::F32);
        let y = builders::conv2d(&mut p, "conv", x, w, 1, 1);
        p.mark_output(y);
        p.validate().unwrap();
        assert_bit_equal(&p, 5);
    }

    #[test]
    fn reshape_matches_interpreter() {
        // div/mod access: exercises the non-affine fallback.
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![6, 4]), DType::F32);
        let r = builders::reshape(&mut p, "r", a, Shape::new(vec![8, 3]));
        p.mark_output(r);
        assert_bit_equal(&p, 3);
    }

    #[test]
    fn scalar_output_matches_interpreter() {
        use crate::expr::ScalarExpr;
        use crate::te::ReduceOp;
        use souffle_affine::IndexExpr;
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4, 5]), DType::F32);
        let s = p.add_te(
            "sum_all",
            Shape::scalar(),
            DType::F32,
            vec![a],
            vec![4, 5],
            Some(ReduceOp::Sum),
            ScalarExpr::input(0, vec![IndexExpr::var(0), IndexExpr::var(1)]),
        );
        p.mark_output(s);
        p.validate().unwrap();
        assert_bit_equal(&p, 17);
    }

    #[test]
    fn large_space_threads_match_serial_result() {
        // Big enough to cross SERIAL_THRESHOLD so the scoped-thread path
        // actually runs (under the default thread count).
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![128, 96]), DType::F32);
        let b = p.add_weight("B", Shape::new(vec![96, 32]), DType::F32);
        let c = builders::matmul(&mut p, "mm", a, b);
        p.mark_output(c);
        assert_bit_equal(&p, 23);
    }

    #[test]
    fn unbound_and_mismatch_errors_match_interpreter() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![2]), DType::F32);
        let e = builders::exp(&mut p, "e", a);
        p.mark_output(e);
        let cp = compile_program(&p);
        assert!(matches!(
            cp.eval(&HashMap::new()).unwrap_err(),
            EvalError::Unbound { .. }
        ));
        let mut b = HashMap::new();
        b.insert(a, Tensor::zeros(Shape::new(vec![3])));
        assert!(matches!(
            cp.eval(&b).unwrap_err(),
            EvalError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn oob_error_matches_interpreter() {
        use crate::expr::ScalarExpr;
        use souffle_affine::IndexExpr;
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let t = p.add_te(
            "bad",
            Shape::new(vec![8]),
            DType::F32,
            vec![a],
            vec![],
            None,
            ScalarExpr::input(0, vec![IndexExpr::var(0)]),
        );
        p.mark_output(t);
        let bindings = random_bindings(&p, 1);
        let want = eval_program(&p, &bindings).unwrap_err();
        let got = compile_program(&p).eval(&bindings).unwrap_err();
        assert_eq!(want, got);
    }
}
