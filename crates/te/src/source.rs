//! Pretty-printing TE programs in the paper's `te.compute` notation
//! (§3, Fig. 2):
//!
//! ```text
//! rk = te.reduce_axis((0, 64))
//! TE0: O0 = te.compute((64, 64), lambda i, j: te.sum(I0[i, rk] * W0[rk, j], axis=[rk]))
//! TE1: O1 = te.compute((64, 64), lambda i, j: te.sigmoid(O0[i, j]))
//! ```

use crate::expr::{BinaryOp, Cond, ScalarExpr, UnaryOp};
use crate::program::TeProgram;
use crate::te::ReduceOp;
use souffle_affine::IndexExpr;

const ITER_NAMES: [&str; 8] = ["i", "j", "k", "l", "m", "n", "o", "p"];

fn var_name(v: usize, rank: usize) -> String {
    if v < rank {
        ITER_NAMES
            .get(v)
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("i{v}"))
    } else if v == rank {
        "rk".to_string()
    } else {
        format!("rk{}", v - rank)
    }
}

fn index_src(e: &IndexExpr, rank: usize) -> String {
    match e {
        IndexExpr::Var(v) => var_name(*v, rank),
        IndexExpr::Const(c) => c.to_string(),
        IndexExpr::Add(a, b) => format!("{} + {}", index_src(a, rank), index_src(b, rank)),
        IndexExpr::Sub(a, b) => format!("{} - {}", index_src(a, rank), index_src(b, rank)),
        IndexExpr::Mul(a, k) => format!("{}*{}", k, paren(a, rank)),
        IndexExpr::FloorDiv(a, k) => format!("{} // {}", paren(a, rank), k),
        IndexExpr::Mod(a, k) => format!("{} % {}", paren(a, rank), k),
    }
}

fn paren(e: &IndexExpr, rank: usize) -> String {
    match e {
        IndexExpr::Var(_) | IndexExpr::Const(_) => index_src(e, rank),
        _ => format!("({})", index_src(e, rank)),
    }
}

fn unary_src(op: UnaryOp) -> &'static str {
    match op {
        UnaryOp::Neg => "te.neg",
        UnaryOp::Exp => "te.exp",
        UnaryOp::Log => "te.log",
        UnaryOp::Sqrt => "te.sqrt",
        UnaryOp::Rsqrt => "te.rsqrt",
        UnaryOp::Recip => "te.recip",
        UnaryOp::Sigmoid => "te.sigmoid",
        UnaryOp::Tanh => "te.tanh",
        UnaryOp::Relu => "te.relu",
        UnaryOp::Abs => "te.abs",
        UnaryOp::Gelu => "te.gelu",
        UnaryOp::Silu => "te.silu",
        UnaryOp::Heaviside => "te.heaviside",
        UnaryOp::Sign => "te.sign",
    }
}

fn cond_src(c: &Cond, rank: usize) -> String {
    match c {
        Cond::Cmp(op, a, b) => format!("{} {} {}", index_src(a, rank), op, index_src(b, rank)),
        Cond::And(a, b) => format!("({} and {})", cond_src(a, rank), cond_src(b, rank)),
        Cond::Or(a, b) => format!("({} or {})", cond_src(a, rank), cond_src(b, rank)),
        Cond::Not(a) => format!("not ({})", cond_src(a, rank)),
    }
}

fn body_src(e: &ScalarExpr, names: &[String], rank: usize) -> String {
    match e {
        ScalarExpr::Const(c) => format!("{c}"),
        ScalarExpr::IndexValue(ix) => format!("float({})", index_src(ix, rank)),
        ScalarExpr::Input { operand, indices } => {
            let idx: Vec<String> = indices.iter().map(|i| index_src(i, rank)).collect();
            format!("{}[{}]", names[*operand], idx.join(", "))
        }
        ScalarExpr::Unary(op, a) => format!("{}({})", unary_src(*op), body_src(a, names, rank)),
        ScalarExpr::Binary(op, a, b) => {
            let (a, b) = (body_src(a, names, rank), body_src(b, names, rank));
            match op {
                BinaryOp::Add => format!("{a} + {b}"),
                BinaryOp::Sub => format!("{a} - {b}"),
                BinaryOp::Mul => format!("{a} * {b}"),
                BinaryOp::Div => format!("{a} / {b}"),
                BinaryOp::Max => format!("te.max({a}, {b})"),
                BinaryOp::Min => format!("te.min({a}, {b})"),
            }
        }
        ScalarExpr::Select {
            cond,
            on_true,
            on_false,
        } => format!(
            "tir.if_then_else({}, {}, {})",
            cond_src(cond, rank),
            body_src(on_true, names, rank),
            body_src(on_false, names, rank)
        ),
        ScalarExpr::Reduce {
            op,
            var,
            extent,
            body,
        } => {
            let f = match op {
                ReduceOp::Sum => "te.fold_sum",
                ReduceOp::Max => "te.fold_max",
                ReduceOp::Min => "te.fold_min",
            };
            format!(
                "{f}({} < {extent}, {})",
                var_name(*var, rank),
                body_src(body, names, rank)
            )
        }
    }
}

/// Renders a whole program in `te.compute` notation.
pub fn te_source(program: &TeProgram) -> String {
    let mut out = String::new();
    for (n, te) in program.tes().iter().enumerate() {
        let shape = program.output_shape(crate::TeId(n));
        let rank = shape.rank();
        let out_name = sanitize(&program.tensor(te.output).name);
        let operand_names: Vec<String> = te
            .inputs
            .iter()
            .map(|&t| sanitize(&program.tensor(t).name))
            .collect();
        let lambda_vars: Vec<String> = (0..rank).map(|v| var_name(v, rank)).collect();
        if !te.reduce.is_empty() {
            let axes: Vec<String> = te
                .reduce
                .iter()
                .enumerate()
                .map(|(r, ext)| {
                    format!("{} = te.reduce_axis((0, {ext}))", var_name(rank + r, rank))
                })
                .collect();
            out.push_str(&format!("      {}\n", axes.join("; ")));
        }
        let body = body_src(&te.body, &operand_names, rank);
        let body = match te.reduce_op {
            Some(ReduceOp::Sum) => format!(
                "te.sum({body}, axis=[{}])",
                reduce_axis_list(rank, te.reduce.len())
            ),
            Some(ReduceOp::Max) => format!(
                "te.max_reduce({body}, axis=[{}])",
                reduce_axis_list(rank, te.reduce.len())
            ),
            Some(ReduceOp::Min) => format!(
                "te.min_reduce({body}, axis=[{}])",
                reduce_axis_list(rank, te.reduce.len())
            ),
            None => body,
        };
        out.push_str(&format!(
            "TE{n}: {out_name} = te.compute({}, lambda {}: {body})\n",
            shape,
            lambda_vars.join(", ")
        ));
    }
    out
}

fn reduce_axis_list(rank: usize, n: usize) -> String {
    (0..n)
        .map(|r| var_name(rank + r, rank))
        .collect::<Vec<_>>()
        .join(", ")
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use souffle_tensor::{DType, Shape};

    #[test]
    fn fig2_program_prints_in_te_notation() {
        let mut p = TeProgram::new();
        let i0 = p.add_input("I0", Shape::new(vec![64, 64]), DType::F16);
        let w0 = p.add_weight("W0", Shape::new(vec![64, 64]), DType::F16);
        let o0 = builders::matmul(&mut p, "O0", i0, w0);
        let _o1 = builders::sigmoid(&mut p, "O1", o0);
        let src = te_source(&p);
        assert!(src.contains("rk = te.reduce_axis((0, 64))"), "{src}");
        assert!(
            src.contains("TE0: O0 = te.compute((64, 64), lambda i, j: te.sum(I0[i, rk] * W0[rk, j], axis=[rk]))"),
            "{src}"
        );
        assert!(
            src.contains("TE1: O1 = te.compute((64, 64), lambda i, j: te.sigmoid(O0[i, j]))"),
            "{src}"
        );
    }

    #[test]
    fn select_prints_if_then_else() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![2, 2]), DType::F32);
        let b = p.add_input("B", Shape::new(vec![3, 2]), DType::F32);
        let _ = builders::concat(&mut p, "C", a, b, 0);
        let src = te_source(&p);
        assert!(src.contains("tir.if_then_else(i < 2"), "{src}");
    }

    #[test]
    fn quasi_affine_prints_div_mod() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4, 6]), DType::F32);
        let _ = builders::reshape(&mut p, "R", a, Shape::new(vec![2, 12]));
        let src = te_source(&p);
        assert!(src.contains("//"), "{src}");
        assert!(src.contains('%'), "{src}");
    }
}
