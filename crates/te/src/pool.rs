//! A persistent work-stealing thread pool (std-only: `Mutex`/`Condvar`
//! deques, no crates.io dependencies).
//!
//! The compiled evaluator used to spawn fresh scoped threads for every TE
//! it parallelized; on programs with hundreds of TEs that is hundreds of
//! `clone(2)` calls per inference. [`ThreadPool`] amortizes that cost:
//! workers are spawned once (per [`crate::runtime::Runtime`]) and sleep on
//! a condvar between evaluations.
//!
//! Scheduling is work-stealing over per-worker deques: submitted tasks are
//! distributed round-robin, each worker pops its own deque from the front
//! and steals from the *back* of other workers' deques when it runs dry.
//! The thread that opened a [`ThreadPool::scope`] also helps execute
//! queued tasks while it waits, so a pool with `n` workers plus the
//! caller provides `n + 1` execution streams and a zero-worker pool
//! degenerates to inline serial execution.
//!
//! Tasks submitted through a [`Scope`] may borrow stack data: the scope
//! joins every spawned task before returning (and propagates the first
//! task panic), which is what makes the internal lifetime erasure sound.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A lifetime-erased unit of work.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Scheduling counters for one [`ThreadPool`], accumulated since pool
/// creation or the last [`ThreadPool::take_stats`]. All updates are
/// relaxed atomics on paths that already hold a deque mutex, so the
/// accounting adds no contention.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks submitted through [`Scope::spawn`].
    pub tasks: u64,
    /// Tasks executed by a thread other than the deque they were pushed
    /// to (worker cross-steals plus scope-helper grabs).
    pub steals: u64,
    /// Peak length of any single worker deque observed at push time.
    pub max_queue_depth: u64,
}

struct Shared {
    /// One deque per worker. Owners pop from the front, thieves steal from
    /// the back — both under the deque's mutex, which keeps the
    /// implementation hermetic (no lock-free deque dependency).
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Workers sleep on this condvar when every deque is empty. Pushers
    /// notify under `sleep`, and sleepers re-scan under `sleep` before
    /// waiting, so wakeups cannot be lost.
    sleep: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    /// Round-robin cursor for task distribution.
    rr: AtomicUsize,
    /// [`PoolStats::tasks`].
    tasks: AtomicU64,
    /// [`PoolStats::steals`].
    steals: AtomicU64,
    /// [`PoolStats::max_queue_depth`].
    max_depth: AtomicU64,
}

impl Shared {
    /// Pops a task: own deque first (front), then the other deques from
    /// the back (stealing order starts after `me` so thieves spread out).
    fn grab(&self, me: usize) -> Option<Task> {
        let n = self.deques.len();
        if let Some(t) = self.deques[me]
            .lock()
            .expect("pool deque poisoned")
            .pop_front()
        {
            return Some(t);
        }
        for off in 1..n {
            let victim = (me + off) % n;
            if let Some(t) = self.deques[victim]
                .lock()
                .expect("pool deque poisoned")
                .pop_back()
            {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        None
    }

    /// Steals a task from any deque (used by the scope-waiting helper,
    /// which has no deque of its own).
    fn grab_any(&self) -> Option<Task> {
        for d in &self.deques {
            if let Some(t) = d.lock().expect("pool deque poisoned").pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        None
    }

    fn has_work(&self) -> bool {
        self.deques
            .iter()
            .any(|d| !d.lock().expect("pool deque poisoned").is_empty())
    }

    fn worker(&self, me: usize) {
        loop {
            if let Some(task) = self.grab(me) {
                task();
                continue;
            }
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            let guard = self.sleep.lock().expect("pool sleep lock poisoned");
            // Re-check under the sleep lock: pushers notify while holding
            // it, so a task pushed after our scan is visible here.
            if self.has_work() {
                continue;
            }
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            // The timeout is belt-and-braces only; the notify protocol
            // above already prevents lost wakeups.
            let _ = self
                .wake
                .wait_timeout(guard, Duration::from_millis(50))
                .expect("pool sleep lock poisoned");
        }
    }
}

/// Join/panic bookkeeping for one [`Scope`].
struct ScopeState {
    /// Tasks spawned but not yet finished.
    pending: Mutex<usize>,
    done: Condvar,
    /// First panic payload raised by a task, re-thrown by the scope owner.
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

impl ScopeState {
    fn new() -> Self {
        ScopeState {
            pending: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }
}

/// A persistent pool of worker threads with work-stealing deques.
///
/// Create once, submit many batches of borrowed-data tasks through
/// [`ThreadPool::scope`]. Dropping the pool shuts the workers down.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool with `workers` worker threads (0 is allowed: the
    /// scope-owning thread then executes every task inline).
    pub fn new(workers: usize) -> ThreadPool {
        let shared = Arc::new(Shared {
            deques: (0..workers.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            rr: AtomicUsize::new(0),
            tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            max_depth: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let s = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("souffle-eval-{i}"))
                    .spawn(move || s.worker(i))
                    .expect("spawning evaluator worker thread")
            })
            .collect();
        ThreadPool {
            shared,
            workers: handles,
        }
    }

    /// Number of worker threads (excluding scope-owning helpers).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    fn push(&self, task: Task) {
        let i = self.shared.rr.fetch_add(1, Ordering::Relaxed) % self.shared.deques.len();
        let depth = {
            let mut d = self.shared.deques[i].lock().expect("pool deque poisoned");
            d.push_back(task);
            d.len() as u64
        };
        self.shared.tasks.fetch_add(1, Ordering::Relaxed);
        self.shared.max_depth.fetch_max(depth, Ordering::Relaxed);
        // Notify under the sleep lock so a worker between "scan found
        // nothing" and "wait" cannot miss this task.
        let _g = self.shared.sleep.lock().expect("pool sleep lock poisoned");
        self.shared.wake.notify_one();
    }

    /// Scheduling counters accumulated since creation or the last
    /// [`ThreadPool::take_stats`].
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            tasks: self.shared.tasks.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            max_queue_depth: self.shared.max_depth.load(Ordering::Relaxed),
        }
    }

    /// Drains the counters, returning what was accumulated and resetting
    /// all of them to zero.
    pub fn take_stats(&self) -> PoolStats {
        PoolStats {
            tasks: self.shared.tasks.swap(0, Ordering::Relaxed),
            steals: self.shared.steals.swap(0, Ordering::Relaxed),
            max_queue_depth: self.shared.max_depth.swap(0, Ordering::Relaxed),
        }
    }

    /// Runs `f` with a [`Scope`] through which tasks borrowing data alive
    /// for `'env` can be spawned. Every spawned task completes before
    /// `scope` returns; the first task panic (if any) is resumed on the
    /// calling thread after all tasks have settled.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'env, '_>) -> R,
    {
        let state = Arc::new(ScopeState::new());
        let scope = Scope {
            pool: self,
            state: Arc::clone(&state),
            _env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Join: help drain the queues, then wait for in-flight tasks.
        // This runs even when `f` panicked, so no spawned task can outlive
        // the borrows it captured.
        self.wait_scope(&state);
        if let Some(p) = state
            .panic
            .lock()
            .expect("scope panic lock poisoned")
            .take()
        {
            resume_unwind(p);
        }
        match result {
            Ok(r) => r,
            Err(p) => resume_unwind(p),
        }
    }

    fn wait_scope(&self, state: &ScopeState) {
        loop {
            if *state.pending.lock().expect("scope pending lock poisoned") == 0 {
                return;
            }
            if let Some(task) = self.shared.grab_any() {
                task();
                continue;
            }
            // Queues are empty: the remaining tasks are running on
            // workers. Wait for the last one to signal completion (tasks
            // decrement and notify under `pending`, so this cannot miss).
            let mut pending = state.pending.lock().expect("scope pending lock poisoned");
            while *pending > 0 {
                let (g, timeout) = state
                    .done
                    .wait_timeout(pending, Duration::from_millis(10))
                    .expect("scope pending lock poisoned");
                pending = g;
                if timeout.timed_out() {
                    break; // re-scan the queues, then wait again
                }
            }
            if *pending == 0 {
                return;
            }
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self.shared.sleep.lock().expect("pool sleep lock poisoned");
            self.shared.wake.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Spawn handle passed to the closure of [`ThreadPool::scope`]; tasks may
/// borrow anything that lives for `'env`.
pub struct Scope<'env, 'pool> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    /// Invariant over `'env` (mirrors `crossbeam::scope`) so the borrow
    /// checker cannot shrink the environment lifetime under the tasks.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env, '_> {
    /// Submits a task to the pool. The task runs at most once, on any
    /// worker (or on the scope-owning thread while it waits), and is
    /// joined before the enclosing [`ThreadPool::scope`] call returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        *self
            .state
            .pending
            .lock()
            .expect("scope pending lock poisoned") += 1;
        let state = Arc::clone(&self.state);
        let wrapped = move || {
            if let Err(p) = catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = state.panic.lock().expect("scope panic lock poisoned");
                if slot.is_none() {
                    *slot = Some(p);
                }
            }
            let mut pending = state.pending.lock().expect("scope pending lock poisoned");
            *pending -= 1;
            if *pending == 0 {
                state.done.notify_all();
            }
        };
        let boxed: Box<dyn FnOnce() + Send + 'env> = Box::new(wrapped);
        // SAFETY: `scope` joins every spawned task (even on panic) before
        // returning, so no task runs after `'env` borrows expire; the
        // transmute only erases that lifetime, the vtable and layout are
        // unchanged.
        let boxed: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(boxed)
        };
        self.pool.push(boxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_all_tasks_and_borrows_stack_data() {
        let pool = ThreadPool::new(3);
        let data: Vec<u64> = (0..100).collect();
        let sum = AtomicU64::new(0);
        pool.scope(|s| {
            for chunk in data.chunks(7) {
                let sum = &sum;
                s.spawn(move || {
                    sum.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 100 * 99 / 2);
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.workers(), 0);
        let mut out = vec![0u32; 4];
        pool.scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move || *slot = i as u32 + 1);
            }
        });
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn disjoint_mut_chunks_are_written() {
        let pool = ThreadPool::new(2);
        let mut buf = vec![0.0f32; 1000];
        pool.scope(|s| {
            for (ci, chunk) in buf.chunks_mut(64).enumerate() {
                s.spawn(move || {
                    for (i, x) in chunk.iter_mut().enumerate() {
                        *x = (ci * 64 + i) as f32;
                    }
                });
            }
        });
        for (i, x) in buf.iter().enumerate() {
            assert_eq!(*x, i as f32);
        }
    }

    #[test]
    fn scope_is_reusable_and_pool_is_persistent() {
        let pool = ThreadPool::new(2);
        for round in 0..50u64 {
            let total = AtomicU64::new(0);
            pool.scope(|s| {
                for _ in 0..8 {
                    let total = &total;
                    s.spawn(move || {
                        total.fetch_add(round, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(total.load(Ordering::Relaxed), 8 * round);
        }
    }

    #[test]
    fn task_panic_propagates_after_join() {
        let pool = ThreadPool::new(2);
        let finished = AtomicU64::new(0);
        let res = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                let finished = &finished;
                s.spawn(|| panic!("boom"));
                for _ in 0..10 {
                    s.spawn(move || {
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(res.is_err(), "task panic must surface");
        // The panic must not have torn down the other tasks.
        assert_eq!(finished.load(Ordering::Relaxed), 10);
        // The pool survives a panicked scope.
        let ok = AtomicU64::new(0);
        pool.scope(|s| {
            let ok = &ok;
            s.spawn(move || {
                ok.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(ok.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stats_count_tasks_and_reset_on_take() {
        let pool = ThreadPool::new(2);
        let count = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..40 {
                let count = &count;
                s.spawn(move || {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        let stats = pool.take_stats();
        assert_eq!(stats.tasks, 40);
        assert!(stats.max_queue_depth >= 1);
        // `steals` is timing-dependent (0 is legal if workers kept up),
        // but it can never exceed the number of tasks.
        assert!(stats.steals <= stats.tasks);
        assert_eq!(pool.stats(), PoolStats::default());
    }

    #[test]
    fn many_tasks_distribute_across_workers() {
        // With more tasks than workers, stealing must still complete all
        // of them (exercises the cross-deque path deterministically by
        // sheer volume).
        let pool = ThreadPool::new(4);
        let count = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..500 {
                let count = &count;
                s.spawn(move || {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 500);
    }
}
