#![warn(missing_docs)]
//! Tensor expressions (TEs): the intermediate representation of the Souffle
//! reproduction.
//!
//! A [`TensorExpr`] describes how each element of an output tensor is
//! computed from input tensors, exactly in the spirit of TVM's
//! `te.compute` (§3 of the paper): iteration variables are implied by the
//! output shape, reduction axes carry explicit extents, and the body is a
//! pure scalar expression over quasi-affine accesses into the inputs.
//!
//! A [`TeProgram`] is an ordered list of TEs over a tensor table — the
//! "TE program" the paper's global analysis, partitioning, and
//! transformations operate on.
//!
//! The crate also provides:
//!
//! - [`builders`]: convenience constructors for the operator vocabulary the
//!   paper supports (element-wise, broadcast, reductions including GEMM and
//!   convolution, reshape/transpose-style memory operators),
//! - [`interp`]: a reference interpreter used to verify that every compiler
//!   transformation is semantics-preserving,
//! - [`compile`]: a bytecode compiler whose VM evaluates programs 10–100×
//!   faster than the interpreter (strength-reduced affine indexing,
//!   multi-threaded iteration) with bit-identical results,
//! - structural [`validate`](TeProgram::validate) checks (shape/rank/bounds
//!   consistency) run by tests and by the pipeline entry points.
//!
//! # Example: the paper's working example, TE0/TE1 (Fig. 2)
//!
//! ```
//! use souffle_te::{builders, TeProgram};
//! use souffle_tensor::{DType, Shape, Tensor};
//!
//! let mut p = TeProgram::new();
//! let i0 = p.add_input("I0", Shape::new(vec![64, 64]), DType::F16);
//! let w0 = p.add_weight("W0", Shape::new(vec![64, 64]), DType::F16);
//! let o0 = builders::matmul(&mut p, "TE0", i0, w0);
//! let o1 = builders::sigmoid(&mut p, "TE1", o0);
//! p.mark_output(o1);
//! p.validate().unwrap();
//!
//! let out = souffle_te::interp::eval_program(
//!     &p,
//!     &[(i0, Tensor::random(Shape::new(vec![64, 64]), 1)),
//!       (w0, Tensor::random(Shape::new(vec![64, 64]), 2))].into_iter().collect(),
//! ).unwrap();
//! assert_eq!(out[&o1].shape().dims(), &[64, 64]);
//! ```

pub mod arena;
pub mod builders;
pub mod canon;
pub mod compile;
mod expr;
pub mod grad;
pub mod interp;
pub mod kernels;
pub mod pool;
mod program;
pub mod rewrite_log;
pub mod runtime;
pub mod source;
pub mod sym;
mod te;
mod vm;

pub use arena::{ArenaStats, BufferArena};
pub use compile::{compile_program, CompiledProgram, CompiledTe, Evaluator};
pub use expr::{BinaryOp, CmpOp, Cond, ScalarExpr, UnaryOp};
pub use kernels::{FallbackReason, KernelStats, KERNEL_TIER_ENV};
pub use pool::{PoolStats, ThreadPool};
pub use program::{TeProgram, TensorId, TensorInfo, TensorKind, ValidateError};
pub use rewrite_log::{Rewrite, RewriteLog};
pub use runtime::{ExecPlan, Runtime, RuntimeOptions, RuntimeStats};
pub use sym::{
    DerivedInput, Dim, DimPoly, DynProgram, DynSource, DynSpec, PerStep, SymBinding, SymDecl,
    SymId, SymTable,
};
pub use te::{ReduceOp, TeId, TensorExpr};
pub use vm::{thread_count, THREADS_ENV};
