//! Reverse-mode differentiation of TE programs — the "Fusion in DL
//! training" extension the paper leaves as future work (§9).
//!
//! [`backward`] builds, from a forward TE program and a scalar loss, a new
//! TE program computing `d loss / d t` for requested tensors. Following
//! §9's observation that "intermediate tensors must be kept in global
//! memory in DL training for backward gradient-based optimization", the
//! backward program treats every forward activation it needs as a fresh
//! *input* (the saved activations) — which is exactly the constraint that
//! restricts operator fusion during training.
//!
//! Supported forward patterns (sufficient for MLP-style training graphs):
//! element-wise unary operators, element-wise add/sub/mul/div, scalar
//! scale/offset, bias-add over the last axis (rank 2), `matmul`, and
//! sum-reduction over the last axis. Unsupported TEs yield a
//! [`GradError`].

use crate::builders;
use crate::expr::{BinaryOp, ScalarExpr, UnaryOp};
use crate::program::{TeProgram, TensorId};
use crate::te::ReduceOp;
use souffle_affine::IndexExpr;
use std::collections::HashMap;
use std::fmt;

/// Differentiation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GradError {
    /// The loss tensor must hold exactly one element.
    LossNotScalar {
        /// The offending tensor.
        tensor: TensorId,
    },
    /// A forward TE's pattern has no differentiation rule.
    Unsupported {
        /// The TE's name.
        te: String,
        /// What was unsupported.
        reason: String,
    },
}

impl fmt::Display for GradError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GradError::LossNotScalar { tensor } => {
                write!(f, "loss tensor {tensor} is not a scalar")
            }
            GradError::Unsupported { te, reason } => {
                write!(f, "cannot differentiate TE \"{te}\": {reason}")
            }
        }
    }
}

impl std::error::Error for GradError {}

/// The backward program plus its binding maps.
#[derive(Debug, Clone)]
pub struct GradProgram {
    /// The backward TE program. Its inputs are the saved forward tensors
    /// (activations, weights, inputs); its outputs are gradients.
    pub program: TeProgram,
    /// Forward tensor → its saved-activation input in the backward
    /// program.
    pub saved: HashMap<TensorId, TensorId>,
    /// Forward tensor → its gradient tensor in the backward program (for
    /// the tensors requested in `wrt`).
    pub grads: HashMap<TensorId, TensorId>,
}

/// The recognized differentiable pattern of one forward TE.
enum Pattern {
    UnaryEw(UnaryOp),
    BinaryEw(BinaryOp),
    ScalarRhs(BinaryOp, f32),
    BiasAdd,
    MatMul,
    ReduceSumLast,
}

fn identity_access(e: &ScalarExpr, operand: usize, rank: usize) -> bool {
    match e {
        ScalarExpr::Input {
            operand: o,
            indices,
        } => {
            *o == operand
                && indices.len() == rank
                && indices
                    .iter()
                    .enumerate()
                    .all(|(d, ix)| *ix == IndexExpr::Var(d))
        }
        _ => false,
    }
}

fn recognize(program: &TeProgram, te: &crate::TensorExpr) -> Result<Pattern, GradError> {
    let rank = program.tensor(te.output).shape.rank();
    let unsupported = |reason: &str| GradError::Unsupported {
        te: te.name.clone(),
        reason: reason.to_string(),
    };
    if te.is_reduction() {
        // matmul: sum over rk of in0[i, rk] * in1[rk, j]
        if let ScalarExpr::Binary(BinaryOp::Mul, a, b) = &te.body {
            let is_matmul = matches!(
                (a.as_ref(), b.as_ref()),
                (
                    ScalarExpr::Input { operand: 0, indices: ia },
                    ScalarExpr::Input { operand: 1, indices: ib },
                ) if rank == 2
                    && ia.as_slice() == [IndexExpr::Var(0), IndexExpr::Var(2)]
                    && ib.as_slice() == [IndexExpr::Var(2), IndexExpr::Var(1)]
            );
            if is_matmul && te.reduce_op == Some(ReduceOp::Sum) {
                return Ok(Pattern::MatMul);
            }
        }
        // reduce_last sum: in0[i.., r]
        if te.reduce_op == Some(ReduceOp::Sum) && te.reduce.len() == 1 {
            if let ScalarExpr::Input {
                operand: 0,
                indices,
            } = &te.body
            {
                let ok = indices.len() == rank + 1
                    && indices
                        .iter()
                        .enumerate()
                        .all(|(d, ix)| *ix == IndexExpr::Var(d));
                // reduce_last on a vector produces shape [1] with the body
                // reading [v1]; accept that too.
                let vec_ok = rank == 1 && indices.len() == 1 && indices[0] == IndexExpr::Var(1);
                if ok || vec_ok {
                    return Ok(Pattern::ReduceSumLast);
                }
            }
        }
        return Err(unsupported("reduction pattern"));
    }
    match &te.body {
        ScalarExpr::Unary(op, a) if identity_access(a, 0, rank) => Ok(Pattern::UnaryEw(*op)),
        ScalarExpr::Binary(op, a, b) => {
            if identity_access(a, 0, rank) && identity_access(b, 1, rank) {
                return Ok(Pattern::BinaryEw(*op));
            }
            if let (true, ScalarExpr::Const(c)) = (identity_access(a, 0, rank), b.as_ref()) {
                return Ok(Pattern::ScalarRhs(*op, *c));
            }
            // bias add: in0[i, j] + in1[j] (rank 2)
            if rank == 2 && *op == BinaryOp::Add && identity_access(a, 0, rank) {
                if let ScalarExpr::Input {
                    operand: 1,
                    indices,
                } = b.as_ref()
                {
                    if indices.as_slice() == [IndexExpr::Var(1)] {
                        return Ok(Pattern::BiasAdd);
                    }
                }
            }
            Err(unsupported("binary pattern"))
        }
        _ => Err(unsupported("body pattern")),
    }
}

/// Builds the backward program of `forward` for a scalar `loss`,
/// producing gradients for every tensor in `wrt`.
///
/// ```
/// use souffle_te::{builders, grad, ReduceOp, TeProgram};
/// use souffle_tensor::{DType, Shape};
///
/// let mut p = TeProgram::new();
/// let x = p.add_input("x", Shape::new(vec![4, 8]), DType::F32);
/// let w = p.add_input("w", Shape::new(vec![8, 2]), DType::F32);
/// let y = builders::matmul(&mut p, "mm", x, w);
/// let rows = builders::reduce_last(&mut p, "rows", ReduceOp::Sum, y);
/// let loss = builders::reduce_last(&mut p, "loss", ReduceOp::Sum, rows);
/// p.mark_output(loss);
///
/// let g = grad::backward(&p, loss, &[w])?;
/// assert!(g.grads.contains_key(&w));
/// g.program.validate()?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Returns [`GradError`] when the loss is not scalar or a TE on the path
/// from `wrt` to `loss` has no differentiation rule.
pub fn backward(
    forward: &TeProgram,
    loss: TensorId,
    wrt: &[TensorId],
) -> Result<GradProgram, GradError> {
    if forward.tensor(loss).shape.numel() != 1 {
        return Err(GradError::LossNotScalar { tensor: loss });
    }
    let mut bwd = TeProgram::new();
    let mut saved: HashMap<TensorId, TensorId> = HashMap::new();
    // Gradient accumulator per forward tensor.
    let mut grads: HashMap<TensorId, TensorId> = HashMap::new();

    // Saved-activation inputs are materialized lazily.
    macro_rules! save {
        ($fid:expr) => {{
            let fid: TensorId = $fid;
            match saved.get(&fid) {
                Some(&t) => t,
                None => {
                    let info = forward.tensor(fid);
                    let t = bwd.add_input(
                        &format!("saved.{}", info.name),
                        info.shape.clone(),
                        info.dtype,
                    );
                    saved.insert(fid, t);
                    t
                }
            }
        }};
    }

    // Seed: d loss / d loss = 1.
    let loss_info = forward.tensor(loss);
    let ones = bwd.add_te(
        "grad.seed",
        loss_info.shape.clone(),
        loss_info.dtype,
        vec![],
        vec![],
        None,
        ScalarExpr::Const(1.0),
    );
    grads.insert(loss, ones);

    let accumulate = |bwd: &mut TeProgram,
                      grads: &mut HashMap<TensorId, TensorId>,
                      fwd_tensor: TensorId,
                      contribution: TensorId,
                      name: &str| {
        match grads.get(&fwd_tensor) {
            Some(&existing) => {
                let sum = builders::add(bwd, &format!("{name}.acc"), existing, contribution);
                grads.insert(fwd_tensor, sum);
            }
            None => {
                grads.insert(fwd_tensor, contribution);
            }
        }
    };

    // Walk the forward TEs in reverse.
    for te in forward.tes().iter().rev() {
        let Some(&dy) = grads.get(&te.output) else {
            continue; // does not influence the loss
        };
        let pattern = recognize(forward, te)?;
        let gname = format!("grad.{}", te.name);
        match pattern {
            Pattern::UnaryEw(op) => {
                let x = if op == UnaryOp::Neg {
                    None
                } else {
                    Some(save!(te.inputs[0]))
                };
                let dx = unary_grad(&mut bwd, &gname, op, dy, x).map_err(|reason| {
                    GradError::Unsupported {
                        te: te.name.clone(),
                        reason,
                    }
                })?;
                accumulate(&mut bwd, &mut grads, te.inputs[0], dx, &gname);
            }
            Pattern::BinaryEw(op) => match op {
                BinaryOp::Add => {
                    accumulate(&mut bwd, &mut grads, te.inputs[0], dy, &gname);
                    accumulate(&mut bwd, &mut grads, te.inputs[1], dy, &gname);
                }
                BinaryOp::Sub => {
                    accumulate(&mut bwd, &mut grads, te.inputs[0], dy, &gname);
                    let neg = builders::scale(&mut bwd, &format!("{gname}.neg"), dy, -1.0);
                    accumulate(&mut bwd, &mut grads, te.inputs[1], neg, &gname);
                }
                BinaryOp::Mul => {
                    let x0 = save!(te.inputs[0]);
                    let x1 = save!(te.inputs[1]);
                    let d0 = builders::mul(&mut bwd, &format!("{gname}.d0"), dy, x1);
                    let d1 = builders::mul(&mut bwd, &format!("{gname}.d1"), dy, x0);
                    accumulate(&mut bwd, &mut grads, te.inputs[0], d0, &gname);
                    accumulate(&mut bwd, &mut grads, te.inputs[1], d1, &gname);
                }
                BinaryOp::Div => {
                    // d(a/b) = dy/b ; -dy*a/b^2
                    let a = save!(te.inputs[0]);
                    let b = save!(te.inputs[1]);
                    let d0 =
                        builders::binary(&mut bwd, &format!("{gname}.d0"), BinaryOp::Div, dy, b);
                    let b2 = builders::mul(&mut bwd, &format!("{gname}.b2"), b, b);
                    let num = builders::mul(&mut bwd, &format!("{gname}.num"), dy, a);
                    let frac = builders::binary(
                        &mut bwd,
                        &format!("{gname}.frac"),
                        BinaryOp::Div,
                        num,
                        b2,
                    );
                    let d1 = builders::scale(&mut bwd, &format!("{gname}.d1"), frac, -1.0);
                    accumulate(&mut bwd, &mut grads, te.inputs[0], d0, &gname);
                    accumulate(&mut bwd, &mut grads, te.inputs[1], d1, &gname);
                }
                other => {
                    return Err(GradError::Unsupported {
                        te: te.name.clone(),
                        reason: format!("binary op {other:?}"),
                    })
                }
            },
            Pattern::ScalarRhs(op, c) => {
                let dx = match op {
                    BinaryOp::Add | BinaryOp::Sub => dy,
                    BinaryOp::Mul => builders::scale(&mut bwd, &format!("{gname}.scale"), dy, c),
                    BinaryOp::Div => {
                        builders::scale(&mut bwd, &format!("{gname}.scale"), dy, 1.0 / c)
                    }
                    other => {
                        return Err(GradError::Unsupported {
                            te: te.name.clone(),
                            reason: format!("scalar op {other:?}"),
                        })
                    }
                };
                accumulate(&mut bwd, &mut grads, te.inputs[0], dx, &gname);
            }
            Pattern::BiasAdd => {
                accumulate(&mut bwd, &mut grads, te.inputs[0], dy, &gname);
                // d bias[j] = sum_i dy[i, j]
                let dyt = builders::transpose(&mut bwd, &format!("{gname}.t"), dy, &[1, 0]);
                let db =
                    builders::reduce_last(&mut bwd, &format!("{gname}.db"), ReduceOp::Sum, dyt);
                accumulate(&mut bwd, &mut grads, te.inputs[1], db, &gname);
            }
            Pattern::MatMul => {
                // C = A B : dA = dC B^T ; dB = A^T dC
                let a = save!(te.inputs[0]);
                let b = save!(te.inputs[1]);
                let bt = builders::transpose(&mut bwd, &format!("{gname}.bT"), b, &[1, 0]);
                let da = builders::matmul(&mut bwd, &format!("{gname}.dA"), dy, bt);
                let at = builders::transpose(&mut bwd, &format!("{gname}.aT"), a, &[1, 0]);
                let db = builders::matmul(&mut bwd, &format!("{gname}.dB"), at, dy);
                accumulate(&mut bwd, &mut grads, te.inputs[0], da, &gname);
                accumulate(&mut bwd, &mut grads, te.inputs[1], db, &gname);
            }
            Pattern::ReduceSumLast => {
                // dx[.., r] = dy[..] broadcast over the reduced axis.
                let in_info = forward.tensor(te.inputs[0]);
                let in_shape = in_info.shape.clone();
                let out_rank = forward.tensor(te.output).shape.rank();
                // dy index: leading dims of dx; scalar case reads [0].
                let dy_idx: Vec<IndexExpr> = if out_rank == 1 && in_shape.rank() == 1 {
                    vec![IndexExpr::constant(0)]
                } else {
                    (0..in_shape.rank() - 1).map(IndexExpr::Var).collect()
                };
                let dx = bwd.add_te(
                    &format!("{gname}.bcast"),
                    in_shape,
                    in_info.dtype,
                    vec![dy],
                    vec![],
                    None,
                    ScalarExpr::input(0, dy_idx),
                );
                accumulate(&mut bwd, &mut grads, te.inputs[0], dx, &gname);
            }
        }
    }

    // Mark requested gradients as outputs.
    let mut requested = HashMap::new();
    for &t in wrt {
        let Some(&g) = grads.get(&t) else {
            return Err(GradError::Unsupported {
                te: forward.tensor(t).name.clone(),
                reason: "tensor does not influence the loss".to_string(),
            });
        };
        bwd.mark_output(g);
        requested.insert(t, g);
    }
    Ok(GradProgram {
        program: bwd,
        saved,
        grads: requested,
    })
}

/// Emits `dx = dy * f'(x or y)` for a unary op. `saved` is the saved
/// forward input (`None` only for `Neg`, which needs no activation).
fn unary_grad(
    bwd: &mut TeProgram,
    name: &str,
    op: UnaryOp,
    dy: TensorId,
    saved: Option<TensorId>,
) -> Result<TensorId, String> {
    let saved_input = || saved.expect("activation saved for this op");
    let dx = match op {
        UnaryOp::Neg => builders::scale(bwd, &format!("{name}.neg"), dy, -1.0),
        UnaryOp::Exp => {
            let x = saved_input();
            let y = builders::exp(bwd, &format!("{name}.exp"), x);
            builders::mul(bwd, &format!("{name}.mul"), dy, y)
        }
        UnaryOp::Log => {
            let x = saved_input();
            builders::binary(bwd, &format!("{name}.div"), BinaryOp::Div, dy, x)
        }
        UnaryOp::Relu => {
            let x = saved_input();
            let step = builders::unary(bwd, &format!("{name}.step"), UnaryOp::Heaviside, x);
            builders::mul(bwd, &format!("{name}.mul"), dy, step)
        }
        UnaryOp::Abs => {
            let x = saved_input();
            let sign = builders::unary(bwd, &format!("{name}.sign"), UnaryOp::Sign, x);
            builders::mul(bwd, &format!("{name}.mul"), dy, sign)
        }
        UnaryOp::Sigmoid => {
            // y(1 - y)
            let x = saved_input();
            let y = builders::sigmoid(bwd, &format!("{name}.y"), x);
            let shape = bwd.tensor(y).shape.clone();
            let dt = bwd.tensor(y).dtype;
            let one = bwd.add_te(
                &format!("{name}.one"),
                shape,
                dt,
                vec![],
                vec![],
                None,
                ScalarExpr::Const(1.0),
            );
            let one_minus = builders::binary(bwd, &format!("{name}.om"), BinaryOp::Sub, one, y);
            let dydx = builders::mul(bwd, &format!("{name}.dydx"), y, one_minus);
            builders::mul(bwd, &format!("{name}.mul"), dy, dydx)
        }
        UnaryOp::Tanh => {
            // 1 - y^2
            let x = saved_input();
            let y = builders::unary(bwd, &format!("{name}.y"), UnaryOp::Tanh, x);
            let y2 = builders::mul(bwd, &format!("{name}.y2"), y, y);
            let shape = bwd.tensor(y2).shape.clone();
            let dt = bwd.tensor(y2).dtype;
            let one = bwd.add_te(
                &format!("{name}.one"),
                shape,
                dt,
                vec![],
                vec![],
                None,
                ScalarExpr::Const(1.0),
            );
            let dydx = builders::binary(bwd, &format!("{name}.dydx"), BinaryOp::Sub, one, y2);
            builders::mul(bwd, &format!("{name}.mul"), dy, dydx)
        }
        other => return Err(format!("unary op {other:?}")),
    };
    Ok(dx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::eval_program;
    use crate::program::TensorKind;
    use souffle_tensor::{DType, Shape, Tensor};

    /// Numerically checks d loss / d input via central finite differences.
    fn check_gradient(
        forward: &TeProgram,
        loss: TensorId,
        wrt: TensorId,
        bindings: &HashMap<TensorId, Tensor>,
        tol: f32,
    ) {
        forward.validate().expect("forward validates");
        let g = backward(forward, loss, &[wrt]).expect("differentiable");
        g.program.validate().expect("backward validates");

        // Evaluate the forward program to fill saved activations.
        let fwd_vals = eval_program(forward, bindings).expect("forward eval");
        let lookup = |fid: TensorId| -> Tensor {
            bindings
                .get(&fid)
                .cloned()
                .or_else(|| fwd_vals.get(&fid).cloned())
                .expect("saved tensor available")
        };
        let mut bwd_binds: HashMap<TensorId, Tensor> = HashMap::new();
        for (&fid, &sid) in &g.saved {
            bwd_binds.insert(sid, lookup(fid));
        }
        let bwd_vals = eval_program(&g.program, &bwd_binds).expect("backward eval");
        let analytic = &bwd_vals[&g.grads[&wrt]];

        // Finite differences.
        let base = bindings[&wrt].clone();
        let eps = 1e-2f32;
        for flat in 0..base.shape().numel() as usize {
            let mut plus = bindings.clone();
            let mut t = base.clone();
            t.data_mut()[flat] += eps;
            plus.insert(wrt, t);
            let lp = eval_program(forward, &plus).unwrap()[&loss].data()[0];
            let mut minus = bindings.clone();
            let mut t = base.clone();
            t.data_mut()[flat] -= eps;
            minus.insert(wrt, t);
            let lm = eval_program(forward, &minus).unwrap()[&loss].data()[0];
            let numeric = (lp - lm) / (2.0 * eps);
            let got = analytic.data()[flat];
            assert!(
                (got - numeric).abs() <= tol + tol * numeric.abs(),
                "grad[{flat}] analytic {got} vs numeric {numeric}"
            );
        }
    }

    /// loss = sum((relu(x W + b) - target)^2) — a one-layer MLP with MSE.
    fn mlp() -> (TeProgram, TensorId, TensorId, TensorId, TensorId, TensorId) {
        let mut p = TeProgram::new();
        let x = p.add_input("x", Shape::new(vec![2, 3]), DType::F32);
        let w = p.add_input("w", Shape::new(vec![3, 4]), DType::F32);
        let b = p.add_input("b", Shape::new(vec![4]), DType::F32);
        let target = p.add_input("t", Shape::new(vec![2, 4]), DType::F32);
        let h = builders::matmul(&mut p, "mm", x, w);
        let h = builders::bias_add(&mut p, "bias", h, b);
        let h = builders::relu(&mut p, "act", h);
        let diff = builders::binary(&mut p, "diff", BinaryOp::Sub, h, target);
        let sq = builders::mul(&mut p, "sq", diff, diff);
        let rows = builders::reduce_last(&mut p, "rows", ReduceOp::Sum, sq);
        let loss = builders::reduce_last(&mut p, "loss", ReduceOp::Sum, rows);
        p.mark_output(loss);
        (p, x, w, b, target, loss)
    }

    fn mlp_bindings(p: &TeProgram, seed: u64) -> HashMap<TensorId, Tensor> {
        p.free_tensors()
            .into_iter()
            .enumerate()
            .map(|(i, id)| {
                (
                    id,
                    Tensor::random(p.tensor(id).shape.clone(), seed + i as u64),
                )
            })
            .collect()
    }

    #[test]
    fn mlp_weight_gradient_matches_finite_differences() {
        let (p, _x, w, _b, _t, loss) = mlp();
        let binds = mlp_bindings(&p, 7);
        check_gradient(&p, loss, w, &binds, 2e-2);
    }

    #[test]
    fn mlp_bias_gradient_matches_finite_differences() {
        let (p, _x, _w, b, _t, loss) = mlp();
        let binds = mlp_bindings(&p, 11);
        check_gradient(&p, loss, b, &binds, 2e-2);
    }

    #[test]
    fn mlp_input_gradient_matches_finite_differences() {
        let (p, x, _w, _b, _t, loss) = mlp();
        let binds = mlp_bindings(&p, 13);
        check_gradient(&p, loss, x, &binds, 2e-2);
    }

    #[test]
    fn unary_chain_gradients() {
        // loss = sum(tanh(sigmoid(exp(x))))
        let mut p = TeProgram::new();
        let x = p.add_input("x", Shape::new(vec![6]), DType::F32);
        let e = builders::exp(&mut p, "e", x);
        let s = builders::sigmoid(&mut p, "s", e);
        let t = builders::unary(&mut p, "t", UnaryOp::Tanh, s);
        let loss = builders::reduce_last(&mut p, "loss", ReduceOp::Sum, t);
        p.mark_output(loss);
        let binds: HashMap<_, _> = [(x, Tensor::random(Shape::new(vec![6]), 3))]
            .into_iter()
            .collect();
        check_gradient(&p, loss, x, &binds, 2e-2);
    }

    #[test]
    fn division_gradients() {
        // loss = sum(a / b)
        let mut p = TeProgram::new();
        let a = p.add_input("a", Shape::new(vec![5]), DType::F32);
        let b = p.add_input("b", Shape::new(vec![5]), DType::F32);
        let d = builders::binary(&mut p, "div", BinaryOp::Div, a, b);
        let loss = builders::reduce_last(&mut p, "loss", ReduceOp::Sum, d);
        p.mark_output(loss);
        let mut binds = HashMap::new();
        binds.insert(a, Tensor::random(Shape::new(vec![5]), 5));
        // keep b away from zero
        binds.insert(b, Tensor::random(Shape::new(vec![5]), 6).map(|v| v + 2.5));
        check_gradient(&p, loss, a, &binds, 2e-2);
        check_gradient(&p, loss, b, &binds, 2e-2);
    }

    #[test]
    fn non_scalar_loss_is_rejected() {
        let mut p = TeProgram::new();
        let x = p.add_input("x", Shape::new(vec![4]), DType::F32);
        let y = builders::relu(&mut p, "r", x);
        p.mark_output(y);
        assert!(matches!(
            backward(&p, y, &[x]),
            Err(GradError::LossNotScalar { .. })
        ));
    }

    #[test]
    fn unsupported_pattern_is_reported() {
        let mut p = TeProgram::new();
        let x = p.add_input("x", Shape::new(vec![4, 8]), DType::F32);
        let s = builders::softmax(&mut p, "sm", x); // max-reduction inside
        let t = builders::transpose(&mut p, "t", s, &[1, 0]);
        let r1 = builders::reduce_last(&mut p, "r1", ReduceOp::Sum, t);
        let loss = builders::reduce_last(&mut p, "loss", ReduceOp::Sum, r1);
        p.mark_output(loss);
        let err = backward(&p, loss, &[x]).unwrap_err();
        assert!(err.to_string().contains("cannot differentiate"), "{err}");
    }

    #[test]
    fn saved_activations_are_backward_inputs() {
        // §9: intermediates must be kept in global memory for training —
        // every saved tensor enters the backward program as an Input.
        let (p, _x, w, _b, _t, loss) = mlp();
        let g = backward(&p, loss, &[w]).unwrap();
        for &sid in g.saved.values() {
            assert_eq!(g.program.tensor(sid).kind, TensorKind::Input);
        }
        assert!(!g.saved.is_empty());
    }
}
