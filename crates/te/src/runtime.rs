//! Wavefront-parallel runtime for compiled TE programs.
//!
//! PR 2's VM parallelized only *within* one TE (chunked output ranges on
//! fresh scoped threads) and executed TEs strictly one at a time. This
//! module adds the missing inter-TE dimension, following the paper's
//! global-analysis theme: the TE dependency graph is topologically
//! levelled into **wavefronts** ([`ExecPlan`]), every TE in a level is
//! independent of the others, and all their output chunks are submitted
//! together to a persistent work-stealing [`ThreadPool`] — so a large
//! matmul no longer idles the pool while small element-wise TEs wait, and
//! no threads are spawned per evaluation.
//!
//! A [`BufferArena`] recycles intermediate buffers: the plan records, per
//! level, which tensors die (their last consumer has run), and those
//! buffers are returned to the arena for reuse by later levels and by
//! subsequent `eval` calls.
//!
//! **Determinism.** Every output element is computed by the same
//! `run_chunk` code as the serial path, writing disjoint slices; element
//! values never depend on which worker computes them or on buffer
//! provenance (each element is written exactly once before any read). So
//! results are bit-identical across pool sizes, arena on/off, and the
//! naive interpreter — the `runtime_determinism` suite and the testkit
//! `CrossEvaluator` oracle stage enforce this.
//!
//! **Errors.** Which TEs fail (and at which element) depends only on
//! index expressions, never on data, but *discovery order* under
//! wavefront execution differs from the interpreter's definition order.
//! To keep the error contract exact, any failing evaluation discards its
//! partial results and re-runs serially in TE definition order, which
//! reproduces the interpreter's error bit for bit.

use crate::arena::{ArenaStats, BufferArena};
use crate::compile::{CompiledProgram, CompiledTe};
use crate::interp::EvalError;
use crate::kernels::{env_kernel_tier, ExecOpts, KernelStats};
use crate::pool::{PoolStats, ThreadPool};
use crate::program::{TensorId, TensorKind};
use crate::vm::{detected_parallelism, env_threads, run_chunk, thread_count, SERIAL_THRESHOLD};
use souffle_tensor::Tensor;
use souffle_trace::{SpanId, Tracer};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Target number of stealable chunks per execution stream; more chunks
/// than streams lets stealing balance uneven TE costs within a level.
const TASKS_PER_THREAD: usize = 4;

/// Synthetic Chrome-trace lane base for per-TE spans: members of one
/// wavefront level get lanes `BASE, BASE+1, …` so they render as parallel
/// tracks rather than stacking on the coordinator's thread.
const TRACE_LANE_BASE: u64 = 1000;

/// A wavefront execution plan for one [`CompiledProgram`]: TEs grouped
/// into dependency levels, plus per-level lists of tensors whose last
/// consumer is in that level (the arena recycles those).
///
/// Build with [`ExecPlan::from_compiled`] (derives levels and liveness
/// from the compiled program's own def-use edges) or
/// [`ExecPlan::with_levels_and_last_use`] (levels and liveness supplied
/// by `souffle-analysis`, validated against the program).
#[derive(Debug, Clone)]
pub struct ExecPlan {
    /// TE indices (into [`CompiledProgram::tes`]) per level; every input
    /// of a level-`k` TE is produced at a level `< k`.
    levels: Vec<Vec<usize>>,
    /// Tensor-table indices that die after each level.
    free_after: Vec<Vec<usize>>,
}

impl ExecPlan {
    /// Derives the plan from the program's def-use edges: each TE's level
    /// is one more than the deepest of its producers (longest-path
    /// levelling, the same rule as `souffle-analysis`'s `TeGraph`).
    pub fn from_compiled(cp: &CompiledProgram) -> ExecPlan {
        let producer = producer_map(cp);
        let mut level_of = vec![0usize; cp.tes.len()];
        for (i, te) in cp.tes.iter().enumerate() {
            let lvl = te
                .inputs
                .iter()
                .filter_map(|tid| producer[tid.0])
                .map(|p| level_of[p] + 1)
                .max()
                .unwrap_or(0);
            level_of[i] = lvl;
        }
        let last_use = last_consumer_map(cp);
        ExecPlan::build(cp, &level_of, &last_use)
    }

    /// Builds a plan from externally computed levels and liveness (e.g.
    /// `souffle-analysis`'s dependence wavefronts and live ranges).
    ///
    /// `level_of[i]` is the wavefront of TE `i`; `last_use[t]` is the
    /// index of the last TE consuming tensor `t` (`None` when nothing
    /// consumes it). Free (bound) tensors and `Output`-kind tensors are
    /// never recycled regardless of `last_use`.
    ///
    /// # Panics
    ///
    /// Panics if the levels or liveness contradict the program: a TE
    /// scheduled no later than one of its producers, or a tensor marked
    /// dead before its actual last consumer has run. (Both would make
    /// execution read garbage, so they are programming errors, not
    /// recoverable conditions.)
    pub fn with_levels_and_last_use(
        cp: &CompiledProgram,
        level_of: &[usize],
        last_use: &[Option<usize>],
    ) -> ExecPlan {
        assert_eq!(
            level_of.len(),
            cp.tes.len(),
            "one level per TE required ({} TEs, {} levels)",
            cp.tes.len(),
            level_of.len()
        );
        assert_eq!(
            last_use.len(),
            cp.tensors.len(),
            "one last-use entry per tensor required"
        );
        let producer = producer_map(cp);
        for (i, te) in cp.tes.iter().enumerate() {
            for tid in &te.inputs {
                if let Some(p) = producer[tid.0] {
                    assert!(
                        level_of[p] < level_of[i],
                        "invalid wavefront levels: TE {} (level {}) consumes TE {} (level {})",
                        cp.tes[i].name,
                        level_of[i],
                        cp.tes[p].name,
                        level_of[p]
                    );
                }
            }
        }
        let actual = last_consumer_map(cp);
        for (t, &claimed) in last_use.iter().enumerate() {
            if let (Some(a), claimed) = (actual[t], claimed) {
                let claimed_lvl = claimed.map(|j| level_of[j]);
                assert!(
                    claimed_lvl.is_some_and(|c| c >= level_of[a]),
                    "liveness disagrees with program: tensor {} last read by TE {} (level {}), \
                     but claimed last use is {:?}",
                    cp.tensors[t].name,
                    cp.tes[a].name,
                    level_of[a],
                    claimed_lvl
                );
            }
        }
        ExecPlan::build(cp, level_of, last_use)
    }

    fn build(cp: &CompiledProgram, level_of: &[usize], last_use: &[Option<usize>]) -> ExecPlan {
        let n_levels = level_of.iter().map(|l| l + 1).max().unwrap_or(0);
        let mut levels = vec![Vec::new(); n_levels];
        for (i, &lvl) in level_of.iter().enumerate() {
            levels[lvl].push(i);
        }
        let mut free_after = vec![Vec::new(); n_levels];
        let is_free: Vec<bool> = {
            let mut v = vec![false; cp.tensors.len()];
            for id in cp.free_tensors() {
                v[id.0] = true;
            }
            v
        };
        for (i, te) in cp.tes.iter().enumerate() {
            let t = te.output.0;
            if cp.tensors[t].kind == TensorKind::Output || is_free[t] {
                continue;
            }
            let dead_at = last_use[t].map_or(level_of[i], |j| level_of[j]);
            free_after[dead_at].push(t);
        }
        ExecPlan { levels, free_after }
    }

    /// TE indices per wavefront level.
    pub fn levels(&self) -> &[Vec<usize>] {
        &self.levels
    }

    /// Number of wavefront levels (the critical-path length).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }
}

fn producer_map(cp: &CompiledProgram) -> Vec<Option<usize>> {
    let mut producer = vec![None; cp.tensors.len()];
    for (i, te) in cp.tes.iter().enumerate() {
        producer[te.output.0] = Some(i);
    }
    producer
}

fn last_consumer_map(cp: &CompiledProgram) -> Vec<Option<usize>> {
    let mut last = vec![None; cp.tensors.len()];
    for (i, te) in cp.tes.iter().enumerate() {
        for tid in &te.inputs {
            last[tid.0] = Some(i);
        }
    }
    last
}

/// Configuration for a [`Runtime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeOptions {
    /// Execution streams (workers + the calling thread). `None` resolves
    /// via [`thread_count`] (`SOUFFLE_EVAL_THREADS`, else machine
    /// parallelism).
    pub threads: Option<usize>,
    /// Recycle intermediate buffers through the [`BufferArena`].
    pub arena: bool,
    /// Upper bound on the execution streams an `eval` actually uses.
    /// `None` caps at the machine's detected parallelism (or an explicit
    /// `SOUFFLE_EVAL_THREADS`, whichever is larger) — so an over-sized
    /// pool on a narrow machine falls back to inline execution instead of
    /// paying cross-thread handoffs that cannot run concurrently anyway.
    /// `Some(n)` pins the cap, forcing pool scheduling even past the
    /// detected parallelism (tests use this to exercise pools on
    /// single-core machines).
    pub max_parallelism: Option<usize>,
    /// Kernel-tier mode for TE dispatch ([`crate::kernels`]): `Some(true)`
    /// forces the specialized native kernels, `Some(false)` forces pure
    /// bytecode, `None` resolves via `SOUFFLE_KERNEL_TIER` (on when
    /// unset). Results are bit-identical either way — the differential
    /// suites force both sides.
    pub kernel_tier: Option<bool>,
    /// Relax `Sum` reduction order in the specialized dot kernels
    /// (multi-lane partial accumulators). Changes float results; off by
    /// default and excluded from every bit-identity oracle.
    pub fast_math: bool,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            threads: None,
            arena: true,
            max_parallelism: None,
            kernel_tier: None,
            fast_math: false,
        }
    }
}

/// Combined runtime counters: arena reuse/allocation/high-water plus pool
/// task/steal/queue-depth stats. Snapshot via [`Runtime::stats`], or
/// drain per evaluation via [`Runtime::take_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Buffer-arena counters.
    pub arena: ArenaStats,
    /// Thread-pool counters (all zero for single-threaded runtimes).
    pub pool: PoolStats,
    /// Kernel-tier dispatch counters (all zero when the tier is off).
    pub kernels: KernelStats,
}

/// The persistent evaluation runtime: one work-stealing pool plus one
/// buffer arena, reused across every `eval` call made through it.
///
/// A runtime with `threads == 1` owns no pool and executes inline; the
/// level loop, chunking, and arena behave identically, so results are
/// bit-identical across pool sizes by construction.
#[derive(Debug)]
pub struct Runtime {
    threads: usize,
    /// Resolved parallelism cap ([`RuntimeOptions::max_parallelism`]);
    /// evaluation uses `threads.min(slots)` streams.
    slots: usize,
    /// `Some` iff `threads > 1`; sized to `threads - 1` workers (the
    /// scope-owning thread is the remaining execution stream). The pool
    /// may exist yet stay idle when `slots` caps execution to one stream.
    pool: Option<ThreadPool>,
    arena: Mutex<BufferArena>,
    arena_enabled: bool,
    /// [`RuntimeOptions::kernel_tier`], resolved per eval (the env
    /// fallback is re-read so CI can sweep `SOUFFLE_KERNEL_TIER`).
    kernel_tier: Option<bool>,
    fast_math: bool,
    /// Kernel dispatch counters, updated once per wavefront level by the
    /// coordinator thread (selection is static, so counts never depend on
    /// chunking or pool size).
    kernel_stats: Mutex<KernelStats>,
    /// The process-global runtime re-reads `SOUFFLE_EVAL_THREADS` on
    /// every call (tests toggle it); explicitly sized runtimes do not.
    honor_env: bool,
}

impl Default for Runtime {
    fn default() -> Self {
        Runtime::new()
    }
}

impl Runtime {
    /// Runtime with default options (machine thread count, arena on).
    pub fn new() -> Runtime {
        Runtime::with_options(RuntimeOptions::default())
    }

    /// Runtime with exactly `threads` execution streams and the arena on.
    /// The parallelism cap is pinned to `threads`, so the pool is
    /// exercised even on machines with fewer cores (the historical
    /// behavior every pool test relies on).
    pub fn with_threads(threads: usize) -> Runtime {
        Runtime::with_options(RuntimeOptions {
            threads: Some(threads),
            max_parallelism: Some(threads),
            ..RuntimeOptions::default()
        })
    }

    /// Runtime with explicit options.
    pub fn with_options(opts: RuntimeOptions) -> Runtime {
        let threads = opts.threads.unwrap_or_else(thread_count).max(1);
        let slots = opts
            .max_parallelism
            .unwrap_or_else(|| detected_parallelism().max(env_threads().unwrap_or(1)))
            .max(1);
        Runtime {
            threads,
            slots,
            pool: (threads > 1).then(|| ThreadPool::new(threads - 1)),
            arena: Mutex::new(BufferArena::new()),
            arena_enabled: opts.arena,
            kernel_tier: opts.kernel_tier,
            fast_math: opts.fast_math,
            kernel_stats: Mutex::new(KernelStats::default()),
            honor_env: false,
        }
    }

    /// Configured execution streams (pool workers + calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execution streams the next `eval` will actually use: the
    /// configured thread count capped at the resolved
    /// [`RuntimeOptions::max_parallelism`]. On a machine narrower than
    /// the configured pool this is smaller than [`Runtime::threads`] and
    /// evaluation runs inline — cross-thread handoffs cannot help when
    /// the streams cannot run concurrently. An explicit
    /// `SOUFFLE_EVAL_THREADS` on the env-honoring global runtime is taken
    /// verbatim (uncapped) so pinned CI runs still exercise the pool.
    pub fn effective_streams(&self) -> usize {
        if self.honor_env {
            match env_threads() {
                Some(n) => n,
                None => thread_count().min(self.slots),
            }
        } else {
            self.threads.min(self.slots)
        }
        .max(1)
    }

    /// Whether intermediate buffers are recycled across TEs and calls.
    pub fn arena_enabled(&self) -> bool {
        self.arena_enabled
    }

    /// Whether the next `eval` dispatches to the specialized kernel tier:
    /// the explicit [`RuntimeOptions::kernel_tier`] if set, otherwise the
    /// `SOUFFLE_KERNEL_TIER` environment variable, otherwise on.
    pub fn kernels_enabled(&self) -> bool {
        self.kernel_tier.or_else(env_kernel_tier).unwrap_or(true)
    }

    /// Whether relaxed-reduction fast math is enabled on this runtime.
    pub fn fast_math(&self) -> bool {
        self.fast_math
    }

    fn exec_opts(&self) -> ExecOpts {
        ExecOpts {
            kernels: self.kernels_enabled(),
            fast_math: self.fast_math,
        }
    }

    /// Cumulative arena reuse/allocation counters for this runtime.
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.lock().expect("arena lock poisoned").stats()
    }

    /// Pool scheduling counters (zero for a single-threaded runtime).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool
            .as_ref()
            .map(ThreadPool::stats)
            .unwrap_or_default()
    }

    /// Arena + pool counters accumulated since runtime creation or the
    /// last [`Runtime::take_stats`].
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats {
            arena: self.arena_stats(),
            pool: self.pool_stats(),
            kernels: *self.kernel_stats.lock().expect("kernel stats poisoned"),
        }
    }

    /// Drains both counter sets, returning what was accumulated and
    /// starting a fresh window. Before this existed, `BufferArena`
    /// counters accumulated across `eval` calls with no way to reset, so
    /// any per-evaluation reading (and the tracer counters derived from
    /// it) double-counted earlier runs.
    pub fn take_stats(&self) -> RuntimeStats {
        RuntimeStats {
            arena: self.arena.lock().expect("arena lock poisoned").take_stats(),
            pool: self
                .pool
                .as_ref()
                .map(ThreadPool::take_stats)
                .unwrap_or_default(),
            kernels: std::mem::take(&mut *self.kernel_stats.lock().expect("kernel stats poisoned")),
        }
    }

    /// Evaluates `cp`, returning **output tensors only** (intermediates
    /// are recycled through the arena). Levels come from
    /// [`ExecPlan::from_compiled`]; use [`Runtime::eval_with_plan`] to
    /// supply analysis-derived levels and liveness.
    ///
    /// # Errors
    ///
    /// Exactly the interpreter's [`EvalError`]s, in the interpreter's
    /// order (failing runs fall back to serial definition-order
    /// execution to guarantee this).
    pub fn eval(
        &self,
        cp: &CompiledProgram,
        bindings: &HashMap<TensorId, Tensor>,
    ) -> Result<HashMap<TensorId, Tensor>, EvalError> {
        self.eval_inner(cp, &ExecPlan::from_compiled(cp), bindings, false, None)
    }

    /// [`Runtime::eval`] recording an `eval` span (with per-level
    /// `level:<k>` children and per-TE `te:<name>` grandchildren) into
    /// `tracer`, nested under `parent` when given.
    ///
    /// Span *structure* is recorded by the calling thread in plan order,
    /// so it is identical for every pool size; only durations (gathered
    /// from the workers) vary. Results are bit-identical to
    /// [`Runtime::eval`] — tracing never touches data.
    ///
    /// # Errors
    ///
    /// Same contract as [`Runtime::eval`].
    pub fn eval_traced(
        &self,
        cp: &CompiledProgram,
        bindings: &HashMap<TensorId, Tensor>,
        tracer: &Tracer,
        parent: Option<SpanId>,
    ) -> Result<HashMap<TensorId, Tensor>, EvalError> {
        self.eval_inner(
            cp,
            &ExecPlan::from_compiled(cp),
            bindings,
            false,
            Some((tracer, parent)),
        )
    }

    /// [`Runtime::eval_traced`] with a caller-supplied [`ExecPlan`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Runtime::eval`].
    pub fn eval_with_plan_traced(
        &self,
        cp: &CompiledProgram,
        plan: &ExecPlan,
        bindings: &HashMap<TensorId, Tensor>,
        tracer: &Tracer,
        parent: Option<SpanId>,
    ) -> Result<HashMap<TensorId, Tensor>, EvalError> {
        self.eval_inner(cp, plan, bindings, false, Some((tracer, parent)))
    }

    /// [`Runtime::eval_keeping_intermediates_with_plan`] recording spans
    /// into `tracer` (see [`Runtime::eval_traced`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`Runtime::eval`].
    pub fn eval_keeping_intermediates_with_plan_traced(
        &self,
        cp: &CompiledProgram,
        plan: &ExecPlan,
        bindings: &HashMap<TensorId, Tensor>,
        tracer: &Tracer,
        parent: Option<SpanId>,
    ) -> Result<HashMap<TensorId, Tensor>, EvalError> {
        self.eval_inner(cp, plan, bindings, true, Some((tracer, parent)))
    }

    /// [`Runtime::eval`] with a caller-supplied [`ExecPlan`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Runtime::eval`].
    pub fn eval_with_plan(
        &self,
        cp: &CompiledProgram,
        plan: &ExecPlan,
        bindings: &HashMap<TensorId, Tensor>,
    ) -> Result<HashMap<TensorId, Tensor>, EvalError> {
        self.eval_inner(cp, plan, bindings, false, None)
    }

    /// Evaluates `cp` keeping every TE-produced tensor (the
    /// [`CompiledProgram::eval`] compatibility contract, mirroring
    /// [`crate::interp::eval_program`]). No buffers are recycled during
    /// the run since all of them escape.
    ///
    /// # Errors
    ///
    /// Same contract as [`Runtime::eval`].
    pub fn eval_keeping_intermediates(
        &self,
        cp: &CompiledProgram,
        bindings: &HashMap<TensorId, Tensor>,
    ) -> Result<HashMap<TensorId, Tensor>, EvalError> {
        self.eval_inner(cp, &ExecPlan::from_compiled(cp), bindings, true, None)
    }

    /// [`Runtime::eval_keeping_intermediates`] with a caller-supplied
    /// plan.
    ///
    /// # Errors
    ///
    /// Same contract as [`Runtime::eval`].
    pub fn eval_keeping_intermediates_with_plan(
        &self,
        cp: &CompiledProgram,
        plan: &ExecPlan,
        bindings: &HashMap<TensorId, Tensor>,
    ) -> Result<HashMap<TensorId, Tensor>, EvalError> {
        self.eval_inner(cp, plan, bindings, true, None)
    }

    fn eval_inner(
        &self,
        cp: &CompiledProgram,
        plan: &ExecPlan,
        bindings: &HashMap<TensorId, Tensor>,
        keep_all: bool,
        trace: Option<(&Tracer, Option<SpanId>)>,
    ) -> Result<HashMap<TensorId, Tensor>, EvalError> {
        enum Slot<'a> {
            Empty,
            Bound(&'a Tensor),
            Owned(Vec<f32>),
        }
        let mut slots: Vec<Slot> = (0..cp.tensors.len()).map(|_| Slot::Empty).collect();
        for &id in cp.free_tensors() {
            let info = cp.tensor(id);
            let t = bindings.get(&id).ok_or_else(|| EvalError::Unbound {
                tensor: id,
                name: info.name.clone(),
            })?;
            if t.shape() != &info.shape {
                return Err(EvalError::ShapeMismatch {
                    tensor: id,
                    name: info.name.clone(),
                });
            }
            slots[id.0] = Slot::Bound(t);
        }
        let threads = self.effective_streams();
        let recycle = self.arena_enabled && !keep_all;
        let exec = self.exec_opts();

        // Tracing: the coordinator records every span (eval → level:<k> →
        // te:<name>) in plan order so the tree structure is identical for
        // every pool size; workers only contribute wall-clock timestamps
        // via the per-TE atomics below.
        let tracing = trace.filter(|(t, _)| t.is_enabled());
        let tr: Option<&Tracer> = tracing.map(|(t, _)| t);
        let eval_span = tracing.map(|(t, parent)| t.span_under("eval", parent));

        for (lvl, tes) in plan.levels.iter().enumerate() {
            let level_span = eval_span.as_ref().map(|e| e.child(&format!("level:{lvl}")));
            let level_t0 = tr.map_or(0, Tracer::now_ns);
            // (earliest chunk start, latest chunk end) per level member.
            let times: Vec<(AtomicU64, AtomicU64)> = if tr.is_some() {
                (0..tes.len())
                    .map(|_| (AtomicU64::new(u64::MAX), AtomicU64::new(0)))
                    .collect()
            } else {
                Vec::new()
            };
            let failed;
            // Phase 1: acquire output buffers and gather operand slices.
            // The operand refs borrow `slots`, so result insertion waits
            // until `work` is consumed below.
            // (TE index, output buffer, operand slices) per level member.
            type WorkItem<'a> = (usize, Vec<f32>, Vec<&'a [f32]>);
            let produced: Vec<(usize, Vec<f32>)> = {
                let mut work: Vec<WorkItem> = Vec::with_capacity(tes.len());
                for &ti in tes {
                    let te = &cp.tes[ti];
                    let n = te.out_shape.numel() as usize;
                    let buf = if self.arena_enabled {
                        self.arena.lock().expect("arena lock poisoned").take(n)
                    } else {
                        vec![0.0f32; n]
                    };
                    let operands: Vec<&[f32]> = te
                        .inputs
                        .iter()
                        .map(|tid| match &slots[tid.0] {
                            Slot::Bound(t) => t.data(),
                            Slot::Owned(v) => v.as_slice(),
                            Slot::Empty => {
                                panic!("plan bug: {tid} freed or unset before its last use")
                            }
                        })
                        .collect();
                    work.push((ti, buf, operands));
                }

                // Phase 2: execute the whole level. Each chunk writes a
                // disjoint slice; values are independent of the split.
                let pooled = threads > 1 && self.pool.is_some();
                let mut results: Vec<Vec<Result<(), EvalError>>> = work
                    .iter()
                    .map(|(ti, buf, _)| {
                        let n_chunks = if pooled {
                            let c = chunk_len(&cp.tes[*ti], threads);
                            buf.len().div_ceil(c.max(1))
                        } else {
                            1
                        };
                        vec![Ok(()); n_chunks.max(1)]
                    })
                    .collect();
                let total_tasks: usize = results.iter().map(Vec::len).sum();
                if !pooled || total_tasks <= 1 {
                    for (i, ((ti, buf, ops), res)) in work.iter_mut().zip(&mut results).enumerate()
                    {
                        match tr {
                            Some(t) => {
                                let t0 = t.now_ns();
                                res[0] = run_chunk(&cp.tes[*ti], 0, buf, ops, exec);
                                let t1 = t.now_ns();
                                times[i].0.fetch_min(t0, Ordering::Relaxed);
                                times[i].1.fetch_max(t1, Ordering::Relaxed);
                            }
                            None => res[0] = run_chunk(&cp.tes[*ti], 0, buf, ops, exec),
                        }
                    }
                } else {
                    let pool = self.pool.as_ref().expect("pooled implies pool");
                    pool.scope(|s| {
                        for (i, ((ti, buf, ops), res)) in
                            work.iter_mut().zip(&mut results).enumerate()
                        {
                            let te = &cp.tes[*ti];
                            let chunk = chunk_len(te, threads);
                            let ops: &[&[f32]] = ops;
                            let t_slot = times.get(i);
                            for ((ci, slice), r) in
                                buf.chunks_mut(chunk).enumerate().zip(res.iter_mut())
                            {
                                s.spawn(move || match (tr, t_slot) {
                                    (Some(t), Some(slot)) => {
                                        let t0 = t.now_ns();
                                        *r = run_chunk(te, ci * chunk, slice, ops, exec);
                                        let t1 = t.now_ns();
                                        slot.0.fetch_min(t0, Ordering::Relaxed);
                                        slot.1.fetch_max(t1, Ordering::Relaxed);
                                    }
                                    _ => *r = run_chunk(te, ci * chunk, slice, ops, exec),
                                });
                            }
                        }
                    });
                }
                failed = results.iter().flatten().any(|r| r.is_err());
                work.into_iter().map(|(ti, buf, _)| (ti, buf)).collect()
            };

            if failed {
                // Discard this level (recycling its buffers and everything
                // computed so far) and re-run serially in definition order
                // so the reported error is exactly the interpreter's.
                if self.arena_enabled {
                    let mut arena = self.arena.lock().expect("arena lock poisoned");
                    for (_, buf) in produced {
                        arena.give(buf);
                    }
                    for slot in &mut slots {
                        if let Slot::Owned(v) = std::mem::replace(slot, Slot::Empty) {
                            arena.give(v);
                        }
                    }
                }
                return eval_serial(cp, bindings, keep_all, exec);
            }

            // Tally kernel dispatches for the level (selection is static,
            // so counts are per-TE, independent of chunking or pool size).
            // A disabled tier records nothing: absent `kernels.*` counters
            // signal pure-bytecode execution.
            if exec.kernels {
                let mut ks = self.kernel_stats.lock().expect("kernel stats poisoned");
                for &ti in tes {
                    ks.record(cp.tes[ti].tier);
                }
            }

            // Record per-TE spans in plan order (structure deterministic;
            // timing from the atomics the executing threads filled). The
            // synthetic lane tid renders level members on parallel tracks
            // in chrome://tracing.
            if let (Some(t), Some(level)) = (tr, &level_span) {
                for (slot, &ti) in tes.iter().enumerate() {
                    let start = times[slot].0.load(Ordering::Relaxed);
                    let end = times[slot].1.load(Ordering::Relaxed);
                    let (start, end) = if start == u64::MAX {
                        // Zero-element TE: no chunk ever ran; pin the
                        // empty span at the level start so it still nests.
                        (level_t0, level_t0)
                    } else {
                        (start, end)
                    };
                    t.record_span(
                        &format!("te:{}", cp.tes[ti].name),
                        level.id(),
                        start,
                        end,
                        TRACE_LANE_BASE + slot as u64,
                    );
                }
            }

            // Phase 3: publish results, then retire tensors whose last
            // consumer was in this level.
            for (ti, buf) in produced {
                slots[cp.tes[ti].output.0] = Slot::Owned(buf);
            }
            if recycle {
                let mut arena = self.arena.lock().expect("arena lock poisoned");
                for &t in &plan.free_after[lvl] {
                    if let Slot::Owned(v) = std::mem::replace(&mut slots[t], Slot::Empty) {
                        arena.give(v);
                    }
                }
            }
        }

        let mut out = HashMap::new();
        for (i, slot) in slots.into_iter().enumerate() {
            let info = &cp.tensors[i];
            match slot {
                Slot::Owned(v) => {
                    if keep_all || info.kind == TensorKind::Output {
                        out.insert(
                            TensorId(i),
                            Tensor::from_parts(info.shape.clone(), info.dtype, v),
                        );
                    } else if self.arena_enabled {
                        self.arena.lock().expect("arena lock poisoned").give(v);
                    }
                }
                Slot::Bound(t) => {
                    if info.kind == TensorKind::Output {
                        out.insert(TensorId(i), t.clone());
                    }
                }
                Slot::Empty => {}
            }
        }
        Ok(out)
    }
}

/// Chunk length (in output points) for one TE: aim for
/// [`TASKS_PER_THREAD`] stealable chunks per stream, but never chunks
/// cheaper than [`SERIAL_THRESHOLD`] body evaluations.
fn chunk_len(te: &CompiledTe, threads: usize) -> usize {
    let n = te.out_shape.numel() as usize;
    if n == 0 {
        return 1;
    }
    let reduce: usize = te.reduce.iter().product::<i64>().max(1) as usize;
    if n.saturating_mul(reduce) < SERIAL_THRESHOLD {
        return n;
    }
    let floor = (SERIAL_THRESHOLD / reduce).max(1);
    n.div_ceil(threads.max(1) * TASKS_PER_THREAD)
        .max(floor)
        .min(n)
}

/// Strictly serial evaluation in TE definition order — the interpreter's
/// error discovery order. Used as the fallback when a wavefront run hits
/// any error (the failing-element set is data-independent, so the rerun
/// fails identically, just in the canonical order).
fn eval_serial(
    cp: &CompiledProgram,
    bindings: &HashMap<TensorId, Tensor>,
    keep_all: bool,
    exec: ExecOpts,
) -> Result<HashMap<TensorId, Tensor>, EvalError> {
    let mut values: HashMap<TensorId, Tensor> = HashMap::new();
    for &id in cp.free_tensors() {
        let info = cp.tensor(id);
        let t = bindings.get(&id).ok_or_else(|| EvalError::Unbound {
            tensor: id,
            name: info.name.clone(),
        })?;
        if t.shape() != &info.shape {
            return Err(EvalError::ShapeMismatch {
                tensor: id,
                name: info.name.clone(),
            });
        }
        values.insert(id, t.clone());
    }
    for te in cp.tes() {
        let operands: Vec<&[f32]> = te
            .inputs
            .iter()
            .map(|tid| {
                values
                    .get(tid)
                    .unwrap_or_else(|| panic!("validated program: {tid} must be available"))
                    .data()
            })
            .collect();
        let mut data = vec![0.0f32; te.out_shape.numel() as usize];
        run_chunk(te, 0, &mut data, &operands, exec)?;
        let dtype = cp.tensor(te.output).dtype;
        values.insert(
            te.output,
            Tensor::from_parts(te.out_shape.clone(), dtype, data),
        );
    }
    if keep_all {
        for &id in cp.free_tensors() {
            if cp.tensor(id).kind != TensorKind::Output {
                values.remove(&id);
            }
        }
    } else {
        values.retain(|id, _| cp.tensor(*id).kind == TensorKind::Output);
    }
    Ok(values)
}

/// The process-global runtime backing [`CompiledProgram::eval`]: pool
/// sized once from [`thread_count`] at first use, arena enabled, and the
/// effective parallelism re-follows `SOUFFLE_EVAL_THREADS` per call.
pub fn global() -> &'static Runtime {
    static GLOBAL: OnceLock<Runtime> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let mut rt = Runtime::new();
        rt.honor_env = true;
        rt
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::compile::compile_program;
    use crate::interp::{eval_program, random_bindings};
    use crate::program::TeProgram;
    use souffle_tensor::{DType, Shape};

    /// mm -> (sigmoid, exp) -> add: the canonical diamond.
    fn diamond() -> TeProgram {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![12, 16]), DType::F32);
        let w = p.add_weight("W", Shape::new(vec![16, 8]), DType::F32);
        let mm = builders::matmul(&mut p, "mm", a, w);
        let s = builders::sigmoid(&mut p, "sig", mm);
        let e = builders::exp(&mut p, "exp", mm);
        let out = builders::add(&mut p, "add", s, e);
        p.mark_output(out);
        p.validate().unwrap();
        p
    }

    #[test]
    fn diamond_levels_are_wavefronts() {
        let p = diamond();
        let cp = compile_program(&p);
        let plan = ExecPlan::from_compiled(&cp);
        assert_eq!(plan.levels(), &[vec![0], vec![1, 2], vec![3]]);
        assert_eq!(plan.num_levels(), 3);
    }

    #[test]
    fn diamond_intermediates_are_freed_at_last_use() {
        let p = diamond();
        let cp = compile_program(&p);
        let plan = ExecPlan::from_compiled(&cp);
        // mm's tensor dies after level 1 (sig+exp), sig/exp after level 2.
        let mm_tensor = cp.tes()[0].output.0;
        assert_eq!(plan.free_after[1], vec![mm_tensor]);
        assert_eq!(plan.free_after[2].len(), 2);
        assert!(plan.free_after[0].is_empty());
    }

    #[test]
    fn pooled_eval_matches_interpreter_on_diamond() {
        let p = diamond();
        let cp = compile_program(&p);
        let bindings = random_bindings(&p, 42);
        let want = eval_program(&p, &bindings).unwrap();
        let rt = Runtime::with_threads(4);
        // Repeated evals recycle arena buffers; stale data must never leak.
        for _ in 0..20 {
            let got = rt.eval(&cp, &bindings).unwrap();
            for id in p.outputs() {
                let (w, g) = (&want[&id], &got[&id]);
                assert_eq!(w.shape(), g.shape());
                for (a, b) in w.data().iter().zip(g.data()) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
        assert!(rt.arena_stats().reused > 0, "arena must recycle buffers");
    }

    #[test]
    fn keep_all_matches_full_interpreter_result() {
        let p = diamond();
        let cp = compile_program(&p);
        let bindings = random_bindings(&p, 7);
        let want = eval_program(&p, &bindings).unwrap();
        let got = Runtime::with_threads(2)
            .eval_keeping_intermediates(&cp, &bindings)
            .unwrap();
        assert_eq!(want.len(), got.len());
        for (id, w) in &want {
            for (a, b) in w.data().iter().zip(got[id].data()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn invalid_levels_panic() {
        let p = diamond();
        let cp = compile_program(&p);
        let bad_levels = vec![0usize; cp.tes().len()]; // everything level 0
        let last_use = vec![None; 6];
        let r = std::panic::catch_unwind(|| {
            ExecPlan::with_levels_and_last_use(&cp, &bad_levels, &last_use)
        });
        assert!(r.is_err());
    }

    #[test]
    fn premature_liveness_panics() {
        let p = diamond();
        let cp = compile_program(&p);
        let plan = ExecPlan::from_compiled(&cp);
        let level_of = {
            let mut v = vec![0; cp.tes().len()];
            for (lvl, tes) in plan.levels().iter().enumerate() {
                for &t in tes {
                    v[t] = lvl;
                }
            }
            v
        };
        // Claim mm's tensor dies after its producer, before sig/exp read it.
        let mm_tensor = cp.tes()[0].output.0;
        let mut last_use = last_consumer_map(&cp);
        last_use[mm_tensor] = Some(0);
        let r = std::panic::catch_unwind(|| {
            ExecPlan::with_levels_and_last_use(&cp, &level_of, &last_use)
        });
        assert!(r.is_err());
    }

    /// The multi-thread-regression fix: a pool wider than the machine's
    /// useful parallelism must never schedule cross-thread handoffs — an
    /// over-sized runtime on a capped configuration runs inline, with
    /// results bit-identical to the pooled path.
    #[test]
    fn saturated_pool_never_schedules_cross_thread_handoffs() {
        let p = diamond();
        let cp = compile_program(&p);
        let bindings = random_bindings(&p, 11);
        let want = Runtime::with_threads(4).eval(&cp, &bindings).unwrap();

        let rt = Runtime::with_options(RuntimeOptions {
            threads: Some(8),
            max_parallelism: Some(1), // a single-slot machine
            ..RuntimeOptions::default()
        });
        assert_eq!(rt.threads(), 8, "configured width is reported verbatim");
        assert!(rt.pool.is_some(), "the pool exists; it must simply idle");
        assert_eq!(rt.effective_streams(), 1);
        for _ in 0..5 {
            let got = rt.eval(&cp, &bindings).unwrap();
            for id in p.outputs() {
                for (a, b) in want[&id].data().iter().zip(got[&id].data()) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
        let stats = rt.pool_stats();
        assert_eq!(stats.tasks, 0, "no task may cross a thread boundary");
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn with_threads_pins_the_parallelism_cap() {
        // Pool tests rely on with_threads(n) exercising n streams even on
        // a single-core machine.
        let rt = Runtime::with_threads(4);
        assert_eq!(rt.effective_streams(), 4);
    }

    #[test]
    fn errors_match_interpreter_under_pooling() {
        use crate::expr::ScalarExpr;
        use souffle_affine::IndexExpr;
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        // Two failing TEs; the interpreter reports the first-defined one.
        let t1 = p.add_te(
            "bad1",
            Shape::new(vec![8]),
            DType::F32,
            vec![a],
            vec![],
            None,
            ScalarExpr::input(0, vec![IndexExpr::var(0)]),
        );
        let t2 = p.add_te(
            "bad2",
            Shape::new(vec![9]),
            DType::F32,
            vec![a],
            vec![],
            None,
            ScalarExpr::input(0, vec![IndexExpr::var(0).mul(2)]),
        );
        p.mark_output(t1);
        p.mark_output(t2);
        let bindings = random_bindings(&p, 1);
        let want = eval_program(&p, &bindings).unwrap_err();
        let cp = compile_program(&p);
        for rt in [Runtime::with_threads(1), Runtime::with_threads(4)] {
            assert_eq!(rt.eval(&cp, &bindings).unwrap_err(), want);
        }
    }
}
