//! Rewrite records emitted by the transform passes and consumed by the
//! translation-validation pass (`souffle-verify`'s certifier).
//!
//! Every structural rewrite a transform performs — inlining a producer,
//! fusing a horizontal group behind a concat tensor, turning a standalone
//! reduction into an inline fold, batching — is logged here in terms of
//! *tensor ids*, which are stable across the program rebuilds the
//! transforms perform (TE ids are not: dead TEs are dropped and the rest
//! renumbered). The certifier replays each record against the before/after
//! programs: the log tells it *which* equivalences were claimed, the
//! canonical-form comparison proves they hold.

use crate::program::TensorId;
use crate::te::ReduceOp;
use std::fmt;

/// One structural rewrite performed by a transform stage.
#[derive(Debug, Clone, PartialEq)]
pub enum Rewrite {
    /// Horizontal fusion packed `members` (their output tensors) into a
    /// new `concat` tensor along axis 0; `cuts` are the cumulative row
    /// extents (so member `i` occupies rows `cuts[i-1]..cuts[i]`, with an
    /// implicit leading 0). Each member's output is re-derived as a view
    /// of `concat`.
    HorizontalGroup {
        /// Output tensors of the fused member TEs, in pack order.
        members: Vec<TensorId>,
        /// The freshly created packed tensor.
        concat: TensorId,
        /// Cumulative axis-0 extents; `cuts.last()` is the packed extent.
        cuts: Vec<i64>,
    },
    /// Vertical fusion inlined the producer of `producer_output` into the
    /// TE producing `consumer_output` (the producer TE may survive for
    /// other consumers or be removed once dead).
    Inlined {
        /// Output tensor of the inlined producer.
        producer_output: TensorId,
        /// Output tensor of the consumer the body was substituted into.
        consumer_output: TensorId,
    },
    /// Reduction fusion replaced reads of the standalone reduction
    /// producing `reduction_output` with an inline fold of `extent`
    /// iterations combining with `op` inside the TE producing
    /// `consumer_output`.
    ReductionFused {
        /// Output tensor of the standalone reduction TE.
        reduction_output: TensorId,
        /// Output tensor of the consumer that received the inline fold.
        consumer_output: TensorId,
        /// Iteration count of the fold (the reduction's axis extent).
        extent: i64,
        /// The reduction combinator carried into the fold.
        op: ReduceOp,
    },
    /// The whole program was rewritten for batch size `batch` (leading
    /// batch axis on every non-weight tensor).
    Batched {
        /// The batch extent prepended to non-weight shapes.
        batch: i64,
    },
}

/// The ordered rewrite records of one transform stage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RewriteLog {
    /// Rewrites in application order.
    pub entries: Vec<Rewrite>,
}

impl RewriteLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one rewrite.
    pub fn push(&mut self, r: Rewrite) {
        self.entries.push(r);
    }

    /// Number of recorded rewrites.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the stage performed no rewrites.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for RewriteLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            match e {
                Rewrite::HorizontalGroup {
                    members,
                    concat,
                    cuts,
                } => writeln!(
                    f,
                    "horizontal: pack {:?} -> t{} cuts {:?}",
                    members.iter().map(|t| t.0).collect::<Vec<_>>(),
                    concat.0,
                    cuts
                )?,
                Rewrite::Inlined {
                    producer_output,
                    consumer_output,
                } => writeln!(
                    f,
                    "vertical: inline t{} into t{}",
                    producer_output.0, consumer_output.0
                )?,
                Rewrite::ReductionFused {
                    reduction_output,
                    consumer_output,
                    extent,
                    op,
                } => writeln!(
                    f,
                    "reduction: fold t{} (extent {extent}, {op:?}) into t{}",
                    reduction_output.0, consumer_output.0
                )?,
                Rewrite::Batched { batch } => writeln!(f, "batch: x{batch}")?,
            }
        }
        Ok(())
    }
}
