//! Scalar expression bodies of tensor expressions.

use crate::te::ReduceOp;
use souffle_affine::IndexExpr;
use std::fmt;

/// Unary scalar operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Square root.
    Sqrt,
    /// Reciprocal square root.
    Rsqrt,
    /// Reciprocal.
    Recip,
    /// Logistic sigmoid `1 / (1 + e^-x)`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit `max(x, 0)`.
    Relu,
    /// Absolute value.
    Abs,
    /// GELU (tanh approximation), used by BERT/Swin FFNs.
    Gelu,
    /// Sigmoid-weighted linear unit `x * sigmoid(x)` (EfficientNet's swish).
    Silu,
    /// Unit step function (0 for x < 0, 1 otherwise) — the derivative of
    /// ReLU, used by the training extension.
    Heaviside,
    /// Sign function (-1, 0, 1) — the derivative of `Abs`.
    Sign,
}

impl UnaryOp {
    /// Applies the operation to a scalar.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            UnaryOp::Neg => -x,
            UnaryOp::Exp => x.exp(),
            UnaryOp::Log => x.ln(),
            UnaryOp::Sqrt => x.sqrt(),
            UnaryOp::Rsqrt => 1.0 / x.sqrt(),
            UnaryOp::Recip => 1.0 / x,
            UnaryOp::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            UnaryOp::Tanh => x.tanh(),
            UnaryOp::Relu => x.max(0.0),
            UnaryOp::Abs => x.abs(),
            UnaryOp::Gelu => {
                const C: f32 = 0.797_884_6; // sqrt(2/pi)
                0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
            }
            UnaryOp::Silu => x / (1.0 + (-x).exp()),
            UnaryOp::Heaviside => {
                if x < 0.0 {
                    0.0
                } else {
                    1.0
                }
            }
            UnaryOp::Sign => {
                if x > 0.0 {
                    1.0
                } else if x < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Number of arithmetic instructions the cost model charges.
    pub fn cost(self) -> u64 {
        match self {
            UnaryOp::Neg | UnaryOp::Abs | UnaryOp::Relu | UnaryOp::Heaviside | UnaryOp::Sign => 1,
            UnaryOp::Sqrt | UnaryOp::Rsqrt | UnaryOp::Recip => 2,
            UnaryOp::Exp | UnaryOp::Log | UnaryOp::Tanh => 4,
            UnaryOp::Sigmoid | UnaryOp::Silu => 5,
            UnaryOp::Gelu => 8,
        }
    }
}

/// Binary scalar operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
}

impl BinaryOp {
    /// Applies the operation to two scalars.
    pub fn apply(self, a: f32, b: f32) -> f32 {
        match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => a / b,
            BinaryOp::Max => a.max(b),
            BinaryOp::Min => a.min(b),
        }
    }

    /// Number of arithmetic instructions the cost model charges.
    pub fn cost(self) -> u64 {
        match self {
            BinaryOp::Div => 4,
            _ => 1,
        }
    }
}

/// Integer comparison predicates over index expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Evaluates the predicate.
    pub fn apply(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        };
        f.write_str(s)
    }
}

/// A boolean condition over the iteration space, used for the
/// `tir.if_then_else` predicates the paper inserts during horizontal
/// transformation (Fig. 3) and for boundary guards (e.g. padding).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Comparison of two index expressions.
    Cmp(CmpOp, IndexExpr, IndexExpr),
    /// Conjunction.
    And(Box<Cond>, Box<Cond>),
    /// Disjunction.
    Or(Box<Cond>, Box<Cond>),
    /// Negation.
    Not(Box<Cond>),
}

impl Cond {
    /// `lhs op rhs` shorthand.
    pub fn cmp(op: CmpOp, lhs: IndexExpr, rhs: IndexExpr) -> Self {
        Cond::Cmp(op, lhs, rhs)
    }

    /// `self && rhs`.
    pub fn and(self, rhs: Cond) -> Self {
        Cond::And(Box::new(self), Box::new(rhs))
    }

    /// `self || rhs`.
    pub fn or(self, rhs: Cond) -> Self {
        Cond::Or(Box::new(self), Box::new(rhs))
    }

    /// Evaluates the condition at a point of the iteration space.
    pub fn eval(&self, vars: &[i64]) -> bool {
        match self {
            Cond::Cmp(op, a, b) => op.apply(a.eval(vars), b.eval(vars)),
            Cond::And(a, b) => a.eval(vars) && b.eval(vars),
            Cond::Or(a, b) => a.eval(vars) || b.eval(vars),
            Cond::Not(a) => !a.eval(vars),
        }
    }

    /// Substitutes index expressions for variables in every comparison.
    pub fn substitute(&self, subs: &[IndexExpr]) -> Cond {
        match self {
            Cond::Cmp(op, a, b) => Cond::Cmp(*op, a.substitute(subs), b.substitute(subs)),
            Cond::And(a, b) => {
                Cond::And(Box::new(a.substitute(subs)), Box::new(b.substitute(subs)))
            }
            Cond::Or(a, b) => Cond::Or(Box::new(a.substitute(subs)), Box::new(b.substitute(subs))),
            Cond::Not(a) => Cond::Not(Box::new(a.substitute(subs))),
        }
    }

    /// Largest variable index referenced, or `None`.
    pub fn max_var(&self) -> Option<usize> {
        match self {
            Cond::Cmp(_, a, b) => a.max_var().max(b.max_var()),
            Cond::And(a, b) | Cond::Or(a, b) => a.max_var().max(b.max_var()),
            Cond::Not(a) => a.max_var(),
        }
    }

    /// Calls `f` for every variable occurrence in the condition.
    pub fn for_each_var(&self, f: &mut dyn FnMut(usize)) {
        match self {
            Cond::Cmp(_, a, b) => {
                a.for_each_var(f);
                b.for_each_var(f);
            }
            Cond::And(a, b) | Cond::Or(a, b) => {
                a.for_each_var(f);
                b.for_each_var(f);
            }
            Cond::Not(a) => a.for_each_var(f),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::Cmp(op, a, b) => write!(f, "{a} {op} {b}"),
            Cond::And(a, b) => write!(f, "({a} && {b})"),
            Cond::Or(a, b) => write!(f, "({a} || {b})"),
            Cond::Not(a) => write!(f, "!({a})"),
        }
    }
}

/// The scalar body of a tensor expression.
///
/// Variables referenced by embedded [`IndexExpr`]s follow the TE convention:
/// variables `0..output_rank` are iteration variables, variables
/// `output_rank..output_rank + reduce_rank` are reduction variables.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// A floating-point constant.
    Const(f32),
    /// Read of operand `operand` (position in the TE's input list) at the
    /// given index expressions.
    Input {
        /// Position in the TE's input tensor list.
        operand: usize,
        /// One index expression per dimension of the operand.
        indices: Vec<IndexExpr>,
    },
    /// The current value of an iteration/reduction variable, cast to f32
    /// (used by positional encodings and masks).
    IndexValue(IndexExpr),
    /// Unary operation.
    Unary(UnaryOp, Box<ScalarExpr>),
    /// Binary operation.
    Binary(BinaryOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// `if cond then on_true else on_false` — evaluated lazily so that the
    /// untaken branch may contain out-of-bounds accesses (padding).
    Select {
        /// Index-space predicate.
        cond: Cond,
        /// Value when the predicate holds.
        on_true: Box<ScalarExpr>,
        /// Value otherwise.
        on_false: Box<ScalarExpr>,
    },
    /// A scoped inline reduction: the fold of `body` under `op` with `var`
    /// ranging over `0..extent`. Produced by reduction fusion
    /// (tiling-with-recomputation): the consumer's body recomputes the
    /// per-slice reduced scalar inline so the intermediate tensor never hits
    /// memory. `var` is a *binder* — it is allocated above the enclosing
    /// TE's free variables (`rank + reduce.len() + nesting depth`) and is
    /// only in scope inside `body`; combine order is ascending `var`, which
    /// matches the reduction odometer of a standalone reduction TE, keeping
    /// fusion bit-exact per element.
    Reduce {
        /// Fold combinator.
        op: ReduceOp,
        /// Index of the bound variable.
        var: usize,
        /// Trip count (the bound variable ranges over `0..extent`).
        extent: i64,
        /// The folded scalar body.
        body: Box<ScalarExpr>,
    },
}

impl ScalarExpr {
    /// Shorthand: read operand `operand` at `indices`.
    pub fn input(operand: usize, indices: Vec<IndexExpr>) -> Self {
        ScalarExpr::Input { operand, indices }
    }

    /// Shorthand for a unary application.
    pub fn unary(op: UnaryOp, inner: ScalarExpr) -> Self {
        ScalarExpr::Unary(op, Box::new(inner))
    }

    /// Shorthand for a binary application.
    pub fn binary(op: BinaryOp, lhs: ScalarExpr, rhs: ScalarExpr) -> Self {
        ScalarExpr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Shorthand for a select.
    pub fn select(cond: Cond, on_true: ScalarExpr, on_false: ScalarExpr) -> Self {
        ScalarExpr::Select {
            cond,
            on_true: Box::new(on_true),
            on_false: Box::new(on_false),
        }
    }

    /// Shorthand for a scoped inline reduction.
    pub fn fold(op: ReduceOp, var: usize, extent: i64, body: ScalarExpr) -> Self {
        ScalarExpr::Reduce {
            op,
            var,
            extent,
            body: Box::new(body),
        }
    }

    /// Largest index variable referenced anywhere in the body, including
    /// fold binders. Substitutions sized from this value cover every
    /// variable position.
    pub fn max_var(&self) -> Option<usize> {
        match self {
            ScalarExpr::Const(_) => None,
            ScalarExpr::Input { indices, .. } => {
                indices.iter().filter_map(IndexExpr::max_var).max()
            }
            ScalarExpr::IndexValue(e) => e.max_var(),
            ScalarExpr::Unary(_, a) => a.max_var(),
            ScalarExpr::Binary(_, a, b) => a.max_var().max(b.max_var()),
            ScalarExpr::Select {
                cond,
                on_true,
                on_false,
            } => cond
                .max_var()
                .max(on_true.max_var())
                .max(on_false.max_var()),
            ScalarExpr::Reduce { var, body, .. } => Some(*var).max(body.max_var()),
        }
    }

    /// Largest *free* index variable referenced — like [`max_var`] but
    /// excluding fold binders and variables only used under their scope.
    /// This is what well-formedness checks compare against the TE's
    /// `rank + reduce.len()` variable budget.
    ///
    /// [`max_var`]: ScalarExpr::max_var
    pub fn max_free_var(&self) -> Option<usize> {
        let mut max = None;
        let mut bound = Vec::new();
        self.walk_free_vars(&mut |v| max = max.max(Some(v)), &mut bound);
        max
    }

    /// The set of free variables referenced in the body (sorted, deduped);
    /// fold binders and their scoped uses are excluded.
    pub fn free_vars(&self) -> Vec<usize> {
        let mut vars = Vec::new();
        let mut bound = Vec::new();
        self.walk_free_vars(
            &mut |v| {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            },
            &mut bound,
        );
        vars.sort_unstable();
        vars
    }

    fn walk_free_vars(&self, f: &mut dyn FnMut(usize), bound: &mut Vec<usize>) {
        let on_var = |bound: &[usize], f: &mut dyn FnMut(usize), v: usize| {
            if !bound.contains(&v) {
                f(v);
            }
        };
        match self {
            ScalarExpr::Const(_) => {}
            ScalarExpr::Input { indices, .. } => {
                for e in indices {
                    e.for_each_var(&mut |v| on_var(bound, f, v));
                }
            }
            ScalarExpr::IndexValue(e) => e.for_each_var(&mut |v| on_var(bound, f, v)),
            ScalarExpr::Unary(_, a) => a.walk_free_vars(f, bound),
            ScalarExpr::Binary(_, a, b) => {
                a.walk_free_vars(f, bound);
                b.walk_free_vars(f, bound);
            }
            ScalarExpr::Select {
                cond,
                on_true,
                on_false,
            } => {
                cond.for_each_var(&mut |v| on_var(bound, f, v));
                on_true.walk_free_vars(f, bound);
                on_false.walk_free_vars(f, bound);
            }
            ScalarExpr::Reduce { var, body, .. } => {
                bound.push(*var);
                body.walk_free_vars(f, bound);
                bound.pop();
            }
        }
    }

    /// All fold binders in the body as `(var, extent)` pairs, outermost
    /// first. Empty for bodies without inline reductions.
    pub fn collect_folds(&self) -> Vec<(usize, i64)> {
        let mut out = Vec::new();
        self.walk_folds(&mut out);
        out
    }

    fn walk_folds(&self, out: &mut Vec<(usize, i64)>) {
        match self {
            ScalarExpr::Const(_) | ScalarExpr::Input { .. } | ScalarExpr::IndexValue(_) => {}
            ScalarExpr::Unary(_, a) => a.walk_folds(out),
            ScalarExpr::Binary(_, a, b) => {
                a.walk_folds(out);
                b.walk_folds(out);
            }
            ScalarExpr::Select {
                on_true, on_false, ..
            } => {
                on_true.walk_folds(out);
                on_false.walk_folds(out);
            }
            ScalarExpr::Reduce {
                var, extent, body, ..
            } => {
                out.push((*var, *extent));
                body.walk_folds(out);
            }
        }
    }

    /// Whether the body contains an inline reduction.
    pub fn has_fold(&self) -> bool {
        match self {
            ScalarExpr::Const(_) | ScalarExpr::Input { .. } | ScalarExpr::IndexValue(_) => false,
            ScalarExpr::Unary(_, a) => a.has_fold(),
            ScalarExpr::Binary(_, a, b) => a.has_fold() || b.has_fold(),
            ScalarExpr::Select {
                on_true, on_false, ..
            } => on_true.has_fold() || on_false.has_fold(),
            ScalarExpr::Reduce { .. } => true,
        }
    }

    /// All `(operand, indices)` accesses in the body, in evaluation order.
    pub fn accesses(&self) -> Vec<(usize, &[IndexExpr])> {
        let mut out = Vec::new();
        self.collect_accesses(&mut out);
        out
    }

    fn collect_accesses<'a>(&'a self, out: &mut Vec<(usize, &'a [IndexExpr])>) {
        match self {
            ScalarExpr::Const(_) | ScalarExpr::IndexValue(_) => {}
            ScalarExpr::Input { operand, indices } => out.push((*operand, indices)),
            ScalarExpr::Unary(_, a) => a.collect_accesses(out),
            ScalarExpr::Binary(_, a, b) => {
                a.collect_accesses(out);
                b.collect_accesses(out);
            }
            ScalarExpr::Select {
                on_true, on_false, ..
            } => {
                on_true.collect_accesses(out);
                on_false.collect_accesses(out);
            }
            ScalarExpr::Reduce { body, .. } => body.collect_accesses(out),
        }
    }

    /// Number of arithmetic instructions one evaluation of the body costs
    /// (the numerator of the paper's compute/memory ratio, §5.3).
    pub fn arith_cost(&self) -> u64 {
        match self {
            ScalarExpr::Const(_) | ScalarExpr::Input { .. } | ScalarExpr::IndexValue(_) => 0,
            ScalarExpr::Unary(op, a) => op.cost() + a.arith_cost(),
            ScalarExpr::Binary(op, a, b) => op.cost() + a.arith_cost() + b.arith_cost(),
            ScalarExpr::Select {
                on_true, on_false, ..
            } => 1 + on_true.arith_cost().max(on_false.arith_cost()),
            // One combine per trip on top of the body.
            ScalarExpr::Reduce { extent, body, .. } => {
                (*extent).max(0) as u64 * (body.arith_cost() + 1)
            }
        }
    }

    /// Arithmetic split into `(per_point, per_slice)` instruction counts:
    /// the cost of one body evaluation with every inline fold treated as a
    /// cached read, and the cost of evaluating each fold once. Reduction
    /// fusion only inlines folds that are invariant along the innermost
    /// output axis, and the VM (like a tiled kernel) computes every fold —
    /// nested ones included — once per innermost slice and reuses it, so
    /// fold arithmetic amortizes over the innermost extent rather than
    /// recurring per point. For fold-free bodies this is
    /// `(arith_cost(), 0)`.
    pub fn arith_cost_split(&self) -> (u64, u64) {
        match self {
            ScalarExpr::Const(_) | ScalarExpr::Input { .. } | ScalarExpr::IndexValue(_) => (0, 0),
            ScalarExpr::Unary(op, a) => {
                let (p, s) = a.arith_cost_split();
                (op.cost() + p, s)
            }
            ScalarExpr::Binary(op, a, b) => {
                let (pa, sa) = a.arith_cost_split();
                let (pb, sb) = b.arith_cost_split();
                (op.cost() + pa + pb, sa + sb)
            }
            ScalarExpr::Select {
                on_true, on_false, ..
            } => {
                let (pt, st) = on_true.arith_cost_split();
                let (pf, sf) = on_false.arith_cost_split();
                (1 + pt.max(pf), st + sf)
            }
            // The fold itself is slice-cost; its body's own nested folds
            // are also cached per slice, so they count once, not once per
            // trip.
            ScalarExpr::Reduce { extent, body, .. } => {
                let (pb, sb) = body.arith_cost_split();
                (0, (*extent).max(0) as u64 * (pb + 1) + sb)
            }
        }
    }

    /// Number of input-tensor reads one evaluation of the body performs
    /// (the denominator of the compute/memory ratio, together with the
    /// output write).
    pub fn access_cost(&self) -> u64 {
        match self {
            ScalarExpr::Const(_) | ScalarExpr::IndexValue(_) => 0,
            ScalarExpr::Input { .. } => 1,
            ScalarExpr::Unary(_, a) => a.arith_cost_accesses(),
            ScalarExpr::Binary(_, a, b) => a.arith_cost_accesses() + b.arith_cost_accesses(),
            ScalarExpr::Select {
                on_true, on_false, ..
            } => on_true
                .arith_cost_accesses()
                .max(on_false.arith_cost_accesses()),
            ScalarExpr::Reduce { extent, body, .. } => {
                (*extent).max(0) as u64 * body.arith_cost_accesses()
            }
        }
    }

    fn arith_cost_accesses(&self) -> u64 {
        self.access_cost()
    }

    /// Rewrites every variable through `subs` (composition with an index
    /// map), and remaps operand slots through `operand_map`.
    ///
    /// # Panics
    ///
    /// Panics if an operand slot is missing from `operand_map`.
    pub fn substitute(
        &self,
        subs: &[IndexExpr],
        operand_map: &dyn Fn(usize) -> usize,
    ) -> ScalarExpr {
        match self {
            ScalarExpr::Const(c) => ScalarExpr::Const(*c),
            ScalarExpr::Input { operand, indices } => ScalarExpr::Input {
                operand: operand_map(*operand),
                indices: indices.iter().map(|e| e.substitute(subs)).collect(),
            },
            ScalarExpr::IndexValue(e) => ScalarExpr::IndexValue(e.substitute(subs)),
            ScalarExpr::Unary(op, a) => {
                ScalarExpr::Unary(*op, Box::new(a.substitute(subs, operand_map)))
            }
            ScalarExpr::Binary(op, a, b) => ScalarExpr::Binary(
                *op,
                Box::new(a.substitute(subs, operand_map)),
                Box::new(b.substitute(subs, operand_map)),
            ),
            ScalarExpr::Select {
                cond,
                on_true,
                on_false,
            } => ScalarExpr::Select {
                cond: cond.substitute(subs),
                on_true: Box::new(on_true.substitute(subs, operand_map)),
                on_false: Box::new(on_false.substitute(subs, operand_map)),
            },
            ScalarExpr::Reduce {
                op,
                var,
                extent,
                body,
            } => {
                // A fold binder lives above the enclosing TE's free
                // variables, so substitutions sized to the free-variable
                // budget are extended with identities through the binder.
                // Wider substitutions (e.g. the +1 shift of batching, sized
                // by `max_var`) may rename the binder, but only to another
                // plain variable — folds have no index image to compose.
                let mut subs2: Vec<IndexExpr> = subs.to_vec();
                for i in subs2.len()..=*var {
                    subs2.push(IndexExpr::Var(i));
                }
                let new_var = match &subs2[*var] {
                    IndexExpr::Var(v) => *v,
                    other => panic!("fold binder v{var} must map to a variable, got {other}"),
                };
                ScalarExpr::Reduce {
                    op: *op,
                    var: new_var,
                    extent: *extent,
                    body: Box::new(body.substitute(&subs2, operand_map)),
                }
            }
        }
    }

    /// Replaces reads of operand `slot` with `replacement`, whose variables
    /// are first substituted with the access's index expressions. This is
    /// the inlining step of vertical transformation (§6.2).
    pub fn inline_operand(&self, slot: usize, replacement: &ScalarExpr) -> ScalarExpr {
        match self {
            ScalarExpr::Const(c) => ScalarExpr::Const(*c),
            ScalarExpr::IndexValue(e) => ScalarExpr::IndexValue(e.clone()),
            ScalarExpr::Input { operand, indices } => {
                if *operand == slot {
                    // The replacement body's variables are the producer's
                    // iteration variables; the access's index expressions say
                    // how to compute them from the consumer's variables.
                    replacement.substitute(indices, &|op| op)
                } else {
                    ScalarExpr::Input {
                        operand: *operand,
                        indices: indices.clone(),
                    }
                }
            }
            ScalarExpr::Unary(op, a) => {
                ScalarExpr::Unary(*op, Box::new(a.inline_operand(slot, replacement)))
            }
            ScalarExpr::Binary(op, a, b) => ScalarExpr::Binary(
                *op,
                Box::new(a.inline_operand(slot, replacement)),
                Box::new(b.inline_operand(slot, replacement)),
            ),
            ScalarExpr::Select {
                cond,
                on_true,
                on_false,
            } => ScalarExpr::Select {
                cond: cond.clone(),
                on_true: Box::new(on_true.inline_operand(slot, replacement)),
                on_false: Box::new(on_false.inline_operand(slot, replacement)),
            },
            ScalarExpr::Reduce {
                op,
                var,
                extent,
                body,
            } => ScalarExpr::Reduce {
                op: *op,
                var: *var,
                extent: *extent,
                body: Box::new(body.inline_operand(slot, replacement)),
            },
        }
    }

    /// Remaps operand slots without touching index variables.
    pub fn remap_operands(&self, f: &dyn Fn(usize) -> usize) -> ScalarExpr {
        let n = self.max_var().map_or(0, |m| m + 1);
        let identity: Vec<IndexExpr> = (0..n).map(IndexExpr::Var).collect();
        self.substitute(&identity, f)
    }

    /// Algebraic simplification: constant folding, additive/multiplicative
    /// identities, and elimination of statically decidable selects.
    /// Applied after vertical inlining (§6.2), where composed bodies
    /// accumulate `x + 0`-style residue and guards whose predicates became
    /// constant under index substitution.
    pub fn simplified(&self) -> ScalarExpr {
        match self {
            ScalarExpr::Const(_) | ScalarExpr::Input { .. } => self.clone(),
            ScalarExpr::IndexValue(e) => match e {
                IndexExpr::Const(c) => ScalarExpr::Const(*c as f32),
                _ => ScalarExpr::IndexValue(e.clone()),
            },
            ScalarExpr::Unary(op, a) => {
                let a = a.simplified();
                if let ScalarExpr::Const(c) = a {
                    return ScalarExpr::Const(op.apply(c));
                }
                ScalarExpr::Unary(*op, Box::new(a))
            }
            ScalarExpr::Binary(op, a, b) => {
                let a = a.simplified();
                let b = b.simplified();
                match (op, &a, &b) {
                    (_, ScalarExpr::Const(x), ScalarExpr::Const(y)) => {
                        ScalarExpr::Const(op.apply(*x, *y))
                    }
                    (BinaryOp::Add, ScalarExpr::Const(z), other)
                    | (BinaryOp::Add, other, ScalarExpr::Const(z))
                        if *z == 0.0 =>
                    {
                        other.clone()
                    }
                    (BinaryOp::Sub, other, ScalarExpr::Const(z)) if *z == 0.0 => other.clone(),
                    (BinaryOp::Mul, ScalarExpr::Const(o), other)
                    | (BinaryOp::Mul, other, ScalarExpr::Const(o))
                        if *o == 1.0 =>
                    {
                        other.clone()
                    }
                    (BinaryOp::Div, other, ScalarExpr::Const(o)) if *o == 1.0 => other.clone(),
                    _ => ScalarExpr::Binary(*op, Box::new(a), Box::new(b)),
                }
            }
            ScalarExpr::Select {
                cond,
                on_true,
                on_false,
            } => {
                // A predicate over no variables is a constant.
                if cond.max_var().is_none() {
                    return if cond.eval(&[]) {
                        on_true.simplified()
                    } else {
                        on_false.simplified()
                    };
                }
                ScalarExpr::Select {
                    cond: cond.clone(),
                    on_true: Box::new(on_true.simplified()),
                    on_false: Box::new(on_false.simplified()),
                }
            }
            // Folds only simplify their body: collapsing the fold itself
            // (e.g. Sum of a constant) would change float rounding.
            ScalarExpr::Reduce {
                op,
                var,
                extent,
                body,
            } => ScalarExpr::Reduce {
                op: *op,
                var: *var,
                extent: *extent,
                body: Box::new(body.simplified()),
            },
        }
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Const(c) => write!(f, "{c}"),
            ScalarExpr::Input { operand, indices } => {
                write!(f, "in{operand}[")?;
                for (i, e) in indices.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            ScalarExpr::IndexValue(e) => write!(f, "idx({e})"),
            ScalarExpr::Unary(op, a) => write!(f, "{op:?}({a})"),
            ScalarExpr::Binary(op, a, b) => write!(f, "{op:?}({a}, {b})"),
            ScalarExpr::Select {
                cond,
                on_true,
                on_false,
            } => write!(f, "select({cond}, {on_true}, {on_false})"),
            ScalarExpr::Reduce {
                op,
                var,
                extent,
                body,
            } => write!(f, "fold_{op:?}(v{var} < {extent}, {body})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unary_apply_matches_reference() {
        assert_eq!(UnaryOp::Relu.apply(-2.0), 0.0);
        assert_eq!(UnaryOp::Relu.apply(3.0), 3.0);
        assert!((UnaryOp::Sigmoid.apply(0.0) - 0.5).abs() < 1e-6);
        assert!((UnaryOp::Silu.apply(0.0)).abs() < 1e-6);
        assert!((UnaryOp::Gelu.apply(0.0)).abs() < 1e-6);
        assert!((UnaryOp::Exp.apply(1.0) - std::f32::consts::E).abs() < 1e-5);
    }

    #[test]
    fn binary_apply() {
        assert_eq!(BinaryOp::Max.apply(2.0, 5.0), 5.0);
        assert_eq!(BinaryOp::Div.apply(1.0, 4.0), 0.25);
    }

    #[test]
    fn cond_eval_and_substitute() {
        let c = Cond::cmp(CmpOp::Lt, IndexExpr::var(0), IndexExpr::constant(4)).and(Cond::cmp(
            CmpOp::Ge,
            IndexExpr::var(1),
            IndexExpr::constant(0),
        ));
        assert!(c.eval(&[3, 0]));
        assert!(!c.eval(&[4, 0]));
        let s = c.substitute(&[IndexExpr::var(0).mul(2), IndexExpr::var(0)]);
        assert!(s.eval(&[1]));
        assert!(!s.eval(&[2]));
    }

    #[test]
    fn accesses_enumerates_inputs() {
        let body = ScalarExpr::binary(
            BinaryOp::Add,
            ScalarExpr::input(0, vec![IndexExpr::var(0)]),
            ScalarExpr::input(1, vec![IndexExpr::var(0)]),
        );
        let acc = body.accesses();
        assert_eq!(acc.len(), 2);
        assert_eq!(acc[0].0, 0);
        assert_eq!(acc[1].0, 1);
    }

    #[test]
    fn costs_count_sensibly() {
        // sigmoid(a + b) : 1 add + 5 sigmoid = 6 arith, 2 accesses
        let body = ScalarExpr::unary(
            UnaryOp::Sigmoid,
            ScalarExpr::binary(
                BinaryOp::Add,
                ScalarExpr::input(0, vec![IndexExpr::var(0)]),
                ScalarExpr::input(1, vec![IndexExpr::var(0)]),
            ),
        );
        assert_eq!(body.arith_cost(), 6);
        assert_eq!(body.access_cost(), 2);
    }

    #[test]
    fn inline_operand_substitutes_producer_body() {
        // consumer: out[i] = in0[2*i] ; producer body: in0'[i] = exp(in0[i])
        let consumer = ScalarExpr::input(0, vec![IndexExpr::var(0).mul(2)]);
        let producer =
            ScalarExpr::unary(UnaryOp::Exp, ScalarExpr::input(0, vec![IndexExpr::var(0)]));
        let fused = consumer.inline_operand(0, &producer);
        // fused should be exp(in0[2*i])
        match &fused {
            ScalarExpr::Unary(UnaryOp::Exp, inner) => match inner.as_ref() {
                ScalarExpr::Input { operand, indices } => {
                    assert_eq!(*operand, 0);
                    assert_eq!(indices[0], IndexExpr::var(0).mul(2));
                }
                other => panic!("unexpected inner {other}"),
            },
            other => panic!("unexpected fused {other}"),
        }
    }

    #[test]
    fn max_var_spans_cond_and_branches() {
        let e = ScalarExpr::select(
            Cond::cmp(CmpOp::Lt, IndexExpr::var(3), IndexExpr::constant(1)),
            ScalarExpr::input(0, vec![IndexExpr::var(1)]),
            ScalarExpr::Const(0.0),
        );
        assert_eq!(e.max_var(), Some(3));
    }

    #[test]
    fn simplify_folds_constants_and_identities() {
        // exp(1 + 0) -> const
        let e = ScalarExpr::unary(
            UnaryOp::Exp,
            ScalarExpr::binary(
                BinaryOp::Add,
                ScalarExpr::Const(1.0),
                ScalarExpr::Const(0.0),
            ),
        );
        match e.simplified() {
            ScalarExpr::Const(c) => assert!((c - std::f32::consts::E).abs() < 1e-6),
            other => panic!("expected const, got {other}"),
        }
        // x * 1 -> x ; x + 0 -> x
        let x = ScalarExpr::input(0, vec![IndexExpr::var(0)]);
        let e = ScalarExpr::binary(BinaryOp::Mul, x.clone(), ScalarExpr::Const(1.0));
        assert_eq!(e.simplified(), x);
        let e = ScalarExpr::binary(BinaryOp::Add, ScalarExpr::Const(0.0), x.clone());
        assert_eq!(e.simplified(), x);
    }

    #[test]
    fn simplify_resolves_constant_selects() {
        let x = ScalarExpr::input(0, vec![IndexExpr::var(0)]);
        let e = ScalarExpr::select(
            Cond::cmp(CmpOp::Lt, IndexExpr::constant(1), IndexExpr::constant(2)),
            x.clone(),
            ScalarExpr::Const(0.0),
        );
        assert_eq!(e.simplified(), x);
        let e = ScalarExpr::select(
            Cond::cmp(CmpOp::Gt, IndexExpr::constant(1), IndexExpr::constant(2)),
            x,
            ScalarExpr::Const(0.0),
        );
        assert_eq!(e.simplified(), ScalarExpr::Const(0.0));
    }

    #[test]
    fn simplify_keeps_variable_selects() {
        let e = ScalarExpr::select(
            Cond::cmp(CmpOp::Lt, IndexExpr::var(0), IndexExpr::constant(2)),
            ScalarExpr::input(0, vec![IndexExpr::var(0)]),
            ScalarExpr::Const(0.0),
        );
        assert_eq!(e.simplified(), e);
    }

    #[test]
    fn display_is_nonempty() {
        let e = ScalarExpr::unary(UnaryOp::Exp, ScalarExpr::input(0, vec![IndexExpr::var(0)]));
        assert!(e.to_string().contains("Exp"));
    }
}
