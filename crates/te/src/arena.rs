//! A buffer arena that recycles intermediate tensor allocations.
//!
//! Every TE evaluation produces an output buffer; on a BERT-sized program
//! that is hundreds of `Vec<f32>` allocations per inference, most of which
//! die as soon as their last consumer has run. The arena keeps those
//! buffers on a free list (keyed by capacity, best-fit) so the wavefront
//! runtime can recycle them across TEs within one evaluation *and* across
//! repeated `eval` calls — the steady-state hot path performs no heap
//! allocation for intermediates.
//!
//! Recycled buffers are handed out **without re-zeroing** the prefix that
//! was already initialized (only growth beyond the previous length is
//! zero-filled). This is safe and deterministic because the compiled
//! evaluator writes every element of a TE's output exactly once before
//! anything reads it; on evaluation errors the runtime discards partial
//! buffers and re-runs serially, so stale data can never leak into
//! results.

/// Allocation statistics for one [`BufferArena`].
///
/// `reused`/`allocated` count requests since the arena was created or
/// since the last [`BufferArena::take_stats`]; `high_water_bytes` is the
/// peak number of bytes parked on the free list over the same window
/// (i.e. memory the arena retained between evaluations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Requests served by recycling a free-listed buffer.
    pub reused: u64,
    /// Requests that had to allocate a fresh buffer.
    pub allocated: u64,
    /// Peak bytes held on the free list.
    pub high_water_bytes: u64,
}

impl ArenaStats {
    /// Fraction of requests served without allocating, in `[0, 1]`.
    pub fn reuse_rate(&self) -> f64 {
        let total = self.reused + self.allocated;
        if total == 0 {
            0.0
        } else {
            self.reused as f64 / total as f64
        }
    }
}

/// Free list of `f32` buffers with best-fit reuse.
///
/// Not internally synchronized; the runtime wraps it in a `Mutex` and only
/// touches it between wavefront levels (never on the per-element hot
/// path).
#[derive(Debug, Default)]
pub struct BufferArena {
    free: Vec<Vec<f32>>,
    stats: ArenaStats,
    /// Bytes currently parked on the free list (capacity, not length).
    parked_bytes: u64,
}

/// Cap on free-listed buffers; beyond this the smallest is dropped so a
/// burst of odd shapes cannot pin unbounded memory.
const MAX_FREE: usize = 64;

impl BufferArena {
    /// Creates an empty arena.
    pub fn new() -> BufferArena {
        BufferArena::default()
    }

    /// Returns a buffer of exactly `len` elements. Prefers the smallest
    /// free buffer whose capacity fits (best fit); allocates fresh
    /// (zeroed) storage only when none fits.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        for (i, buf) in self.free.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= len && best.is_none_or(|(_, bc)| cap < bc) {
                best = Some((i, cap));
            }
        }
        match best {
            Some((i, _)) => {
                let mut buf = self.free.swap_remove(i);
                self.parked_bytes -= cap_bytes(buf.capacity());
                if buf.len() >= len {
                    // Stale prefix is fine: every element is overwritten
                    // before any read (see module docs).
                    buf.truncate(len);
                } else {
                    buf.resize(len, 0.0);
                }
                self.stats.reused += 1;
                buf
            }
            None => {
                self.stats.allocated += 1;
                vec![0.0; len]
            }
        }
    }

    /// Returns a dead buffer to the free list for later reuse.
    pub fn give(&mut self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        self.parked_bytes += cap_bytes(buf.capacity());
        self.free.push(buf);
        if self.free.len() > MAX_FREE {
            // Drop the smallest buffer: large ones are the expensive
            // allocations worth keeping.
            if let Some((i, _)) = self
                .free
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.capacity())
            {
                let evicted = self.free.swap_remove(i);
                self.parked_bytes -= cap_bytes(evicted.capacity());
            }
        }
        self.stats.high_water_bytes = self.stats.high_water_bytes.max(self.parked_bytes);
    }

    /// Number of buffers currently on the free list.
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }

    /// Counters since creation or the last [`BufferArena::take_stats`].
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Drains the counters, returning what was accumulated and starting a
    /// fresh window: `reused`/`allocated` reset to 0 and the high-water
    /// mark restarts from the bytes *currently* parked (retained buffers
    /// still count toward the next window's peak). This is what gives
    /// per-evaluation stats instead of the pre-existing
    /// accumulate-forever behavior.
    pub fn take_stats(&mut self) -> ArenaStats {
        let out = self.stats;
        self.stats = ArenaStats {
            reused: 0,
            allocated: 0,
            high_water_bytes: self.parked_bytes,
        };
        out
    }
}

/// Bytes the allocator actually holds for a buffer of capacity `cap`
/// (capacity, not length — a truncated buffer still pins its full
/// allocation).
fn cap_bytes(cap: usize) -> u64 {
    (cap * std::mem::size_of::<f32>()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_take_allocates_zeroed() {
        let mut a = BufferArena::new();
        let b = a.take(8);
        assert_eq!(b, vec![0.0; 8]);
        assert_eq!(
            a.stats(),
            ArenaStats {
                reused: 0,
                allocated: 1,
                high_water_bytes: 0
            }
        );
    }

    #[test]
    fn give_then_take_reuses_without_rezeroing_prefix() {
        let mut a = BufferArena::new();
        let mut b = a.take(8);
        b.iter_mut().for_each(|x| *x = 7.0);
        a.give(b);
        let c = a.take(4);
        assert_eq!(a.stats().reused, 1);
        // The stale prefix survives — callers overwrite before reading.
        assert_eq!(c, vec![7.0; 4]);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn growth_beyond_previous_len_is_zero_filled() {
        let mut a = BufferArena::new();
        let mut b = a.take(4);
        b.iter_mut().for_each(|x| *x = 3.0);
        b.reserve(16); // capacity now fits a larger request
        a.give(b);
        let c = a.take(10);
        assert_eq!(a.stats().reused, 1);
        assert_eq!(&c[..4], &[3.0; 4]);
        assert_eq!(&c[4..], &[0.0; 6]);
    }

    #[test]
    fn best_fit_prefers_smallest_adequate_buffer() {
        let mut a = BufferArena::new();
        let big = a.take(100);
        let small = a.take(10);
        a.give(big);
        a.give(small);
        let got = a.take(10);
        assert!(
            got.capacity() < 100,
            "best fit should pick the small buffer"
        );
        assert_eq!(a.free_buffers(), 1);
    }

    #[test]
    fn free_list_is_bounded() {
        let mut a = BufferArena::new();
        for i in 0..(MAX_FREE + 20) {
            a.give(vec![0.0; i + 1]);
        }
        assert!(a.free_buffers() <= MAX_FREE);
    }

    #[test]
    fn high_water_tracks_peak_parked_bytes() {
        let mut a = BufferArena::new();
        let b1 = a.take(8); // 32 bytes
        let b2 = a.take(4); // 16 bytes
        assert_eq!(a.stats().high_water_bytes, 0, "nothing parked yet");
        a.give(b1);
        a.give(b2);
        let peak = a.stats().high_water_bytes;
        assert!(peak >= 48, "both buffers parked: {peak}");
        // Taking one back shrinks parked bytes but never the peak.
        let _b = a.take(8);
        assert_eq!(a.stats().high_water_bytes, peak);
    }

    #[test]
    fn take_stats_resets_window_but_keeps_parked_baseline() {
        let mut a = BufferArena::new();
        let b = a.take(8);
        a.give(b);
        let first = a.take_stats();
        assert_eq!(first.allocated, 1);
        assert!(first.high_water_bytes >= 32);
        // New window: counters zero, high-water restarts at the bytes
        // still parked (the buffer is still retained).
        let now = a.stats();
        assert_eq!(now.reused, 0);
        assert_eq!(now.allocated, 0);
        assert_eq!(now.high_water_bytes, first.high_water_bytes);
        // A reuse in the new window is counted from zero.
        let b = a.take(8);
        assert_eq!(a.stats().reused, 1);
        a.give(b);
        let second = a.take_stats();
        assert_eq!(second.reused, 1);
        assert_eq!(second.allocated, 0);
    }
}
