//! Monomorphized native kernel tier: fixed-stride inner loops under the
//! bytecode VM.
//!
//! The compiled evaluator ([`crate::vm`]) executes every TE body through
//! scalar per-element dispatch — fast relative to the tree-walking
//! interpreter, but far from what the hardware can do. This module adds a
//! third evaluator tier between the two: at compile time, [`select`]
//! pattern-matches each TE (using the body classification the compiler
//! already performs plus the strength-reduced stride tables) and, when the
//! strides are compile-time constant and unit (or zero) along the axes
//! that matter, pins a monomorphized fixed-stride Rust inner loop to the
//! TE. The VM's `run_chunk` dispatches to it instead of the bytecode loop;
//! everything else falls back to the bytecode path, with the reason
//! recorded for the `kernels.fallback.*` trace counters.
//!
//! # Supported shapes
//!
//! - **`copy_rows`** — a lone in-bounds affine load with unit (or zero)
//!   stride along the innermost output axis: whole rows become
//!   `copy_from_slice` (or a broadcast `fill`).
//! - **`ew_tile`** — straight-line element-wise bodies (no reduction, no
//!   `Select`, no generic access, no index values) whose affine accesses
//!   are all unit- or zero-stride along the innermost axis: the bytecode
//!   runs over register *tiles* of [`TILE`] lanes, so instruction dispatch
//!   amortizes 16× and the per-instruction lane loops autovectorize.
//! - **`row_dot`** — the matmul body `sum_k a[..,k] * b[k, j]` where the
//!   left factor does not vary along the innermost output axis and the
//!   right factor is unit-stride along it: an accumulator tile over the
//!   output row, updated k-outer/j-inner so the compiler keeps lanes in
//!   registers.
//! - **`slice_dot`** — inner products where both factors are unit-stride
//!   along the reduction axis (attention's `Q·Kᵀ` rows): bounds-check-free
//!   slice iteration with a single sequential accumulator.
//! - **`slice_reduce`** — single-operand reductions (softmax row max/sum,
//!   layernorm moments) with unit reduction stride: a sequential fold over
//!   a contiguous slice.
//!
//! # Bit-identity contract
//!
//! Every kernel performs, for each output element, exactly the float
//! operations of the bytecode in exactly the same order — in particular
//! the reduction combine order is untouched. Kernels may interleave work
//! *across* elements (that is where the SIMD lanes come from), which
//! cannot change any result bit because elements are computed
//! independently from pure loads. The one opt-out is
//! [`ExecOpts::fast_math`], which relaxes the *reduction order* of `Sum`
//! dots into multi-lane partial accumulators; it changes float results, is
//! off by default, and is excluded from every differential oracle.
//!
//! Selection is total and static, so per-evaluation dispatch counts are
//! deterministic; the runtime aggregates them into [`KernelStats`] and the
//! trace spine exposes them as `kernels.*` counters.

use crate::compile::{AffineAccess, BodyKind, CompiledTe, Instr};
use crate::te::ReduceOp;

/// Environment variable overriding the kernel-tier mode: `on`/`1`/`true`
/// forces the specialized tier, `off`/`0`/`false` forces pure bytecode.
/// Unset (or unparseable) means auto, which is on. An explicit
/// [`crate::RuntimeOptions::kernel_tier`] beats the environment.
pub const KERNEL_TIER_ENV: &str = "SOUFFLE_KERNEL_TIER";

/// Lanes per register tile in the element-wise kernel: one cache line of
/// f32, four SSE (two AVX) vectors, small enough that a register file of
/// tiles stays cache-resident.
const TILE: usize = 16;

/// Accumulator lanes for the `fast_math` relaxed-order dot product.
const FAST_LANES: usize = 8;

/// Below this many body evaluations (output points × reduction points) a
/// TE stays on plain bytecode: per-chunk kernel setup (scratch allocation,
/// segment bookkeeping) dominates tiny launches, which is what made MMoE's
/// tiny TEs (≤32 points: 4-wide expert GEMMs, 3-wide gates) *slower*
/// under the tier — the 0.91× regression. The measured crossover sits
/// between MMoE's 32-point bodies and LSTM's 256-point gate gemvs
/// (`[4h=32] · reduce 8`), which win 1.37× as `slice_dot`: the cutoff is
/// strict, so 256-point TEs keep their kernels and only genuinely
/// dispatch-dominated bodies fall back.
pub(crate) const SMALL_TE_POINTS: i64 = 256;

/// The `SOUFFLE_KERNEL_TIER` override, if set and parseable.
pub(crate) fn env_kernel_tier() -> Option<bool> {
    match std::env::var(KERNEL_TIER_ENV)
        .ok()?
        .trim()
        .to_ascii_lowercase()
        .as_str()
    {
        "on" | "1" | "true" => Some(true),
        "off" | "0" | "false" => Some(false),
        _ => None,
    }
}

/// Per-evaluation execution switches, resolved once by the runtime and
/// threaded into every `run_chunk` call.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ExecOpts {
    /// Dispatch to the specialized kernel tier where one was selected.
    pub kernels: bool,
    /// Relax `Sum` reduction order in dot kernels (multi-lane partial
    /// accumulators). Changes float results; never set by default.
    pub fast_math: bool,
}

/// Why a TE body stayed on the bytecode path. Stable names feed the
/// `kernels.fallback.*` trace counters and `Souffle::report()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// The body performs a generic (checked, possibly non-affine) access.
    GenericAccess,
    /// The body contains `Select` control flow (guarded padding).
    ControlFlow,
    /// The body materializes an index value per element.
    IndexValue,
    /// Rank-0 output with no reduction: nothing to vectorize over.
    ScalarOutput,
    /// An access stride along the relevant axis is neither 0 nor 1.
    Strided,
    /// More than one reduction axis (conv2d's `c·kh·kw` odometer).
    MultiAxisReduce,
    /// A reduction whose body is general bytecode, not a recognized load
    /// or product.
    ReducedBody,
    /// Too few body evaluations to amortize kernel setup; plain bytecode
    /// dispatch is faster (see [`SMALL_TE_POINTS`]).
    SmallTe,
}

impl FallbackReason {
    /// Every reason, in counter order ([`KernelStats::fallback`] indexes
    /// by this).
    pub const ALL: [FallbackReason; 8] = [
        FallbackReason::GenericAccess,
        FallbackReason::ControlFlow,
        FallbackReason::IndexValue,
        FallbackReason::ScalarOutput,
        FallbackReason::Strided,
        FallbackReason::MultiAxisReduce,
        FallbackReason::ReducedBody,
        FallbackReason::SmallTe,
    ];

    /// Stable snake_case name, used as the counter suffix.
    pub fn name(self) -> &'static str {
        match self {
            FallbackReason::GenericAccess => "generic_access",
            FallbackReason::ControlFlow => "control_flow",
            FallbackReason::IndexValue => "index_value",
            FallbackReason::ScalarOutput => "scalar_output",
            FallbackReason::Strided => "strided",
            FallbackReason::MultiAxisReduce => "multi_axis_reduce",
            FallbackReason::ReducedBody => "reduced_body",
            FallbackReason::SmallTe => "small_te",
        }
    }

    fn index(self) -> usize {
        FallbackReason::ALL
            .iter()
            .position(|r| *r == self)
            .expect("reason listed in ALL")
    }
}

/// The kernel selected for a TE at compile time (stored on
/// [`CompiledTe`]). Selection is static: the same TE always dispatches the
/// same way, which keeps dispatch counters deterministic and lets the
/// differential suites force the tier on or off without recompiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum KernelSel {
    /// Row-wise copy (`broadcast: false`) or broadcast fill
    /// (`broadcast: true`) of a single affine access.
    CopyRows { access: usize, broadcast: bool },
    /// Element-wise bytecode over register tiles of [`TILE`] lanes.
    EwTile,
    /// `sum_k a · b[.., j]`: accumulator tile over the output row.
    RowDot { a: usize, b: usize },
    /// Inner product over two unit-stride reduction slices.
    SliceDot { a: usize, b: usize },
    /// Single-operand fold over a unit-stride reduction slice.
    SliceReduce { access: usize },
    /// No specialization: run the bytecode VM path.
    Fallback(FallbackReason),
}

impl KernelSel {
    /// Stable snake_case kernel name ("bytecode" for fallbacks).
    pub(crate) fn name(self) -> &'static str {
        match self {
            KernelSel::CopyRows { .. } => "copy_rows",
            KernelSel::EwTile => "ew_tile",
            KernelSel::RowDot { .. } => "row_dot",
            KernelSel::SliceDot { .. } => "slice_dot",
            KernelSel::SliceReduce { .. } => "slice_reduce",
            KernelSel::Fallback(_) => "bytecode",
        }
    }
}

/// Picks the kernel for one compiled TE. Called once per TE at compile
/// time; the predicate only consults compile-time constants (body
/// classification, stride tables, reduction extents), never data.
pub(crate) fn select(te: &CompiledTe) -> KernelSel {
    let points = te.out_shape.numel().max(1) * te.reduce.iter().product::<i64>().max(1);
    if points < SMALL_TE_POINTS {
        return KernelSel::Fallback(FallbackReason::SmallTe);
    }
    if !te.folds.is_empty() {
        // Fusion-produced inline reductions carry per-slice state the
        // stateless kernels cannot express; the VM's fold cache handles
        // them well on the bytecode path.
        return KernelSel::Fallback(FallbackReason::ReducedBody);
    }
    match *te.reduce.as_slice() {
        [] => select_map(te),
        [_] => select_single_reduce(te),
        [_, inner] => select_two_axis_reduce(te, inner),
        _ => KernelSel::Fallback(FallbackReason::MultiAxisReduce),
    }
}

/// Selection for map-style (no-reduction) bodies.
fn select_map(te: &CompiledTe) -> KernelSel {
    let rank = te.out_shape.rank();
    if rank == 0 {
        return KernelSel::Fallback(FallbackReason::ScalarOutput);
    }
    let last = rank - 1;
    if let BodyKind::AffineLoad { access } = te.kind {
        return match te.affine[access].coeffs[last] {
            1 => KernelSel::CopyRows {
                access,
                broadcast: false,
            },
            0 => KernelSel::CopyRows {
                access,
                broadcast: true,
            },
            _ => KernelSel::Fallback(FallbackReason::Strided),
        };
    }
    // Element-wise tile: straight-line bytecode (first disqualifying
    // instruction in code order decides the reported reason) over accesses
    // that are row-uniform (stride 0) or row-contiguous (stride 1).
    for instr in &te.code {
        match instr {
            Instr::LoadGeneric { .. } => return KernelSel::Fallback(FallbackReason::GenericAccess),
            Instr::JumpIfNot { .. } | Instr::Jump { .. } => {
                return KernelSel::Fallback(FallbackReason::ControlFlow)
            }
            Instr::Index { .. } => return KernelSel::Fallback(FallbackReason::IndexValue),
            Instr::Fold { .. } => return KernelSel::Fallback(FallbackReason::ReducedBody),
            Instr::Const { .. }
            | Instr::LoadAffine { .. }
            | Instr::Unary { .. }
            | Instr::Binary { .. } => {}
        }
    }
    if te.affine.iter().any(|a| !matches!(a.coeffs[last], 0 | 1)) {
        return KernelSel::Fallback(FallbackReason::Strided);
    }
    KernelSel::EwTile
}

/// Selection for single-axis reductions.
fn select_single_reduce(te: &CompiledTe) -> KernelSel {
    let rank = te.out_shape.rank();
    let kv = te.n_vars - 1; // the lone reduction variable
    match te.kind {
        BodyKind::MulAffine { a, b } => {
            if rank >= 1 {
                let last = rank - 1;
                if te.affine[a].coeffs[last] == 0 && te.affine[b].coeffs[last] == 1 {
                    return KernelSel::RowDot { a, b };
                }
            }
            if te.affine[a].coeffs[kv] == 1 && te.affine[b].coeffs[kv] == 1 {
                return KernelSel::SliceDot { a, b };
            }
            KernelSel::Fallback(FallbackReason::Strided)
        }
        BodyKind::AffineLoad { access } => {
            if te.affine[access].coeffs[kv] == 1 {
                KernelSel::SliceReduce { access }
            } else {
                KernelSel::Fallback(FallbackReason::Strided)
            }
        }
        BodyKind::Generic => KernelSel::Fallback(FallbackReason::ReducedBody),
    }
}

/// Selection for two-axis reductions whose combined slice is contiguous:
/// unit stride along the inner reduction axis and a stride along the
/// outer axis equal to the inner extent mean the `outer × inner` region
/// is one flat slice, and the odometer's lexicographic (outer, inner)
/// combine order is exactly ascending-address order — so the sequential
/// slice fold is bit-identical to the bytecode. This catches pooling-style
/// `[h, w]` reductions that previously fell back as `multi_axis_reduce`.
fn select_two_axis_reduce(te: &CompiledTe, inner: i64) -> KernelSel {
    let kv_in = te.n_vars - 1;
    let kv_out = te.n_vars - 2;
    let contiguous = |a: &AffineAccess| a.coeffs[kv_in] == 1 && a.coeffs[kv_out] == inner;
    match te.kind {
        BodyKind::AffineLoad { access } => {
            if contiguous(&te.affine[access]) {
                KernelSel::SliceReduce { access }
            } else {
                KernelSel::Fallback(FallbackReason::MultiAxisReduce)
            }
        }
        BodyKind::MulAffine { a, b } => {
            if contiguous(&te.affine[a]) && contiguous(&te.affine[b]) {
                KernelSel::SliceDot { a, b }
            } else {
                KernelSel::Fallback(FallbackReason::MultiAxisReduce)
            }
        }
        BodyKind::Generic => KernelSel::Fallback(FallbackReason::ReducedBody),
    }
}

/// Per-kernel dispatch counters, aggregated by the runtime per
/// evaluation (one count per TE executed, deterministic because selection
/// is static). Exposed on [`crate::RuntimeStats`] and, through the trace
/// spine, as `kernels.*` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Row copy / broadcast-fill dispatches.
    pub copy_rows: u64,
    /// Element-wise tile dispatches.
    pub ew_tile: u64,
    /// Row-accumulator inner-product dispatches.
    pub row_dot: u64,
    /// Slice-pair inner-product dispatches.
    pub slice_dot: u64,
    /// Slice-fold reduction dispatches.
    pub slice_reduce: u64,
    /// Bytecode fallbacks, indexed by [`FallbackReason::ALL`].
    pub fallback: [u64; FallbackReason::ALL.len()],
}

impl KernelStats {
    pub(crate) fn record(&mut self, sel: KernelSel) {
        match sel {
            KernelSel::CopyRows { .. } => self.copy_rows += 1,
            KernelSel::EwTile => self.ew_tile += 1,
            KernelSel::RowDot { .. } => self.row_dot += 1,
            KernelSel::SliceDot { .. } => self.slice_dot += 1,
            KernelSel::SliceReduce { .. } => self.slice_reduce += 1,
            KernelSel::Fallback(r) => self.fallback[r.index()] += 1,
        }
    }

    /// Dispatches that ran a specialized kernel.
    pub fn specialized(&self) -> u64 {
        self.copy_rows + self.ew_tile + self.row_dot + self.slice_dot + self.slice_reduce
    }

    /// Dispatches that fell back to the bytecode path.
    pub fn bytecode(&self) -> u64 {
        self.fallback.iter().sum()
    }

    /// Folds another window of counters into this one.
    pub fn merge(&mut self, other: &KernelStats) {
        self.copy_rows += other.copy_rows;
        self.ew_tile += other.ew_tile;
        self.row_dot += other.row_dot;
        self.slice_dot += other.slice_dot;
        self.slice_reduce += other.slice_reduce;
        for (a, b) in self.fallback.iter_mut().zip(&other.fallback) {
            *a += b;
        }
    }

    /// The stable `kernels.*` counter set for the trace spine: one entry
    /// per kernel, the bytecode total, and one entry per fallback reason.
    /// Zero-valued entries are included; the tracer drops them.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let mut out = vec![
            ("kernels.copy_rows", self.copy_rows),
            ("kernels.ew_tile", self.ew_tile),
            ("kernels.row_dot", self.row_dot),
            ("kernels.slice_dot", self.slice_dot),
            ("kernels.slice_reduce", self.slice_reduce),
            ("kernels.bytecode", self.bytecode()),
        ];
        for (r, &n) in FallbackReason::ALL.iter().zip(&self.fallback) {
            out.push((fallback_counter_name(*r), n));
        }
        out
    }
}

/// The interned `kernels.fallback.<reason>` counter name for a reason.
fn fallback_counter_name(r: FallbackReason) -> &'static str {
    match r {
        FallbackReason::GenericAccess => "kernels.fallback.generic_access",
        FallbackReason::ControlFlow => "kernels.fallback.control_flow",
        FallbackReason::IndexValue => "kernels.fallback.index_value",
        FallbackReason::ScalarOutput => "kernels.fallback.scalar_output",
        FallbackReason::Strided => "kernels.fallback.strided",
        FallbackReason::MultiAxisReduce => "kernels.fallback.multi_axis_reduce",
        FallbackReason::ReducedBody => "kernels.fallback.reduced_body",
        FallbackReason::SmallTe => "kernels.fallback.small_te",
    }
}

/// Runs the selected kernel for output elements
/// `start .. start + out.len()` (flat row-major order). Only called when
/// a specialized kernel was selected; specialized bodies contain no
/// generic accesses, so no error is possible (the selection predicate is
/// what makes this infallible).
///
/// Chunks are arbitrary flat ranges — the runtime splits on chunk-size
/// boundaries, not row boundaries — so the row-based kernels walk
/// *segments*: the intersection of the chunk with each output row.
pub(crate) fn run(
    te: &CompiledTe,
    start: usize,
    out: &mut [f32],
    operands: &[&[f32]],
    fast_math: bool,
) {
    match te.tier {
        KernelSel::CopyRows { .. } | KernelSel::EwTile | KernelSel::RowDot { .. } => {
            run_rows(te, start, out, operands)
        }
        KernelSel::SliceDot { .. } | KernelSel::SliceReduce { .. } => {
            run_elems(te, start, out, operands, fast_math)
        }
        KernelSel::Fallback(_) => unreachable!("fallback TEs dispatch to the bytecode path"),
    }
}

/// Decodes a flat starting element into loop variables and the
/// strength-reduced per-access offsets (the same preamble as the VM's
/// `run_chunk`).
fn decode_start(te: &CompiledTe, start: usize) -> (Vec<i64>, Vec<i64>) {
    let n_iter = te.out_shape.rank();
    let dims = te.out_shape.dims();
    let mut vars = vec![0i64; te.n_vars];
    let mut rem = start as i64;
    for axis in (0..n_iter).rev() {
        vars[axis] = rem % dims[axis];
        rem /= dims[axis];
    }
    let offsets = te
        .affine
        .iter()
        .map(|a| a.base + a.coeffs.iter().zip(&vars).map(|(c, v)| c * v).sum::<i64>())
        .collect();
    (vars, offsets)
}

/// Row-segment walk shared by the row-based kernels. Each iteration hands
/// the kernel one segment — the overlap of the chunk with one output row —
/// with `vars`/`offsets` positioned at the segment start, then advances
/// the odometer by the whole segment (one multiply-add per access instead
/// of one add per element).
fn run_rows(te: &CompiledTe, start: usize, out: &mut [f32], operands: &[&[f32]]) {
    let n_iter = te.out_shape.rank();
    let dims = te.out_shape.dims();
    let last = n_iter - 1; // selection guarantees rank >= 1
    let row = dims[last];
    let (mut vars, mut offsets) = decode_start(te, start);

    // Kernel-specific scratch, allocated once per chunk.
    let mut regs: Vec<[f32; TILE]> = match te.tier {
        KernelSel::EwTile => vec![[0.0f32; TILE]; te.n_regs],
        _ => Vec::new(),
    };
    let mut acc: Vec<f32> = match te.tier {
        KernelSel::RowDot { .. } => vec![0.0f32; row as usize],
        _ => Vec::new(),
    };

    let mut idx = 0usize;
    while idx < out.len() {
        let len = ((row - vars[last]) as usize).min(out.len() - idx);
        let seg = &mut out[idx..idx + len];
        match te.tier {
            KernelSel::CopyRows { access, broadcast } => {
                let data = operands[te.affine[access].operand];
                let off = offsets[access] as usize;
                if broadcast {
                    seg.fill(data[off]);
                } else {
                    seg.copy_from_slice(&data[off..off + len]);
                }
            }
            KernelSel::EwTile => ew_tile_segment(te, &offsets, operands, &mut regs, seg),
            KernelSel::RowDot { a, b } => {
                row_dot_segment(te, a, b, &offsets, operands, &mut acc[..len], seg)
            }
            _ => unreachable!("run_rows only handles row-based kernels"),
        }
        idx += len;

        // Advance the odometer by the whole segment.
        vars[last] += len as i64;
        let step = len as i64;
        for (off, a) in offsets.iter_mut().zip(&te.affine) {
            *off += a.coeffs[last] * step;
        }
        if vars[last] == row {
            vars[last] = 0;
            for (off, a) in offsets.iter_mut().zip(&te.affine) {
                *off -= a.coeffs[last] * row;
            }
            let mut axis = last;
            loop {
                if axis == 0 {
                    break; // iteration space exhausted
                }
                axis -= 1;
                vars[axis] += 1;
                if vars[axis] < dims[axis] {
                    for (off, a) in offsets.iter_mut().zip(&te.affine) {
                        *off += a.coeffs[axis];
                    }
                    break;
                }
                vars[axis] = 0;
                for (off, a) in offsets.iter_mut().zip(&te.affine) {
                    *off -= a.coeffs[axis] * (dims[axis] - 1);
                }
            }
        }
    }
}

/// One element-wise segment: the body bytecode executed over register
/// tiles of [`TILE`] lanes. Each lane computes one output element with the
/// exact instruction sequence the scalar VM would run, so results are
/// bit-identical; the per-instruction lane loops are what autovectorizes.
fn ew_tile_segment(
    te: &CompiledTe,
    offsets: &[i64],
    operands: &[&[f32]],
    regs: &mut [[f32; TILE]],
    seg: &mut [f32],
) {
    let last = te.out_shape.rank() - 1;
    let mut pos = 0usize;
    while pos < seg.len() {
        let t = TILE.min(seg.len() - pos);
        for instr in &te.code {
            match instr {
                Instr::Const { dst, value } => regs[*dst as usize][..t].fill(*value),
                Instr::LoadAffine { dst, access } => {
                    let ai = *access as usize;
                    let a: &AffineAccess = &te.affine[ai];
                    let data = operands[a.operand];
                    let r = &mut regs[*dst as usize];
                    if a.coeffs[last] == 1 {
                        let off = (offsets[ai] + pos as i64) as usize;
                        r[..t].copy_from_slice(&data[off..off + t]);
                    } else {
                        r[..t].fill(data[offsets[ai] as usize]);
                    }
                }
                Instr::Unary { dst, op, src } => {
                    let sv = regs[*src as usize];
                    let r = &mut regs[*dst as usize];
                    for l in 0..t {
                        r[l] = op.apply(sv[l]);
                    }
                }
                Instr::Binary { dst, op, lhs, rhs } => {
                    let lv = regs[*lhs as usize];
                    let rv = regs[*rhs as usize];
                    let r = &mut regs[*dst as usize];
                    for l in 0..t {
                        r[l] = op.apply(lv[l], rv[l]);
                    }
                }
                Instr::LoadGeneric { .. }
                | Instr::Index { .. }
                | Instr::JumpIfNot { .. }
                | Instr::Jump { .. }
                | Instr::Fold { .. } => {
                    unreachable!("excluded by the ew_tile selection predicate")
                }
            }
        }
        seg[pos..pos + t].copy_from_slice(&regs[te.result as usize][..t]);
        pos += t;
    }
}

/// One inner-product segment over an output row: `acc[j]` accumulates
/// `a_k · b[k, j0+j]` with k outer and j inner, so the j-lane loop
/// autovectorizes while each output element still receives its terms in
/// exactly the scalar k order (bit-identical by construction; this is why
/// `fast_math` has nothing to relax here).
fn row_dot_segment(
    te: &CompiledTe,
    a: usize,
    b: usize,
    offsets: &[i64],
    operands: &[&[f32]],
    acc: &mut [f32],
    seg: &mut [f32],
) {
    let (aa, ab) = (&te.affine[a], &te.affine[b]);
    let (da, db) = (operands[aa.operand], operands[ab.operand]);
    let kv = te.n_vars - 1;
    let (ca, cb) = (aa.coeffs[kv], ab.coeffs[kv]);
    let ext = te.reduce[0];
    let op = te.reduce_op.expect("validated reduction");
    let len = seg.len();
    acc.fill(op.init());
    let (mut oa, mut ob) = (offsets[a], offsets[b]);
    match op {
        ReduceOp::Sum => {
            for _ in 0..ext {
                let x = da[oa as usize];
                let brow = &db[ob as usize..ob as usize + len];
                for (acc_j, &b_j) in acc.iter_mut().zip(brow) {
                    *acc_j += x * b_j;
                }
                oa += ca;
                ob += cb;
            }
        }
        _ => {
            for _ in 0..ext {
                let x = da[oa as usize];
                let brow = &db[ob as usize..ob as usize + len];
                for (acc_j, &b_j) in acc.iter_mut().zip(brow) {
                    *acc_j = op.combine(*acc_j, x * b_j);
                }
                oa += ca;
                ob += cb;
            }
        }
    }
    seg.copy_from_slice(acc);
}

/// Element walk for the slice-based reduction kernels: the standard output
/// odometer, with each element's reduction running over contiguous
/// (unit-stride) operand slices — no bounds checks, no offset updates in
/// the inner loop.
fn run_elems(te: &CompiledTe, start: usize, out: &mut [f32], operands: &[&[f32]], fast_math: bool) {
    let n_iter = te.out_shape.rank();
    let dims = te.out_shape.dims();
    // One or two reduction axes; in the two-axis case selection proved the
    // combined region is a single contiguous slice of the product extent.
    let ext: i64 = te.reduce.iter().product();
    let op = te.reduce_op.expect("validated reduction");
    if ext <= 0 {
        // Empty reduction: every element is the identity, and the operand
        // slices must never be formed (their offsets are unconstrained).
        out.fill(op.init());
        return;
    }
    let (mut vars, mut offsets) = decode_start(te, start);
    for slot in out.iter_mut() {
        *slot = match te.tier {
            KernelSel::SliceDot { a, b } => {
                let (aa, ab) = (&te.affine[a], &te.affine[b]);
                let sa = &operands[aa.operand][offsets[a] as usize..(offsets[a] + ext) as usize];
                let sb = &operands[ab.operand][offsets[b] as usize..(offsets[b] + ext) as usize];
                match op {
                    ReduceOp::Sum if fast_math => dot_relaxed(sa, sb),
                    ReduceOp::Sum => {
                        let mut acc = op.init();
                        for (&x, &y) in sa.iter().zip(sb) {
                            acc += x * y;
                        }
                        acc
                    }
                    _ => {
                        let mut acc = op.init();
                        for (&x, &y) in sa.iter().zip(sb) {
                            acc = op.combine(acc, x * y);
                        }
                        acc
                    }
                }
            }
            KernelSel::SliceReduce { access } => {
                let aa = &te.affine[access];
                let s = &operands[aa.operand]
                    [offsets[access] as usize..(offsets[access] + ext) as usize];
                match op {
                    ReduceOp::Sum if fast_math => sum_relaxed(s),
                    _ => {
                        let mut acc = op.init();
                        for &x in s {
                            acc = op.combine(acc, x);
                        }
                        acc
                    }
                }
            }
            _ => unreachable!("run_elems only handles slice-based kernels"),
        };
        // Advance the output odometer, keeping affine offsets in step.
        let mut axis = n_iter;
        loop {
            if axis == 0 {
                break;
            }
            axis -= 1;
            vars[axis] += 1;
            if vars[axis] < dims[axis] {
                for (off, a) in offsets.iter_mut().zip(&te.affine) {
                    *off += a.coeffs[axis];
                }
                break;
            }
            vars[axis] = 0;
            for (off, a) in offsets.iter_mut().zip(&te.affine) {
                *off -= a.coeffs[axis] * (dims[axis] - 1);
            }
        }
    }
}

/// Relaxed-order dot product: [`FAST_LANES`] partial accumulators plus a
/// sequential tail. Reassociates the `Sum` reduction, so results differ
/// from the strict order — only reachable behind the `fast_math` opt-in.
fn dot_relaxed(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; FAST_LANES];
    let mut ca = a.chunks_exact(FAST_LANES);
    let mut cb = b.chunks_exact(FAST_LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for l in 0..FAST_LANES {
            acc[l] += xa[l] * xb[l];
        }
    }
    let mut sum: f32 = acc.iter().sum();
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        sum += x * y;
    }
    sum
}

/// Relaxed-order slice sum (see [`dot_relaxed`]).
fn sum_relaxed(s: &[f32]) -> f32 {
    let mut acc = [0.0f32; FAST_LANES];
    let mut cs = s.chunks_exact(FAST_LANES);
    for xs in &mut cs {
        for l in 0..FAST_LANES {
            acc[l] += xs[l];
        }
    }
    let mut sum: f32 = acc.iter().sum();
    for &x in cs.remainder() {
        sum += x;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::compile::compile_program;
    use crate::program::TeProgram;
    use souffle_tensor::{DType, Shape};

    #[test]
    fn matmul_selects_row_dot() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![16, 64]), DType::F32);
        let b = p.add_weight("B", Shape::new(vec![64, 32]), DType::F32);
        let c = builders::matmul(&mut p, "mm", a, b);
        p.mark_output(c);
        let cp = compile_program(&p);
        assert!(matches!(cp.tes()[0].tier, KernelSel::RowDot { .. }));
    }

    #[test]
    fn elementwise_chain_selects_ew_tile_and_copy() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![64, 64]), DType::F32);
        let b = p.add_input("B", Shape::new(vec![64, 64]), DType::F32);
        let s = builders::add(&mut p, "add", a, b);
        let r = builders::relu(&mut p, "act", s);
        let t = builders::transpose(&mut p, "t", r, &[1, 0]);
        p.mark_output(t);
        let cp = compile_program(&p);
        assert!(matches!(cp.tes()[0].tier, KernelSel::EwTile));
        assert!(matches!(cp.tes()[1].tier, KernelSel::EwTile));
        // transpose: stride along the innermost output axis is the row
        // width, not 1 — stays on bytecode.
        assert!(matches!(
            cp.tes()[2].tier,
            KernelSel::Fallback(FallbackReason::Strided)
        ));
    }

    #[test]
    fn softmax_pieces_select_slice_reduce() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![64, 64]), DType::F32);
        let s = builders::softmax(&mut p, "sm", a);
        p.mark_output(s);
        let cp = compile_program(&p);
        let census = cp.kernel_census();
        assert!(census.slice_reduce >= 2, "row max + row sum: {census:?}");
    }

    #[test]
    fn padded_conv_falls_back_with_reasons() {
        let mut p = TeProgram::new();
        let x = p.add_input("X", Shape::new(vec![1, 4, 16, 16]), DType::F32);
        let w = p.add_weight("W", Shape::new(vec![8, 4, 3, 3]), DType::F32);
        let y = builders::conv2d(&mut p, "conv", x, w, 1, 1);
        p.mark_output(y);
        let cp = compile_program(&p);
        let census = cp.kernel_census();
        assert_eq!(census.specialized(), 0);
        assert!(census.bytecode() >= 1);
    }

    #[test]
    fn tiny_te_falls_back_as_small_te() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4, 8]), DType::F32);
        let b = p.add_input("B", Shape::new(vec![4, 8]), DType::F32);
        let s = builders::add(&mut p, "add", a, b);
        p.mark_output(s);
        let cp = compile_program(&p);
        // 32 body evaluations: launch overhead would dominate any kernel.
        assert_eq!(
            cp.tes()[0].tier,
            KernelSel::Fallback(FallbackReason::SmallTe)
        );
    }

    #[test]
    fn small_te_cutoff_counts_reduction_points() {
        // Output is only 16 elements, but each folds 512 reduction points:
        // 8192 body evaluations clear the cutoff and keep the kernel.
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![16, 512]), DType::F32);
        let s = builders::reduce_last(&mut p, "rs", ReduceOp::Sum, a);
        p.mark_output(s);
        let cp = compile_program(&p);
        assert!(matches!(cp.tes()[0].tier, KernelSel::SliceReduce { .. }));
    }

    #[test]
    fn contiguous_two_axis_reduce_selects_slice_reduce() {
        // Global-pool style `[h, w]` reduction over NCHW: unit stride
        // along w, stride `w_ext` along h — one contiguous slice per
        // output element, so the two-axis arm upgrades it from the old
        // multi_axis_reduce fallback.
        let mut p = TeProgram::new();
        let x = p.add_input("X", Shape::new(vec![2, 8, 16, 16]), DType::F32);
        let y = builders::global_avg_pool(&mut p, "pool", x);
        p.mark_output(y);
        let cp = compile_program(&p);
        let sum = cp
            .tes()
            .iter()
            .find(|te| te.reduce.len() == 2)
            .expect("pool sum TE");
        assert!(matches!(sum.tier, KernelSel::SliceReduce { .. }));
    }

    #[test]
    fn census_counters_cover_every_kernel_and_reason() {
        let stats = KernelStats::default();
        let counters = stats.counters();
        assert_eq!(counters.len(), 6 + FallbackReason::ALL.len());
        for (name, _) in counters {
            assert!(name.starts_with("kernels."), "{name}");
        }
    }
}
