//! Canonical normal form for scalar bodies — the TE-side half of the
//! translation-validation pass (`souffle-verify`'s `certify` family).
//!
//! Two bodies that compute the same function through different transform
//! histories (inlining order, select nesting, fold-binder numbering,
//! operand renumbering) normalize to the *same* expression tree, so
//! equivalence checking is structural equality on canonical forms. The
//! normal form is reached by:
//!
//! 1. algebraic simplification ([`ScalarExpr::simplified`]) — constant
//!    folding and additive/multiplicative identities;
//! 2. linear normalization of every embedded [`IndexExpr`] (affine
//!    accesses rewrite to the unique `Σ cᵢ·vᵢ + c` form, so
//!    `(v0 + s) - s` and `v0` collide);
//! 3. domain-aware select resolution: a guard provable from the variable
//!    bounds alone (interval arithmetic) is discharged and the dead
//!    branch dropped — this is what collapses the horizontal
//!    transformation's `v0 + start < cut` predicates after view
//!    composition;
//! 4. sum-of-products flattening with sorted commutative operands and
//!    like-term merging over `Add`/`Sub`/`Mul`/`Neg` (equivalence is
//!    proved in real arithmetic; bit-exactness claims are made
//!    separately, per rewrite, by the certifier);
//! 5. De Bruijn renumbering of fold binders: the binder introduced at
//!    nesting depth `d` is renamed to `base + d`, erasing the arbitrary
//!    binder numbers transforms allocate.
//!
//! Canonical forms are *compared*, never evaluated or lowered — binder
//! numbers above the TE's variable budget are fine here.

use crate::expr::{BinaryOp, Cond, ScalarExpr, UnaryOp};
use souffle_affine::IndexExpr;

/// Wide default for variables with no known bounds (saturating interval
/// arithmetic keeps these conservative rather than wrapping).
const UNKNOWN: (i64, i64) = (i64::MIN / 4, i64::MAX / 4);

/// Canonicalizes `expr` under per-variable `bounds` (index `v` holds the
/// inclusive range of variable `v`; variables past the end are treated as
/// unbounded). `binder_base` must exceed every variable referenced in
/// `expr`; fold binders are renamed to `binder_base + depth`. Two
/// expressions canonicalized with the same `bounds`/`binder_base` are
/// semantically equal (in real arithmetic) if their canonical forms are
/// structurally equal.
pub fn canonicalize(expr: &ScalarExpr, bounds: &[(i64, i64)], binder_base: usize) -> ScalarExpr {
    let mut bounds = bounds.to_vec();
    canon(&expr.simplified(), &mut bounds, binder_base, 0)
}

/// Three-valued truth of `cond` under the variable bounds: `Some(b)` when
/// interval analysis decides the predicate for *every* point of the
/// domain, `None` when it genuinely depends on the point.
pub fn prove_cond(cond: &Cond, bounds: &[(i64, i64)]) -> Option<bool> {
    match cond {
        Cond::Cmp(op, a, b) => {
            let (alo, ahi) = interval_of(a, bounds);
            let (blo, bhi) = interval_of(b, bounds);
            use crate::expr::CmpOp::*;
            match op {
                Lt => decide(ahi < blo, alo >= bhi),
                Le => decide(ahi <= blo, alo > bhi),
                Gt => decide(alo > bhi, ahi <= blo),
                Ge => decide(alo >= bhi, ahi < blo),
                Eq => decide(
                    alo == ahi && blo == bhi && alo == blo,
                    ahi < blo || alo > bhi,
                ),
                Ne => decide(
                    ahi < blo || alo > bhi,
                    alo == ahi && blo == bhi && alo == blo,
                ),
            }
        }
        Cond::And(a, b) => match (prove_cond(a, bounds), prove_cond(b, bounds)) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        Cond::Or(a, b) => match (prove_cond(a, bounds), prove_cond(b, bounds)) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        Cond::Not(a) => prove_cond(a, bounds).map(|b| !b),
    }
}

fn decide(always: bool, never: bool) -> Option<bool> {
    if always {
        Some(true)
    } else if never {
        Some(false)
    } else {
        None
    }
}

/// Interval of an index expression, padding the bounds vector so
/// variables past the known range stay unbounded instead of panicking.
fn interval_of(e: &IndexExpr, bounds: &[(i64, i64)]) -> (i64, i64) {
    match e.max_var() {
        Some(m) if m >= bounds.len() => {
            let mut padded = bounds.to_vec();
            padded.resize(m + 1, UNKNOWN);
            e.interval(&padded)
        }
        _ => e.interval(bounds),
    }
}

/// Linear normalization: affine index expressions rewrite to the unique
/// `from_linear` form; quasi-affine ones (div/mod) just simplify.
fn canon_index(e: &IndexExpr) -> IndexExpr {
    let n = e.max_var().map_or(0, |m| m + 1);
    match e.as_linear(n) {
        Some((coeffs, c)) => IndexExpr::from_linear(&coeffs, c),
        None => e.simplified(),
    }
}

fn canon_cond(c: &Cond) -> Cond {
    match c {
        Cond::Cmp(op, a, b) => Cond::Cmp(*op, canon_index(a), canon_index(b)),
        Cond::And(a, b) => Cond::And(Box::new(canon_cond(a)), Box::new(canon_cond(b))),
        Cond::Or(a, b) => Cond::Or(Box::new(canon_cond(a)), Box::new(canon_cond(b))),
        Cond::Not(a) => Cond::Not(Box::new(canon_cond(a))),
    }
}

fn canon(e: &ScalarExpr, bounds: &mut Vec<(i64, i64)>, base: usize, depth: usize) -> ScalarExpr {
    match e {
        ScalarExpr::Const(c) => ScalarExpr::Const(*c),
        ScalarExpr::Input { operand, indices } => ScalarExpr::Input {
            operand: *operand,
            indices: indices.iter().map(canon_index).collect(),
        },
        ScalarExpr::IndexValue(ix) => match canon_index(ix) {
            IndexExpr::Const(c) => ScalarExpr::Const(c as f32),
            other => ScalarExpr::IndexValue(other),
        },
        ScalarExpr::Unary(op, a) => {
            let a = canon(a, bounds, base, depth);
            match (op, &a) {
                (_, ScalarExpr::Const(c)) => ScalarExpr::Const(op.apply(*c)),
                // Negation folds into the sum-of-products coefficient.
                (UnaryOp::Neg, _) => normal_sum(
                    &ScalarExpr::Unary(UnaryOp::Neg, Box::new(a)),
                    bounds,
                    base,
                    depth,
                ),
                _ => ScalarExpr::Unary(*op, Box::new(a)),
            }
        }
        ScalarExpr::Binary(op, a, b) => {
            let a = canon(a, bounds, base, depth);
            let b = canon(b, bounds, base, depth);
            match (&a, &b) {
                (ScalarExpr::Const(x), ScalarExpr::Const(y)) => ScalarExpr::Const(op.apply(*x, *y)),
                _ => match op {
                    BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul => normal_sum(
                        &ScalarExpr::Binary(*op, Box::new(a), Box::new(b)),
                        bounds,
                        base,
                        depth,
                    ),
                    BinaryOp::Div => match &b {
                        ScalarExpr::Const(c) if *c == 1.0 => a,
                        _ => ScalarExpr::Binary(*op, Box::new(a), Box::new(b)),
                    },
                    _ => ScalarExpr::Binary(*op, Box::new(a), Box::new(b)),
                },
            }
        }
        ScalarExpr::Select {
            cond,
            on_true,
            on_false,
        } => {
            let cond = canon_cond(cond);
            match prove_cond(&cond, bounds) {
                Some(true) => canon(on_true, bounds, base, depth),
                Some(false) => canon(on_false, bounds, base, depth),
                None => {
                    let t = canon(on_true, bounds, base, depth);
                    let f = canon(on_false, bounds, base, depth);
                    if t == f {
                        t
                    } else {
                        ScalarExpr::Select {
                            cond,
                            on_true: Box::new(t),
                            on_false: Box::new(f),
                        }
                    }
                }
            }
        }
        ScalarExpr::Reduce {
            op,
            var,
            extent,
            body,
        } => {
            // De Bruijn: the binder at this nesting depth is always
            // `base + depth`, whatever number the transform allocated.
            let cv = base + depth;
            let n = body.max_var().map_or(0, |m| m + 1).max(*var + 1);
            let mut subs: Vec<IndexExpr> = (0..n).map(IndexExpr::var).collect();
            subs[*var] = IndexExpr::var(cv);
            let renamed = body.substitute(&subs, &|o| o);
            if bounds.len() <= cv {
                bounds.resize(cv + 1, UNKNOWN);
            }
            let saved = bounds[cv];
            bounds[cv] = (0, (*extent - 1).max(0));
            let cbody = canon(&renamed, bounds, base, depth + 1);
            bounds[cv] = saved;
            ScalarExpr::Reduce {
                op: *op,
                var: cv,
                extent: *extent,
                body: Box::new(cbody),
            }
        }
    }
}

/// One additive term of a flattened sum: a coefficient times a sorted
/// product of opaque (non-`Add`/`Sub`/`Mul`/`Neg`) canonical factors.
struct Term {
    coef: f32,
    factors: Vec<ScalarExpr>,
}

/// Flattens an `Add`/`Sub`/`Mul`/`Neg` tree (whose children are already
/// canonical) into sorted, like-term-merged sum-of-products and rebuilds
/// the unique left-associated expression.
fn normal_sum(
    e: &ScalarExpr,
    bounds: &mut Vec<(i64, i64)>,
    base: usize,
    depth: usize,
) -> ScalarExpr {
    let mut terms = terms_of(e, bounds, base, depth);
    for t in &mut terms {
        t.factors.sort_by_key(|f| format!("{f:?}"));
    }
    terms.sort_by_key(|t| {
        t.factors
            .iter()
            .map(|f| format!("{f:?}"))
            .collect::<Vec<_>>()
            .join("\u{1}")
    });
    // Merge adjacent like terms; drop vanished ones.
    let mut merged: Vec<Term> = Vec::with_capacity(terms.len());
    for t in terms {
        match merged.last_mut() {
            Some(last) if last.factors == t.factors => last.coef += t.coef,
            _ => merged.push(t),
        }
    }
    merged.retain(|t| t.coef != 0.0);
    if merged.is_empty() {
        return ScalarExpr::Const(0.0);
    }
    let mut out: Option<ScalarExpr> = None;
    for t in merged {
        let product = {
            let mut it = t.factors.into_iter();
            match it.next() {
                None => ScalarExpr::Const(t.coef),
                Some(first) => {
                    let p = it.fold(first, |acc, f| {
                        ScalarExpr::Binary(BinaryOp::Mul, Box::new(acc), Box::new(f))
                    });
                    if t.coef == 1.0 {
                        p
                    } else {
                        ScalarExpr::Binary(
                            BinaryOp::Mul,
                            Box::new(ScalarExpr::Const(t.coef)),
                            Box::new(p),
                        )
                    }
                }
            }
        };
        out = Some(match out {
            None => product,
            Some(acc) => ScalarExpr::Binary(BinaryOp::Add, Box::new(acc), Box::new(product)),
        });
    }
    out.expect("non-empty merged terms")
}

fn terms_of(e: &ScalarExpr, bounds: &mut Vec<(i64, i64)>, base: usize, depth: usize) -> Vec<Term> {
    match e {
        ScalarExpr::Binary(BinaryOp::Add, a, b) => {
            let mut t = terms_of(a, bounds, base, depth);
            t.extend(terms_of(b, bounds, base, depth));
            t
        }
        ScalarExpr::Binary(BinaryOp::Sub, a, b) => {
            let mut t = terms_of(a, bounds, base, depth);
            t.extend(terms_of(b, bounds, base, depth).into_iter().map(|mut x| {
                x.coef = -x.coef;
                x
            }));
            t
        }
        ScalarExpr::Binary(BinaryOp::Mul, a, b) => {
            let ta = terms_of(a, bounds, base, depth);
            let tb = terms_of(b, bounds, base, depth);
            let mut out = Vec::with_capacity(ta.len() * tb.len());
            for x in &ta {
                for y in &tb {
                    let mut factors = x.factors.clone();
                    factors.extend(y.factors.iter().cloned());
                    out.push(Term {
                        coef: x.coef * y.coef,
                        factors,
                    });
                }
            }
            out
        }
        ScalarExpr::Unary(UnaryOp::Neg, a) => terms_of(a, bounds, base, depth)
            .into_iter()
            .map(|mut x| {
                x.coef = -x.coef;
                x
            })
            .collect(),
        ScalarExpr::Const(c) => vec![Term {
            coef: *c,
            factors: Vec::new(),
        }],
        // Opaque factor: canonicalize it as its own subtree. Children
        // arriving from `canon` are canonical already and re-canonicalize
        // to themselves; factors synthesized mid-flattening get normalized
        // here.
        other => vec![Term {
            coef: 1.0,
            factors: vec![opaque(other, bounds, base, depth)],
        }],
    }
}

/// Canonicalizes an opaque factor without re-entering `normal_sum` on an
/// already-normal child (idempotence).
fn opaque(e: &ScalarExpr, bounds: &mut Vec<(i64, i64)>, base: usize, depth: usize) -> ScalarExpr {
    match e {
        ScalarExpr::Binary(BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul, _, _)
        | ScalarExpr::Unary(UnaryOp::Neg, _) => canon(e, bounds, base, depth),
        _ => e.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::te::ReduceOp;

    fn v(i: usize) -> IndexExpr {
        IndexExpr::var(i)
    }

    #[test]
    fn commutative_operands_sort() {
        let a = ScalarExpr::binary(
            BinaryOp::Add,
            ScalarExpr::input(0, vec![v(0)]),
            ScalarExpr::input(1, vec![v(0)]),
        );
        let b = ScalarExpr::binary(
            BinaryOp::Add,
            ScalarExpr::input(1, vec![v(0)]),
            ScalarExpr::input(0, vec![v(0)]),
        );
        let bounds = [(0, 7)];
        assert_eq!(canonicalize(&a, &bounds, 8), canonicalize(&b, &bounds, 8));
    }

    #[test]
    fn like_terms_merge_and_constants_fold() {
        // x + x + 1 - 1  ==  2*x
        let x = || ScalarExpr::input(0, vec![v(0)]);
        let e = ScalarExpr::binary(
            BinaryOp::Sub,
            ScalarExpr::binary(
                BinaryOp::Add,
                ScalarExpr::binary(BinaryOp::Add, x(), x()),
                ScalarExpr::Const(1.0),
            ),
            ScalarExpr::Const(1.0),
        );
        let want = ScalarExpr::binary(BinaryOp::Mul, ScalarExpr::Const(2.0), x());
        let bounds = [(0, 7)];
        assert_eq!(
            canonicalize(&e, &bounds, 8),
            canonicalize(&want, &bounds, 8)
        );
    }

    #[test]
    fn affine_indices_normalize() {
        // in0[(v0 + 3) - 3] == in0[v0]
        let shifted = ScalarExpr::input(
            0,
            vec![v(0).add(IndexExpr::constant(3)).sub(IndexExpr::constant(3))],
        );
        let plain = ScalarExpr::input(0, vec![v(0)]);
        let bounds = [(0, 7)];
        assert_eq!(
            canonicalize(&shifted, &bounds, 8),
            canonicalize(&plain, &bounds, 8)
        );
    }

    #[test]
    fn provable_guards_resolve() {
        // v0 in [0, 4): select(v0 < 8, a, b) == a; select(v0 < 0, a, b) == b
        let a = ScalarExpr::input(0, vec![v(0)]);
        let b = ScalarExpr::input(1, vec![v(0)]);
        let bounds = [(0, 3)];
        let taken = ScalarExpr::select(
            Cond::cmp(CmpOp::Lt, v(0), IndexExpr::constant(8)),
            a.clone(),
            b.clone(),
        );
        assert_eq!(
            canonicalize(&taken, &bounds, 8),
            canonicalize(&a, &bounds, 8)
        );
        let untaken = ScalarExpr::select(
            Cond::cmp(CmpOp::Lt, v(0), IndexExpr::constant(0)),
            a.clone(),
            b.clone(),
        );
        assert_eq!(
            canonicalize(&untaken, &bounds, 8),
            canonicalize(&b, &bounds, 8)
        );
        // Straddling guard stays.
        let kept = ScalarExpr::select(
            Cond::cmp(CmpOp::Lt, v(0), IndexExpr::constant(2)),
            a.clone(),
            b.clone(),
        );
        assert!(matches!(
            canonicalize(&kept, &bounds, 8),
            ScalarExpr::Select { .. }
        ));
    }

    #[test]
    fn fold_binders_rename_to_de_bruijn() {
        // fold over binder 7 and binder 9 with identical bodies collide.
        let mk = |binder: usize| {
            ScalarExpr::fold(
                ReduceOp::Sum,
                binder,
                16,
                ScalarExpr::input(0, vec![v(0), v(binder)]),
            )
        };
        let bounds = [(0, 3)];
        assert_eq!(
            canonicalize(&mk(7), &bounds, 32),
            canonicalize(&mk(9), &bounds, 32)
        );
    }

    #[test]
    fn canonicalization_is_idempotent() {
        let e = ScalarExpr::binary(
            BinaryOp::Mul,
            ScalarExpr::binary(
                BinaryOp::Add,
                ScalarExpr::input(0, vec![v(0)]),
                ScalarExpr::Const(2.0),
            ),
            ScalarExpr::unary(UnaryOp::Exp, ScalarExpr::input(1, vec![v(0)])),
        );
        let bounds = [(0, 7)];
        let once = canonicalize(&e, &bounds, 8);
        let twice = canonicalize(&once, &bounds, 8);
        assert_eq!(once, twice);
    }

    #[test]
    fn prove_cond_three_valued() {
        let bounds = [(0, 3)];
        let lt = |c: i64| Cond::cmp(CmpOp::Lt, v(0), IndexExpr::constant(c));
        assert_eq!(prove_cond(&lt(4), &bounds), Some(true));
        assert_eq!(prove_cond(&lt(0), &bounds), Some(false));
        assert_eq!(prove_cond(&lt(2), &bounds), None);
        assert_eq!(prove_cond(&lt(4).and(lt(2)), &bounds), None,);
        assert_eq!(prove_cond(&lt(0).or(lt(4)), &bounds), Some(true));
        assert_eq!(
            prove_cond(&Cond::Not(Box::new(lt(4))), &bounds),
            Some(false)
        );
    }
}
