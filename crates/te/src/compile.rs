//! Compilation of TE programs into flat register bytecode.
//!
//! The naive interpreter in [`crate::interp`] re-walks the `ScalarExpr`
//! tree and re-evaluates every quasi-affine index expression for every
//! output (and reduction) point. This module lowers each TE body **once**
//! into:
//!
//! - a flat, register-based instruction sequence ([`Instr`]) with explicit
//!   jumps for lazily-evaluated `Select` branches (so guarded out-of-bounds
//!   accesses — padding — are never touched, exactly like the naive
//!   interpreter), and
//! - a table of operand accesses, split into **affine** accesses that are
//!   strength-reduced to a base offset plus one flat stride per loop
//!   variable (the paper's §5.2 observation that one-relies-on-one
//!   dependences are quasi-affine maps), and **generic** accesses that
//!   fall back to per-axis index evaluation with the naive interpreter's
//!   bounds checks.
//!
//! An access qualifies for the affine fast path only when every index
//! expression is purely affine *and* interval analysis over the iteration
//! box proves it in-bounds on every axis; everything else (div/mod
//! linearizations, guarded padding reads) takes the generic path, which
//! preserves the taken-branch-only out-of-bounds semantics bit for bit.
//!
//! Evaluation of the compiled form lives in [`crate::vm`].

use crate::expr::{BinaryOp, Cond, ScalarExpr, UnaryOp};
use crate::kernels::{self, KernelSel, KernelStats};
use crate::program::{TeProgram, TensorId, TensorInfo};
use crate::te::ReduceOp;
use souffle_affine::IndexExpr;
use souffle_tensor::Shape;

/// One bytecode instruction. Register indices address a flat `f32`
/// register file; `access`, `cond`, and `expr` index the side tables on
/// [`CompiledTe`].
#[derive(Debug, Clone)]
pub(crate) enum Instr {
    /// `regs[dst] = value`.
    Const { dst: u32, value: f32 },
    /// `regs[dst] = operand_data[access][precomputed_offset[access]]`.
    LoadAffine { dst: u32, access: u32 },
    /// Evaluate the access's index expressions, bounds-check each axis,
    /// and load (or fail with the interpreter's `OutOfBounds` error).
    LoadGeneric { dst: u32, access: u32 },
    /// `regs[dst] = index_exprs[expr].eval(vars) as f32`.
    Index { dst: u32, expr: u32 },
    /// `regs[dst] = op.apply(regs[src])`.
    Unary { dst: u32, op: UnaryOp, src: u32 },
    /// `regs[dst] = op.apply(regs[lhs], regs[rhs])`.
    Binary {
        dst: u32,
        op: BinaryOp,
        lhs: u32,
        rhs: u32,
    },
    /// Jump to `target` when `conds[cond]` is false (enters the `Select`
    /// else-branch); fall through into the then-branch otherwise.
    JumpIfNot { cond: u32, target: u32 },
    /// Unconditional jump (skips the untaken `Select` branch).
    Jump { target: u32 },
    /// `regs[dst] = ` the combined value of `folds[fold]` — an inline
    /// reduction loop over the fold's bound variable, left by reduction
    /// fusion. The VM caches the value per fold and invalidates it when a
    /// variable the fold depends on changes, so a row-invariant fold (the
    /// softmax denominator, layernorm mean/var) is recomputed once per
    /// slice rather than once per element.
    Fold { dst: u32, fold: u32 },
}

/// A strength-reduced operand access: the flat row-major offset into the
/// operand is `base + Σ coeffs[v] · vars[v]`, maintained incrementally by
/// the VM as the loop odometer advances (one add per step instead of a
/// full index-expression re-evaluation).
#[derive(Debug, Clone)]
pub(crate) struct AffineAccess {
    /// Position in the TE's input list.
    pub operand: usize,
    /// Flat offset at `vars = 0`.
    pub base: i64,
    /// Flat stride per loop variable (iteration then reduction vars).
    pub coeffs: Vec<i64>,
}

/// Shape of a TE body recognized at compile time, letting the VM bypass
/// per-instruction dispatch for the bodies that dominate inference
/// workloads (matmul/conv inner products and plain data movement). The
/// specialized paths perform the *same* loads and float ops in the same
/// order as the bytecode would, so results stay bit-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum BodyKind {
    /// Anything else: run the bytecode interpreter loop.
    Generic,
    /// Body is a single in-bounds affine load (copy/transpose/slice,
    /// or a single-operand reduction like sum/max over an axis).
    AffineLoad {
        /// Index into the TE's affine access table.
        access: usize,
    },
    /// Body is `load(a) * load(b)` with both loads affine — the
    /// matmul / conv2d (unpadded) inner body.
    MulAffine {
        /// Affine access id of the left factor.
        a: usize,
        /// Affine access id of the right factor.
        b: usize,
    },
}

/// An inline reduction loop compiled from [`ScalarExpr::Reduce`]: its own
/// code sequence over the bound variable, sharing the enclosing TE's
/// register file and access tables.
#[derive(Debug, Clone)]
pub(crate) struct CompiledFold {
    /// Fold combinator.
    pub op: ReduceOp,
    /// The bound variable (above the TE's free variables).
    pub var: usize,
    /// Trip count: the bound variable ranges over `0..extent`.
    pub extent: i64,
    /// Body bytecode, executed once per trip.
    pub code: Vec<Instr>,
    /// Register holding the body value after one execution of `code`.
    pub result: u32,
    /// Free variables the fold's *value* depends on (binder excluded) —
    /// the VM's cache-invalidation set.
    pub deps: Vec<usize>,
}

/// A generic (non-affine or not provably in-bounds) operand access,
/// evaluated per-axis with runtime bounds checks like the naive
/// interpreter.
#[derive(Debug, Clone)]
pub(crate) struct GenericAccess {
    /// Position in the TE's input list.
    pub operand: usize,
    /// One index expression per operand axis.
    pub indices: Vec<IndexExpr>,
    /// Operand extents, for the per-axis bounds check.
    pub dims: Vec<i64>,
}

/// One TE lowered to bytecode plus its access/condition/index tables.
#[derive(Debug, Clone)]
pub struct CompiledTe {
    pub(crate) name: String,
    pub(crate) output: TensorId,
    pub(crate) out_shape: Shape,
    pub(crate) inputs: Vec<TensorId>,
    pub(crate) reduce: Vec<i64>,
    pub(crate) reduce_op: Option<ReduceOp>,
    pub(crate) code: Vec<Instr>,
    /// Register holding the body value after one execution of `code`.
    pub(crate) result: u32,
    pub(crate) n_regs: usize,
    pub(crate) affine: Vec<AffineAccess>,
    pub(crate) generic: Vec<GenericAccess>,
    pub(crate) conds: Vec<Cond>,
    pub(crate) index_exprs: Vec<IndexExpr>,
    /// Inline reduction loops referenced by [`Instr::Fold`].
    pub(crate) folds: Vec<CompiledFold>,
    /// Iteration vars (output rank) + reduction vars, extended through any
    /// fold binders so `vars`/`coeffs` cover every variable position.
    pub(crate) n_vars: usize,
    /// Recognized body shape for the VM's specialized fast paths.
    pub(crate) kind: BodyKind,
    /// Kernel-tier selection ([`crate::kernels`]): the monomorphized
    /// native inner loop this TE dispatches to, or the bytecode fallback
    /// with its reason. Static per TE, decided here at compile time.
    pub(crate) tier: KernelSel,
}

impl CompiledTe {
    /// Number of accesses on the strength-reduced affine fast path.
    pub fn num_affine_accesses(&self) -> usize {
        self.affine.len()
    }

    /// Number of accesses on the generic (checked) fallback path.
    pub fn num_generic_accesses(&self) -> usize {
        self.generic.len()
    }

    /// Bytecode length (a proxy for body size after fusion).
    pub fn code_len(&self) -> usize {
        self.code.len()
    }

    /// Name of the specialized kernel this TE dispatches to (`"bytecode"`
    /// when it stays on the VM's instruction loop).
    pub fn kernel(&self) -> &'static str {
        self.tier.name()
    }

    /// Why this TE stays on the bytecode path (`None` when a specialized
    /// kernel was selected).
    pub fn kernel_fallback_reason(&self) -> Option<&'static str> {
        match self.tier {
            KernelSel::Fallback(r) => Some(r.name()),
            _ => None,
        }
    }
}

/// A whole TE program lowered to bytecode, ready for repeated evaluation.
///
/// Compile once with [`compile_program`], evaluate many times with
/// [`CompiledProgram::eval`]; the result is bit-identical to
/// [`crate::interp::eval_program`] on the same bindings (enforced by the
/// `evaluator_equivalence` differential suite).
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    pub(crate) tensors: Vec<TensorInfo>,
    pub(crate) free: Vec<TensorId>,
    pub(crate) tes: Vec<CompiledTe>,
}

impl CompiledProgram {
    /// The compiled TEs, in definition order.
    pub fn tes(&self) -> &[CompiledTe] {
        &self.tes
    }

    /// Tensors the caller must bind (inputs and weights).
    pub fn free_tensors(&self) -> &[TensorId] {
        &self.free
    }

    pub(crate) fn tensor(&self, id: TensorId) -> &TensorInfo {
        &self.tensors[id.0]
    }

    /// Static kernel-tier census: how many TEs selected each specialized
    /// kernel (and each fallback reason). Counts are per TE definition —
    /// multiply by evaluations to get the runtime's dispatch counters.
    pub fn kernel_census(&self) -> KernelStats {
        let mut stats = KernelStats::default();
        for te in &self.tes {
            stats.record(te.tier);
        }
        stats
    }
}

/// Which evaluator executes a TE program.
///
/// [`Evaluator::Naive`] is the inspectable tree-walking interpreter — the
/// semantic ground truth. [`Evaluator::Compiled`] is the bytecode VM with
/// strength-reduced affine indexing and chunked threading; it produces
/// bit-identical results (enforced by the `evaluator_equivalence` suite)
/// and is the default everywhere results are only consumed, not inspected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Evaluator {
    /// Tree-walking reference interpreter ([`crate::interp::eval_program`]).
    Naive,
    /// Bytecode VM over [`compile_program`] output (the fast path).
    #[default]
    Compiled,
}

/// Lowers every TE of `program` to bytecode with strength-reduced affine
/// accesses.
///
/// # Panics
///
/// Panics if a body references an operand slot with no backing tensor
/// (the same programs on which the naive interpreter panics; run
/// [`TeProgram::validate`] first to get a structured error instead).
pub fn compile_program(program: &TeProgram) -> CompiledProgram {
    let tes = program
        .te_ids()
        .map(|id| {
            let te = program.te(id);
            let out_shape = program.output_shape(id).clone();
            let operand_shapes: Vec<Shape> = te
                .inputs
                .iter()
                .map(|tid| program.tensor(*tid).shape.clone())
                .collect();
            compile_te(
                &te.name,
                te.output,
                out_shape,
                te.inputs.clone(),
                te.reduce.clone(),
                te.reduce_op,
                &te.body,
                &operand_shapes,
            )
        })
        .collect();
    CompiledProgram {
        tensors: program.tensors().to_vec(),
        free: program.free_tensors(),
        tes,
    }
}

#[allow(clippy::too_many_arguments)]
fn compile_te(
    name: &str,
    output: TensorId,
    out_shape: Shape,
    inputs: Vec<TensorId>,
    reduce: Vec<i64>,
    reduce_op: Option<ReduceOp>,
    body: &ScalarExpr,
    operand_shapes: &[Shape],
) -> CompiledTe {
    let n_free = out_shape.rank() + reduce.len();
    // Fold binders (reduction fusion) live above the free variables; give
    // them var/coeff slots and interval bounds so strength reduction covers
    // accesses inside fold bodies too.
    let n_vars = n_free.max(body.max_var().map_or(0, |m| m + 1));
    let mut var_bounds: Vec<i64> = out_shape.dims().to_vec();
    var_bounds.extend_from_slice(&reduce);
    var_bounds.resize(n_vars, 1);
    for (var, extent) in body.collect_folds() {
        if var >= n_free {
            var_bounds[var] = var_bounds[var].max(extent.max(1));
        }
    }
    let mut c = BodyCompiler {
        operand_shapes,
        n_vars,
        var_bounds,
        code: Vec::new(),
        next_reg: 0,
        affine: Vec::new(),
        generic: Vec::new(),
        affine_keys: Vec::new(),
        generic_keys: Vec::new(),
        conds: Vec::new(),
        index_exprs: Vec::new(),
        folds: Vec::new(),
    };
    let result = c.fresh();
    c.compile_into(body, result);
    let kind = classify_body(&c.code, result);
    let mut te = CompiledTe {
        name: name.to_string(),
        output,
        out_shape,
        inputs,
        reduce,
        reduce_op,
        code: c.code,
        result,
        n_regs: c.next_reg as usize,
        affine: c.affine,
        generic: c.generic,
        conds: c.conds,
        index_exprs: c.index_exprs,
        folds: c.folds,
        n_vars,
        kind,
        tier: KernelSel::Fallback(kernels::FallbackReason::ReducedBody),
    };
    te.tier = kernels::select(&te);
    te
}

/// Pattern-matches the emitted bytecode against the shapes the VM
/// specializes. Matching on the *code* (not the source tree) means the
/// recognized form is exactly what the interpreter loop would execute.
fn classify_body(code: &[Instr], result: u32) -> BodyKind {
    match code {
        [Instr::LoadAffine { dst, access }] if *dst == result => BodyKind::AffineLoad {
            access: *access as usize,
        },
        [Instr::LoadAffine { dst: d1, access: a }, Instr::LoadAffine { dst: d2, access: b }, Instr::Binary {
            dst,
            op: BinaryOp::Mul,
            lhs,
            rhs,
        }] if *dst == result && *lhs == *d1 && *rhs == *d2 => BodyKind::MulAffine {
            a: *a as usize,
            b: *b as usize,
        },
        _ => BodyKind::Generic,
    }
}

struct BodyCompiler<'a> {
    operand_shapes: &'a [Shape],
    n_vars: usize,
    var_bounds: Vec<i64>,
    code: Vec<Instr>,
    next_reg: u32,
    affine: Vec<AffineAccess>,
    generic: Vec<GenericAccess>,
    affine_keys: Vec<(usize, Vec<IndexExpr>)>,
    generic_keys: Vec<(usize, Vec<IndexExpr>)>,
    conds: Vec<Cond>,
    index_exprs: Vec<IndexExpr>,
    folds: Vec<CompiledFold>,
}

impl BodyCompiler<'_> {
    fn fresh(&mut self) -> u32 {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    /// Emits code leaving the value of `e` in register `dst`. The emission
    /// order mirrors the naive interpreter's evaluation order exactly, so
    /// floating-point results are bit-identical.
    fn compile_into(&mut self, e: &ScalarExpr, dst: u32) {
        match e {
            ScalarExpr::Const(value) => self.code.push(Instr::Const { dst, value: *value }),
            ScalarExpr::IndexValue(expr) => {
                let id = self.index_exprs.len() as u32;
                self.index_exprs.push(expr.clone());
                self.code.push(Instr::Index { dst, expr: id });
            }
            ScalarExpr::Input { operand, indices } => self.compile_load(*operand, indices, dst),
            ScalarExpr::Unary(op, a) => {
                let src = self.fresh();
                self.compile_into(a, src);
                self.code.push(Instr::Unary { dst, op: *op, src });
            }
            ScalarExpr::Binary(op, a, b) => {
                let lhs = self.fresh();
                self.compile_into(a, lhs);
                let rhs = self.fresh();
                self.compile_into(b, rhs);
                self.code.push(Instr::Binary {
                    dst,
                    op: *op,
                    lhs,
                    rhs,
                });
            }
            ScalarExpr::Select {
                cond,
                on_true,
                on_false,
            } => {
                let cid = self.conds.len() as u32;
                self.conds.push(cond.clone());
                let jump_to_else = self.code.len();
                self.code.push(Instr::JumpIfNot {
                    cond: cid,
                    target: 0, // patched below
                });
                self.compile_into(on_true, dst);
                let jump_to_end = self.code.len();
                self.code.push(Instr::Jump { target: 0 }); // patched below
                let else_start = self.code.len() as u32;
                if let Instr::JumpIfNot { target, .. } = &mut self.code[jump_to_else] {
                    *target = else_start;
                }
                self.compile_into(on_false, dst);
                let end = self.code.len() as u32;
                if let Instr::Jump { target } = &mut self.code[jump_to_end] {
                    *target = end;
                }
            }
            ScalarExpr::Reduce {
                op,
                var,
                extent,
                body,
            } => {
                // The fold body compiles into its own code sequence (the VM
                // loops it over the binder), sharing the enclosing TE's
                // register file and access tables.
                let result = self.fresh();
                let outer = std::mem::take(&mut self.code);
                self.compile_into(body, result);
                let code = std::mem::replace(&mut self.code, outer);
                let id = self.folds.len() as u32;
                self.folds.push(CompiledFold {
                    op: *op,
                    var: *var,
                    extent: *extent,
                    code,
                    result,
                    deps: e.free_vars(),
                });
                self.code.push(Instr::Fold { dst, fold: id });
            }
        }
    }

    fn compile_load(&mut self, operand: usize, indices: &[IndexExpr], dst: u32) {
        if let Some(access) = self.try_affine(operand, indices) {
            self.code.push(Instr::LoadAffine { dst, access });
        } else {
            let access = self.intern_generic(operand, indices);
            self.code.push(Instr::LoadGeneric { dst, access });
        }
    }

    /// Strength-reduces the access if every index expression is purely
    /// affine and interval analysis over the iteration box proves it
    /// in-bounds on every axis; returns the interned access id.
    fn try_affine(&mut self, operand: usize, indices: &[IndexExpr]) -> Option<u32> {
        let shape = self
            .operand_shapes
            .get(operand)
            .unwrap_or_else(|| panic!("operand slot {operand} has no backing tensor"));
        if indices.len() != shape.rank() {
            return None; // rank mismatch: fail at runtime like the interpreter
        }
        let box_bounds: Vec<(i64, i64)> = self.var_bounds.iter().map(|&b| (0, b - 1)).collect();
        let mut linear: Vec<(Vec<i64>, i64)> = Vec::with_capacity(indices.len());
        for (axis, idx) in indices.iter().enumerate() {
            let lin = idx.as_linear(self.n_vars)?;
            let (lo, hi) = idx.interval(&box_bounds);
            if lo < 0 || hi >= shape.dim(axis) {
                return None; // possibly out of bounds: keep the checked path
            }
            linear.push(lin);
        }
        if let Some(id) = self
            .affine_keys
            .iter()
            .position(|(op, ix)| *op == operand && ix == indices)
        {
            return Some(id as u32);
        }
        let strides = shape.strides();
        let mut base = 0i64;
        let mut coeffs = vec![0i64; self.n_vars];
        for (axis, (axis_coeffs, axis_const)) in linear.iter().enumerate() {
            base += strides[axis] * axis_const;
            for (v, c) in axis_coeffs.iter().enumerate() {
                coeffs[v] += strides[axis] * c;
            }
        }
        let id = self.affine.len() as u32;
        self.affine.push(AffineAccess {
            operand,
            base,
            coeffs,
        });
        self.affine_keys.push((operand, indices.to_vec()));
        Some(id)
    }

    fn intern_generic(&mut self, operand: usize, indices: &[IndexExpr]) -> u32 {
        if let Some(id) = self
            .generic_keys
            .iter()
            .position(|(op, ix)| *op == operand && ix == indices)
        {
            return id as u32;
        }
        let dims = self
            .operand_shapes
            .get(operand)
            .map(|s| s.dims().to_vec())
            .unwrap_or_else(|| panic!("operand slot {operand} has no backing tensor"));
        let id = self.generic.len() as u32;
        self.generic.push(GenericAccess {
            operand,
            indices: indices.to_vec(),
            dims,
        });
        self.generic_keys.push((operand, indices.to_vec()));
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::expr::{CmpOp, Cond};
    use souffle_tensor::DType;

    #[test]
    fn matmul_accesses_are_affine() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4, 8]), DType::F32);
        let b = p.add_weight("B", Shape::new(vec![8, 3]), DType::F32);
        let c = builders::matmul(&mut p, "mm", a, b);
        p.mark_output(c);
        let cp = compile_program(&p);
        let te = &cp.tes()[0];
        assert_eq!(te.num_affine_accesses(), 2);
        assert_eq!(te.num_generic_accesses(), 0);
        // A[i, k]: strides (8, 1), so flat = 8*v0 + v2.
        assert_eq!(te.affine[0].base, 0);
        assert_eq!(te.affine[0].coeffs, vec![8, 0, 1]);
        // B[k, j]: strides (3, 1), so flat = 3*v2 + v1.
        assert_eq!(te.affine[1].coeffs, vec![0, 1, 3]);
    }

    #[test]
    fn reshape_access_falls_back_to_generic() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4, 6]), DType::F32);
        let r = builders::reshape(&mut p, "r", a, Shape::new(vec![3, 8]));
        p.mark_output(r);
        let cp = compile_program(&p);
        let te = &cp.tes()[0];
        assert_eq!(te.num_affine_accesses(), 0);
        assert_eq!(te.num_generic_accesses(), 1, "div/mod must not be affine");
    }

    #[test]
    fn guarded_oob_access_falls_back_to_generic() {
        // padded read: in bounds only on the taken branch.
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let t = p.add_te(
            "padded",
            Shape::new(vec![8]),
            DType::F32,
            vec![a],
            vec![],
            None,
            ScalarExpr::select(
                Cond::cmp(CmpOp::Lt, IndexExpr::var(0), IndexExpr::constant(4)),
                ScalarExpr::input(0, vec![IndexExpr::var(0)]),
                ScalarExpr::Const(0.0),
            ),
        );
        p.mark_output(t);
        let cp = compile_program(&p);
        let te = &cp.tes()[0];
        assert_eq!(te.num_affine_accesses(), 0);
        assert_eq!(te.num_generic_accesses(), 1);
        // Select lowers to a conditional jump over the untaken branch.
        assert!(te.code.iter().any(|i| matches!(i, Instr::JumpIfNot { .. })));
        assert!(te.code.iter().any(|i| matches!(i, Instr::Jump { .. })));
    }

    #[test]
    fn body_kinds_are_classified() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4, 8]), DType::F32);
        let b = p.add_weight("B", Shape::new(vec![8, 3]), DType::F32);
        let mm = builders::matmul(&mut p, "mm", a, b);
        let t = builders::transpose(&mut p, "t", mm, &[1, 0]);
        let r = builders::relu(&mut p, "act", t);
        p.mark_output(r);
        let cp = compile_program(&p);
        assert!(matches!(
            cp.tes()[0].kind,
            BodyKind::MulAffine { a: 0, b: 1 }
        ));
        assert!(matches!(
            cp.tes()[1].kind,
            BodyKind::AffineLoad { access: 0 }
        ));
        assert!(matches!(cp.tes()[2].kind, BodyKind::Generic));
    }

    #[test]
    fn repeated_accesses_are_interned_once() {
        // x * x: the same access appears twice in the body but once in the
        // access table.
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let x = ScalarExpr::input(0, vec![IndexExpr::var(0)]);
        let t = p.add_te(
            "sq",
            Shape::new(vec![4]),
            DType::F32,
            vec![a],
            vec![],
            None,
            ScalarExpr::binary(BinaryOp::Mul, x.clone(), x),
        );
        p.mark_output(t);
        let cp = compile_program(&p);
        assert_eq!(cp.tes()[0].num_affine_accesses(), 1);
    }
}
