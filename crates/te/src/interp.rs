//! Reference interpreter for TE programs.
//!
//! The interpreter is the semantic ground truth of the reproduction: every
//! compiler transformation is checked against it (transform a program, run
//! both versions on random inputs, compare outputs element-wise).
//!
//! Evaluation is intentionally naive — loop over the output iteration
//! space, then over the reduction space, evaluating the scalar body — so
//! that its correctness is evident by inspection.

use crate::compile::{compile_program, Evaluator};
use crate::expr::ScalarExpr;
use crate::program::{TeProgram, TensorId, TensorKind};
use std::collections::HashMap;
use std::fmt;

use souffle_tensor::Tensor;

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// An input or weight tensor was not bound.
    Unbound {
        /// The missing tensor.
        tensor: TensorId,
        /// Its name.
        name: String,
    },
    /// A bound tensor's shape does not match its declaration.
    ShapeMismatch {
        /// The offending tensor.
        tensor: TensorId,
        /// Its name.
        name: String,
    },
    /// A taken branch performed an out-of-bounds read.
    ///
    /// Carries the evaluated index vector and the buffer shape so dynamic
    /// failures pinpoint the escaping access exactly like the static
    /// verifier's diagnostics do.
    OutOfBounds {
        /// The TE at fault (by name).
        te: String,
        /// The operand read.
        operand: usize,
        /// The evaluated index vector of the failing access.
        index: Vec<i64>,
        /// The shape of the buffer the access escaped.
        shape: Vec<i64>,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Unbound { tensor, name } => {
                write!(f, "tensor {tensor} (\"{name}\") was not bound")
            }
            EvalError::ShapeMismatch { tensor, name } => {
                write!(f, "tensor {tensor} (\"{name}\") bound with wrong shape")
            }
            EvalError::OutOfBounds {
                te,
                operand,
                index,
                shape,
            } => {
                write!(
                    f,
                    "TE \"{te}\": out-of-bounds read of operand {operand} at index {index:?}, shape {shape:?}"
                )
            }
        }
    }
}

impl std::error::Error for EvalError {}

impl EvalError {
    /// The single construction site for [`EvalError::OutOfBounds`], shared
    /// by the naive interpreter and the VM's generic-access path (which
    /// re-derives the failing index vector before calling this). Keeping
    /// one constructor is what guarantees the two evaluator tiers report
    /// byte-identical errors — the `evaluator_equivalence` suite compares
    /// them with `==`.
    pub(crate) fn oob_access(te: &str, operand: usize, index: Vec<i64>, dims: &[i64]) -> EvalError {
        EvalError::OutOfBounds {
            te: te.to_string(),
            operand,
            index,
            shape: dims.to_vec(),
        }
    }
}

/// Evaluates a whole program.
///
/// `bindings` must contain a tensor for every input and weight; the result
/// maps every tensor id produced by a TE (intermediates and outputs) to its
/// value.
///
/// # Errors
///
/// Returns an error for missing/mis-shaped bindings or runtime
/// out-of-bounds accesses (which indicate an invalid program or a broken
/// transformation).
pub fn eval_program(
    program: &TeProgram,
    bindings: &HashMap<TensorId, Tensor>,
) -> Result<HashMap<TensorId, Tensor>, EvalError> {
    let mut values: HashMap<TensorId, Tensor> = HashMap::new();
    for id in program.free_tensors() {
        let info = program.tensor(id);
        let t = bindings.get(&id).ok_or_else(|| EvalError::Unbound {
            tensor: id,
            name: info.name.clone(),
        })?;
        if t.shape() != &info.shape {
            return Err(EvalError::ShapeMismatch {
                tensor: id,
                name: info.name.clone(),
            });
        }
        values.insert(id, t.clone());
    }
    for te_id in program.te_ids() {
        let te = program.te(te_id);
        let out_shape = program.output_shape(te_id).clone();
        let inputs: Vec<&Tensor> = te
            .inputs
            .iter()
            .map(|tid| {
                values
                    .get(tid)
                    .unwrap_or_else(|| panic!("validated program: {tid} must be available"))
            })
            .collect();
        let mut out = Tensor::zeros(out_shape.clone());
        let n_iter = out_shape.rank();
        let mut vars = vec![0i64; n_iter + te.reduce.len()];
        let data = out.data_mut();
        for (flat, idx) in out_shape.indices().enumerate() {
            vars[..n_iter].copy_from_slice(&idx);
            let value = if te.reduce.is_empty() {
                eval_scalar(&te.body, &vars, &inputs, &te.name)?
            } else {
                let op = te.reduce_op.expect("validated reduction");
                let mut acc = op.init();
                let mut counter = vec![0i64; te.reduce.len()];
                'reduce: loop {
                    vars[n_iter..].copy_from_slice(&counter);
                    let v = eval_scalar(&te.body, &vars, &inputs, &te.name)?;
                    acc = op.combine(acc, v);
                    let mut axis = te.reduce.len();
                    loop {
                        if axis == 0 {
                            break 'reduce;
                        }
                        axis -= 1;
                        counter[axis] += 1;
                        if counter[axis] < te.reduce[axis] {
                            break;
                        }
                        counter[axis] = 0;
                    }
                }
                acc
            };
            data[flat] = value;
        }
        values.insert(te.output, out.with_dtype(program.tensor(te.output).dtype));
    }
    // Drop the caller's bindings from the result for clarity.
    for id in program.free_tensors() {
        if program.tensor(id).kind != TensorKind::Output {
            values.remove(&id);
        }
    }
    Ok(values)
}

fn eval_scalar(
    body: &ScalarExpr,
    vars: &[i64],
    inputs: &[&Tensor],
    te_name: &str,
) -> Result<f32, EvalError> {
    Ok(match body {
        ScalarExpr::Const(c) => *c,
        ScalarExpr::IndexValue(e) => e.eval(vars) as f32,
        ScalarExpr::Input { operand, indices } => {
            let t = inputs[*operand];
            let idx: Vec<i64> = indices.iter().map(|e| e.eval(vars)).collect();
            let in_bounds = idx.len() == t.shape().rank()
                && idx
                    .iter()
                    .zip(t.shape().dims())
                    .all(|(&i, &d)| (0..d).contains(&i));
            if !in_bounds {
                return Err(EvalError::oob_access(
                    te_name,
                    *operand,
                    idx,
                    t.shape().dims(),
                ));
            }
            t.at(&idx)
        }
        ScalarExpr::Unary(op, a) => op.apply(eval_scalar(a, vars, inputs, te_name)?),
        ScalarExpr::Binary(op, a, b) => op.apply(
            eval_scalar(a, vars, inputs, te_name)?,
            eval_scalar(b, vars, inputs, te_name)?,
        ),
        ScalarExpr::Select {
            cond,
            on_true,
            on_false,
        } => {
            // Lazy evaluation: only the taken branch runs, so guarded
            // out-of-bounds accesses (padding) are never touched.
            if cond.eval(vars) {
                eval_scalar(on_true, vars, inputs, te_name)?
            } else {
                eval_scalar(on_false, vars, inputs, te_name)?
            }
        }
        ScalarExpr::Reduce {
            op,
            var,
            extent,
            body,
        } => {
            // The binder lives above the TE's free variables; extend a local
            // copy of the point so nested index expressions can read it.
            let mut v = vars.to_vec();
            if v.len() <= *var {
                v.resize(*var + 1, 0);
            }
            let mut acc = op.init();
            for k in 0..*extent {
                v[*var] = k;
                acc = op.combine(acc, eval_scalar(body, &v, inputs, te_name)?);
            }
            acc
        }
    })
}

/// Deterministic random bindings for every free tensor of `program`,
/// seeded per tensor. This is the input distribution shared by both
/// evaluators' convenience entry points, so differential comparisons see
/// identical data.
pub fn random_bindings(program: &TeProgram, seed: u64) -> HashMap<TensorId, Tensor> {
    let mut bindings = HashMap::new();
    for (i, id) in program.free_tensors().into_iter().enumerate() {
        let info = program.tensor(id);
        bindings.insert(
            id,
            Tensor::random(info.shape.clone(), seed.wrapping_add(i as u64 * 7919)),
        );
    }
    bindings
}

/// Convenience: evaluates a program on deterministic random inputs (seeded
/// per free tensor) and returns only the program outputs. Used pervasively
/// by semantic-preservation tests.
///
/// Runs the compiled evaluator (bit-identical to the interpreter, much
/// faster); use [`eval_with_random_inputs_using`] to pick explicitly.
///
/// # Errors
///
/// Propagates any [`EvalError`] from evaluation.
pub fn eval_with_random_inputs(
    program: &TeProgram,
    seed: u64,
) -> Result<HashMap<TensorId, Tensor>, EvalError> {
    eval_with_random_inputs_using(program, seed, Evaluator::Compiled)
}

/// Like [`eval_with_random_inputs`], with an explicit evaluator choice.
///
/// # Errors
///
/// Propagates any [`EvalError`] from evaluation.
pub fn eval_with_random_inputs_using(
    program: &TeProgram,
    seed: u64,
    evaluator: Evaluator,
) -> Result<HashMap<TensorId, Tensor>, EvalError> {
    let bindings = random_bindings(program, seed);
    let mut all = match evaluator {
        Evaluator::Naive => eval_program(program, &bindings)?,
        Evaluator::Compiled => compile_program(program).eval(&bindings)?,
    };
    let outputs = program.outputs();
    all.retain(|id, _| outputs.contains(id));
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use souffle_tensor::{DType, Shape};

    #[test]
    fn unbound_input_errors() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![2]), DType::F32);
        let _ = builders::exp(&mut p, "e", a);
        let err = eval_program(&p, &HashMap::new()).unwrap_err();
        assert!(matches!(err, EvalError::Unbound { .. }));
        assert!(err.to_string().contains("was not bound"));
    }

    #[test]
    fn shape_mismatch_errors() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![2]), DType::F32);
        let _ = builders::exp(&mut p, "e", a);
        let mut b = HashMap::new();
        b.insert(a, Tensor::zeros(Shape::new(vec![3])));
        assert!(matches!(
            eval_program(&p, &b).unwrap_err(),
            EvalError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn eval_with_random_inputs_returns_outputs_only() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let e = builders::exp(&mut p, "e", a);
        let r = builders::relu(&mut p, "r", e);
        p.mark_output(r);
        let out = eval_with_random_inputs(&p, 1).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains_key(&r));
    }

    #[test]
    fn deterministic_across_calls() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![8]), DType::F32);
        let e = builders::sigmoid(&mut p, "s", a);
        p.mark_output(e);
        let o1 = eval_with_random_inputs(&p, 99).unwrap();
        let o2 = eval_with_random_inputs(&p, 99).unwrap();
        assert_eq!(o1[&e], o2[&e]);
    }

    #[test]
    fn chain_of_tes_threads_values() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let e = builders::scale(&mut p, "x2", a, 2.0);
        let f = builders::add_scalar(&mut p, "p1", e, 1.0);
        p.mark_output(f);
        let mut b = HashMap::new();
        b.insert(
            a,
            Tensor::from_vec(Shape::new(vec![4]), vec![0.0, 1.0, 2.0, 3.0]),
        );
        let out = eval_program(&p, &b).unwrap();
        assert_eq!(out[&f].data(), &[1.0, 3.0, 5.0, 7.0]);
    }
}
