//! Symbolic dimensions for dynamic-shape compilation.
//!
//! A [`SymTable`] declares named symbolic dimensions with inclusive bounds
//! (`min..=max`). A [`DynProgram`] is a TE program template whose tensor-axis
//! and reduction extents are [`Dim`]s — either `Fixed` or `Sym` — inferred by
//! probing a concrete builder at a few bindings and diffing the results
//! ([`DynProgram::infer`]). Concretizing a template at a [`SymBinding`]
//! rebuilds the program with every symbolic extent substituted.
//!
//! Extent arithmetic over symbolic dims uses [`DimPoly`], an integer
//! polynomial in the declared symbols; the transform crate prices bytes moved
//! as such polynomials and the verifier proves bounds parametrically from the
//! per-axis [`Dim`] annotations.

use crate::program::TeProgram;
use crate::te::TensorExpr;
use souffle_tensor::{Shape, Tensor};
use std::fmt;
use std::sync::Arc;

/// Identifier of a declared symbolic dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymId(pub usize);

impl fmt::Display for SymId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One declared symbolic dimension: a name plus inclusive bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymDecl {
    /// Human-readable dim name (e.g. `seq`).
    pub name: String,
    /// Inclusive lower bound.
    pub min: i64,
    /// Inclusive upper bound.
    pub max: i64,
}

/// Declarations for every symbolic dimension of a dynamic program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymTable {
    decls: Vec<SymDecl>,
}

impl SymTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a symbolic dim with inclusive bounds `min..=max`.
    pub fn declare(&mut self, name: &str, min: i64, max: i64) -> SymId {
        assert!(
            1 <= min && min <= max,
            "symbolic dim {name} needs 1 <= min <= max, got {min}..={max}"
        );
        self.decls.push(SymDecl {
            name: name.to_string(),
            min,
            max,
        });
        SymId(self.decls.len() - 1)
    }

    /// Number of declared syms.
    pub fn len(&self) -> usize {
        self.decls.len()
    }

    /// Whether no syms are declared.
    pub fn is_empty(&self) -> bool {
        self.decls.is_empty()
    }

    /// Declaration of one sym.
    pub fn decl(&self, id: SymId) -> &SymDecl {
        &self.decls[id.0]
    }

    /// All declarations, in id order.
    pub fn decls(&self) -> &[SymDecl] {
        &self.decls
    }

    /// Inclusive `(min, max)` bounds of a symbolic dim.
    pub fn bounds(&self, id: SymId) -> (i64, i64) {
        (self.decls[id.0].min, self.decls[id.0].max)
    }

    /// All sym ids, in declaration order.
    pub fn ids(&self) -> impl Iterator<Item = SymId> {
        (0..self.decls.len()).map(SymId)
    }

    /// Binding with every sym at its declared minimum.
    pub fn min_binding(&self) -> SymBinding {
        SymBinding {
            vals: self.decls.iter().map(|d| d.min).collect(),
        }
    }

    /// Binding with every sym at its declared maximum.
    pub fn max_binding(&self) -> SymBinding {
        SymBinding {
            vals: self.decls.iter().map(|d| d.max).collect(),
        }
    }

    /// Validated binding from one value per declared sym, in declaration order.
    pub fn bind(&self, vals: Vec<i64>) -> Result<SymBinding, String> {
        if vals.len() != self.decls.len() {
            return Err(format!(
                "binding has {} values for {} declared syms",
                vals.len(),
                self.decls.len()
            ));
        }
        for (i, (&v, d)) in vals.iter().zip(&self.decls).enumerate() {
            if v < d.min || v > d.max {
                return Err(format!(
                    "sym s{i} ({}) bound to {v}, outside {}..={}",
                    d.name, d.min, d.max
                ));
            }
        }
        Ok(SymBinding { vals })
    }
}

/// A concrete value for every declared symbolic dim.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SymBinding {
    vals: Vec<i64>,
}

impl SymBinding {
    /// Value bound to one sym.
    pub fn get(&self, id: SymId) -> i64 {
        self.vals[id.0]
    }

    /// All bound values, in declaration order.
    pub fn values(&self) -> &[i64] {
        &self.vals
    }

    /// Copy of this binding with one sym rebound (bounds NOT rechecked).
    pub fn with(&self, id: SymId, v: i64) -> SymBinding {
        let mut vals = self.vals.clone();
        vals[id.0] = v;
        SymBinding { vals }
    }
}

/// One tensor-axis or reduction extent: concrete, or equal to a symbolic dim.
///
/// A `Sym` extent is exactly the bound value of the sym (slope 1, offset 0);
/// builders whose extents are affine-but-offset in a sym fall back to
/// [`DynSource::Generator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dim {
    /// A concrete extent.
    Fixed(i64),
    /// The extent equals this sym's bound value.
    Sym(SymId),
}

impl Dim {
    /// Evaluates at a binding.
    pub fn eval(self, binding: &SymBinding) -> i64 {
        match self {
            Dim::Fixed(n) => n,
            Dim::Sym(s) => binding.get(s),
        }
    }

    /// The extent as a polynomial.
    pub fn poly(self) -> DimPoly {
        match self {
            Dim::Fixed(n) => DimPoly::constant(n),
            Dim::Sym(s) => DimPoly::sym(s),
        }
    }

    /// The sym id, if symbolic.
    pub fn as_sym(self) -> Option<SymId> {
        match self {
            Dim::Fixed(_) => None,
            Dim::Sym(s) => Some(s),
        }
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dim::Fixed(n) => write!(f, "{n}"),
            Dim::Sym(s) => write!(f, "{s}"),
        }
    }
}

/// Integer polynomial over symbolic dims, normalized as a sorted sum of
/// monomials (`coeff * s_i * s_j * ...`). Closed under `+` and `*`, which is
/// all the traffic model needs: bytes moved are products of axis extents.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DimPoly {
    /// Sorted `(monomial, coeff)` pairs; monomials are sorted sym indices
    /// (with multiplicity), coeffs are nonzero. Empty means the zero poly.
    terms: Vec<(Vec<usize>, i64)>,
}

impl DimPoly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        DimPoly { terms: Vec::new() }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: i64) -> Self {
        if c == 0 {
            Self::zero()
        } else {
            DimPoly {
                terms: vec![(Vec::new(), c)],
            }
        }
    }

    /// The polynomial `s`.
    pub fn sym(s: SymId) -> Self {
        DimPoly {
            terms: vec![(vec![s.0], 1)],
        }
    }

    fn normalized(mut terms: Vec<(Vec<usize>, i64)>) -> Self {
        terms.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out: Vec<(Vec<usize>, i64)> = Vec::with_capacity(terms.len());
        for (mono, c) in terms {
            match out.last_mut() {
                Some((m, acc)) if *m == mono => *acc += c,
                _ => out.push((mono, c)),
            }
        }
        out.retain(|(_, c)| *c != 0);
        DimPoly { terms: out }
    }

    /// Sum of two polynomials.
    pub fn add(&self, other: &DimPoly) -> DimPoly {
        let mut terms = self.terms.clone();
        terms.extend(other.terms.iter().cloned());
        Self::normalized(terms)
    }

    /// Product of two polynomials.
    pub fn mul(&self, other: &DimPoly) -> DimPoly {
        let mut terms = Vec::with_capacity(self.terms.len() * other.terms.len());
        for (ma, ca) in &self.terms {
            for (mb, cb) in &other.terms {
                let mut m = ma.clone();
                m.extend(mb.iter().copied());
                m.sort_unstable();
                terms.push((m, ca * cb));
            }
        }
        Self::normalized(terms)
    }

    /// Product with a constant.
    pub fn scale(&self, k: i64) -> DimPoly {
        Self::normalized(self.terms.iter().map(|(m, c)| (m.clone(), c * k)).collect())
    }

    /// Evaluates at a binding.
    pub fn eval(&self, binding: &SymBinding) -> i64 {
        self.terms
            .iter()
            .map(|(m, c)| m.iter().fold(*c, |acc, &s| acc * binding.get(SymId(s))))
            .sum()
    }

    /// Whether the polynomial has no sym terms.
    pub fn is_constant(&self) -> bool {
        self.terms.iter().all(|(m, _)| m.is_empty())
    }

    /// Total degree of the polynomial (0 for constants and zero).
    pub fn degree(&self) -> usize {
        self.terms.iter().map(|(m, _)| m.len()).max().unwrap_or(0)
    }
}

impl fmt::Display for DimPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, (mono, c)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            if mono.is_empty() {
                write!(f, "{c}")?;
            } else {
                if *c != 1 {
                    write!(f, "{c}*")?;
                }
                for (j, s) in mono.iter().enumerate() {
                    if j > 0 {
                        write!(f, "*")?;
                    }
                    write!(f, "s{s}")?;
                }
            }
        }
        Ok(())
    }
}

/// A TE program template with symbolic tensor-axis and reduction extents,
/// lowered once and concretizable at any in-bounds [`SymBinding`].
#[derive(Debug, Clone)]
pub struct DynProgram {
    table: SymTable,
    base_binding: SymBinding,
    /// Program built at `base_binding` (every sym at its minimum).
    base: TeProgram,
    /// Per tensor id: one [`Dim`] per axis.
    tensor_dims: Vec<Vec<Dim>>,
    /// Per TE id: one [`Dim`] per `reduce` entry.
    reduce_dims: Vec<Vec<Dim>>,
}

impl DynProgram {
    /// Infers a symbolic template by probing `build` at the all-min binding
    /// and at one-sym-bumped bindings, diffing shapes and reduction extents.
    ///
    /// Succeeds only when the builder is *structurally stable* over the
    /// range: the tensor table (names, dtypes, kinds, rank), the TE list,
    /// and every scalar body are identical across probes, and each varying
    /// extent equals exactly the bound value of one sym. Builders that
    /// change structure with the dim (e.g. an unrolled LSTM) get an `Err`
    /// and should be wrapped as a [`DynSource::Generator`] instead.
    pub fn infer(
        table: SymTable,
        build: &dyn Fn(&SymBinding) -> TeProgram,
    ) -> Result<DynProgram, String> {
        let base_binding = table.min_binding();
        let base = build(&base_binding);
        let mut tensor_dims: Vec<Vec<Dim>> = base
            .tensors()
            .iter()
            .map(|t| t.shape.dims().iter().map(|&d| Dim::Fixed(d)).collect())
            .collect();
        let mut reduce_dims: Vec<Vec<Dim>> = base
            .tes()
            .iter()
            .map(|te| te.reduce.iter().map(|&d| Dim::Fixed(d)).collect())
            .collect();

        let movable: Vec<SymId> = table
            .ids()
            .filter(|&s| table.bounds(s).0 < table.bounds(s).1)
            .collect();
        for &s in &movable {
            let (min, _) = table.bounds(s);
            let probe = build(&base_binding.with(s, min + 1));
            diff_probe(&base, &probe, s, min, &mut tensor_dims, &mut reduce_dims)?;
        }
        if movable.len() > 1 {
            // Separability probe: all movable syms bumped at once must land
            // exactly where the per-sym slopes predict.
            let mut combined = base_binding.clone();
            for &s in &movable {
                combined = combined.with(s, table.bounds(s).0 + 1);
            }
            let dp = DynProgram {
                table: table.clone(),
                base_binding: base_binding.clone(),
                base: base.clone(),
                tensor_dims: tensor_dims.clone(),
                reduce_dims: reduce_dims.clone(),
            };
            let predicted = dp.concretize(&combined);
            let actual = build(&combined);
            if !programs_equal(&predicted, &actual) {
                return Err("symbolic dims are not separable: combined probe mismatch".into());
            }
        }
        Ok(DynProgram {
            table,
            base_binding,
            base,
            tensor_dims,
            reduce_dims,
        })
    }

    /// The declared symbolic dims.
    pub fn table(&self) -> &SymTable {
        &self.table
    }

    /// The template program (built at the base binding).
    pub fn base(&self) -> &TeProgram {
        &self.base
    }

    /// The binding the template was built at.
    pub fn base_binding(&self) -> &SymBinding {
        &self.base_binding
    }

    /// Per-axis dims of a tensor (by tensor-id index).
    pub fn tensor_dims(&self, tensor: usize) -> &[Dim] {
        &self.tensor_dims[tensor]
    }

    /// Per-entry dims of a TE's `reduce` vector (by TE-id index).
    pub fn reduce_dims(&self, te: usize) -> &[Dim] {
        &self.reduce_dims[te]
    }

    /// Axes of a tensor that are symbolic, as `(axis, sym)` pairs.
    pub fn sym_axes(&self, tensor: usize) -> Vec<(usize, SymId)> {
        self.tensor_dims[tensor]
            .iter()
            .enumerate()
            .filter_map(|(axis, d)| d.as_sym().map(|s| (axis, s)))
            .collect()
    }

    /// Fault-injection/testing constructor: replaces one tensor-axis
    /// annotation. The verifier must reject templates whose annotations
    /// disagree with the access patterns (SV020) — this is how test suites
    /// build such templates.
    pub fn with_tensor_dim(&self, tensor: usize, axis: usize, dim: Dim) -> DynProgram {
        let mut dp = self.clone();
        dp.tensor_dims[tensor][axis] = dim;
        dp
    }

    /// Fault-injection/testing constructor: replaces the declared table
    /// (e.g. shrinking a bound out from under the lowered template).
    pub fn with_table(&self, table: SymTable) -> DynProgram {
        let mut dp = self.clone();
        dp.table = table;
        dp
    }

    /// Fault-injection/testing constructor: replaces one TE body in the
    /// base template.
    pub fn with_te_body(&self, te: usize, body: crate::ScalarExpr) -> DynProgram {
        let mut dp = self.clone();
        let mut p = TeProgram::new();
        for info in self.base.tensors() {
            p.add_tensor(&info.name, info.shape.clone(), info.dtype, info.kind);
        }
        for (i, t) in self.base.tes().iter().enumerate() {
            let mut t = t.clone();
            if i == te {
                t.body = body.clone();
            }
            p.push_te(t);
        }
        dp.base = p;
        dp
    }

    /// Rebuilds the concrete program at `binding`, substituting every
    /// symbolic extent. Tensor and TE ids are preserved from the template.
    pub fn concretize(&self, binding: &SymBinding) -> TeProgram {
        let mut p = TeProgram::new();
        for (i, info) in self.base.tensors().iter().enumerate() {
            let dims: Vec<i64> = self.tensor_dims[i]
                .iter()
                .map(|d| d.eval(binding))
                .collect();
            p.add_tensor(&info.name, Shape::new(dims), info.dtype, info.kind);
        }
        for (i, te) in self.base.tes().iter().enumerate() {
            let reduce: Vec<i64> = self.reduce_dims[i]
                .iter()
                .map(|d| d.eval(binding))
                .collect();
            p.push_te(TensorExpr {
                reduce,
                ..te.clone()
            });
        }
        p
    }
}

fn programs_equal(a: &TeProgram, b: &TeProgram) -> bool {
    a.tensors() == b.tensors() && a.tes() == b.tes()
}

/// Diffs `base` (sym `s` at `min`) against `probe` (sym `s` at `min + 1`),
/// recording slope-1 extents as `Dim::Sym(s)`.
fn diff_probe(
    base: &TeProgram,
    probe: &TeProgram,
    s: SymId,
    min: i64,
    tensor_dims: &mut [Vec<Dim>],
    reduce_dims: &mut [Vec<Dim>],
) -> Result<(), String> {
    if base.num_tensors() != probe.num_tensors() {
        return Err(format!(
            "sym {s}: tensor count changes with the dim ({} vs {})",
            base.num_tensors(),
            probe.num_tensors()
        ));
    }
    if base.num_tes() != probe.num_tes() {
        return Err(format!(
            "sym {s}: TE count changes with the dim ({} vs {})",
            base.num_tes(),
            probe.num_tes()
        ));
    }
    for (i, (ta, tb)) in base.tensors().iter().zip(probe.tensors()).enumerate() {
        if ta.name != tb.name || ta.dtype != tb.dtype || ta.kind != tb.kind {
            return Err(format!("sym {s}: tensor {i} metadata changes with the dim"));
        }
        if ta.shape.rank() != tb.shape.rank() {
            return Err(format!(
                "sym {s}: tensor {} rank changes with the dim",
                ta.name
            ));
        }
        for (axis, (&da, &db)) in ta.shape.dims().iter().zip(tb.shape.dims()).enumerate() {
            match db - da {
                0 => {}
                1 if da == min => match tensor_dims[i][axis] {
                    Dim::Fixed(_) => tensor_dims[i][axis] = Dim::Sym(s),
                    Dim::Sym(other) => {
                        return Err(format!(
                            "tensor {} axis {axis} varies with both {other} and {s}",
                            ta.name
                        ))
                    }
                },
                _ => {
                    return Err(format!(
                        "sym {s}: tensor {} axis {axis} moves {da} -> {db}, not slope-1 \
                         from the sym value",
                        ta.name
                    ))
                }
            }
        }
    }
    for (i, (ea, eb)) in base.tes().iter().zip(probe.tes()).enumerate() {
        if ea.name != eb.name
            || ea.output != eb.output
            || ea.inputs != eb.inputs
            || ea.reduce_op != eb.reduce_op
            || ea.body != eb.body
        {
            return Err(format!("sym {s}: TE {i} structure changes with the dim"));
        }
        if ea.reduce.len() != eb.reduce.len() {
            return Err(format!("sym {s}: TE {} reduce rank changes", ea.name));
        }
        for (j, (&da, &db)) in ea.reduce.iter().zip(&eb.reduce).enumerate() {
            match db - da {
                0 => {}
                1 if da == min => match reduce_dims[i][j] {
                    Dim::Fixed(_) => reduce_dims[i][j] = Dim::Sym(s),
                    Dim::Sym(other) => {
                        return Err(format!(
                            "TE {} reduce {j} varies with both {other} and {s}",
                            ea.name
                        ))
                    }
                },
                _ => {
                    return Err(format!(
                        "sym {s}: TE {} reduce {j} moves {da} -> {db}, not slope-1",
                        ea.name
                    ))
                }
            }
        }
    }
    Ok(())
}

/// How concrete programs are obtained from a dynamic model.
#[derive(Clone)]
pub enum DynSource {
    /// Shape-only template: one lowering, extents substituted per binding.
    /// Verifiable parametrically and priceable as [`DimPoly`]s.
    Template(DynProgram),
    /// Structural generator (e.g. an unrolled LSTM whose TE count tracks the
    /// dim). Re-lowered per binding; verified per bucket.
    Generator(Arc<dyn Fn(&SymBinding) -> TeProgram + Send + Sync>),
}

impl fmt::Debug for DynSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynSource::Template(_) => write!(f, "DynSource::Template"),
            DynSource::Generator(_) => write!(f, "DynSource::Generator"),
        }
    }
}

/// An input family indexed by a per-step suffix (`{prefix}{t}` for
/// `t in 0..sym`); steps at or beyond the bound value are pad-filled.
#[derive(Debug, Clone)]
pub struct PerStep {
    /// Name prefix; members are `{prefix}{t}`.
    pub prefix: String,
    /// The sym the step index ranges over.
    pub sym: SymId,
}

/// An input the *serving layer* derives from the shape binding instead of the
/// requester: validity masks and step gates that make padded slots inert.
#[derive(Debug, Clone)]
pub enum DerivedInput {
    /// Per-position mask of length `sym`'s axis: `valid` for positions
    /// `< sym`, `pad` beyond (BERT attention mask: `0.0` / `-1e30`).
    SeqMask {
        /// Tensor name of the mask input.
        name: String,
        /// The sym giving the number of valid positions.
        sym: SymId,
        /// Value at positions `< sym`.
        valid: f32,
        /// Value at padded positions.
        pad: f32,
    },
    /// Per-step scalar gate `{prefix}{t}`: `valid` while `t < sym`, `pad`
    /// beyond (LSTM step gate: `1.0` / `0.0`).
    StepGate {
        /// Name prefix; the gate for step `t` is `{prefix}{t}`.
        prefix: String,
        /// The sym giving the number of real steps.
        sym: SymId,
        /// Gate value for real steps.
        valid: f32,
        /// Gate value for padded steps.
        pad: f32,
    },
}

/// A dynamic-shape model: symbol declarations, a program source, and the
/// padding contract (fill values, derived masks, per-step input families).
#[derive(Debug, Clone)]
pub struct DynSpec {
    /// Declared symbolic dims.
    pub table: SymTable,
    /// How concrete programs are obtained.
    pub source: DynSource,
    /// Pad fill per tensor name for symbolic axes; tensors not listed pad
    /// with `0.0`.
    pub pad_fill: Vec<(String, f32)>,
    /// Inputs the serving layer derives from the shape binding.
    pub derived: Vec<DerivedInput>,
    /// Input families indexed by a step suffix.
    pub per_step: Vec<PerStep>,
}

impl DynSpec {
    /// Wraps a fixed-shape program as a degenerate (no-sym) dynamic model.
    pub fn fixed(program: TeProgram) -> DynSpec {
        DynSpec {
            table: SymTable::new(),
            source: DynSource::Generator(Arc::new(move |_| program.clone())),
            pad_fill: Vec::new(),
            derived: Vec::new(),
            per_step: Vec::new(),
        }
    }

    /// The concrete program at `binding`.
    pub fn at(&self, binding: &SymBinding) -> TeProgram {
        match &self.source {
            DynSource::Template(dp) => dp.concretize(binding),
            DynSource::Generator(f) => f(binding),
        }
    }

    /// The template, when the source is one.
    pub fn template(&self) -> Option<&DynProgram> {
        match &self.source {
            DynSource::Template(dp) => Some(dp),
            DynSource::Generator(_) => None,
        }
    }

    /// Pad fill for a tensor's symbolic axes.
    pub fn pad_fill_for(&self, name: &str) -> f32 {
        self.pad_fill
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    }

    /// Whether the serving layer (not the requester) supplies this tensor.
    pub fn is_derived_name(&self, name: &str) -> bool {
        self.derived.iter().any(|d| match d {
            DerivedInput::SeqMask { name: n, .. } => n == name,
            DerivedInput::StepGate { prefix, .. } => step_index(name, prefix).is_some(),
        })
    }

    /// The per-step family a tensor name belongs to, as `(sym, step)`.
    pub fn per_step_index(&self, name: &str) -> Option<(SymId, i64)> {
        self.per_step
            .iter()
            .find_map(|ps| step_index(name, &ps.prefix).map(|t| (ps.sym, t)))
    }

    /// Materializes a derived input at a bucket shape for a request bound at
    /// `binding`. `shape` is the tensor's shape in the bucket program.
    pub fn derived_tensor(
        &self,
        name: &str,
        shape: &Shape,
        binding: &SymBinding,
    ) -> Option<Tensor> {
        for d in &self.derived {
            match d {
                DerivedInput::SeqMask {
                    name: n,
                    sym,
                    valid,
                    pad,
                } => {
                    if n == name {
                        let bound = binding.get(*sym);
                        let mut t = Tensor::full(shape.clone(), *pad);
                        for i in 0..bound.min(shape.numel()) {
                            t.data_mut()[i as usize] = *valid;
                        }
                        return Some(t);
                    }
                }
                DerivedInput::StepGate {
                    prefix,
                    sym,
                    valid,
                    pad,
                } => {
                    if let Some(t_idx) = step_index(name, prefix) {
                        let v = if t_idx < binding.get(*sym) {
                            *valid
                        } else {
                            *pad
                        };
                        return Some(Tensor::full(shape.clone(), v));
                    }
                }
            }
        }
        None
    }
}

fn step_index(name: &str, prefix: &str) -> Option<i64> {
    name.strip_prefix(prefix)?.parse::<i64>().ok()
}

/// Analytic bucket-boundary selection for one symbolic dim: every power of
/// two inside `min..=max`, clamped to the declared bounds (so `min` and
/// `max` are always boundaries). Powers of two track the kernel-tier
/// crossover (`SMALL_TE_POINTS` is itself a power of two) without per-shape
/// search, à la Vortex's hardware-limit-derived strategy hierarchy.
pub fn bucket_boundaries(min: i64, max: i64) -> Vec<i64> {
    assert!(1 <= min && min <= max, "need 1 <= min <= max");
    let mut out = vec![min];
    let mut p: i64 = 1;
    while p <= max / 2 {
        p *= 2;
        if p > min && p < max {
            out.push(p);
        }
    }
    if max > min {
        out.push(max);
    }
    out
}

impl SymTable {
    /// Cartesian product of per-sym [`bucket_boundaries`], as bindings.
    /// Empty table yields the single empty binding.
    pub fn bucket_bindings(&self) -> Vec<SymBinding> {
        let mut acc = vec![Vec::new()];
        for d in &self.decls {
            let bs = bucket_boundaries(d.min, d.max);
            acc = acc
                .into_iter()
                .flat_map(|v: Vec<i64>| {
                    bs.iter().map(move |&b| {
                        let mut v2 = v.clone();
                        v2.push(b);
                        v2
                    })
                })
                .collect();
        }
        acc.into_iter().map(|vals| SymBinding { vals }).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::TeProgram;
    use crate::{BinaryOp, ScalarExpr};
    use souffle_affine::IndexExpr;
    use souffle_tensor::DType;

    fn matvec(rows: i64, cols: i64) -> TeProgram {
        let mut p = TeProgram::new();
        let x = p.add_input("x", Shape::new(vec![rows, cols]), DType::F32);
        let w = p.add_weight("w", Shape::new(vec![cols]), DType::F32);
        let body = ScalarExpr::binary(
            BinaryOp::Mul,
            ScalarExpr::input(0, vec![IndexExpr::var(0), IndexExpr::var(1)]),
            ScalarExpr::input(1, vec![IndexExpr::var(1)]),
        );
        let y = p.add_te(
            "y",
            Shape::new(vec![rows]),
            DType::F32,
            vec![x, w],
            vec![cols],
            Some(crate::ReduceOp::Sum),
            body,
        );
        p.mark_output(y);
        p
    }

    #[test]
    fn infer_marks_slope_one_axes_symbolic() {
        let mut table = SymTable::new();
        let rows = table.declare("rows", 1, 16);
        let dp = DynProgram::infer(table, &|b| matvec(b.get(rows), 8)).unwrap();
        assert_eq!(dp.tensor_dims(0), &[Dim::Sym(rows), Dim::Fixed(8)]);
        assert_eq!(dp.tensor_dims(1), &[Dim::Fixed(8)]);
        assert_eq!(dp.reduce_dims(0), &[Dim::Fixed(8)]);
        let at5 = dp.concretize(&dp.table().bind(vec![5]).unwrap());
        assert_eq!(at5.tensor(crate::TensorId(0)).shape.dims(), &[5, 8]);
        at5.validate().unwrap();
        assert!(programs_equal(&at5, &matvec(5, 8)));
    }

    #[test]
    fn infer_marks_symbolic_reduce_extents() {
        let mut table = SymTable::new();
        let cols = table.declare("cols", 1, 32);
        let dp = DynProgram::infer(table, &|b| matvec(4, b.get(cols))).unwrap();
        assert_eq!(dp.tensor_dims(0), &[Dim::Fixed(4), Dim::Sym(cols)]);
        assert_eq!(dp.reduce_dims(0), &[Dim::Sym(cols)]);
        let at7 = dp.concretize(&dp.table().bind(vec![7]).unwrap());
        assert!(programs_equal(&at7, &matvec(4, 7)));
    }

    #[test]
    fn infer_rejects_non_slope_one_builders() {
        let mut table = SymTable::new();
        let s = table.declare("s", 1, 8);
        let err = DynProgram::infer(table, &|b| matvec(2 * b.get(s), 8)).unwrap_err();
        assert!(err.contains("not slope-1"), "{err}");
    }

    #[test]
    fn two_sym_inference_is_separable() {
        let mut table = SymTable::new();
        let r = table.declare("rows", 1, 8);
        let c = table.declare("cols", 2, 16);
        let dp = DynProgram::infer(table, &|b| matvec(b.get(r), b.get(c))).unwrap();
        let b = dp.table().bind(vec![3, 5]).unwrap();
        assert!(programs_equal(&dp.concretize(&b), &matvec(3, 5)));
    }

    #[test]
    fn dim_poly_arithmetic_and_eval() {
        let mut table = SymTable::new();
        let a = table.declare("a", 1, 10);
        let b = table.declare("b", 1, 10);
        let p = DimPoly::sym(a)
            .mul(&DimPoly::sym(b))
            .add(&DimPoly::sym(a).scale(3))
            .add(&DimPoly::constant(2));
        let bind = table.bind(vec![4, 5]).unwrap();
        assert_eq!(p.eval(&bind), 4 * 5 + 3 * 4 + 2);
        assert_eq!(p.degree(), 2);
        assert!(!p.is_constant());
        assert_eq!(format!("{p}"), "2 + 3*s0 + s0*s1");
        let zero = p.add(&p.scale(-1));
        assert_eq!(zero, DimPoly::zero());
        assert!(zero.is_constant());
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two_clamped() {
        assert_eq!(bucket_boundaries(1, 8), vec![1, 2, 4, 8]);
        assert_eq!(bucket_boundaries(1, 100), vec![1, 2, 4, 8, 16, 32, 64, 100]);
        assert_eq!(bucket_boundaries(3, 24), vec![3, 4, 8, 16, 24]);
        assert_eq!(bucket_boundaries(5, 5), vec![5]);
        assert_eq!(
            bucket_boundaries(1, 384),
            vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 384]
        );
        let mut t = SymTable::new();
        t.declare("a", 1, 4);
        t.declare("b", 3, 3);
        let bb = t.bucket_bindings();
        assert_eq!(
            bb.iter().map(|b| b.values().to_vec()).collect::<Vec<_>>(),
            vec![vec![1, 3], vec![2, 3], vec![4, 3]]
        );
        assert_eq!(SymTable::new().bucket_bindings().len(), 1);
    }

    #[test]
    fn derived_inputs_materialize_masks_and_gates() {
        let mut table = SymTable::new();
        let seq = table.declare("seq", 1, 8);
        let spec = DynSpec {
            table: table.clone(),
            source: DynSource::Generator(Arc::new(|_| TeProgram::new())),
            pad_fill: vec![("x".into(), -1.0)],
            derived: vec![
                DerivedInput::SeqMask {
                    name: "mask".into(),
                    sym: seq,
                    valid: 0.0,
                    pad: -1e30,
                },
                DerivedInput::StepGate {
                    prefix: "m".into(),
                    sym: seq,
                    valid: 1.0,
                    pad: 0.0,
                },
            ],
            per_step: vec![PerStep {
                prefix: "x".into(),
                sym: seq,
            }],
        };
        let b = table.bind(vec![3]).unwrap();
        let mask = spec
            .derived_tensor("mask", &Shape::new(vec![8]), &b)
            .unwrap();
        assert_eq!(&mask.data()[..4], &[0.0, 0.0, 0.0, -1e30]);
        assert_eq!(
            spec.derived_tensor("m2", &Shape::new(vec![1]), &b)
                .unwrap()
                .data(),
            &[1.0]
        );
        assert_eq!(
            spec.derived_tensor("m3", &Shape::new(vec![1]), &b)
                .unwrap()
                .data(),
            &[0.0]
        );
        assert!(spec.is_derived_name("mask") && spec.is_derived_name("m7"));
        assert!(!spec.is_derived_name("x1"));
        assert_eq!(spec.per_step_index("x5"), Some((seq, 5)));
        assert_eq!(spec.pad_fill_for("x"), -1.0);
        assert_eq!(spec.pad_fill_for("other"), 0.0);
    }
}
