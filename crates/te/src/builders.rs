//! Convenience constructors for the operator vocabulary the paper supports
//! (§6.7): element-wise operators, broadcasts, reductions (`reduce_sum`,
//! GEMM, convolution), reorganisation operators (`reshape`) and shuffle
//! operators (`transpose`).
//!
//! Each builder appends one or more TEs to a [`TeProgram`] and returns the
//! id of the resulting tensor. Complex operators (softmax, layer norm)
//! lower to several simple TEs — exactly the property Souffle's analysis
//! exploits (a softmax becomes a reduction TE plus element-wise TEs).

use crate::expr::{BinaryOp, CmpOp, Cond, ScalarExpr, UnaryOp};
use crate::program::{TeProgram, TensorId};
use crate::te::ReduceOp;
use souffle_affine::IndexExpr;
use souffle_tensor::Shape;

fn iter_vars(rank: usize) -> Vec<IndexExpr> {
    (0..rank).map(IndexExpr::Var).collect()
}

/// Element-wise unary operator `out[i..] = op(a[i..])`.
pub fn unary(p: &mut TeProgram, name: &str, op: UnaryOp, a: TensorId) -> TensorId {
    let t = p.tensor(a);
    let (shape, dtype, rank) = (t.shape.clone(), t.dtype, t.shape.rank());
    p.add_te(
        name,
        shape,
        dtype,
        vec![a],
        vec![],
        None,
        ScalarExpr::unary(op, ScalarExpr::input(0, iter_vars(rank))),
    )
}

/// `exp` shorthand.
pub fn exp(p: &mut TeProgram, name: &str, a: TensorId) -> TensorId {
    unary(p, name, UnaryOp::Exp, a)
}

/// `sigmoid` shorthand.
pub fn sigmoid(p: &mut TeProgram, name: &str, a: TensorId) -> TensorId {
    unary(p, name, UnaryOp::Sigmoid, a)
}

/// `relu` shorthand.
pub fn relu(p: &mut TeProgram, name: &str, a: TensorId) -> TensorId {
    unary(p, name, UnaryOp::Relu, a)
}

/// Element-wise binary operator over same-shaped tensors.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn binary(p: &mut TeProgram, name: &str, op: BinaryOp, a: TensorId, b: TensorId) -> TensorId {
    let (sa, sb) = (p.tensor(a).shape.clone(), p.tensor(b).shape.clone());
    assert_eq!(sa, sb, "binary {name}: shape mismatch {sa} vs {sb}");
    let dtype = p.tensor(a).dtype;
    let rank = sa.rank();
    p.add_te(
        name,
        sa,
        dtype,
        vec![a, b],
        vec![],
        None,
        ScalarExpr::binary(
            op,
            ScalarExpr::input(0, iter_vars(rank)),
            ScalarExpr::input(1, iter_vars(rank)),
        ),
    )
}

/// `a + b` shorthand.
pub fn add(p: &mut TeProgram, name: &str, a: TensorId, b: TensorId) -> TensorId {
    binary(p, name, BinaryOp::Add, a, b)
}

/// `a * b` shorthand.
pub fn mul(p: &mut TeProgram, name: &str, a: TensorId, b: TensorId) -> TensorId {
    binary(p, name, BinaryOp::Mul, a, b)
}

/// Adds a scalar constant element-wise.
pub fn add_scalar(p: &mut TeProgram, name: &str, a: TensorId, c: f32) -> TensorId {
    let t = p.tensor(a);
    let (shape, dtype, rank) = (t.shape.clone(), t.dtype, t.shape.rank());
    p.add_te(
        name,
        shape,
        dtype,
        vec![a],
        vec![],
        None,
        ScalarExpr::binary(
            BinaryOp::Add,
            ScalarExpr::input(0, iter_vars(rank)),
            ScalarExpr::Const(c),
        ),
    )
}

/// Multiplies by a scalar constant element-wise.
pub fn scale(p: &mut TeProgram, name: &str, a: TensorId, c: f32) -> TensorId {
    let t = p.tensor(a);
    let (shape, dtype, rank) = (t.shape.clone(), t.dtype, t.shape.rank());
    p.add_te(
        name,
        shape,
        dtype,
        vec![a],
        vec![],
        None,
        ScalarExpr::binary(
            BinaryOp::Mul,
            ScalarExpr::input(0, iter_vars(rank)),
            ScalarExpr::Const(c),
        ),
    )
}

/// Broadcast binary op where `b` has the trailing shape of `a` along `axis`
/// collapsed — the common "add bias over last dim" pattern:
/// `out[.., j] = op(a[.., j], b[j])`.
///
/// # Panics
///
/// Panics if `b` is not rank 1 matching `a`'s last dimension.
pub fn broadcast_last(
    p: &mut TeProgram,
    name: &str,
    op: BinaryOp,
    a: TensorId,
    b: TensorId,
) -> TensorId {
    let sa = p.tensor(a).shape.clone();
    let sb = p.tensor(b).shape.clone();
    assert_eq!(sb.rank(), 1, "broadcast_last expects rank-1 rhs");
    assert_eq!(
        sb.dim(0),
        sa.dim(sa.rank() - 1),
        "broadcast extent mismatch"
    );
    let dtype = p.tensor(a).dtype;
    let rank = sa.rank();
    p.add_te(
        name,
        sa,
        dtype,
        vec![a, b],
        vec![],
        None,
        ScalarExpr::binary(
            op,
            ScalarExpr::input(0, iter_vars(rank)),
            ScalarExpr::input(1, vec![IndexExpr::var(rank - 1)]),
        ),
    )
}

/// Bias add over the last dimension.
pub fn bias_add(p: &mut TeProgram, name: &str, a: TensorId, bias: TensorId) -> TensorId {
    broadcast_last(p, name, BinaryOp::Add, a, bias)
}

/// Matrix multiplication `out[i,j] = sum_k a[i,k] * b[k,j]`.
///
/// # Panics
///
/// Panics on non-2D operands or mismatched inner extents.
pub fn matmul(p: &mut TeProgram, name: &str, a: TensorId, b: TensorId) -> TensorId {
    let sa = p.tensor(a).shape.clone();
    let sb = p.tensor(b).shape.clone();
    assert_eq!(sa.rank(), 2, "matmul lhs must be 2-D");
    assert_eq!(sb.rank(), 2, "matmul rhs must be 2-D");
    assert_eq!(sa.dim(1), sb.dim(0), "matmul inner extent mismatch");
    let dtype = p.tensor(a).dtype;
    p.add_te(
        name,
        Shape::new(vec![sa.dim(0), sb.dim(1)]),
        dtype,
        vec![a, b],
        vec![sa.dim(1)],
        Some(ReduceOp::Sum),
        ScalarExpr::binary(
            BinaryOp::Mul,
            ScalarExpr::input(0, vec![IndexExpr::var(0), IndexExpr::var(2)]),
            ScalarExpr::input(1, vec![IndexExpr::var(2), IndexExpr::var(1)]),
        ),
    )
}

/// Batched matrix multiplication `out[b,i,j] = sum_k a[b,i,k] * w[b,k,j]`.
///
/// # Panics
///
/// Panics on non-3D operands or mismatched extents.
pub fn batch_matmul(p: &mut TeProgram, name: &str, a: TensorId, b: TensorId) -> TensorId {
    let sa = p.tensor(a).shape.clone();
    let sb = p.tensor(b).shape.clone();
    assert_eq!(sa.rank(), 3, "batch_matmul lhs must be 3-D");
    assert_eq!(sb.rank(), 3, "batch_matmul rhs must be 3-D");
    assert_eq!(sa.dim(0), sb.dim(0), "batch extent mismatch");
    assert_eq!(sa.dim(2), sb.dim(1), "inner extent mismatch");
    let dtype = p.tensor(a).dtype;
    p.add_te(
        name,
        Shape::new(vec![sa.dim(0), sa.dim(1), sb.dim(2)]),
        dtype,
        vec![a, b],
        vec![sa.dim(2)],
        Some(ReduceOp::Sum),
        ScalarExpr::binary(
            BinaryOp::Mul,
            ScalarExpr::input(
                0,
                vec![IndexExpr::var(0), IndexExpr::var(1), IndexExpr::var(3)],
            ),
            ScalarExpr::input(
                1,
                vec![IndexExpr::var(0), IndexExpr::var(3), IndexExpr::var(2)],
            ),
        ),
    )
}

/// Matrix–vector product `out[i] = sum_k w[i,k] * x[k]` (the LSTM GEMV).
///
/// # Panics
///
/// Panics on rank/extent mismatches.
pub fn gemv(p: &mut TeProgram, name: &str, w: TensorId, x: TensorId) -> TensorId {
    let sw = p.tensor(w).shape.clone();
    let sx = p.tensor(x).shape.clone();
    assert_eq!(sw.rank(), 2, "gemv matrix must be 2-D");
    assert_eq!(sx.rank(), 1, "gemv vector must be 1-D");
    assert_eq!(sw.dim(1), sx.dim(0), "gemv extent mismatch");
    let dtype = p.tensor(w).dtype;
    p.add_te(
        name,
        Shape::new(vec![sw.dim(0)]),
        dtype,
        vec![w, x],
        vec![sw.dim(1)],
        Some(ReduceOp::Sum),
        ScalarExpr::binary(
            BinaryOp::Mul,
            ScalarExpr::input(0, vec![IndexExpr::var(0), IndexExpr::var(1)]),
            ScalarExpr::input(1, vec![IndexExpr::var(1)]),
        ),
    )
}

/// Reduction over the last axis: `out[i..] = reduce(a[i.., r])`.
pub fn reduce_last(p: &mut TeProgram, name: &str, op: ReduceOp, a: TensorId) -> TensorId {
    let sa = p.tensor(a).shape.clone();
    assert!(sa.rank() >= 1, "reduce_last requires rank >= 1");
    let out_rank = sa.rank() - 1;
    let out_shape = if out_rank == 0 {
        Shape::new(vec![1])
    } else {
        Shape::new(sa.dims()[..out_rank].to_vec())
    };
    let dtype = p.tensor(a).dtype;
    let mut idx = iter_vars(out_rank);
    // The reduce variable comes after the (possibly zero) iteration vars.
    let reduce_var = if out_rank == 0 {
        // out shape is [1]; iteration var v0 exists but is unused, reduce is v1
        idx.clear();
        IndexExpr::var(1)
    } else {
        IndexExpr::var(out_rank)
    };
    idx.push(reduce_var);
    p.add_te(
        name,
        out_shape,
        dtype,
        vec![a],
        vec![sa.dim(sa.rank() - 1)],
        Some(op),
        ScalarExpr::input(0, idx),
    )
}

/// Softmax over the last axis, lowered as the paper describes (§1): a
/// max-reduction, an element-wise exp of the shifted input, a sum-reduction
/// and an element-wise division. Returns the final tensor.
pub fn softmax(p: &mut TeProgram, name: &str, a: TensorId) -> TensorId {
    let sa = p.tensor(a).shape.clone();
    let rank = sa.rank();
    let dtype = p.tensor(a).dtype;
    let m = reduce_last(p, &format!("{name}.max"), ReduceOp::Max, a);
    // shifted exp: e[i..,j] = exp(a[i..,j] - m[i..])
    let mut m_idx = iter_vars(rank - 1);
    if rank == 1 {
        m_idx = vec![IndexExpr::constant(0)];
    }
    let e = p.add_te(
        &format!("{name}.exp"),
        sa.clone(),
        dtype,
        vec![a, m],
        vec![],
        None,
        ScalarExpr::unary(
            UnaryOp::Exp,
            ScalarExpr::binary(
                BinaryOp::Sub,
                ScalarExpr::input(0, iter_vars(rank)),
                ScalarExpr::input(1, m_idx.clone()),
            ),
        ),
    );
    let s = reduce_last(p, &format!("{name}.sum"), ReduceOp::Sum, e);
    p.add_te(
        &format!("{name}.div"),
        sa,
        dtype,
        vec![e, s],
        vec![],
        None,
        ScalarExpr::binary(
            BinaryOp::Div,
            ScalarExpr::input(0, iter_vars(rank)),
            ScalarExpr::input(1, m_idx),
        ),
    )
}

/// Layer normalisation over the last axis (mean/variance reductions plus
/// element-wise normalisation with learned `gamma`/`beta`).
pub fn layer_norm(
    p: &mut TeProgram,
    name: &str,
    a: TensorId,
    gamma: TensorId,
    beta: TensorId,
    eps: f32,
) -> TensorId {
    let sa = p.tensor(a).shape.clone();
    let rank = sa.rank();
    let n = sa.dim(rank - 1);
    let dtype = p.tensor(a).dtype;
    let sum = reduce_last(p, &format!("{name}.sum"), ReduceOp::Sum, a);
    let mean = scale(p, &format!("{name}.mean"), sum, 1.0 / n as f32);
    let mean_idx = if rank == 1 {
        vec![IndexExpr::constant(0)]
    } else {
        iter_vars(rank - 1)
    };
    // centered: c = a - mean (broadcast)
    let c = p.add_te(
        &format!("{name}.center"),
        sa.clone(),
        dtype,
        vec![a, mean],
        vec![],
        None,
        ScalarExpr::binary(
            BinaryOp::Sub,
            ScalarExpr::input(0, iter_vars(rank)),
            ScalarExpr::input(1, mean_idx.clone()),
        ),
    );
    let sq = mul(p, &format!("{name}.sq"), c, c);
    let var_sum = reduce_last(p, &format!("{name}.varsum"), ReduceOp::Sum, sq);
    let var = scale(p, &format!("{name}.var"), var_sum, 1.0 / n as f32);
    // normalized: out = c * rsqrt(var + eps) * gamma + beta
    p.add_te(
        &format!("{name}.norm"),
        sa,
        dtype,
        vec![c, var, gamma, beta],
        vec![],
        None,
        ScalarExpr::binary(
            BinaryOp::Add,
            ScalarExpr::binary(
                BinaryOp::Mul,
                ScalarExpr::binary(
                    BinaryOp::Mul,
                    ScalarExpr::input(0, iter_vars(rank)),
                    ScalarExpr::unary(
                        UnaryOp::Rsqrt,
                        ScalarExpr::binary(
                            BinaryOp::Add,
                            ScalarExpr::input(1, mean_idx),
                            ScalarExpr::Const(eps),
                        ),
                    ),
                ),
                ScalarExpr::input(2, vec![IndexExpr::var(rank - 1)]),
            ),
            ScalarExpr::input(3, vec![IndexExpr::var(rank - 1)]),
        ),
    )
}

/// Reshape as a quasi-affine view: linearize the output index, delinearize
/// into the input shape.
///
/// # Panics
///
/// Panics if element counts differ.
pub fn reshape(p: &mut TeProgram, name: &str, a: TensorId, new_shape: Shape) -> TensorId {
    let sa = p.tensor(a).shape.clone();
    assert_eq!(sa.numel(), new_shape.numel(), "reshape must preserve numel");
    let dtype = p.tensor(a).dtype;
    // flat = sum(v_i * stride_i) over the new shape
    let strides = new_shape.strides();
    let mut flat = IndexExpr::constant(0);
    for (i, &s) in strides.iter().enumerate() {
        flat = flat.add(IndexExpr::var(i).mul(s));
    }
    // input index d: (flat / stride_in_d) % dim_in_d. For the outermost
    // axis the modulo is redundant (flat < numel = stride * dim bounds the
    // quotient), and omitting it keeps the body independent of the
    // outermost extent (required for symbolic dims).
    let in_strides = sa.strides();
    let indices: Vec<IndexExpr> = in_strides
        .iter()
        .zip(sa.dims())
        .enumerate()
        .map(|(i, (&st, &d))| {
            let q = flat.clone().floor_div(st);
            if i == 0 {
                q
            } else {
                q.modulo(d)
            }
        })
        .collect();
    p.add_te(
        name,
        new_shape,
        dtype,
        vec![a],
        vec![],
        None,
        ScalarExpr::input(0, indices),
    )
}

/// Permutation of dimensions: `out[i0..in] = a[i_perm[0]..i_perm[n]]`.
///
/// `perm[d]` names the input axis that output axis `d` draws its extent
/// from (same convention as `numpy.transpose`).
///
/// # Panics
///
/// Panics if `perm` is not a permutation of the input rank.
pub fn transpose(p: &mut TeProgram, name: &str, a: TensorId, perm: &[usize]) -> TensorId {
    let sa = p.tensor(a).shape.clone();
    assert_eq!(perm.len(), sa.rank(), "perm rank mismatch");
    let mut seen = vec![false; perm.len()];
    for &ax in perm {
        assert!(ax < perm.len() && !seen[ax], "perm must be a permutation");
        seen[ax] = true;
    }
    let dtype = p.tensor(a).dtype;
    let out_shape = Shape::new(perm.iter().map(|&ax| sa.dim(ax)).collect());
    // input axis `ax` is read at the output variable whose perm entry is ax
    let mut indices = vec![IndexExpr::constant(0); sa.rank()];
    for (out_axis, &in_axis) in perm.iter().enumerate() {
        indices[in_axis] = IndexExpr::var(out_axis);
    }
    p.add_te(
        name,
        out_shape,
        dtype,
        vec![a],
        vec![],
        None,
        ScalarExpr::input(0, indices),
    )
}

/// Strided slice along one axis: keeps `out_extent` elements starting at
/// `start` with step `stride`.
///
/// # Panics
///
/// Panics if the slice exceeds the input extent.
pub fn strided_slice(
    p: &mut TeProgram,
    name: &str,
    a: TensorId,
    axis: usize,
    start: i64,
    stride: i64,
    out_extent: i64,
) -> TensorId {
    let sa = p.tensor(a).shape.clone();
    assert!(axis < sa.rank(), "axis out of range");
    assert!(
        start + (out_extent - 1) * stride < sa.dim(axis),
        "slice exceeds input extent"
    );
    let dtype = p.tensor(a).dtype;
    let mut dims = sa.dims().to_vec();
    dims[axis] = out_extent;
    let indices: Vec<IndexExpr> = (0..sa.rank())
        .map(|d| {
            if d == axis {
                IndexExpr::var(d)
                    .mul(stride)
                    .add(IndexExpr::constant(start))
            } else {
                IndexExpr::var(d)
            }
        })
        .collect();
    p.add_te(
        name,
        Shape::new(dims),
        dtype,
        vec![a],
        vec![],
        None,
        ScalarExpr::input(0, indices),
    )
}

/// Concatenation of two tensors along `axis`, lowered with the
/// `if_then_else` predicate the paper's horizontal transformation uses
/// (Fig. 3).
///
/// # Panics
///
/// Panics if shapes disagree outside `axis`.
pub fn concat(p: &mut TeProgram, name: &str, a: TensorId, b: TensorId, axis: usize) -> TensorId {
    let sa = p.tensor(a).shape.clone();
    let sb = p.tensor(b).shape.clone();
    assert_eq!(sa.rank(), sb.rank(), "concat rank mismatch");
    for d in 0..sa.rank() {
        if d != axis {
            assert_eq!(sa.dim(d), sb.dim(d), "concat extent mismatch on axis {d}");
        }
    }
    let dtype = p.tensor(a).dtype;
    let mut dims = sa.dims().to_vec();
    dims[axis] += sb.dim(axis);
    let rank = sa.rank();
    let b_indices: Vec<IndexExpr> = (0..rank)
        .map(|d| {
            if d == axis {
                IndexExpr::var(d).sub(IndexExpr::constant(sa.dim(axis)))
            } else {
                IndexExpr::var(d)
            }
        })
        .collect();
    p.add_te(
        name,
        Shape::new(dims),
        dtype,
        vec![a, b],
        vec![],
        None,
        ScalarExpr::select(
            Cond::cmp(
                CmpOp::Lt,
                IndexExpr::var(axis),
                IndexExpr::constant(sa.dim(axis)),
            ),
            ScalarExpr::input(0, iter_vars(rank)),
            ScalarExpr::input(1, b_indices),
        ),
    )
}

/// Direct 2-D convolution in NCHW layout with zero padding, the paper's
/// default convolution implementation (§6.7):
/// `out[n,f,y,x] = sum_{c,ry,rx} in[n,c,y*s+ry-pad,x*s+rx-pad] * w[f,c,ry,rx]`.
///
/// # Panics
///
/// Panics on rank or channel mismatches.
#[allow(clippy::many_single_char_names)]
pub fn conv2d(
    p: &mut TeProgram,
    name: &str,
    input: TensorId,
    weight: TensorId,
    stride: i64,
    pad: i64,
) -> TensorId {
    let si = p.tensor(input).shape.clone();
    let sw = p.tensor(weight).shape.clone();
    assert_eq!(si.rank(), 4, "conv2d input must be NCHW");
    assert_eq!(sw.rank(), 4, "conv2d weight must be FCHW");
    assert_eq!(si.dim(1), sw.dim(1), "channel mismatch");
    let (n, c, h, w) = (si.dim(0), si.dim(1), si.dim(2), si.dim(3));
    let (f, kh, kw) = (sw.dim(0), sw.dim(2), sw.dim(3));
    let oh = (h + 2 * pad - kh) / stride + 1;
    let ow = (w + 2 * pad - kw) / stride + 1;
    let dtype = p.tensor(input).dtype;
    // vars: 0..4 = n, f, y, x ; 4..7 = c, ry, rx
    let iy = IndexExpr::var(2)
        .mul(stride)
        .add(IndexExpr::var(5))
        .sub(IndexExpr::constant(pad));
    let ix = IndexExpr::var(3)
        .mul(stride)
        .add(IndexExpr::var(6))
        .sub(IndexExpr::constant(pad));
    let in_access = ScalarExpr::input(
        0,
        vec![IndexExpr::var(0), IndexExpr::var(4), iy.clone(), ix.clone()],
    );
    let guarded = if pad > 0 {
        ScalarExpr::select(
            Cond::cmp(CmpOp::Ge, iy.clone(), IndexExpr::constant(0))
                .and(Cond::cmp(CmpOp::Lt, iy, IndexExpr::constant(h)))
                .and(Cond::cmp(CmpOp::Ge, ix.clone(), IndexExpr::constant(0)))
                .and(Cond::cmp(CmpOp::Lt, ix, IndexExpr::constant(w))),
            in_access,
            ScalarExpr::Const(0.0),
        )
    } else {
        in_access
    };
    p.add_te(
        name,
        Shape::new(vec![n, f, oh, ow]),
        dtype,
        vec![input, weight],
        vec![c, kh, kw],
        Some(ReduceOp::Sum),
        ScalarExpr::binary(
            BinaryOp::Mul,
            guarded,
            ScalarExpr::input(
                1,
                vec![
                    IndexExpr::var(1),
                    IndexExpr::var(4),
                    IndexExpr::var(5),
                    IndexExpr::var(6),
                ],
            ),
        ),
    )
}

/// Grouped 2-D convolution (ResNeXt's aggregated transform): channels are
/// split into `groups`; output feature `f` only reduces over its group's
/// input channels.
///
/// Weight layout is `[F, C/groups, KH, KW]`.
///
/// # Panics
///
/// Panics if extents are not divisible by `groups`.
pub fn grouped_conv2d(
    p: &mut TeProgram,
    name: &str,
    input: TensorId,
    weight: TensorId,
    stride: i64,
    pad: i64,
    groups: i64,
) -> TensorId {
    let si = p.tensor(input).shape.clone();
    let sw = p.tensor(weight).shape.clone();
    let (n, c, h, w) = (si.dim(0), si.dim(1), si.dim(2), si.dim(3));
    let (f, cg, kh, kw) = (sw.dim(0), sw.dim(1), sw.dim(2), sw.dim(3));
    assert_eq!(c % groups, 0, "channels not divisible by groups");
    assert_eq!(f % groups, 0, "features not divisible by groups");
    assert_eq!(cg, c / groups, "weight channel extent mismatch");
    let oh = (h + 2 * pad - kh) / stride + 1;
    let ow = (w + 2 * pad - kw) / stride + 1;
    let dtype = p.tensor(input).dtype;
    let fpg = f / groups; // features per group
                          // vars: 0..4 = n, f, y, x ; 4..7 = cg (within group), ry, rx
                          // input channel = (f / fpg) * cg_extent + cg
    let in_c = IndexExpr::var(1)
        .floor_div(fpg)
        .mul(cg)
        .add(IndexExpr::var(4));
    let iy = IndexExpr::var(2)
        .mul(stride)
        .add(IndexExpr::var(5))
        .sub(IndexExpr::constant(pad));
    let ix = IndexExpr::var(3)
        .mul(stride)
        .add(IndexExpr::var(6))
        .sub(IndexExpr::constant(pad));
    let in_access = ScalarExpr::input(0, vec![IndexExpr::var(0), in_c, iy.clone(), ix.clone()]);
    let guarded = if pad > 0 {
        ScalarExpr::select(
            Cond::cmp(CmpOp::Ge, iy.clone(), IndexExpr::constant(0))
                .and(Cond::cmp(CmpOp::Lt, iy, IndexExpr::constant(h)))
                .and(Cond::cmp(CmpOp::Ge, ix.clone(), IndexExpr::constant(0)))
                .and(Cond::cmp(CmpOp::Lt, ix, IndexExpr::constant(w))),
            in_access,
            ScalarExpr::Const(0.0),
        )
    } else {
        in_access
    };
    p.add_te(
        name,
        Shape::new(vec![n, f, oh, ow]),
        dtype,
        vec![input, weight],
        vec![cg, kh, kw],
        Some(ReduceOp::Sum),
        ScalarExpr::binary(
            BinaryOp::Mul,
            guarded,
            ScalarExpr::input(
                1,
                vec![
                    IndexExpr::var(1),
                    IndexExpr::var(4),
                    IndexExpr::var(5),
                    IndexExpr::var(6),
                ],
            ),
        ),
    )
}

/// 2-D max pooling in NCHW layout with zero-stride-window semantics:
/// `out[n,c,y,x] = max over (ry,rx) of in[n,c,y*s+ry-pad,x*s+rx-pad]`,
/// out-of-range taps contribute `-inf`.
///
/// # Panics
///
/// Panics on non-4D input.
pub fn max_pool2d(
    p: &mut TeProgram,
    name: &str,
    a: TensorId,
    kernel: i64,
    stride: i64,
    pad: i64,
) -> TensorId {
    let sa = p.tensor(a).shape.clone();
    assert_eq!(sa.rank(), 4, "max_pool2d expects NCHW");
    let (n, c, h, w) = (sa.dim(0), sa.dim(1), sa.dim(2), sa.dim(3));
    let oh = (h + 2 * pad - kernel) / stride + 1;
    let ow = (w + 2 * pad - kernel) / stride + 1;
    let dtype = p.tensor(a).dtype;
    // vars: 0..4 = n, c, y, x ; 4..6 = ry, rx
    let iy = IndexExpr::var(2)
        .mul(stride)
        .add(IndexExpr::var(4))
        .sub(IndexExpr::constant(pad));
    let ix = IndexExpr::var(3)
        .mul(stride)
        .add(IndexExpr::var(5))
        .sub(IndexExpr::constant(pad));
    let access = ScalarExpr::input(
        0,
        vec![IndexExpr::var(0), IndexExpr::var(1), iy.clone(), ix.clone()],
    );
    let body = if pad > 0 {
        ScalarExpr::select(
            Cond::cmp(CmpOp::Ge, iy.clone(), IndexExpr::constant(0))
                .and(Cond::cmp(CmpOp::Lt, iy, IndexExpr::constant(h)))
                .and(Cond::cmp(CmpOp::Ge, ix.clone(), IndexExpr::constant(0)))
                .and(Cond::cmp(CmpOp::Lt, ix, IndexExpr::constant(w))),
            access,
            ScalarExpr::Const(f32::NEG_INFINITY),
        )
    } else {
        access
    };
    p.add_te(
        name,
        Shape::new(vec![n, c, oh, ow]),
        dtype,
        vec![a],
        vec![kernel, kernel],
        Some(ReduceOp::Max),
        body,
    )
}

/// Global average pooling over H and W of an NCHW tensor, producing `[N, C]`.
pub fn global_avg_pool(p: &mut TeProgram, name: &str, a: TensorId) -> TensorId {
    let sa = p.tensor(a).shape.clone();
    assert_eq!(sa.rank(), 4, "global_avg_pool expects NCHW");
    let (n, c, h, w) = (sa.dim(0), sa.dim(1), sa.dim(2), sa.dim(3));
    let dtype = p.tensor(a).dtype;
    let sum = p.add_te(
        &format!("{name}.sum"),
        Shape::new(vec![n, c]),
        dtype,
        vec![a],
        vec![h, w],
        Some(ReduceOp::Sum),
        ScalarExpr::input(
            0,
            vec![
                IndexExpr::var(0),
                IndexExpr::var(1),
                IndexExpr::var(2),
                IndexExpr::var(3),
            ],
        ),
    );
    scale(p, &format!("{name}.avg"), sum, 1.0 / (h * w) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::eval_program;
    use souffle_tensor::{DType, Tensor};
    use std::collections::HashMap;

    fn run(p: &TeProgram, binds: Vec<(TensorId, Tensor)>) -> HashMap<TensorId, Tensor> {
        p.validate().expect("program must validate");
        eval_program(p, &binds.into_iter().collect()).expect("eval must succeed")
    }

    #[test]
    fn matmul_matches_reference() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![3, 4]), DType::F32);
        let b = p.add_input("B", Shape::new(vec![4, 2]), DType::F32);
        let c = matmul(&mut p, "mm", a, b);
        let ta = Tensor::from_fn(Shape::new(vec![3, 4]), |i| (i[0] + i[1]) as f32);
        let tb = Tensor::from_fn(Shape::new(vec![4, 2]), |i| (i[0] * 2 + i[1]) as f32);
        let out = run(&p, vec![(a, ta.clone()), (b, tb.clone())]);
        let got = &out[&c];
        for i in 0..3 {
            for j in 0..2 {
                let want: f32 = (0..4).map(|k| ta.at(&[i, k]) * tb.at(&[k, j])).sum();
                assert!((got.at(&[i, j]) - want).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4, 8]), DType::F32);
        let s = softmax(&mut p, "sm", a);
        let out = run(&p, vec![(a, Tensor::random(Shape::new(vec![4, 8]), 7))]);
        let got = &out[&s];
        for i in 0..4 {
            let sum: f32 = (0..8).map(|j| got.at(&[i, j])).sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {i} sums to {sum}");
            for j in 0..8 {
                assert!(got.at(&[i, j]) >= 0.0);
            }
        }
    }

    #[test]
    fn reshape_roundtrips() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4, 6]), DType::F32);
        let r = reshape(&mut p, "rs", a, Shape::new(vec![2, 12]));
        let back = reshape(&mut p, "rs2", r, Shape::new(vec![4, 6]));
        let ta = Tensor::random(Shape::new(vec![4, 6]), 3);
        let out = run(&p, vec![(a, ta.clone())]);
        assert!(out[&back].allclose(&ta, 0.0, 0.0));
        // And the flat data is bit-identical under reshape.
        assert_eq!(out[&r].data(), ta.data());
    }

    #[test]
    fn transpose_swaps_axes() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![2, 3]), DType::F32);
        let t = transpose(&mut p, "tr", a, &[1, 0]);
        let ta = Tensor::from_fn(Shape::new(vec![2, 3]), |i| (i[0] * 3 + i[1]) as f32);
        let out = run(&p, vec![(a, ta.clone())]);
        for i in 0..3 {
            for j in 0..2 {
                assert_eq!(out[&t].at(&[i, j]), ta.at(&[j, i]));
            }
        }
    }

    #[test]
    fn strided_slice_picks_elements() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![8]), DType::F32);
        let s = strided_slice(&mut p, "sl", a, 0, 1, 2, 4);
        let ta = Tensor::from_fn(Shape::new(vec![8]), |i| i[0] as f32);
        let out = run(&p, vec![(a, ta)]);
        assert_eq!(out[&s].data(), &[1.0, 3.0, 5.0, 7.0]);
    }

    #[test]
    fn concat_joins_tensors() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![2, 2]), DType::F32);
        let b = p.add_input("B", Shape::new(vec![3, 2]), DType::F32);
        let c = concat(&mut p, "cat", a, b, 0);
        let out = run(
            &p,
            vec![
                (a, Tensor::full(Shape::new(vec![2, 2]), 1.0)),
                (b, Tensor::full(Shape::new(vec![3, 2]), 2.0)),
            ],
        );
        assert_eq!(out[&c].shape().dims(), &[5, 2]);
        assert_eq!(out[&c].at(&[1, 1]), 1.0);
        assert_eq!(out[&c].at(&[2, 0]), 2.0);
    }

    #[test]
    fn conv2d_identity_kernel() {
        let mut p = TeProgram::new();
        let x = p.add_input("X", Shape::new(vec![1, 1, 4, 4]), DType::F32);
        let w = p.add_weight("W", Shape::new(vec![1, 1, 1, 1]), DType::F32);
        let y = conv2d(&mut p, "conv", x, w, 1, 0);
        let tx = Tensor::random(Shape::new(vec![1, 1, 4, 4]), 11);
        let tw = Tensor::full(Shape::new(vec![1, 1, 1, 1]), 1.0);
        let out = run(&p, vec![(x, tx.clone()), (w, tw)]);
        assert!(out[&y].allclose(&tx, 1e-6, 0.0));
    }

    #[test]
    fn conv2d_padding_produces_same_spatial_size() {
        let mut p = TeProgram::new();
        let x = p.add_input("X", Shape::new(vec![1, 2, 5, 5]), DType::F32);
        let w = p.add_weight("W", Shape::new(vec![3, 2, 3, 3]), DType::F32);
        let y = conv2d(&mut p, "conv", x, w, 1, 1);
        assert_eq!(p.tensor(y).shape.dims(), &[1, 3, 5, 5]);
        // Border outputs only see the valid region (zero padding).
        let tx = Tensor::full(Shape::new(vec![1, 2, 5, 5]), 1.0);
        let tw = Tensor::full(Shape::new(vec![3, 2, 3, 3]), 1.0);
        let out = run(&p, vec![(x, tx), (w, tw)]);
        // center: 2 channels * 9 taps = 18 ; corner: 2 * 4 = 8
        assert_eq!(out[&y].at(&[0, 0, 2, 2]), 18.0);
        assert_eq!(out[&y].at(&[0, 0, 0, 0]), 8.0);
    }

    #[test]
    fn grouped_conv_blocks_channels() {
        let mut p = TeProgram::new();
        // 4 input channels, 4 output features, 2 groups, 1x1 kernels.
        let x = p.add_input("X", Shape::new(vec![1, 4, 2, 2]), DType::F32);
        let w = p.add_weight("W", Shape::new(vec![4, 2, 1, 1]), DType::F32);
        let y = grouped_conv2d(&mut p, "gconv", x, w, 1, 0, 2);
        // Input: channel c filled with value c; weights all 1.
        let tx = Tensor::from_fn(Shape::new(vec![1, 4, 2, 2]), |i| i[1] as f32);
        let tw = Tensor::full(Shape::new(vec![4, 2, 1, 1]), 1.0);
        let out = run(&p, vec![(x, tx), (w, tw)]);
        // Feature 0,1 reduce channels {0,1} -> 1 ; features 2,3 reduce {2,3} -> 5.
        assert_eq!(out[&y].at(&[0, 0, 0, 0]), 1.0);
        assert_eq!(out[&y].at(&[0, 1, 0, 0]), 1.0);
        assert_eq!(out[&y].at(&[0, 2, 0, 0]), 5.0);
        assert_eq!(out[&y].at(&[0, 3, 0, 0]), 5.0);
    }

    #[test]
    fn layer_norm_normalizes() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![2, 16]), DType::F32);
        let g = p.add_weight("G", Shape::new(vec![16]), DType::F32);
        let b = p.add_weight("B", Shape::new(vec![16]), DType::F32);
        let y = layer_norm(&mut p, "ln", a, g, b, 1e-5);
        let out = run(
            &p,
            vec![
                (a, Tensor::random(Shape::new(vec![2, 16]), 5)),
                (g, Tensor::full(Shape::new(vec![16]), 1.0)),
                (b, Tensor::full(Shape::new(vec![16]), 0.0)),
            ],
        );
        for i in 0..2 {
            let row: Vec<f32> = (0..16).map(|j| out[&y].at(&[i, j])).collect();
            let mean: f32 = row.iter().sum::<f32>() / 16.0;
            let var: f32 = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 16.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn gemv_matches_reference() {
        let mut p = TeProgram::new();
        let w = p.add_weight("W", Shape::new(vec![3, 4]), DType::F32);
        let x = p.add_input("x", Shape::new(vec![4]), DType::F32);
        let y = gemv(&mut p, "gemv", w, x);
        let tw = Tensor::from_fn(Shape::new(vec![3, 4]), |i| (i[0] * 4 + i[1]) as f32);
        let tx = Tensor::full(Shape::new(vec![4]), 1.0);
        let out = run(&p, vec![(w, tw), (x, tx)]);
        assert_eq!(out[&y].data(), &[6.0, 22.0, 38.0]);
    }

    #[test]
    fn global_avg_pool_averages() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![1, 2, 2, 2]), DType::F32);
        let y = global_avg_pool(&mut p, "gap", a);
        let ta = Tensor::from_fn(Shape::new(vec![1, 2, 2, 2]), |i| (i[2] * 2 + i[3]) as f32);
        let out = run(&p, vec![(a, ta)]);
        assert_eq!(out[&y].shape().dims(), &[1, 2]);
        assert_eq!(out[&y].at(&[0, 0]), 1.5);
    }

    #[test]
    fn batch_matmul_batches_independently() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![2, 2, 3]), DType::F32);
        let b = p.add_input("B", Shape::new(vec![2, 3, 2]), DType::F32);
        let c = batch_matmul(&mut p, "bmm", a, b);
        let ta = Tensor::from_fn(Shape::new(vec![2, 2, 3]), |i| (i[0] + 1) as f32);
        let tb = Tensor::full(Shape::new(vec![2, 3, 2]), 1.0);
        let out = run(&p, vec![(a, ta), (b, tb)]);
        assert_eq!(out[&c].at(&[0, 0, 0]), 3.0);
        assert_eq!(out[&c].at(&[1, 0, 0]), 6.0);
    }

    #[test]
    fn bias_add_broadcasts() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![2, 3]), DType::F32);
        let b = p.add_weight("b", Shape::new(vec![3]), DType::F32);
        let y = bias_add(&mut p, "bias", a, b);
        let out = run(
            &p,
            vec![
                (a, Tensor::zeros(Shape::new(vec![2, 3]))),
                (
                    b,
                    Tensor::from_vec(Shape::new(vec![3]), vec![1.0, 2.0, 3.0]),
                ),
            ],
        );
        assert_eq!(out[&y].at(&[0, 2]), 3.0);
        assert_eq!(out[&y].at(&[1, 0]), 1.0);
    }

    #[test]
    fn max_pool_takes_window_maximum() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![1, 1, 4, 4]), DType::F32);
        let y = max_pool2d(&mut p, "mp", a, 2, 2, 0);
        assert_eq!(p.tensor(y).shape.dims(), &[1, 1, 2, 2]);
        let ta = Tensor::from_fn(Shape::new(vec![1, 1, 4, 4]), |i| (i[2] * 4 + i[3]) as f32);
        let out = run(&p, vec![(a, ta)]);
        assert_eq!(out[&y].at(&[0, 0, 0, 0]), 5.0);
        assert_eq!(out[&y].at(&[0, 0, 1, 1]), 15.0);
    }

    #[test]
    fn max_pool_padding_contributes_neg_infinity() {
        // With padding, border windows must ignore the out-of-range taps
        // (they contribute -inf), never zero-pad like convolution.
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![1, 1, 2, 2]), DType::F32);
        let y = max_pool2d(&mut p, "mp", a, 3, 1, 1);
        assert_eq!(p.tensor(y).shape.dims(), &[1, 1, 2, 2]);
        let ta = Tensor::full(Shape::new(vec![1, 1, 2, 2]), -5.0);
        let out = run(&p, vec![(a, ta)]);
        // All negative inputs: result must be -5, not 0.
        assert_eq!(out[&y].at(&[0, 0, 0, 0]), -5.0);
    }

    #[test]
    fn reduce_last_on_vector_yields_scalar_shape() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![5]), DType::F32);
        let s = reduce_last(&mut p, "sum", ReduceOp::Sum, a);
        assert_eq!(p.tensor(s).shape.dims(), &[1]);
        let out = run(&p, vec![(a, Tensor::full(Shape::new(vec![5]), 2.0))]);
        assert_eq!(out[&s].at(&[0]), 10.0);
    }
}
