//! TE programs: an ordered list of tensor expressions over a tensor table.

use crate::expr::ScalarExpr;
use crate::te::{ReduceOp, TeId, TensorExpr};
use souffle_affine::IndexExpr;
use souffle_tensor::{DType, Shape};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a tensor within a [`TeProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TensorId(pub usize);

impl fmt::Display for TensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Role of a tensor in the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TensorKind {
    /// Runtime input (activations).
    Input,
    /// Constant parameter (weights), resident in global memory.
    Weight,
    /// Produced and consumed inside the program.
    Intermediate,
    /// Produced by the program and visible to the caller.
    Output,
}

/// Metadata of one tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorInfo {
    /// Human-readable name.
    pub name: String,
    /// Shape.
    pub shape: Shape,
    /// Logical dtype (drives the memory/compute cost model).
    pub dtype: DType,
    /// Role.
    pub kind: TensorKind,
}

impl TensorInfo {
    /// Size in bytes under the logical dtype.
    pub fn size_bytes(&self) -> u64 {
        self.shape.numel() as u64 * self.dtype.size_bytes()
    }
}

/// Structural validation failure, returned by [`TeProgram::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A TE references an operand slot with no backing tensor.
    BadOperand {
        /// TE at fault.
        te: TeId,
        /// Offending operand slot.
        operand: usize,
    },
    /// A body access has the wrong number of index expressions.
    RankMismatch {
        /// TE at fault.
        te: TeId,
        /// Offending operand slot.
        operand: usize,
        /// Indices provided.
        got: usize,
        /// Rank of the accessed tensor.
        want: usize,
    },
    /// The body references an index variable outside `0..rank+reduce_rank`.
    VarOutOfRange {
        /// TE at fault.
        te: TeId,
        /// Largest variable referenced.
        max_var: usize,
        /// Number of available variables.
        n_vars: usize,
    },
    /// An unguarded access may read outside the operand tensor.
    OutOfBounds {
        /// TE at fault.
        te: TeId,
        /// Offending operand slot.
        operand: usize,
        /// Dimension at fault.
        axis: usize,
        /// Conservative interval of the index expression.
        interval: (i64, i64),
        /// Extent of the axis.
        extent: i64,
    },
    /// A TE reads a tensor that is defined later in the program.
    UseBeforeDef {
        /// TE at fault.
        te: TeId,
        /// The tensor read too early.
        tensor: TensorId,
    },
    /// Two TEs define the same tensor.
    MultipleProducers {
        /// The doubly-defined tensor.
        tensor: TensorId,
    },
    /// A reduction TE is missing its combinator (or vice versa).
    ReduceOpMismatch {
        /// TE at fault.
        te: TeId,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::BadOperand { te, operand } => {
                write!(f, "{te}: operand slot {operand} has no backing tensor")
            }
            ValidateError::RankMismatch {
                te,
                operand,
                got,
                want,
            } => write!(
                f,
                "{te}: access to operand {operand} has {got} indices, tensor has rank {want}"
            ),
            ValidateError::VarOutOfRange { te, max_var, n_vars } => {
                write!(f, "{te}: references v{max_var} but only {n_vars} variables exist")
            }
            ValidateError::OutOfBounds {
                te,
                operand,
                axis,
                interval,
                extent,
            } => write!(
                f,
                "{te}: unguarded access to operand {operand} axis {axis} spans {interval:?}, extent {extent}"
            ),
            ValidateError::UseBeforeDef { te, tensor } => {
                write!(f, "{te}: reads {tensor} before its definition")
            }
            ValidateError::MultipleProducers { tensor } => {
                write!(f, "{tensor} is defined by more than one TE")
            }
            ValidateError::ReduceOpMismatch { te } => {
                write!(f, "{te}: reduction axes and reduce_op are inconsistent")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// An ordered TE program over a tensor table.
///
/// TEs are stored in definition order, which [`TeProgram::validate`] checks
/// is topological (every read refers to an input, weight, or earlier TE's
/// output).
#[derive(Debug, Clone, Default)]
pub struct TeProgram {
    tensors: Vec<TensorInfo>,
    tes: Vec<TensorExpr>,
    producer: HashMap<TensorId, TeId>,
}

impl TeProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        TeProgram::default()
    }

    /// Adds a runtime input tensor.
    pub fn add_input(&mut self, name: &str, shape: Shape, dtype: DType) -> TensorId {
        self.add_tensor(name, shape, dtype, TensorKind::Input)
    }

    /// Adds a weight tensor.
    pub fn add_weight(&mut self, name: &str, shape: Shape, dtype: DType) -> TensorId {
        self.add_tensor(name, shape, dtype, TensorKind::Weight)
    }

    /// Adds a tensor with an explicit kind.
    pub fn add_tensor(
        &mut self,
        name: &str,
        shape: Shape,
        dtype: DType,
        kind: TensorKind,
    ) -> TensorId {
        let id = TensorId(self.tensors.len());
        self.tensors.push(TensorInfo {
            name: name.to_string(),
            shape,
            dtype,
            kind,
        });
        id
    }

    /// Appends a TE computing a fresh intermediate tensor and returns the
    /// new tensor's id.
    ///
    /// # Panics
    ///
    /// Panics if `reduce` and `reduce_op` presence disagree.
    #[allow(clippy::too_many_arguments)]
    pub fn add_te(
        &mut self,
        name: &str,
        shape: Shape,
        dtype: DType,
        inputs: Vec<TensorId>,
        reduce: Vec<i64>,
        reduce_op: Option<ReduceOp>,
        body: ScalarExpr,
    ) -> TensorId {
        assert_eq!(
            reduce.is_empty(),
            reduce_op.is_none(),
            "reduce axes and reduce_op must agree"
        );
        let output = self.add_tensor(name, shape, dtype, TensorKind::Intermediate);
        let te_id = TeId(self.tes.len());
        self.tes.push(TensorExpr {
            name: name.to_string(),
            output,
            inputs,
            reduce,
            reduce_op,
            body,
        });
        self.producer.insert(output, te_id);
        output
    }

    /// Appends an already-built [`TensorExpr`] defining `te.output`.
    ///
    /// # Panics
    ///
    /// Panics if the output tensor already has a producer.
    pub fn push_te(&mut self, te: TensorExpr) -> TeId {
        assert!(
            !self.producer.contains_key(&te.output),
            "{} already has a producer",
            te.output
        );
        let id = TeId(self.tes.len());
        self.producer.insert(te.output, id);
        self.tes.push(te);
        id
    }

    /// Marks a tensor as a program output.
    pub fn mark_output(&mut self, id: TensorId) {
        self.tensors[id.0].kind = TensorKind::Output;
    }

    /// Tensor metadata.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale.
    pub fn tensor(&self, id: TensorId) -> &TensorInfo {
        &self.tensors[id.0]
    }

    /// All tensors in id order.
    pub fn tensors(&self) -> &[TensorInfo] {
        &self.tensors
    }

    /// The TE with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale.
    pub fn te(&self, id: TeId) -> &TensorExpr {
        &self.tes[id.0]
    }

    /// All TEs in definition (topological) order.
    pub fn tes(&self) -> &[TensorExpr] {
        &self.tes
    }

    /// Ids of all TEs in definition order.
    pub fn te_ids(&self) -> impl Iterator<Item = TeId> + '_ {
        (0..self.tes.len()).map(TeId)
    }

    /// Number of TEs.
    pub fn num_tes(&self) -> usize {
        self.tes.len()
    }

    /// Number of tensors.
    pub fn num_tensors(&self) -> usize {
        self.tensors.len()
    }

    /// The TE defining `tensor`, or `None` for inputs/weights.
    pub fn producer_of(&self, tensor: TensorId) -> Option<TeId> {
        self.producer.get(&tensor).copied()
    }

    /// TEs reading `tensor`, in definition order.
    pub fn consumers_of(&self, tensor: TensorId) -> Vec<TeId> {
        self.tes
            .iter()
            .enumerate()
            .filter(|(_, te)| te.inputs.contains(&tensor))
            .map(|(i, _)| TeId(i))
            .collect()
    }

    /// Output shape of a TE.
    pub fn output_shape(&self, id: TeId) -> &Shape {
        &self.tensors[self.tes[id.0].output.0].shape
    }

    /// Tensors marked as program outputs.
    pub fn outputs(&self) -> Vec<TensorId> {
        self.tensors
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind == TensorKind::Output)
            .map(|(i, _)| TensorId(i))
            .collect()
    }

    /// Tensors that must be bound by the caller (inputs and weights).
    pub fn free_tensors(&self) -> Vec<TensorId> {
        self.tensors
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.kind, TensorKind::Input | TensorKind::Weight))
            .map(|(i, _)| TensorId(i))
            .collect()
    }

    /// Structural validation: operand arity/rank, variable ranges, bounds
    /// of unguarded accesses (interval arithmetic over the box domain),
    /// topological order, and single-producer property.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), ValidateError> {
        let mut defined: Vec<bool> = self
            .tensors
            .iter()
            .map(|t| matches!(t.kind, TensorKind::Input | TensorKind::Weight))
            .collect();
        let mut produced = vec![false; self.tensors.len()];

        for (i, te) in self.tes.iter().enumerate() {
            let te_id = TeId(i);
            if produced[te.output.0] {
                return Err(ValidateError::MultipleProducers { tensor: te.output });
            }
            produced[te.output.0] = true;
            if te.reduce.is_empty() != te.reduce_op.is_none() {
                return Err(ValidateError::ReduceOpMismatch { te: te_id });
            }
            let out_shape = &self.tensors[te.output.0].shape;
            let n_vars = out_shape.rank() + te.reduce.len();
            // Fold binders live above the free variables, so only *free*
            // occurrences are range-checked against the TE's own space.
            if let Some(max_var) = te.body.max_free_var() {
                if max_var >= n_vars {
                    return Err(ValidateError::VarOutOfRange {
                        te: te_id,
                        max_var,
                        n_vars,
                    });
                }
            }
            // Variable bounds for interval checking: iteration vars then
            // reduction vars.
            let mut var_bounds: Vec<i64> = out_shape.dims().to_vec();
            var_bounds.extend_from_slice(&te.reduce);

            for (operand, indices) in te.body.accesses() {
                let Some(&tensor_id) = te.inputs.get(operand) else {
                    return Err(ValidateError::BadOperand { te: te_id, operand });
                };
                if !defined[tensor_id.0] {
                    return Err(ValidateError::UseBeforeDef {
                        te: te_id,
                        tensor: tensor_id,
                    });
                }
                let t = &self.tensors[tensor_id.0];
                if indices.len() != t.shape.rank() {
                    return Err(ValidateError::RankMismatch {
                        te: te_id,
                        operand,
                        got: indices.len(),
                        want: t.shape.rank(),
                    });
                }
            }
            // Bounds-check only accesses not nested under a Select guard.
            check_bounds(&te.body, te_id, &var_bounds, &self.bounds_ctx(te), false)?;
            defined[te.output.0] = true;
        }
        Ok(())
    }

    fn bounds_ctx<'a>(&'a self, te: &'a TensorExpr) -> impl Fn(usize) -> Option<&'a Shape> + 'a {
        move |operand: usize| te.inputs.get(operand).map(|id| &self.tensors[id.0].shape)
    }

    /// Total bytes of all weight tensors (model size).
    pub fn weight_bytes(&self) -> u64 {
        self.tensors
            .iter()
            .filter(|t| t.kind == TensorKind::Weight)
            .map(TensorInfo::size_bytes)
            .sum()
    }
}

/// Conservative interval of an index expression over a box domain given by
/// extents (each variable ranges over `0..bounds[i]`).
fn interval(e: &IndexExpr, bounds: &[i64]) -> (i64, i64) {
    let pairs: Vec<(i64, i64)> = bounds.iter().map(|&b| (0, b - 1)).collect();
    e.interval(&pairs)
}

fn check_bounds<'a>(
    body: &ScalarExpr,
    te: TeId,
    var_bounds: &[i64],
    shape_of: &impl Fn(usize) -> Option<&'a Shape>,
    guarded: bool,
) -> Result<(), ValidateError> {
    match body {
        ScalarExpr::Const(_) | ScalarExpr::IndexValue(_) => Ok(()),
        ScalarExpr::Input { operand, indices } => {
            if guarded {
                return Ok(()); // runtime-checked by the interpreter
            }
            let Some(shape) = shape_of(*operand) else {
                return Ok(()); // reported elsewhere
            };
            for (axis, idx) in indices.iter().enumerate() {
                let (lo, hi) = interval(idx, var_bounds);
                let extent = shape.dim(axis);
                if lo < 0 || hi >= extent {
                    return Err(ValidateError::OutOfBounds {
                        te,
                        operand: *operand,
                        axis,
                        interval: (lo, hi),
                        extent,
                    });
                }
            }
            Ok(())
        }
        ScalarExpr::Unary(_, a) => check_bounds(a, te, var_bounds, shape_of, guarded),
        ScalarExpr::Binary(_, a, b) => {
            check_bounds(a, te, var_bounds, shape_of, guarded)?;
            check_bounds(b, te, var_bounds, shape_of, guarded)
        }
        ScalarExpr::Select {
            on_true, on_false, ..
        } => {
            check_bounds(on_true, te, var_bounds, shape_of, true)?;
            check_bounds(on_false, te, var_bounds, shape_of, true)
        }
        ScalarExpr::Reduce {
            var, extent, body, ..
        } => {
            // The binder ranges over 0..extent inside the fold body.
            // Binders may be allocated sparsely above the free variables;
            // pad any gap with extent 1 (those variables never occur).
            let mut inner = var_bounds.to_vec();
            if inner.len() <= *var {
                inner.resize(*var + 1, 1);
            }
            inner[*var] = (*extent).max(1);
            check_bounds(body, te, &inner, shape_of, guarded)
        }
    }
}

impl fmt::Display for TeProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "TeProgram ({} tensors, {} TEs)",
            self.tensors.len(),
            self.tes.len()
        )?;
        for (i, t) in self.tensors.iter().enumerate() {
            writeln!(
                f,
                "  t{i}: {} {} {:?} \"{}\"",
                t.dtype, t.shape, t.kind, t.name
            )?;
        }
        for te in &self.tes {
            writeln!(f, "  {te}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinaryOp, CmpOp, Cond, UnaryOp};
    use crate::ReduceOp;

    fn simple_program() -> (TeProgram, TensorId, TensorId) {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![8]), DType::F32);
        let b = p.add_te(
            "exp",
            Shape::new(vec![8]),
            DType::F32,
            vec![a],
            vec![],
            None,
            ScalarExpr::unary(UnaryOp::Exp, ScalarExpr::input(0, vec![IndexExpr::var(0)])),
        );
        p.mark_output(b);
        (p, a, b)
    }

    #[test]
    fn build_and_validate() {
        let (p, a, b) = simple_program();
        assert!(p.validate().is_ok());
        assert_eq!(p.producer_of(b), Some(TeId(0)));
        assert_eq!(p.producer_of(a), None);
        assert_eq!(p.consumers_of(a), vec![TeId(0)]);
        assert_eq!(p.outputs(), vec![b]);
        assert_eq!(p.free_tensors(), vec![a]);
    }

    #[test]
    fn detects_out_of_bounds() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        p.add_te(
            "bad",
            Shape::new(vec![8]),
            DType::F32,
            vec![a],
            vec![],
            None,
            ScalarExpr::input(0, vec![IndexExpr::var(0)]), // v0 in [0,8), A has extent 4
        );
        match p.validate() {
            Err(ValidateError::OutOfBounds { extent: 4, .. }) => {}
            other => panic!("expected OutOfBounds, got {other:?}"),
        }
    }

    #[test]
    fn guarded_access_is_allowed() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        p.add_te(
            "padded",
            Shape::new(vec![8]),
            DType::F32,
            vec![a],
            vec![],
            None,
            ScalarExpr::select(
                Cond::cmp(CmpOp::Lt, IndexExpr::var(0), IndexExpr::constant(4)),
                ScalarExpr::input(0, vec![IndexExpr::var(0)]),
                ScalarExpr::Const(0.0),
            ),
        );
        assert!(p.validate().is_ok());
    }

    #[test]
    fn detects_rank_mismatch() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4, 4]), DType::F32);
        p.add_te(
            "bad",
            Shape::new(vec![4]),
            DType::F32,
            vec![a],
            vec![],
            None,
            ScalarExpr::input(0, vec![IndexExpr::var(0)]),
        );
        assert!(matches!(
            p.validate(),
            Err(ValidateError::RankMismatch {
                want: 2,
                got: 1,
                ..
            })
        ));
    }

    #[test]
    fn detects_var_out_of_range() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        p.add_te(
            "bad",
            Shape::new(vec![4]),
            DType::F32,
            vec![a],
            vec![],
            None,
            ScalarExpr::input(0, vec![IndexExpr::var(1)]),
        );
        assert!(matches!(
            p.validate(),
            Err(ValidateError::VarOutOfRange {
                max_var: 1,
                n_vars: 1,
                ..
            })
        ));
    }

    #[test]
    fn detects_bad_operand() {
        let mut p = TeProgram::new();
        let _a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        p.add_te(
            "bad",
            Shape::new(vec![4]),
            DType::F32,
            vec![], // no operands bound
            vec![],
            None,
            ScalarExpr::input(0, vec![IndexExpr::var(0)]),
        );
        assert!(matches!(
            p.validate(),
            Err(ValidateError::BadOperand { operand: 0, .. })
        ));
    }

    #[test]
    fn reduction_gemm_validates() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4, 8]), DType::F16);
        let b = p.add_weight("B", Shape::new(vec![8, 16]), DType::F16);
        let c = p.add_te(
            "gemm",
            Shape::new(vec![4, 16]),
            DType::F16,
            vec![a, b],
            vec![8],
            Some(ReduceOp::Sum),
            ScalarExpr::binary(
                BinaryOp::Mul,
                ScalarExpr::input(0, vec![IndexExpr::var(0), IndexExpr::var(2)]),
                ScalarExpr::input(1, vec![IndexExpr::var(2), IndexExpr::var(1)]),
            ),
        );
        p.mark_output(c);
        assert!(p.validate().is_ok());
        assert_eq!(p.weight_bytes(), 8 * 16 * 2);
    }

    #[test]
    #[should_panic(expected = "must agree")]
    fn reduce_mismatch_panics_on_build() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        p.add_te(
            "bad",
            Shape::new(vec![4]),
            DType::F32,
            vec![a],
            vec![4],
            None, // missing reduce op
            ScalarExpr::input(0, vec![IndexExpr::var(0)]),
        );
    }

    #[test]
    fn display_lists_tensors_and_tes() {
        let (p, _, _) = simple_program();
        let s = p.to_string();
        assert!(s.contains("TeProgram"));
        assert!(s.contains("exp"));
    }
}
