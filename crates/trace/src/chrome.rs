//! Chrome `trace_event` export: serialize a [`Trace`] into the JSON
//! Object Format consumed by `chrome://tracing` and Perfetto, plus a
//! strict validator used by tests and CI to check emitted files without
//! external dependencies.
//!
//! Mapping (see DESIGN.md "Trace schema"):
//! * every closed span → one `"ph":"X"` complete event. `ts`/`dur` are
//!   emitted in microseconds (the trace_event native unit) with three
//!   fractional digits, preserving the tracer's nanosecond resolution;
//!   `cat` is the span-name category (the part before the first `:`);
//! * every counter → one `"ph":"C"` counter event stamped at the end of
//!   the trace;
//! * one `"ph":"M"` `process_name` metadata event names the process.

use crate::json::{self, escape, Value};
use crate::Trace;
use std::fmt::Write as _;

/// Category of a span name: the part before the first `:`, or the whole
/// name (`compile`, `eval`, …) when there is no colon.
pub fn category(name: &str) -> &str {
    name.split(':').next().unwrap_or(name)
}

/// Nanoseconds → microseconds with three fractional digits, the form
/// Chrome expects for `ts`/`dur` (both are doubles in trace_event).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Serialize the trace as Chrome trace_event JSON (object format).
pub fn chrome_json(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
    let mut first = true;
    let mut push = |out: &mut String, ev: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("    ");
        out.push_str(&ev);
    };
    push(
        &mut out,
        "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
         \"args\": {\"name\": \"souffle\"}}"
            .to_string(),
    );
    let mut end_ts = 0u64;
    for span in &trace.spans {
        let end = span.end_ns.unwrap_or(span.start_ns);
        end_ts = end_ts.max(end);
        let mut ev = String::new();
        let _ = write!(
            ev,
            "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"pid\": 1, \
             \"tid\": {}, \"ts\": {}, \"dur\": {}}}",
            escape(&span.name),
            escape(category(&span.name)),
            span.tid,
            us(span.start_ns),
            us(end.saturating_sub(span.start_ns)),
        );
        push(&mut out, ev);
    }
    for (name, value) in &trace.counters {
        let mut ev = String::new();
        let _ = write!(
            ev,
            "{{\"name\": \"{}\", \"ph\": \"C\", \"pid\": 1, \"tid\": 0, \
             \"ts\": {}, \"args\": {{\"value\": {}}}}}",
            escape(name),
            us(end_ts),
            value,
        );
        push(&mut out, ev);
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// What [`validate`] counted in a well-formed Chrome trace document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChromeStats {
    /// `"ph":"X"` complete (span) events.
    pub complete_events: usize,
    /// `"ph":"C"` counter events.
    pub counter_events: usize,
    /// `"ph":"M"` metadata events.
    pub metadata_events: usize,
}

/// Validate a Chrome trace_event JSON document (the schema check run by
/// tests and CI against `--trace-out` files). Checks:
/// * the document parses and is an object with a `traceEvents` array;
/// * every event is an object carrying string `name`/`ph` and numeric
///   `pid`/`tid`;
/// * `X` events carry numeric non-negative `ts` and `dur`;
/// * `C` events carry `ts` and a numeric `args.value`;
/// * only `X`/`C`/`M` phases appear.
pub fn validate(doc: &str) -> Result<ChromeStats, String> {
    let root = json::parse(doc)?;
    let events = root
        .get("traceEvents")
        .ok_or("missing `traceEvents`")?
        .as_arr()
        .ok_or("`traceEvents` is not an array")?;
    let mut stats = ChromeStats::default();
    for (i, ev) in events.iter().enumerate() {
        let obj = ev
            .as_obj()
            .ok_or_else(|| format!("event #{i} is not an object"))?;
        let name = obj
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event #{i} missing string `name`"))?;
        let ph = obj
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event #{i} (`{name}`) missing string `ph`"))?;
        for key in ["pid", "tid"] {
            obj.get(key)
                .and_then(Value::as_num)
                .ok_or_else(|| format!("event #{i} (`{name}`) missing numeric `{key}`"))?;
        }
        let num_field = |key: &str| -> Result<f64, String> {
            obj.get(key)
                .and_then(Value::as_num)
                .ok_or_else(|| format!("event #{i} (`{name}`) missing numeric `{key}`"))
        };
        match ph {
            "X" => {
                let ts = num_field("ts")?;
                let dur = num_field("dur")?;
                if ts < 0.0 || dur < 0.0 || !ts.is_finite() || !dur.is_finite() {
                    return Err(format!("event #{i} (`{name}`) has negative ts/dur"));
                }
                stats.complete_events += 1;
            }
            "C" => {
                num_field("ts")?;
                ev.get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Value::as_num)
                    .ok_or_else(|| format!("counter event #{i} (`{name}`) missing `args.value`"))?;
                stats.counter_events += 1;
            }
            "M" => stats.metadata_events += 1,
            other => {
                return Err(format!(
                    "event #{i} (`{name}`) has unsupported ph `{other}`"
                ))
            }
        }
    }
    if stats.complete_events == 0 {
        return Err("trace contains no complete (`ph:X`) events".into());
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn sample_trace() -> Trace {
        let t = Tracer::new();
        {
            let root = t.span("compile");
            let a = root.child("analysis");
            let _g = a.child("analysis:graph");
        }
        t.record_span("te:weird \"name\"\n", None, 5, 9, 1000);
        t.add("arena.reused", 3);
        t.add("sched.memo_hits", 11);
        t.take()
    }

    #[test]
    fn export_validates() {
        let trace = sample_trace();
        let doc = chrome_json(&trace);
        let stats = validate(&doc).expect("valid chrome trace");
        assert_eq!(stats.complete_events, 4);
        assert_eq!(stats.counter_events, 2);
        assert_eq!(stats.metadata_events, 1);
    }

    #[test]
    fn export_preserves_names_and_categories() {
        let trace = sample_trace();
        let doc = chrome_json(&trace);
        let root = json::parse(&doc).unwrap();
        let events = root.get("traceEvents").unwrap().as_arr().unwrap();
        let graph = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("analysis:graph"))
            .expect("analysis:graph event present");
        assert_eq!(graph.get("cat").and_then(Value::as_str), Some("analysis"));
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(Value::as_str) == Some("te:weird \"name\"\n")));
    }

    #[test]
    fn empty_trace_is_rejected() {
        let doc = chrome_json(&Trace::default());
        assert!(validate(&doc).is_err());
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate("not json").is_err());
        assert!(validate("{\"traceEvents\": 3}").is_err());
        assert!(validate(
            "{\"traceEvents\": [{\"name\": \"x\", \"ph\": \"Q\", \"pid\": 1, \"tid\": 0}]}"
        )
        .is_err());
        assert!(validate(
            "{\"traceEvents\": [{\"name\": \"x\", \"ph\": \"X\", \"pid\": 1, \"tid\": 0, \
             \"ts\": 0}]}"
        )
        .is_err());
    }
}
