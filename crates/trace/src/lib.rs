//! souffle-trace: the hermetic tracing and metrics spine of the Souffle
//! reproduction.
//!
//! Every layer of the pipeline — frontend lowering, global analysis, the
//! TE transformations, scheduling, verification, kernel lowering, and the
//! wavefront runtime — reports into one [`Tracer`]: nestable **spans**
//! (monotonic wall-clock intervals with thread ids) and monotonic
//! **counters** (scheduler memo hits, arena reuse, pool steals, …).
//!
//! Design constraints, in order:
//!
//! 1. **Hermetic.** No dependencies; `std` only.
//! 2. **Deterministic structure.** The span *tree* (names, nesting,
//!    sibling order) of a given compile+eval must not depend on thread
//!    count, machine speed, or scheduling luck, so golden tests can pin
//!    it. Only durations vary. Instrumentation therefore records spans
//!    from the coordinating thread in submission order; worker threads
//!    only contribute timing via [`Tracer::now_ns`] + explicit
//!    [`Tracer::record_span`] calls.
//! 3. **Free when off.** [`Tracer::disabled`] holds no allocation and
//!    every call on it is a branch on `Option`.
//!
//! Exporters: [`Trace::tree_report`] (human tree with durations),
//! [`Trace::structure`] (golden-stable, duration-free),
//! [`chrome::chrome_json`] (Chrome `trace_event` JSON for
//! `chrome://tracing` / Perfetto), and [`summary::TraceSummary`] (stable
//! JSON schema embedded in bench results).

pub mod chrome;
pub mod json;
pub mod summary;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Handle to a recorded span, used to parent further spans explicitly.
///
/// Explicit parent handles (instead of a thread-local "current span")
/// keep nesting deterministic when work fans out across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

/// One recorded span: a named wall-clock interval in the tracer's
/// monotonic timebase, nested under an optional parent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Span name; by convention `category:detail` (see DESIGN.md).
    pub name: String,
    /// Index of the parent span in [`Trace::spans`], if any.
    pub parent: Option<usize>,
    /// Start, nanoseconds since the tracer epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the tracer epoch. `None` only while the
    /// span is still open; a drained [`Trace`] never contains open spans
    /// unless instrumentation leaked a guard (caught by
    /// [`Trace::well_formed`]).
    pub end_ns: Option<u64>,
    /// Small dense id of the recording thread (coordinator = 0 usually),
    /// or a synthetic lane id for spans timed across worker threads.
    pub tid: u64,
}

impl SpanRec {
    /// Duration in nanoseconds (0 if still open).
    pub fn dur_ns(&self) -> u64 {
        self.end_ns
            .unwrap_or(self.start_ns)
            .saturating_sub(self.start_ns)
    }
}

/// A drained, immutable snapshot of everything a [`Tracer`] recorded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Spans in creation order (parents always precede children).
    pub spans: Vec<SpanRec>,
    /// Monotonic counters, sorted by name.
    pub counters: BTreeMap<String, u64>,
}

struct State {
    spans: Vec<SpanRec>,
    counters: BTreeMap<String, u64>,
}

struct Inner {
    epoch: Instant,
    state: Mutex<State>,
}

/// The tracing sink. Cheap to clone (an `Option<Arc>`); all clones feed
/// the same trace. [`Tracer::disabled`] is a `None` and costs one branch
/// per call site.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// A live tracer with its epoch at the call instant.
    pub fn new() -> Tracer {
        Tracer {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                state: Mutex::new(State {
                    spans: Vec::new(),
                    counters: BTreeMap::new(),
                }),
            })),
        }
    }

    /// The no-op tracer: no allocation, every operation is a branch.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Nanoseconds since the tracer epoch (0 when disabled). Worker
    /// threads use this to timestamp work whose span is recorded later
    /// on the coordinating thread via [`Tracer::record_span`].
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Open a root span. Ends when the guard drops (or explicitly via
    /// [`SpanGuard::end`]).
    pub fn span(&self, name: &str) -> SpanGuard {
        self.span_with_parent(name, None)
    }

    /// Open a span under `parent`.
    pub fn child_span(&self, name: &str, parent: SpanId) -> SpanGuard {
        self.span_with_parent(name, Some(parent))
    }

    /// Open a span under an optional parent (root span when `None`) —
    /// the shape instrumented code that threads `Option<SpanId>` wants.
    pub fn span_under(&self, name: &str, parent: Option<SpanId>) -> SpanGuard {
        self.span_with_parent(name, parent)
    }

    fn span_with_parent(&self, name: &str, parent: Option<SpanId>) -> SpanGuard {
        let id = self.inner.as_ref().map(|inner| {
            let start = inner.epoch.elapsed().as_nanos() as u64;
            let mut st = inner.state.lock().unwrap();
            st.spans.push(SpanRec {
                name: name.to_string(),
                parent: parent.map(|p| p.0),
                start_ns: start,
                end_ns: None,
                tid: thread_tid(),
            });
            st.spans.len() - 1
        });
        SpanGuard {
            tracer: self.clone(),
            id,
            ended: false,
        }
    }

    /// Record a fully-timed span in one shot. Used by the runtime: the
    /// coordinator calls this after a wavefront completes, with start/end
    /// timestamps gathered from worker threads ([`Tracer::now_ns`]) and a
    /// synthetic lane `tid`, so that span *order* stays deterministic
    /// while the timing is real.
    pub fn record_span(
        &self,
        name: &str,
        parent: Option<SpanId>,
        start_ns: u64,
        end_ns: u64,
        tid: u64,
    ) {
        if let Some(inner) = &self.inner {
            let mut st = inner.state.lock().unwrap();
            st.spans.push(SpanRec {
                name: name.to_string(),
                parent: parent.map(|p| p.0),
                start_ns,
                end_ns: Some(end_ns.max(start_ns)),
                tid,
            });
        }
    }

    /// Add `delta` to the named monotonic counter.
    pub fn add(&self, counter: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            if delta == 0 {
                return;
            }
            let mut st = inner.state.lock().unwrap();
            *st.counters.entry(counter.to_string()).or_insert(0) += delta;
        }
    }

    /// Raise the named high-water counter to at least `value`.
    pub fn high_water(&self, counter: &str, value: u64) {
        if let Some(inner) = &self.inner {
            let mut st = inner.state.lock().unwrap();
            let c = st.counters.entry(counter.to_string()).or_insert(0);
            *c = (*c).max(value);
        }
    }

    /// Total recorded duration of all **closed** spans with `name`
    /// (nanoseconds). The pipeline derives `CompileStats` timings from
    /// this, so stage timing has exactly one source of truth.
    pub fn span_duration_ns(&self, name: &str) -> u64 {
        match &self.inner {
            Some(inner) => {
                let st = inner.state.lock().unwrap();
                st.spans
                    .iter()
                    .filter(|s| s.name == name && s.end_ns.is_some())
                    .map(|s| s.dur_ns())
                    .sum()
            }
            None => 0,
        }
    }

    /// Clone out the current contents without draining.
    pub fn snapshot(&self) -> Trace {
        match &self.inner {
            Some(inner) => {
                let st = inner.state.lock().unwrap();
                Trace {
                    spans: st.spans.clone(),
                    counters: st.counters.clone(),
                }
            }
            None => Trace::default(),
        }
    }

    /// Drain everything recorded so far, leaving the tracer empty (the
    /// epoch is preserved so later spans stay on the same timebase).
    pub fn take(&self) -> Trace {
        match &self.inner {
            Some(inner) => {
                let mut st = inner.state.lock().unwrap();
                Trace {
                    spans: std::mem::take(&mut st.spans),
                    counters: std::mem::take(&mut st.counters),
                }
            }
            None => Trace::default(),
        }
    }

    fn end_span(&self, id: usize) {
        if let Some(inner) = &self.inner {
            let end = inner.epoch.elapsed().as_nanos() as u64;
            let mut st = inner.state.lock().unwrap();
            if let Some(span) = st.spans.get_mut(id) {
                if span.end_ns.is_none() {
                    span.end_ns = Some(end.max(span.start_ns));
                }
            }
        }
    }
}

/// RAII guard for an open span; closes it on drop.
#[must_use = "a span ends when its guard drops — binding to _ closes it immediately"]
pub struct SpanGuard {
    tracer: Tracer,
    id: Option<usize>,
    ended: bool,
}

impl SpanGuard {
    /// Handle for parenting children under this span.
    pub fn id(&self) -> Option<SpanId> {
        self.id.map(SpanId)
    }

    /// Open a child span nested under this one.
    pub fn child(&self, name: &str) -> SpanGuard {
        match self.id() {
            Some(id) => self.tracer.child_span(name, id),
            None => SpanGuard {
                tracer: Tracer::disabled(),
                id: None,
                ended: false,
            },
        }
    }

    /// Close the span now instead of at drop.
    pub fn end(mut self) {
        self.end_inner();
    }

    fn end_inner(&mut self) {
        if !self.ended {
            self.ended = true;
            if let Some(id) = self.id {
                self.tracer.end_span(id);
            }
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.end_inner();
    }
}

/// Dense per-thread id: the first thread to call this gets 0, the next 1,
/// and so on. (`std::thread::ThreadId` has no stable integer accessor.)
pub fn thread_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

impl Trace {
    /// Check structural invariants:
    /// * every span is closed;
    /// * every parent index precedes its child (creation order);
    /// * every child's interval lies within its parent's interval.
    pub fn well_formed(&self) -> Result<(), String> {
        for (i, s) in self.spans.iter().enumerate() {
            let end = match s.end_ns {
                Some(e) => e,
                None => return Err(format!("span #{i} `{}` never closed", s.name)),
            };
            if end < s.start_ns {
                return Err(format!("span #{i} `{}` ends before it starts", s.name));
            }
            if let Some(p) = s.parent {
                if p >= i {
                    return Err(format!(
                        "span #{i} `{}` has parent #{p} not preceding it",
                        s.name
                    ));
                }
                let parent = &self.spans[p];
                let pend = parent.end_ns.unwrap_or(u64::MAX);
                if s.start_ns < parent.start_ns || end > pend {
                    return Err(format!(
                        "span #{i} `{}` [{}..{}] escapes parent `{}` [{}..{}]",
                        s.name, s.start_ns, end, parent.name, parent.start_ns, pend
                    ));
                }
            }
        }
        Ok(())
    }

    /// Indices of root spans (no parent), in creation order.
    pub fn roots(&self) -> Vec<usize> {
        (0..self.spans.len())
            .filter(|&i| self.spans[i].parent.is_none())
            .collect()
    }

    /// Children of span `i`, in creation order.
    pub fn children(&self, i: usize) -> Vec<usize> {
        (0..self.spans.len())
            .filter(|&c| self.spans[c].parent == Some(i))
            .collect()
    }

    /// Deterministic, duration-free rendering of the span tree and the
    /// counter names+values — the golden-test format. Structure depends
    /// only on what was compiled/evaluated, never on timing or thread
    /// count.
    pub fn structure(&self) -> String {
        let mut out = String::new();
        for r in self.roots() {
            self.render_structure(r, 0, &mut out);
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for name in self.counters.keys() {
                let _ = writeln!(out, "  {name}");
            }
        }
        out
    }

    fn render_structure(&self, i: usize, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.spans[i].name);
        out.push('\n');
        for c in self.children(i) {
            self.render_structure(c, depth + 1, out);
        }
    }

    /// Human-readable tree with durations and counter values, shown by
    /// `Souffle::report()`.
    pub fn tree_report(&self) -> String {
        let mut out = String::new();
        for r in self.roots() {
            self.render_report(r, 0, &mut out);
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<28} {value}");
            }
        }
        out
    }

    fn render_report(&self, i: usize, depth: usize, out: &mut String) {
        let s = &self.spans[i];
        for _ in 0..depth {
            out.push_str("  ");
        }
        let _ = writeln!(out, "{} {}", s.name, format_ns(s.dur_ns()));
        for c in self.children(i) {
            self.render_report(c, depth + 1, out);
        }
    }

    /// Total duration of all spans named `name`, nanoseconds.
    pub fn duration_ns(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur_ns())
            .sum()
    }

    /// All spans whose name starts with `prefix`, in creation order.
    pub fn spans_with_prefix(&self, prefix: &str) -> Vec<&SpanRec> {
        self.spans
            .iter()
            .filter(|s| s.name.starts_with(prefix))
            .collect()
    }
}

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let g = t.span("compile");
        let c = g.child("analysis");
        drop(c);
        drop(g);
        t.add("x", 3);
        t.high_water("y", 9);
        t.record_span("z", None, 0, 10, 0);
        assert_eq!(t.now_ns(), 0);
        assert_eq!(t.span_duration_ns("compile"), 0);
        let trace = t.take();
        assert!(trace.spans.is_empty());
        assert!(trace.counters.is_empty());
        assert!(trace.well_formed().is_ok());
    }

    #[test]
    fn nesting_and_order() {
        let t = Tracer::new();
        {
            let root = t.span("compile");
            {
                let a = root.child("analysis");
                let _aa = a.child("analysis:graph");
            }
            let _b = root.child("lower");
        }
        let trace = t.take();
        trace.well_formed().expect("well formed");
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["compile", "analysis", "analysis:graph", "lower"]);
        assert_eq!(trace.spans[1].parent, Some(0));
        assert_eq!(trace.spans[2].parent, Some(1));
        assert_eq!(trace.spans[3].parent, Some(0));
        assert_eq!(trace.roots(), vec![0]);
        assert_eq!(trace.children(0), vec![1, 3]);
    }

    #[test]
    fn structure_is_duration_free_and_stable() {
        let build = || {
            let t = Tracer::new();
            {
                let root = t.span("eval");
                let lvl = root.child("level:0");
                t.record_span("te:a", lvl.id(), t.now_ns(), t.now_ns() + 5, 1000);
            }
            t.add("arena.reused", 2);
            t.take()
        };
        let s1 = build().structure();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let s2 = build().structure();
        assert_eq!(s1, s2);
        assert_eq!(s1, "eval\n  level:0\n    te:a\ncounters:\n  arena.reused\n");
        assert!(!s1.contains("µs"));
    }

    #[test]
    fn counters_accumulate_and_high_water() {
        let t = Tracer::new();
        t.add("pool.tasks", 4);
        t.add("pool.tasks", 3);
        t.add("zero", 0);
        t.high_water("depth", 2);
        t.high_water("depth", 7);
        t.high_water("depth", 5);
        let trace = t.snapshot();
        assert_eq!(trace.counters.get("pool.tasks"), Some(&7));
        assert_eq!(trace.counters.get("depth"), Some(&7));
        assert!(!trace.counters.contains_key("zero"));
    }

    #[test]
    fn record_span_clamps_and_validates() {
        let t = Tracer::new();
        let root = t.span("eval");
        t.record_span("te:x", root.id(), 10, 4, 7);
        root.end();
        let trace = t.take();
        // end clamped up to start; parent end clamped to cover child.
        assert_eq!(trace.spans[1].start_ns, 10);
        assert_eq!(trace.spans[1].end_ns, Some(10));
        assert_eq!(trace.spans[1].tid, 7);
    }

    #[test]
    fn take_drains_but_keeps_epoch() {
        let t = Tracer::new();
        let _ = t.span("a");
        let first = t.take();
        assert_eq!(first.spans.len(), 1);
        let before = t.now_ns();
        let _ = t.span("b");
        let second = t.take();
        assert_eq!(second.spans.len(), 1);
        assert!(second.spans[0].start_ns >= before);
    }

    #[test]
    fn well_formed_rejects_open_and_escaping() {
        let open = Trace {
            spans: vec![SpanRec {
                name: "x".into(),
                parent: None,
                start_ns: 0,
                end_ns: None,
                tid: 0,
            }],
            counters: BTreeMap::new(),
        };
        assert!(open.well_formed().is_err());

        let escaping = Trace {
            spans: vec![
                SpanRec {
                    name: "p".into(),
                    parent: None,
                    start_ns: 0,
                    end_ns: Some(10),
                    tid: 0,
                },
                SpanRec {
                    name: "c".into(),
                    parent: Some(0),
                    start_ns: 5,
                    end_ns: Some(20),
                    tid: 0,
                },
            ],
            counters: BTreeMap::new(),
        };
        assert!(escaping.well_formed().is_err());
    }

    #[test]
    fn span_duration_sums_closed_spans() {
        let t = Tracer::new();
        t.record_span("verify:frontend", None, 0, 10, 0);
        t.record_span("verify:frontend", None, 20, 25, 0);
        assert_eq!(t.span_duration_ns("verify:frontend"), 15);
    }

    #[test]
    fn tree_report_contains_durations() {
        let t = Tracer::new();
        t.record_span("compile", None, 0, 2_500_000_000, 0);
        t.record_span("analysis", None, 0, 2_500, 0);
        let trace = t.take();
        let report = trace.tree_report();
        assert!(report.contains("compile 2.50s"));
        assert!(report.contains("analysis 2.50µs"));
    }
}
