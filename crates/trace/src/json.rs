//! Minimal in-tree JSON support: escaping for the hand-rolled writers
//! and a small recursive-descent parser used to *validate* emitted
//! artifacts (Chrome traces, trace summaries) inside test binaries.
//!
//! The parser is deliberately strict where it matters for validation
//! (structure, string escapes, number syntax) and makes no attempt to
//! preserve formatting. It exists so schema checks need no external
//! crates.

use std::collections::BTreeMap;

/// Escape a string for embedding in a JSON document (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Member lookup on an object (None on non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one whole UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f µ";
        let doc = format!("{{\"k\":\"{}\"}}", escape(nasty));
        let v = parse(&doc).expect("parses");
        assert_eq!(v.get("k").and_then(Value::as_str), Some(nasty));
    }

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x"}"#).unwrap();
        let a = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].as_num(), Some(-300.0));
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")),
            Some(&Value::Bool(true))
        );
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("01x").is_err());
    }

    #[test]
    fn parses_empty_containers() {
        assert_eq!(parse("{}").unwrap(), Value::Obj(BTreeMap::new()));
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
    }
}
