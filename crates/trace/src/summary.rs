//! `TraceSummary`: a compact, *stable-schema* aggregation of a [`Trace`]
//! that bench binaries embed in `results/*.json`, giving cross-PR perf
//! trajectory without storing full traces.
//!
//! Schema `souffle-trace-summary/1`:
//!
//! ```json
//! {
//!   "schema": "souffle-trace-summary/1",
//!   "span_count": 42,
//!   "categories": {
//!     "analysis": {"spans": 6, "total_us": 1234},
//!     ...
//!   },
//!   "counters": {"arena.reused": 17, ...}
//! }
//! ```
//!
//! Categories are span-name prefixes up to the first `:` (see
//! [`crate::chrome::category`]); durations are summed per category in
//! microseconds. Adding fields is allowed without a schema bump; renaming
//! or removing them is not.

use crate::chrome::category;
use crate::json::{self, escape, Value};
use crate::Trace;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema identifier written into every serialized summary.
pub const SCHEMA: &str = "souffle-trace-summary/1";

/// Aggregated per-category span stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CategoryStats {
    /// Number of spans in the category.
    pub spans: u64,
    /// Sum of span durations, microseconds.
    pub total_us: u64,
}

/// Stable aggregation of a trace: span counts + total time per category,
/// and the final counter values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total number of spans in the trace.
    pub span_count: u64,
    /// Per-category stats, keyed by category name (sorted).
    pub categories: BTreeMap<String, CategoryStats>,
    /// Counter values, keyed by counter name (sorted).
    pub counters: BTreeMap<String, u64>,
}

impl TraceSummary {
    /// Aggregate a trace.
    pub fn from_trace(trace: &Trace) -> TraceSummary {
        let mut categories: BTreeMap<String, CategoryStats> = BTreeMap::new();
        let mut total_ns: BTreeMap<String, u64> = BTreeMap::new();
        for span in &trace.spans {
            let cat = category(&span.name);
            categories.entry(cat.to_string()).or_default().spans += 1;
            *total_ns.entry(cat.to_string()).or_default() += span.dur_ns();
        }
        for (cat, ns) in total_ns {
            categories.get_mut(&cat).unwrap().total_us = ns / 1_000;
        }
        TraceSummary {
            span_count: trace.spans.len() as u64,
            categories,
            counters: trace.counters.clone(),
        }
    }

    /// Serialize as a JSON object (no trailing newline), indented so it
    /// embeds readably inside bench result files at `indent` spaces.
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let pad2 = " ".repeat(indent + 2);
        let pad3 = " ".repeat(indent + 4);
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "{pad2}\"schema\": \"{}\",", escape(SCHEMA));
        let _ = writeln!(out, "{pad2}\"span_count\": {},", self.span_count);
        let _ = writeln!(out, "{pad2}\"categories\": {{");
        let n = self.categories.len();
        for (i, (name, st)) in self.categories.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let _ = writeln!(
                out,
                "{pad3}\"{}\": {{\"spans\": {}, \"total_us\": {}}}{comma}",
                escape(name),
                st.spans,
                st.total_us
            );
        }
        let _ = writeln!(out, "{pad2}}},");
        let _ = writeln!(out, "{pad2}\"counters\": {{");
        let n = self.counters.len();
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let _ = writeln!(out, "{pad3}\"{}\": {value}{comma}", escape(name));
        }
        let _ = writeln!(out, "{pad2}}}");
        let _ = write!(out, "{pad}}}");
        out
    }

    /// Parse a serialized summary back (used by schema-check tests).
    pub fn from_json(doc: &str) -> Result<TraceSummary, String> {
        let root = json::parse(doc)?;
        Self::from_value(&root)
    }

    /// Validate + extract a summary from an already-parsed JSON value
    /// (e.g. the `trace_summary` member of a bench results file).
    pub fn from_value(root: &Value) -> Result<TraceSummary, String> {
        let schema = root
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("summary missing `schema`")?;
        if schema != SCHEMA {
            return Err(format!("unexpected summary schema `{schema}`"));
        }
        let span_count = root
            .get("span_count")
            .and_then(Value::as_num)
            .ok_or("summary missing numeric `span_count`")? as u64;
        let mut categories = BTreeMap::new();
        let cats = root
            .get("categories")
            .and_then(Value::as_obj)
            .ok_or("summary missing object `categories`")?;
        for (name, v) in cats {
            let spans = v
                .get("spans")
                .and_then(Value::as_num)
                .ok_or_else(|| format!("category `{name}` missing `spans`"))?;
            let total_us = v
                .get("total_us")
                .and_then(Value::as_num)
                .ok_or_else(|| format!("category `{name}` missing `total_us`"))?;
            categories.insert(
                name.clone(),
                CategoryStats {
                    spans: spans as u64,
                    total_us: total_us as u64,
                },
            );
        }
        let mut counters = BTreeMap::new();
        let ctrs = root
            .get("counters")
            .and_then(Value::as_obj)
            .ok_or("summary missing object `counters`")?;
        for (name, v) in ctrs {
            let value = v
                .as_num()
                .ok_or_else(|| format!("counter `{name}` is not numeric"))?;
            counters.insert(name.clone(), value as u64);
        }
        Ok(TraceSummary {
            span_count,
            categories,
            counters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn sample() -> TraceSummary {
        let t = Tracer::new();
        t.record_span("compile", None, 0, 100_000, 0);
        t.record_span("analysis:graph", None, 0, 30_000, 0);
        t.record_span("analysis:reuse", None, 30_000, 50_000, 0);
        t.add("arena.reused", 7);
        t.add("pool.steals", 2);
        TraceSummary::from_trace(&t.take())
    }

    #[test]
    fn aggregates_by_category() {
        let s = sample();
        assert_eq!(s.span_count, 3);
        assert_eq!(
            s.categories.get("analysis"),
            Some(&CategoryStats {
                spans: 2,
                total_us: 50
            })
        );
        assert_eq!(
            s.categories.get("compile"),
            Some(&CategoryStats {
                spans: 1,
                total_us: 100
            })
        );
        assert_eq!(s.counters.get("arena.reused"), Some(&7));
    }

    #[test]
    fn json_round_trip() {
        let s = sample();
        let doc = s.to_json(0);
        let back = TraceSummary::from_json(&doc).expect("round trips");
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_wrong_schema() {
        let doc = sample().to_json(0).replace(SCHEMA, "bogus/9");
        assert!(TraceSummary::from_json(&doc).is_err());
    }

    #[test]
    fn empty_trace_summarizes() {
        let s = TraceSummary::from_trace(&Trace::default());
        assert_eq!(s.span_count, 0);
        let back = TraceSummary::from_json(&s.to_json(4)).unwrap();
        assert_eq!(back, s);
    }
}
