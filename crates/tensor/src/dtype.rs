//! Logical element types.

use std::fmt;

/// Logical element type of a tensor.
///
/// Storage is always `f32` in this reproduction; the dtype drives the cost
/// model: bytes-per-element for memory traffic and tensor-core eligibility
/// for the compute pipelines (the paper runs GEMMs in FP16 on tensor cores
/// and everything else in FP32, §7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum DType {
    /// IEEE 754 half precision (2 bytes). Eligible for tensor-core WMMA.
    F16,
    /// IEEE 754 single precision (4 bytes).
    #[default]
    F32,
    /// 32-bit signed integer (4 bytes), used for index-like tensors.
    I32,
    /// Boolean stored as one byte, used for masks.
    Bool,
}

impl DType {
    /// Size of one element in bytes, as accounted by the memory model.
    ///
    /// ```
    /// use souffle_tensor::DType;
    /// assert_eq!(DType::F16.size_bytes(), 2);
    /// assert_eq!(DType::F32.size_bytes(), 4);
    /// ```
    pub const fn size_bytes(self) -> u64 {
        match self {
            DType::F16 => 2,
            DType::F32 | DType::I32 => 4,
            DType::Bool => 1,
        }
    }

    /// Whether GEMM-like reductions of this dtype may run on tensor cores.
    pub const fn tensor_core_eligible(self) -> bool {
        matches!(self, DType::F16)
    }

    /// Whether this is a floating-point type.
    pub const fn is_float(self) -> bool {
        matches!(self, DType::F16 | DType::F32)
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F16 => "f16",
            DType::F32 => "f32",
            DType::I32 => "i32",
            DType::Bool => "bool",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::I32.size_bytes(), 4);
        assert_eq!(DType::Bool.size_bytes(), 1);
    }

    #[test]
    fn tensor_core_eligibility() {
        assert!(DType::F16.tensor_core_eligible());
        assert!(!DType::F32.tensor_core_eligible());
        assert!(!DType::I32.tensor_core_eligible());
    }

    #[test]
    fn float_classification() {
        assert!(DType::F16.is_float());
        assert!(DType::F32.is_float());
        assert!(!DType::I32.is_float());
        assert!(!DType::Bool.is_float());
    }

    #[test]
    fn display() {
        assert_eq!(DType::F16.to_string(), "f16");
        assert_eq!(DType::Bool.to_string(), "bool");
    }

    #[test]
    fn default_is_f32() {
        assert_eq!(DType::default(), DType::F32);
    }
}
