//! Tensor shapes and row-major index arithmetic.

use std::fmt;

/// A tensor shape: the extent of every dimension.
///
/// Shapes are immutable after construction. All extents must be positive; a
/// rank-0 shape denotes a scalar with one element.
///
/// ```
/// use souffle_tensor::Shape;
/// let s = Shape::new(vec![4, 8, 2]);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.numel(), 64);
/// assert_eq!(s.strides(), vec![16, 2, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<i64>,
}

impl Shape {
    /// Creates a shape from dimension extents.
    ///
    /// # Panics
    ///
    /// Panics if any extent is not positive.
    pub fn new(dims: Vec<i64>) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "shape extents must be positive, got {dims:?}"
        );
        Shape { dims }
    }

    /// The scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Dimension extents.
    pub fn dims(&self) -> &[i64] {
        &self.dims
    }

    /// Extent of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> i64 {
        self.dims[axis]
    }

    /// Total number of elements.
    pub fn numel(&self) -> i64 {
        self.dims.iter().product()
    }

    /// Row-major strides (in elements).
    pub fn strides(&self) -> Vec<i64> {
        let mut strides = vec![1i64; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn linearize(&self, index: &[i64]) -> i64 {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} != shape rank {}",
            index.len(),
            self.dims.len()
        );
        let mut flat = 0i64;
        for (axis, (&i, &d)) in index.iter().zip(&self.dims).enumerate() {
            assert!(
                (0..d).contains(&i),
                "index {i} out of bounds for axis {axis} with extent {d}"
            );
            flat = flat * d + i;
        }
        flat
    }

    /// Converts a flat row-major offset back to a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `flat` is out of bounds.
    pub fn delinearize(&self, flat: i64) -> Vec<i64> {
        assert!(
            (0..self.numel()).contains(&flat),
            "flat index {flat} out of bounds for {self}"
        );
        let mut rem = flat;
        let mut index = vec![0i64; self.dims.len()];
        for axis in (0..self.dims.len()).rev() {
            index[axis] = rem % self.dims[axis];
            rem /= self.dims[axis];
        }
        index
    }

    /// Iterates over every multi-dimensional index in row-major order.
    pub fn indices(&self) -> IndexIter {
        IndexIter {
            shape: self.clone(),
            next_flat: 0,
        }
    }

    /// Returns a new shape with `extent` appended as the last dimension.
    pub fn with_appended(&self, extent: i64) -> Shape {
        let mut dims = self.dims.clone();
        dims.push(extent);
        Shape::new(dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<i64>> for Shape {
    fn from(dims: Vec<i64>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[i64]> for Shape {
    fn from(dims: &[i64]) -> Self {
        Shape::new(dims.to_vec())
    }
}

/// Iterator over the multi-dimensional indices of a [`Shape`], produced by
/// [`Shape::indices`].
#[derive(Debug, Clone)]
pub struct IndexIter {
    shape: Shape,
    next_flat: i64,
}

impl Iterator for IndexIter {
    type Item = Vec<i64>;

    fn next(&mut self) -> Option<Vec<i64>> {
        if self.next_flat >= self.shape.numel() {
            return None;
        }
        let idx = self.shape.delinearize(self.next_flat);
        self.next_flat += 1;
        Some(idx)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.shape.numel() - self.next_flat).max(0) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for IndexIter {}

#[cfg(test)]
mod tests {
    use super::*;
    use souffle_testkit::{forall, tk_assert_eq, Config};

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.linearize(&[]), 0);
        assert_eq!(s.delinearize(0), Vec::<i64>::new());
    }

    #[test]
    fn linearize_matches_strides() {
        let s = Shape::new(vec![3, 4, 5]);
        let strides = s.strides();
        assert_eq!(strides, vec![20, 5, 1]);
        assert_eq!(s.linearize(&[2, 1, 3]), 2 * 20 + 5 + 3);
    }

    #[test]
    fn indices_row_major() {
        let s = Shape::new(vec![2, 2]);
        let all: Vec<_> = s.indices().collect();
        assert_eq!(all, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn index_iter_len() {
        let s = Shape::new(vec![2, 3]);
        assert_eq!(s.indices().len(), 6);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn linearize_out_of_bounds_panics() {
        Shape::new(vec![2, 2]).linearize(&[0, 2]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_panics() {
        Shape::new(vec![2, 0]);
    }

    #[test]
    fn with_appended_extends() {
        let s = Shape::new(vec![2, 3]).with_appended(4);
        assert_eq!(s.dims(), &[2, 3, 4]);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(vec![2, 3]).to_string(), "(2, 3)");
        assert_eq!(Shape::scalar().to_string(), "()");
    }

    forall!(
        linearize_delinearize_roundtrip,
        Config::with_cases(64),
        |rng| (rng.vec(1..4, |r| r.i64_in(1..6)), rng.i64_in(0..10_000)),
        |(dims, seed)| {
            if dims.iter().any(|&d| d < 1) {
                return Ok(()); // shrunk-out-of-domain candidate
            }
            let s = Shape::new(dims.clone());
            let flat = seed % s.numel();
            let idx = s.delinearize(flat);
            tk_assert_eq!(s.linearize(&idx), flat);
            Ok(())
        }
    );

    forall!(
        indices_cover_all,
        Config::with_cases(64),
        |rng| rng.vec(1..4, |r| r.i64_in(1..5)),
        |dims| {
            if dims.iter().any(|&d| d < 1) {
                return Ok(());
            }
            let s = Shape::new(dims.clone());
            let all: Vec<_> = s.indices().collect();
            tk_assert_eq!(all.len() as i64, s.numel());
            for (flat, idx) in all.iter().enumerate() {
                tk_assert_eq!(s.linearize(idx), flat as i64);
            }
            Ok(())
        }
    );
}
