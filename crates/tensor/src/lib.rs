#![warn(missing_docs)]
//! Dense tensor support for the Souffle reproduction.
//!
//! This crate provides the runtime data plane used by the reference
//! interpreter in `souffle-te` and by the numeric regression tests: dense,
//! row-major tensors of `f32` values tagged with a logical [`DType`].
//!
//! Half precision ([`DType::F16`]) is modelled logically: values are stored
//! as `f32` but the dtype participates in the cost model (memory density,
//! tensor-core eligibility). The paper's evaluation never depends on true
//! fp16 rounding behaviour, only on its bandwidth/compute implications.
//!
//! # Example
//!
//! ```
//! use souffle_tensor::{Shape, Tensor};
//!
//! let a = Tensor::from_fn(Shape::new(vec![2, 3]), |idx| (idx[0] * 3 + idx[1]) as f32);
//! assert_eq!(a.at(&[1, 2]), 5.0);
//! assert_eq!(a.shape().numel(), 6);
//! ```

mod dtype;
mod shape;
#[allow(clippy::module_inception)]
mod tensor;

pub use dtype::DType;
pub use shape::{IndexIter, Shape};
pub use tensor::Tensor;
