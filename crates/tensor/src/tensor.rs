//! Dense row-major tensors.

use crate::{DType, Shape};
use std::fmt;

/// A dense, row-major tensor of `f32` values tagged with a logical [`DType`].
///
/// This is the data plane used by the reference TE interpreter and the
/// numeric regression tests; the compiler itself operates symbolically and
/// never touches element data.
///
/// ```
/// use souffle_tensor::{Shape, Tensor};
/// let t = Tensor::zeros(Shape::new(vec![2, 2]));
/// assert_eq!(t.at(&[1, 1]), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    dtype: DType,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: Shape) -> Self {
        let n = shape.numel() as usize;
        Tensor {
            shape,
            dtype: DType::F32,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with a constant.
    pub fn full(shape: Shape, value: f32) -> Self {
        let n = shape.numel() as usize;
        Tensor {
            shape,
            dtype: DType::F32,
            data: vec![value; n],
        }
    }

    /// Creates a tensor by evaluating `f` at every index (row-major order).
    pub fn from_fn(shape: Shape, mut f: impl FnMut(&[i64]) -> f32) -> Self {
        let mut data = Vec::with_capacity(shape.numel() as usize);
        for idx in shape.indices() {
            data.push(f(&idx));
        }
        Tensor {
            shape,
            dtype: DType::F32,
            data,
        }
    }

    /// Creates a tensor from existing row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match `shape.numel()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len() as i64,
            shape.numel(),
            "data length {} does not match shape {}",
            data.len(),
            shape
        );
        Tensor {
            shape,
            dtype: DType::F32,
            data,
        }
    }

    /// Creates a tensor of uniform random values in `[-1, 1)`, deterministic
    /// in `seed`.
    pub fn random(shape: Shape, seed: u64) -> Self {
        // A small xorshift generator keeps this crate free of a hard
        // dependency on `rand` for library (non-test) builds.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        Tensor::from_fn(shape, |_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
        })
    }

    /// Assembles a tensor from its raw parts: shape, logical dtype, and
    /// row-major element data. This is the zero-copy constructor used by
    /// the compiled TE evaluator, which fills a flat buffer directly.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match `shape.numel()`.
    pub fn from_parts(shape: Shape, dtype: DType, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len() as i64,
            shape.numel(),
            "data length {} does not match shape {}",
            data.len(),
            shape
        );
        Tensor { shape, dtype, data }
    }

    /// Consumes the tensor, returning its row-major data buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Returns this tensor re-tagged with `dtype` (storage is unchanged).
    pub fn with_dtype(mut self, dtype: DType) -> Self {
        self.dtype = dtype;
        self
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The tensor's logical dtype.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Borrow of the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn at(&self, index: &[i64]) -> f32 {
        self.data[self.shape.linearize(index) as usize]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn set(&mut self, index: &[i64], value: f32) {
        let flat = self.shape.linearize(index) as usize;
        self.data[flat] = value;
    }

    /// Size of the tensor in bytes under its logical dtype.
    pub fn size_bytes(&self) -> u64 {
        self.shape.numel() as u64 * self.dtype.size_bytes()
    }

    /// Elementwise approximate equality within absolute + relative
    /// tolerance. Shapes must match exactly.
    pub fn allclose(&self, other: &Tensor, atol: f32, rtol: f32) -> bool {
        if self.shape != other.shape {
            return false;
        }
        self.data.iter().zip(&other.data).all(|(&a, &b)| {
            let tol = atol + rtol * b.abs().max(a.abs());
            (a - b).abs() <= tol || (a.is_nan() && b.is_nan())
        })
    }

    /// Largest absolute elementwise difference; `None` when shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Option<f32> {
        if self.shape != other.shape {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| (a - b).abs())
                .fold(0.0f32, f32::max),
        )
    }

    /// Applies `f` to each element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            dtype: self.dtype,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor<{}>{}", self.dtype, self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use souffle_testkit::{forall, tk_assert, Config};

    #[test]
    fn from_fn_indexes_correctly() {
        let t = Tensor::from_fn(Shape::new(vec![2, 3]), |i| (i[0] * 10 + i[1]) as f32);
        assert_eq!(t.at(&[0, 0]), 0.0);
        assert_eq!(t.at(&[1, 2]), 12.0);
    }

    #[test]
    fn set_then_get() {
        let mut t = Tensor::zeros(Shape::new(vec![2, 2]));
        t.set(&[1, 0], 7.5);
        assert_eq!(t.at(&[1, 0]), 7.5);
        assert_eq!(t.at(&[0, 1]), 0.0);
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let a = Tensor::random(Shape::new(vec![16]), 42);
        let b = Tensor::random(Shape::new(vec![16]), 42);
        let c = Tensor::random(Shape::new(vec![16]), 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.data().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn size_bytes_respects_dtype() {
        let t = Tensor::zeros(Shape::new(vec![4, 4]));
        assert_eq!(t.size_bytes(), 64);
        assert_eq!(t.with_dtype(DType::F16).size_bytes(), 32);
    }

    #[test]
    fn allclose_tolerates_small_error() {
        let a = Tensor::full(Shape::new(vec![3]), 1.0);
        let b = Tensor::full(Shape::new(vec![3]), 1.0 + 1e-6);
        assert!(a.allclose(&b, 1e-5, 1e-5));
        let c = Tensor::full(Shape::new(vec![3]), 1.1);
        assert!(!a.allclose(&c, 1e-5, 1e-5));
    }

    #[test]
    fn allclose_rejects_shape_mismatch() {
        let a = Tensor::zeros(Shape::new(vec![2]));
        let b = Tensor::zeros(Shape::new(vec![2, 1]));
        assert!(!a.allclose(&b, 1e-5, 1e-5));
        assert_eq!(a.max_abs_diff(&b), None);
    }

    #[test]
    fn from_parts_roundtrips_through_into_data() {
        let t = Tensor::from_parts(Shape::new(vec![2, 2]), DType::F16, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.dtype(), DType::F16);
        assert_eq!(t.at(&[1, 0]), 3.0);
        assert_eq!(t.into_data(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_parts_length_mismatch_panics() {
        Tensor::from_parts(Shape::new(vec![3]), DType::F32, vec![0.0; 2]);
    }

    #[test]
    fn map_applies_elementwise() {
        let t = Tensor::from_vec(Shape::new(vec![3]), vec![1.0, -2.0, 3.0]);
        let r = t.map(f32::abs);
        assert_eq!(r.data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_length_mismatch_panics() {
        Tensor::from_vec(Shape::new(vec![2, 2]), vec![0.0; 3]);
    }

    forall!(
        max_abs_diff_consistent_with_allclose,
        Config::with_cases(64),
        |rng| (
            rng.vec(1..20, |r| r.f32_in(-10.0..10.0)),
            rng.f32_in(0.0..0.5),
        ),
        |(vals, eps)| {
            if vals.is_empty() || *eps < 0.0 {
                return Ok(()); // shrunk-out-of-domain candidate
            }
            let shape = Shape::new(vec![vals.len() as i64]);
            let a = Tensor::from_vec(shape.clone(), vals.clone());
            let b = Tensor::from_vec(shape, vals.iter().map(|v| v + eps).collect());
            let d = a.max_abs_diff(&b).unwrap();
            tk_assert!(d <= eps + 1e-6, "diff {d} exceeds eps {eps}");
            if a.allclose(&b, 1e-9, 0.0) {
                tk_assert!(d <= 1e-6);
            }
            Ok(())
        }
    );
}
