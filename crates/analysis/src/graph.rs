//! The tensor dependency graph over a TE program.

use souffle_te::{TeId, TeProgram};
use std::collections::VecDeque;

/// Dependency graph of the TEs of a program: there is an edge `a -> b` when
/// `b` reads the tensor `a` defines. This is the structure Souffle's global
/// analysis (§5), partitioning (§5.4) and Algorithm 1 all traverse.
#[derive(Debug, Clone)]
pub struct TeGraph {
    /// successors[i] = TEs consuming TE i's output.
    successors: Vec<Vec<TeId>>,
    /// predecessors[i] = TEs producing TE i's inputs.
    predecessors: Vec<Vec<TeId>>,
    /// Longest-path depth from the roots; dataflow edges strictly increase
    /// the level, so equal-level TEs are always independent (used as a
    /// fast path for wavefront-style programs such as the LSTM of §8.4).
    levels: Vec<usize>,
}

impl TeGraph {
    /// Builds the graph from a program.
    pub fn build(program: &TeProgram) -> Self {
        let n = program.num_tes();
        let mut successors = vec![Vec::new(); n];
        let mut predecessors = vec![Vec::new(); n];
        for te_id in program.te_ids() {
            for &input in &program.te(te_id).inputs {
                if let Some(prod) = program.producer_of(input) {
                    if !successors[prod.0].contains(&te_id) {
                        successors[prod.0].push(te_id);
                        predecessors[te_id.0].push(prod);
                    }
                }
            }
        }
        // Longest-path levels in topological (definition) order.
        let mut levels = vec![0usize; n];
        for i in 0..n {
            for pred in &predecessors[i] {
                levels[i] = levels[i].max(levels[pred.0] + 1);
            }
        }
        TeGraph {
            successors,
            predecessors,
            levels,
        }
    }

    /// Longest-path depth of a TE from the roots.
    pub fn level(&self, te: TeId) -> usize {
        self.levels[te.0]
    }

    /// The wavefront decomposition: TEs grouped by level, in id order
    /// within each level. Since dataflow edges strictly increase the
    /// level, every TE in a wavefront is independent of the others, and a
    /// runtime may execute each wavefront's TEs concurrently once the
    /// previous wavefront has completed — this is what the compiled
    /// evaluator's wavefront runtime (`souffle_te::runtime`) consumes.
    pub fn wavefronts(&self) -> Vec<Vec<TeId>> {
        let n_levels = self.levels.iter().map(|l| l + 1).max().unwrap_or(0);
        let mut waves = vec![Vec::new(); n_levels];
        for (i, &lvl) in self.levels.iter().enumerate() {
            waves[lvl].push(TeId(i));
        }
        waves
    }

    /// Number of TEs.
    pub fn len(&self) -> usize {
        self.successors.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.successors.is_empty()
    }

    /// Direct consumers of a TE's output.
    pub fn successors(&self, te: TeId) -> &[TeId] {
        &self.successors[te.0]
    }

    /// Direct producers of a TE's inputs.
    pub fn predecessors(&self, te: TeId) -> &[TeId] {
        &self.predecessors[te.0]
    }

    /// Roots: TEs with no TE-producing inputs.
    pub fn roots(&self) -> Vec<TeId> {
        (0..self.len())
            .filter(|&i| self.predecessors[i].is_empty())
            .map(TeId)
            .collect()
    }

    /// Breadth-first order from the roots — the traversal order of the
    /// partitioning algorithm (§5.4) and Algorithm 1. Ties are broken by TE
    /// id, so the order is deterministic; every TE appears exactly once.
    pub fn bfs_order(&self) -> Vec<TeId> {
        let mut indegree: Vec<usize> = self.predecessors.iter().map(Vec::len).collect();
        let mut queue: VecDeque<TeId> = self.roots().into();
        let mut order = Vec::with_capacity(self.len());
        while let Some(te) = queue.pop_front() {
            order.push(te);
            for &succ in &self.successors[te.0] {
                indegree[succ.0] -= 1;
                if indegree[succ.0] == 0 {
                    queue.push_back(succ);
                }
            }
        }
        debug_assert_eq!(order.len(), self.len(), "graph must be acyclic");
        order
    }

    /// Whether `to` is reachable from `from` following dataflow edges.
    pub fn reaches(&self, from: TeId, to: TeId) -> bool {
        if from == to {
            return true;
        }
        // Levels strictly increase along edges: no path can reach a TE at
        // the same or a lower level.
        if self.levels[to.0] <= self.levels[from.0] {
            return false;
        }
        let target_level = self.levels[to.0];
        let mut seen = vec![false; self.len()];
        let mut stack = vec![from];
        while let Some(te) = stack.pop() {
            for &succ in &self.successors[te.0] {
                if succ == to {
                    return true;
                }
                if !seen[succ.0] && self.levels[succ.0] < target_level {
                    seen[succ.0] = true;
                    stack.push(succ);
                }
            }
        }
        false
    }

    /// Whether two TEs are independent (neither reaches the other) — the
    /// precondition for horizontal transformation (§6.1).
    pub fn independent(&self, a: TeId, b: TeId) -> bool {
        a != b && !self.reaches(a, b) && !self.reaches(b, a)
    }

    /// TEs transitively dominated by `te` through one-consumer chains: the
    /// memory-intensive consumers Algorithm 1 (line 14, `dominated_by(e)`)
    /// attaches to a compute-intensive TE's schedule. A TE is included if
    /// every path from the roots to it passes through `te` — approximated
    /// here as: it is reachable from `te` and all of its producers are `te`
    /// or already dominated.
    pub fn dominated_by(&self, te: TeId) -> Vec<TeId> {
        let mut dominated = vec![false; self.len()];
        dominated[te.0] = true;
        // Process in id order (topological for programs built in order).
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..self.len() {
                if dominated[i] || self.predecessors[i].is_empty() {
                    continue;
                }
                if self.predecessors[i].iter().all(|p| dominated[p.0]) {
                    dominated[i] = true;
                    changed = true;
                }
            }
        }
        (0..self.len())
            .filter(|&i| dominated[i] && i != te.0)
            .map(TeId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use souffle_te::builders;
    use souffle_tensor::{DType, Shape};

    /// diamond: mm -> (sig, exp) -> add
    fn diamond() -> (TeProgram, TeGraph) {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![8, 8]), DType::F32);
        let b = p.add_weight("B", Shape::new(vec![8, 8]), DType::F32);
        let c = builders::matmul(&mut p, "mm", a, b); // TE0
        let d = builders::sigmoid(&mut p, "sig", c); // TE1
        let e = builders::exp(&mut p, "exp", c); // TE2
        let _ = builders::add(&mut p, "add", d, e); // TE3
        let g = TeGraph::build(&p);
        (p, g)
    }

    #[test]
    fn edges_follow_dataflow() {
        let (_, g) = diamond();
        assert_eq!(g.successors(TeId(0)), &[TeId(1), TeId(2)]);
        assert_eq!(g.predecessors(TeId(3)), &[TeId(1), TeId(2)]);
        assert_eq!(g.roots(), vec![TeId(0)]);
    }

    #[test]
    fn bfs_is_topological_and_complete() {
        let (_, g) = diamond();
        let order = g.bfs_order();
        assert_eq!(order.len(), 4);
        let pos = |t: TeId| order.iter().position(|&x| x == t).unwrap();
        assert!(pos(TeId(0)) < pos(TeId(1)));
        assert!(pos(TeId(0)) < pos(TeId(2)));
        assert!(pos(TeId(1)) < pos(TeId(3)));
        assert!(pos(TeId(2)) < pos(TeId(3)));
    }

    #[test]
    fn reachability() {
        let (_, g) = diamond();
        assert!(g.reaches(TeId(0), TeId(3)));
        assert!(!g.reaches(TeId(3), TeId(0)));
        assert!(g.reaches(TeId(1), TeId(3)));
        assert!(!g.reaches(TeId(1), TeId(2)));
    }

    #[test]
    fn wavefronts_group_independent_tes() {
        let (_, g) = diamond();
        assert_eq!(
            g.wavefronts(),
            vec![vec![TeId(0)], vec![TeId(1), TeId(2)], vec![TeId(3)]]
        );
        // Every pair within a wavefront is independent.
        for wave in g.wavefronts() {
            for &a in &wave {
                for &b in &wave {
                    assert!(a == b || g.independent(a, b));
                }
            }
        }
        let p = TeProgram::new();
        assert!(TeGraph::build(&p).wavefronts().is_empty());
    }

    #[test]
    fn independence_of_siblings() {
        let (_, g) = diamond();
        assert!(g.independent(TeId(1), TeId(2)));
        assert!(!g.independent(TeId(0), TeId(1)));
        assert!(!g.independent(TeId(2), TeId(2)));
    }

    #[test]
    fn dominated_by_root_is_everything() {
        let (_, g) = diamond();
        assert_eq!(g.dominated_by(TeId(0)), vec![TeId(1), TeId(2), TeId(3)]);
    }

    #[test]
    fn dominated_by_branch_is_empty() {
        let (_, g) = diamond();
        // TE3 also depends on TE2, so TE1 dominates nothing.
        assert!(g.dominated_by(TeId(1)).is_empty());
    }

    #[test]
    fn chain_domination() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![8, 8]), DType::F32);
        let b = p.add_weight("B", Shape::new(vec![8, 8]), DType::F32);
        let c = builders::matmul(&mut p, "mm", a, b); // TE0
        let d = builders::sigmoid(&mut p, "sig", c); // TE1
        let _ = builders::exp(&mut p, "exp", d); // TE2
        let g = TeGraph::build(&p);
        assert_eq!(g.dominated_by(TeId(0)), vec![TeId(1), TeId(2)]);
        assert_eq!(g.dominated_by(TeId(1)), vec![TeId(2)]);
    }

    #[test]
    fn empty_graph() {
        let p = TeProgram::new();
        let g = TeGraph::build(&p);
        assert!(g.is_empty());
        assert!(g.bfs_order().is_empty());
    }
}
