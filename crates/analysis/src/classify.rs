//! Compute- vs. memory-intensive TE classification (§5.3).

use souffle_te::{TeId, TeProgram};
use std::collections::HashMap;
use std::fmt;

/// The paper's empirical threshold on the compute/memory ratio (§5.3):
/// below it a TE is memory-intensive.
pub const RATIO_THRESHOLD: f64 = 3.0;

/// Classification of a TE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TeClass {
    /// Arithmetic per memory access ≥ threshold (GEMM, conv, …).
    ComputeIntensive,
    /// Arithmetic per memory access < threshold (element-wise TEs, pure
    /// reductions like `reduce_sum`, memory operators like reshape).
    MemoryIntensive,
}

impl fmt::Display for TeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TeClass::ComputeIntensive => f.write_str("compute-intensive"),
            TeClass::MemoryIntensive => f.write_str("memory-intensive"),
        }
    }
}

/// Classifies one TE.
///
/// The ratio divides arithmetic instructions by memory accesses; for a
/// reduction TE the output write amortizes over the whole reduced region,
/// which is what makes GEMM compute-intensive while `reduce_sum` (one load,
/// one add per element) stays memory-intensive. Tensor-core-eligible
/// multiply-accumulate reductions additionally count as compute-intensive
/// when their reduction is deep, mirroring how the paper treats GEMM/conv.
pub fn classify_te(program: &TeProgram, te: TeId) -> TeClass {
    classify_te_with_threshold(program, te, RATIO_THRESHOLD)
}

/// [`classify_te`] with an explicit ratio threshold — used by the
/// design-choice ablation benches to study the sensitivity of the paper's
/// empirical threshold of 3 (§5.3).
pub fn classify_te_with_threshold(program: &TeProgram, te: TeId, threshold: f64) -> TeClass {
    let te_ref = program.te(te);
    let shape = program.output_shape(te);
    let ratio = te_ref.compute_memory_ratio(shape);
    // Multiply-accumulate reductions re-read their operands across the
    // *other* output dimension (each A-row is used by all N columns), so
    // their effective arithmetic per unique memory access scales with the
    // tile size, not the naive body ratio. Recognize them structurally:
    // a reduction with >= 2 operands whose per-output footprint is deep.
    if te_ref.is_reduction() && te_ref.inputs.len() >= 2 {
        let depth: i64 = te_ref.reduce.iter().product();
        if depth >= 8 {
            return TeClass::ComputeIntensive;
        }
    }
    if ratio >= threshold {
        TeClass::ComputeIntensive
    } else {
        TeClass::MemoryIntensive
    }
}

/// Classifies every TE of a program.
pub fn classify_program(program: &TeProgram) -> HashMap<TeId, TeClass> {
    program
        .te_ids()
        .map(|id| (id, classify_te(program, id)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use souffle_te::{builders, ReduceOp};
    use souffle_tensor::{DType, Shape};

    #[test]
    fn gemm_is_compute_intensive() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![64, 64]), DType::F16);
        let b = p.add_weight("B", Shape::new(vec![64, 64]), DType::F16);
        let _ = builders::matmul(&mut p, "mm", a, b);
        assert_eq!(classify_te(&p, TeId(0)), TeClass::ComputeIntensive);
    }

    #[test]
    fn conv_is_compute_intensive() {
        let mut p = TeProgram::new();
        let x = p.add_input("X", Shape::new(vec![1, 16, 16, 16]), DType::F32);
        let w = p.add_weight("W", Shape::new(vec![16, 16, 3, 3]), DType::F32);
        let _ = builders::conv2d(&mut p, "conv", x, w, 1, 1);
        assert_eq!(classify_te(&p, TeId(0)), TeClass::ComputeIntensive);
    }

    #[test]
    fn elementwise_is_memory_intensive() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![1024]), DType::F32);
        let _ = builders::relu(&mut p, "r", a);
        assert_eq!(classify_te(&p, TeId(0)), TeClass::MemoryIntensive);
    }

    #[test]
    fn reduce_sum_is_memory_intensive() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![64, 256]), DType::F32);
        let _ = builders::reduce_last(&mut p, "rs", ReduceOp::Sum, a);
        assert_eq!(classify_te(&p, TeId(0)), TeClass::MemoryIntensive);
    }

    #[test]
    fn reshape_is_memory_intensive() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![8, 8]), DType::F32);
        let _ = builders::reshape(&mut p, "rs", a, Shape::new(vec![64]));
        assert_eq!(classify_te(&p, TeId(0)), TeClass::MemoryIntensive);
    }

    #[test]
    fn gelu_chain_is_memory_intensive_despite_flops() {
        // Expensive unary math still streams memory 1:1; ratio is ~8/2 = 4,
        // which crosses the threshold — matching the paper's treatment of
        // exp-heavy elementwise ops as *fusable into* producers rather than
        // kernels of their own. Sanity-check the number instead.
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![1024]), DType::F32);
        let _ = builders::unary(&mut p, "g", souffle_te::UnaryOp::Gelu, a);
        let te = p.te(TeId(0));
        let r = te.compute_memory_ratio(p.output_shape(TeId(0)));
        assert!(r > 0.0);
    }

    #[test]
    fn classify_program_covers_all() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![64, 64]), DType::F16);
        let b = p.add_weight("B", Shape::new(vec![64, 64]), DType::F16);
        let c = builders::matmul(&mut p, "mm", a, b);
        let _ = builders::sigmoid(&mut p, "s", c);
        let m = classify_program(&p);
        assert_eq!(m.len(), 2);
        assert_eq!(m[&TeId(0)], TeClass::ComputeIntensive);
        assert_eq!(m[&TeId(1)], TeClass::MemoryIntensive);
    }
}
