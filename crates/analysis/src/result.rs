//! The analysis bundle handed to the transformation stage (Algorithm 1's
//! inputs).

use crate::classify::{classify_program, TeClass};
use crate::graph::TeGraph;
use crate::liveness::{live_ranges, LiveRange};
use crate::partition::{partition_program, Partition};
use crate::reuse::{find_reuse, ReuseReport};
use souffle_affine::DependenceKind;
use souffle_sched::{schedule_program_with_stats, GpuSpec, ScheduleMap};
use souffle_te::{TeId, TeProgram, TensorId};
use souffle_trace::{SpanId, Tracer};
use std::collections::HashMap;

/// All global analysis results for one TE program — the inputs Algorithm 1
/// names `OR` (one-relies-on-one), `MR` (one-relies-on-many), `MI`
/// (memory-intensive), `CI` (compute-intensive), `SR` (spatial reuse) and
/// `TR` (temporal reuse), plus schedules, live ranges and the partition.
#[derive(Debug, Clone)]
pub struct AnalysisResult {
    /// Dependence classification per TE (§5.2).
    pub dependence: HashMap<TeId, DependenceKind>,
    /// Compute/memory classification per TE (§5.3).
    pub classes: HashMap<TeId, TeClass>,
    /// Data-reuse report (§5.1).
    pub reuse: ReuseReport,
    /// Live range per tensor.
    pub liveness: HashMap<TensorId, LiveRange>,
    /// Ansor-lite schedules per TE.
    pub schedules: ScheduleMap,
    /// Resource-aware partition (§5.4).
    pub partition: Partition,
    /// Dependency-graph wavefronts ([`TeGraph::wavefronts`]): TEs grouped
    /// by level so the runtime can execute each level concurrently.
    pub wavefronts: Vec<Vec<TeId>>,
}

impl AnalysisResult {
    /// Runs the full §5 analysis pipeline on a program.
    pub fn analyze(program: &TeProgram, spec: &GpuSpec) -> AnalysisResult {
        AnalysisResult::analyze_traced(program, spec, &Tracer::disabled(), None)
    }

    /// [`AnalysisResult::analyze`] recording one `analysis:<pass>` span
    /// per sub-analysis into `tracer` (nested under `parent` when given)
    /// plus `sched.memo_hits`/`sched.memo_misses` counters from the
    /// schedule-search memo.
    pub fn analyze_traced(
        program: &TeProgram,
        spec: &GpuSpec,
        tracer: &Tracer,
        parent: Option<SpanId>,
    ) -> AnalysisResult {
        let span = tracer.span_under("analysis", parent);
        let pass = |name: &str| span.child(name);

        let graph = {
            let _s = pass("analysis:graph");
            TeGraph::build(program)
        };
        let dependence = program
            .te_ids()
            .map(|id| (id, program.te(id).dependence_kind()))
            .collect();
        let classes = {
            let _s = pass("analysis:classify");
            classify_program(program)
        };
        let reuse = {
            let _s = pass("analysis:reuse");
            find_reuse(program, &graph)
        };
        let liveness = {
            let _s = pass("analysis:liveness");
            live_ranges(program)
        };
        let schedules = {
            let _s = pass("analysis:schedule");
            let (schedules, memo) = schedule_program_with_stats(program, spec);
            tracer.add("sched.memo_hits", memo.hits as u64);
            tracer.add("sched.memo_misses", memo.misses as u64);
            schedules
        };
        let partition = {
            let _s = pass("analysis:partition");
            partition_program(program, &graph, &classes, &schedules, spec)
        };
        let wavefronts = graph.wavefronts();
        AnalysisResult {
            dependence,
            classes,
            reuse,
            liveness,
            schedules,
            partition,
            wavefronts,
        }
    }

    /// One-relies-on-one TEs (`OR`).
    pub fn one_relies_on_one(&self) -> Vec<TeId> {
        let mut v: Vec<TeId> = self
            .dependence
            .iter()
            .filter(|(_, k)| **k == DependenceKind::OneReliesOnOne)
            .map(|(id, _)| *id)
            .collect();
        v.sort();
        v
    }

    /// One-relies-on-many TEs (`MR`).
    pub fn one_relies_on_many(&self) -> Vec<TeId> {
        let mut v: Vec<TeId> = self
            .dependence
            .iter()
            .filter(|(_, k)| **k == DependenceKind::OneReliesOnMany)
            .map(|(id, _)| *id)
            .collect();
        v.sort();
        v
    }

    /// Compute-intensive TEs (`CI`).
    pub fn compute_intensive(&self) -> Vec<TeId> {
        let mut v: Vec<TeId> = self
            .classes
            .iter()
            .filter(|(_, c)| **c == TeClass::ComputeIntensive)
            .map(|(id, _)| *id)
            .collect();
        v.sort();
        v
    }

    /// Memory-intensive TEs (`MI`).
    pub fn memory_intensive(&self) -> Vec<TeId> {
        let mut v: Vec<TeId> = self
            .classes
            .iter()
            .filter(|(_, c)| **c == TeClass::MemoryIntensive)
            .map(|(id, _)| *id)
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use souffle_te::builders;
    use souffle_tensor::{DType, Shape};

    #[test]
    fn analyze_fig2_example() {
        // Fig. 2's five TEs: three GEMMs and two element-wise TEs.
        let mut p = TeProgram::new();
        let i0 = p.add_input("I0", Shape::new(vec![64, 64]), DType::F16);
        let w0 = p.add_weight("W0", Shape::new(vec![64, 64]), DType::F16);
        let o0 = builders::matmul(&mut p, "TE0", i0, w0); // TE0
        let o1 = builders::sigmoid(&mut p, "TE1", o0); // TE1
        let w2 = p.add_weight("W2", Shape::new(vec![64, 64]), DType::F16);
        let o2 = builders::matmul(&mut p, "TE2", o1, w2); // TE2
        let o3 = builders::add(&mut p, "TE3", o0, o2); // TE3
        let w4 = p.add_weight("W4", Shape::new(vec![64, 256]), DType::F16);
        let _o4 = builders::matmul(&mut p, "TE4", o3, w4); // TE4
        let spec = GpuSpec::a100();
        let r = AnalysisResult::analyze(&p, &spec);

        // "TE0, TE2, TE4: one-relies-on-many, compute-intensive"
        assert_eq!(r.one_relies_on_many(), vec![TeId(0), TeId(2), TeId(4)]);
        assert_eq!(r.compute_intensive(), vec![TeId(0), TeId(2), TeId(4)]);
        // "TE1, TE3: one-to-one, memory-intensive"
        assert_eq!(r.one_relies_on_one(), vec![TeId(1), TeId(3)]);
        assert_eq!(r.memory_intensive(), vec![TeId(1), TeId(3)]);
        // "{O0: [TE1, TE3]}": O0 reused temporally (TE3 depends on TE1).
        assert_eq!(r.reuse.temporal.len(), 1);
        assert_eq!(r.reuse.temporal[0].0, o0);
        assert_eq!(r.reuse.temporal[0].1, vec![TeId(1), TeId(3)]);
        // All TEs scheduled and partitioned.
        assert_eq!(r.schedules.len(), 5);
        assert_eq!(r.partition.num_tes(), 5);
        // O0 live from TE0 to TE3.
        assert_eq!(r.liveness[&o0].def, Some(0));
        assert_eq!(r.liveness[&o0].last_use, Some(3));
        // Wavefronts follow the dependency levels: TE0 | TE1 | TE2 | TE3 | TE4.
        assert_eq!(
            r.wavefronts,
            vec![
                vec![TeId(0)],
                vec![TeId(1)],
                vec![TeId(2)],
                vec![TeId(3)],
                vec![TeId(4)]
            ]
        );
    }
}
