//! Tensor live ranges across operator boundaries (§5: "captures essential
//! information such as tensor shapes and live ranges").

use souffle_te::{TeProgram, TensorId, TensorKind};
use std::collections::HashMap;

/// Live range of a tensor in TE-index space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveRange {
    /// Index of the defining TE (`None` for inputs/weights, live from the
    /// program start).
    pub def: Option<usize>,
    /// Index of the last consuming TE (`None` when never consumed —
    /// program outputs are additionally live to the program end).
    pub last_use: Option<usize>,
    /// Whether the tensor escapes the program (output): live to the end.
    pub escapes: bool,
}

impl LiveRange {
    /// Whether the tensor is live at the point just before TE `at` runs.
    pub fn live_at(&self, at: usize) -> bool {
        let born = self.def.is_none_or(|d| d < at);
        let dies = if self.escapes {
            false
        } else {
            self.last_use.is_none_or(|u| u < at)
        };
        born && !dies
    }

    /// Length of the range in TEs (0 when never used).
    pub fn span(&self) -> usize {
        match (self.def, self.last_use) {
            (Some(d), Some(u)) if u >= d => u - d,
            _ => 0,
        }
    }
}

/// Computes live ranges for every tensor of the program.
pub fn live_ranges(program: &TeProgram) -> HashMap<TensorId, LiveRange> {
    let mut ranges: HashMap<TensorId, LiveRange> = HashMap::new();
    for idx in 0..program.num_tensors() {
        let id = TensorId(idx);
        ranges.insert(
            id,
            LiveRange {
                def: program.producer_of(id).map(|t| t.0),
                last_use: None,
                escapes: program.tensor(id).kind == TensorKind::Output,
            },
        );
    }
    for te_id in program.te_ids() {
        for &input in &program.te(te_id).inputs {
            let r = ranges.get_mut(&input).expect("tensor table covers inputs");
            r.last_use = Some(r.last_use.map_or(te_id.0, |u| u.max(te_id.0)));
        }
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use souffle_te::builders;
    use souffle_tensor::{DType, Shape};

    #[test]
    fn ranges_track_def_and_last_use() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let b = builders::exp(&mut p, "e", a); // TE0
        let c = builders::relu(&mut p, "r", b); // TE1
        let d = builders::add(&mut p, "s", b, c); // TE2: b used again
        p.mark_output(d);
        let r = live_ranges(&p);
        assert_eq!(r[&a].def, None);
        assert_eq!(r[&a].last_use, Some(0));
        assert_eq!(r[&b].def, Some(0));
        assert_eq!(r[&b].last_use, Some(2));
        assert_eq!(r[&b].span(), 2);
        assert!(r[&d].escapes);
    }

    #[test]
    fn live_at_semantics() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let b = builders::exp(&mut p, "e", a); // TE0
        let c = builders::relu(&mut p, "r", b); // TE1
        let _ = builders::sigmoid(&mut p, "s", c); // TE2
        let r = live_ranges(&p);
        // b defined by TE0, last used by TE1
        assert!(!r[&b].live_at(0)); // not yet defined before TE0
        assert!(r[&b].live_at(1));
        assert!(!r[&b].live_at(2)); // dead after TE1
                                    // input a is live before TE0
        assert!(r[&a].live_at(0));
    }

    #[test]
    fn outputs_live_to_end() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let b = builders::exp(&mut p, "e", a); // TE0
        let _ = builders::relu(&mut p, "r", b); // TE1
        p.mark_output(b);
        let r = live_ranges(&p);
        assert!(r[&b].live_at(5));
    }
}
