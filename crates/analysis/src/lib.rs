#![warn(missing_docs)]
//! Global computation-graph analysis (§5 of the paper).
//!
//! Souffle's analyses all run on the tensor dependency graph of the whole
//! TE program:
//!
//! - [`graph::TeGraph`]: the dependency graph itself, with BFS order and
//!   reachability queries used by partitioning and Algorithm 1,
//! - [`reuse`]: tensor-level data-reuse detection (§5.1) — *spatial* reuse
//!   (one tensor consumed by independent TEs) and *temporal* reuse (one
//!   tensor consumed repeatedly along dependent TEs),
//! - [`classify`]: compute- vs. memory-intensive classification by the
//!   compute/memory ratio with the paper's threshold of 3 (§5.3),
//! - [`liveness`]: tensor live ranges across operator boundaries,
//! - [`partition`]: resource-aware TE program partitioning under the
//!   max-blocks-per-wave constraint required for grid synchronization
//!   (§5.4, greedy BFS),
//! - [`AnalysisResult`]: the bundle (OR/MR/MI/CI/SR/TR in Algorithm 1's
//!   notation) handed to the transformation stage.
//!
//! Element-wise dependence itself (one-relies-on-one / one-relies-on-many,
//! §5.2) is exposed by `souffle_te::TensorExpr::relations` and re-exported
//! through [`AnalysisResult`].

pub mod classify;
pub mod graph;
pub mod liveness;
pub mod partition;
pub mod reuse;

mod result;

pub use classify::{classify_program, classify_te, classify_te_with_threshold, TeClass};
pub use graph::TeGraph;
pub use liveness::{live_ranges, LiveRange};
pub use partition::{partition_program, Partition, Subprogram};
pub use result::AnalysisResult;
pub use reuse::{find_reuse, ReuseReport};
