//! Tensor-level data-reuse detection (§5.1).

use crate::graph::TeGraph;
use souffle_te::{TeId, TeProgram, TensorId};
use std::collections::HashMap;

/// All reuse opportunities found in a program.
///
/// For every tensor consumed by more than one TE the paper records the set
/// `s(t_i) = {op_j, …, op_k}` of sharing operators; here split into the two
/// categories §5.1 distinguishes because they feed different optimizations:
///
/// - **spatial** reuse guides horizontal transformation (§6.1): the
///   consumers are pairwise independent, so they can merge into one kernel
///   that loads the tensor once,
/// - **temporal** reuse guides the tensor-buffer reuse optimization
///   (§6.5): the consumers are dependent, so the tensor can be cached
///   on-chip between their executions.
#[derive(Debug, Clone, Default)]
pub struct ReuseReport {
    /// Tensors consumed by ≥2 pairwise-independent TEs (tensor, consumers).
    pub spatial: Vec<(TensorId, Vec<TeId>)>,
    /// Tensors consumed by ≥2 TEs with dependencies among them.
    pub temporal: Vec<(TensorId, Vec<TeId>)>,
}

impl ReuseReport {
    /// The sharing set `s(t)` regardless of category.
    pub fn sharing_set(&self, tensor: TensorId) -> Option<&[TeId]> {
        self.spatial
            .iter()
            .chain(self.temporal.iter())
            .find(|(t, _)| *t == tensor)
            .map(|(_, c)| c.as_slice())
    }

    /// Tensors with temporal reuse, as a map for Algorithm 1's `TR` input.
    pub fn temporal_map(&self) -> HashMap<TensorId, Vec<TeId>> {
        self.temporal.iter().cloned().collect()
    }

    /// Total number of reused tensors.
    pub fn len(&self) -> usize {
        self.spatial.len() + self.temporal.len()
    }

    /// Whether no reuse was found.
    pub fn is_empty(&self) -> bool {
        self.spatial.is_empty() && self.temporal.is_empty()
    }
}

/// Traverses the tensor dependency graph and gathers every tensor accessed
/// by more than one TE (§5.1), classifying the reuse as spatial (consumers
/// pairwise independent) or temporal (dependencies exist between some
/// consumers).
pub fn find_reuse(program: &TeProgram, graph: &TeGraph) -> ReuseReport {
    let mut report = ReuseReport::default();
    for tensor_idx in 0..program.num_tensors() {
        let tensor = TensorId(tensor_idx);
        let consumers = program.consumers_of(tensor);
        if consumers.len() < 2 {
            continue;
        }
        let pairwise_independent = consumers
            .iter()
            .enumerate()
            .all(|(i, &a)| consumers[i + 1..].iter().all(|&b| graph.independent(a, b)));
        if pairwise_independent {
            report.spatial.push((tensor, consumers));
        } else {
            report.temporal.push((tensor, consumers));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use souffle_te::builders;
    use souffle_tensor::{DType, Shape};

    #[test]
    fn shared_input_of_independent_consumers_is_spatial() {
        // The BERT pattern of §5.1: three QKV GEMMs share one input.
        let mut p = TeProgram::new();
        let x = p.add_input("X", Shape::new(vec![64, 64]), DType::F16);
        let wq = p.add_weight("Wq", Shape::new(vec![64, 64]), DType::F16);
        let wk = p.add_weight("Wk", Shape::new(vec![64, 64]), DType::F16);
        let wv = p.add_weight("Wv", Shape::new(vec![64, 64]), DType::F16);
        let _ = builders::matmul(&mut p, "q", x, wq);
        let _ = builders::matmul(&mut p, "k", x, wk);
        let _ = builders::matmul(&mut p, "v", x, wv);
        let g = TeGraph::build(&p);
        let r = find_reuse(&p, &g);
        assert_eq!(r.spatial.len(), 1);
        assert_eq!(r.spatial[0].0, x);
        assert_eq!(r.spatial[0].1.len(), 3);
        assert!(r.temporal.is_empty());
        assert_eq!(r.sharing_set(x).unwrap().len(), 3);
    }

    #[test]
    fn value_used_by_dependent_consumers_is_temporal() {
        // The working example of §5.1: A1's output is used by R1 and A2
        // where A2 depends on R1 (through the softmax div).
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![16, 16]), DType::F32);
        let e = builders::exp(&mut p, "A1", a); // reused tensor
        let s = builders::reduce_last(&mut p, "R1", souffle_te::ReduceOp::Sum, e);
        // A2 = e / s (consumes both e and s => depends on R1)
        let rank = 2;
        let _div = p.add_te(
            "A2",
            Shape::new(vec![16, 16]),
            DType::F32,
            vec![e, s],
            vec![],
            None,
            souffle_te::ScalarExpr::binary(
                souffle_te::BinaryOp::Div,
                souffle_te::ScalarExpr::input(
                    0,
                    (0..rank).map(souffle_affine::IndexExpr::Var).collect(),
                ),
                souffle_te::ScalarExpr::input(1, vec![souffle_affine::IndexExpr::var(0)]),
            ),
        );
        let g = TeGraph::build(&p);
        let r = find_reuse(&p, &g);
        assert_eq!(r.temporal.len(), 1);
        assert_eq!(r.temporal[0].0, e);
        assert!(r.spatial.is_empty());
        assert!(r.temporal_map().contains_key(&e));
    }

    #[test]
    fn single_consumer_is_not_reuse() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![8]), DType::F32);
        let e = builders::exp(&mut p, "e", a);
        let _ = builders::relu(&mut p, "r", e);
        let g = TeGraph::build(&p);
        let r = find_reuse(&p, &g);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert!(r.sharing_set(a).is_none());
    }
}
