//! Resource-aware TE program partitioning (§5.4).
//!
//! Souffle wants kernels as large as possible (data reuse, fewer
//! launches), but a kernel containing a grid synchronization must have all
//! of its blocks resident simultaneously — the thread-block count cannot
//! exceed the device's max blocks per wave. The partitioner walks the TE
//! program in BFS order and greedily grows a subprogram until adding the
//! next compute-intensive TE would violate that constraint, then starts a
//! new subprogram.

use crate::classify::TeClass;
use crate::graph::TeGraph;
use souffle_sched::{GpuSpec, ScheduleMap};
use souffle_te::{TeId, TeProgram};
use std::collections::HashMap;
use std::fmt;

/// One subprogram: a contiguous (in BFS order) group of TEs that is
/// compiled into a single GPU kernel (§5.4: "a TE subprogram serves as the
/// fundamental unit for high-level TE transformation, middle-end schedule
/// optimization, and back-end code generation").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subprogram {
    /// Position in the partition.
    pub id: usize,
    /// Member TEs, in BFS order.
    pub tes: Vec<TeId>,
}

impl Subprogram {
    /// Whether the subprogram contains a TE.
    pub fn contains(&self, te: TeId) -> bool {
        self.tes.contains(&te)
    }
}

impl fmt::Display for Subprogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SP{}: [", self.id)?;
        for (i, te) in self.tes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{te}")?;
        }
        write!(f, "]")
    }
}

/// The result of partitioning: every TE of the program in exactly one
/// subprogram, subprograms in dependence order.
#[derive(Debug, Clone, Default)]
pub struct Partition {
    /// Subprograms in execution order.
    pub subprograms: Vec<Subprogram>,
}

impl Partition {
    /// The subprogram containing a TE.
    pub fn subprogram_of(&self, te: TeId) -> Option<usize> {
        self.subprograms.iter().position(|sp| sp.contains(te))
    }

    /// Total TEs across subprograms.
    pub fn num_tes(&self) -> usize {
        self.subprograms.iter().map(|sp| sp.tes.len()).sum()
    }

    /// Number of kernels this partition will generate.
    pub fn num_kernels(&self) -> usize {
        self.subprograms.len()
    }

    /// Checks the structural invariants: every TE of `program` appears in
    /// exactly one subprogram, and no TE depends on a TE of a *later*
    /// subprogram. Returns `false` when any invariant is broken.
    pub fn check_invariants(&self, program: &TeProgram, graph: &TeGraph) -> bool {
        let mut seen: HashMap<TeId, usize> = HashMap::new();
        for sp in &self.subprograms {
            for &te in &sp.tes {
                if seen.insert(te, sp.id).is_some() {
                    return false;
                }
            }
        }
        if seen.len() != program.num_tes() {
            return false;
        }
        for te_id in program.te_ids() {
            for &pred in graph.predecessors(te_id) {
                if seen[&pred] > seen[&te_id] {
                    return false;
                }
            }
        }
        true
    }
}

/// The paper's partitioning algorithm (§5.4):
///
/// 1. Only compute-intensive TEs are candidate partitioning points.
/// 2. For the current subprogram, take the maximal launch dimension
///    `max_grid` and the maximal resource occupancy `max_occ` over its
///    compute-intensive TEs (from the Ansor-lite schedules).
/// 3. The subprogram is feasible while `max_grid` does not exceed the max
///    blocks per wave of the most demanding schedule — the condition for
///    grid synchronization.
/// 4. Walk the TE program in BFS order; when adding a TE breaks the
///    constraint, close the subprogram and start a new one with that TE.
pub fn partition_program(
    _program: &TeProgram,
    graph: &TeGraph,
    classes: &HashMap<TeId, TeClass>,
    schedules: &ScheduleMap,
    spec: &GpuSpec,
) -> Partition {
    let order = graph.bfs_order();
    let mut partition = Partition::default();
    let mut current: Vec<TeId> = Vec::new();
    // Resource envelope of the current subprogram's compute-intensive TEs.
    let mut max_grid: u64 = 0;
    let mut max_threads: u32 = 0;
    let mut max_smem: u64 = 0;
    let mut max_regs: u32 = 0;

    let close = |current: &mut Vec<TeId>, partition: &mut Partition| {
        if !current.is_empty() {
            let id = partition.subprograms.len();
            partition.subprograms.push(Subprogram {
                id,
                tes: std::mem::take(current),
            });
        }
    };

    for te in order {
        let is_ci = classes.get(&te) == Some(&TeClass::ComputeIntensive);
        if !is_ci {
            // Memory-intensive TEs never force a split; they inherit their
            // producer's schedule (§6.3).
            current.push(te);
            continue;
        }
        let sch = schedules
            .get(&te)
            .unwrap_or_else(|| panic!("schedule missing for {te}"));
        let cand_grid = max_grid.max(sch.grid_blocks);
        let cand_threads = max_threads.max(sch.threads_per_block);
        let cand_smem = max_smem.max(sch.shared_mem_bytes);
        let cand_regs = max_regs.max(sch.regs_per_thread);
        let wave_cap = spec.max_blocks_per_wave(cand_threads, cand_smem, cand_regs);
        let feasible = cand_grid <= wave_cap && wave_cap > 0;
        if feasible || current.is_empty() {
            current.push(te);
            max_grid = cand_grid;
            max_threads = cand_threads;
            max_smem = cand_smem;
            max_regs = cand_regs;
        } else {
            close(&mut current, &mut partition);
            current.push(te);
            max_grid = sch.grid_blocks;
            max_threads = sch.threads_per_block;
            max_smem = sch.shared_mem_bytes;
            max_regs = sch.regs_per_thread;
        }
    }
    close(&mut current, &mut partition);
    partition
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify_program;
    use souffle_sched::schedule_program;
    use souffle_te::builders;
    use souffle_tensor::{DType, Shape};

    fn analyze(p: &TeProgram) -> (TeGraph, HashMap<TeId, TeClass>, ScheduleMap, GpuSpec) {
        let spec = GpuSpec::a100();
        let g = TeGraph::build(p);
        let c = classify_program(p);
        let s = schedule_program(p, &spec);
        (g, c, s, spec)
    }

    #[test]
    fn small_program_fits_one_subprogram() {
        // The Fig. 2 example: TE0..TE3 fit together, TE4 may or may not.
        let mut p = TeProgram::new();
        let i0 = p.add_input("I0", Shape::new(vec![64, 64]), DType::F16);
        let w0 = p.add_weight("W0", Shape::new(vec![64, 64]), DType::F16);
        let o0 = builders::matmul(&mut p, "TE0", i0, w0);
        let o1 = builders::sigmoid(&mut p, "TE1", o0);
        let w2 = p.add_weight("W2", Shape::new(vec![64, 64]), DType::F16);
        let o2 = builders::matmul(&mut p, "TE2", o1, w2);
        let _o3 = builders::add(&mut p, "TE3", o0, o2);
        let (g, c, s, spec) = analyze(&p);
        let part = partition_program(&p, &g, &c, &s, &spec);
        assert!(part.check_invariants(&p, &g));
        assert_eq!(part.num_tes(), 4);
        assert_eq!(part.num_kernels(), 1, "{:?}", part.subprograms);
    }

    #[test]
    fn oversized_grid_forces_split() {
        // Two huge GEMMs whose combined envelope exceeds one wave.
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![8192, 8192]), DType::F16);
        let w1 = p.add_weight("W1", Shape::new(vec![8192, 8192]), DType::F16);
        let x = builders::matmul(&mut p, "mm1", a, w1);
        let w2 = p.add_weight("W2", Shape::new(vec![8192, 8192]), DType::F16);
        let _ = builders::matmul(&mut p, "mm2", x, w2);
        let (g, c, s, spec) = analyze(&p);
        // Force tiny wave capacity by shrinking the device.
        let mut small = spec.clone();
        small.num_sms = 1;
        small.max_blocks_per_sm = 2;
        let part = partition_program(&p, &g, &c, &s, &small);
        assert!(part.check_invariants(&p, &g));
        assert_eq!(part.num_kernels(), 2, "{:?}", part.subprograms);
    }

    #[test]
    fn memory_intensive_tes_never_split() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![1 << 22]), DType::F32);
        let mut cur = a;
        for i in 0..10 {
            cur = builders::relu(&mut p, &format!("r{i}"), cur);
        }
        let (g, c, s, spec) = analyze(&p);
        let part = partition_program(&p, &g, &c, &s, &spec);
        assert_eq!(part.num_kernels(), 1);
        assert_eq!(part.num_tes(), 10);
    }

    #[test]
    fn subprogram_of_finds_members() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![64]), DType::F32);
        let _ = builders::relu(&mut p, "r", a);
        let (g, c, s, spec) = analyze(&p);
        let part = partition_program(&p, &g, &c, &s, &spec);
        assert_eq!(part.subprogram_of(TeId(0)), Some(0));
        assert_eq!(part.subprogram_of(TeId(99)), None);
    }

    #[test]
    fn display_lists_tes() {
        let sp = Subprogram {
            id: 0,
            tes: vec![TeId(0), TeId(1)],
        };
        assert_eq!(sp.to_string(), "SP0: [TE0, TE1]");
    }
}
