//! TVM-style schedule primitives: the `split/reorder/bind/cache_read/`
//! `compute_at` trace of a schedule, as the paper prints it in Fig. 2
//! ("3. Resource Aware Partition" and "4. TE transformation").
//!
//! Ansor-lite decides tilings numerically; this module renders those
//! decisions as the primitive sequence an Ansor schedule would apply, and
//! expresses §6.3's *schedule propagation* — attaching a memory-intensive
//! TE to its compute-intensive producer's tiling — as the
//! `split` + `compute_at` pair of the paper's example.

use crate::Schedule;
use std::fmt;

/// One schedule primitive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Primitive {
    /// `s.split(axis, factor)`: tile an axis.
    Split {
        /// Axis name (`i`, `j`, `k`, …).
        axis: String,
        /// Tile factor.
        factor: i64,
    },
    /// `s.reorder(...)`: set the loop order.
    Reorder {
        /// New order of loop variables.
        order: Vec<String>,
    },
    /// `s.cache_read(tensor, "shared", at)`: stage an operand in shared
    /// memory.
    CacheRead {
        /// Operand position.
        operand: usize,
        /// Loop level the staging happens at.
        at: String,
    },
    /// `s.bind(axis, thread)`: bind a loop to a hardware axis.
    Bind {
        /// Loop variable.
        axis: String,
        /// Hardware axis (`blockIdx.x`, `threadIdx.x`).
        hw: String,
    },
    /// `s[op].compute_at(parent, axis)`: §6.3's schedule propagation —
    /// compute this TE inside the parent's loop nest.
    ComputeAt {
        /// The producer TE's name.
        parent: String,
        /// Loop level.
        axis: String,
    },
    /// `s.tensorize(axis, wmma_16x16)`: map the inner tile to tensor
    /// cores.
    Tensorize {
        /// Inner axis.
        axis: String,
    },
    /// Cross-block reduction finishing with atomics (§2.3).
    AtomicReduce,
}

impl fmt::Display for Primitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Primitive::Split { axis, factor } => {
                write!(f, "{axis}o, {axis}i = s.split({axis}, {factor})")
            }
            Primitive::Reorder { order } => write!(f, "s.reorder({})", order.join(", ")),
            Primitive::CacheRead { operand, at } => {
                write!(
                    f,
                    "S{operand} = s.cache_read(in{operand}, \"shared\", at={at})"
                )
            }
            Primitive::Bind { axis, hw } => write!(f, "s.bind({axis}, {hw})"),
            Primitive::ComputeAt { parent, axis } => {
                write!(f, "s.compute_at(s[{parent}], {axis})")
            }
            Primitive::Tensorize { axis } => write!(f, "s.tensorize({axis}, wmma_16x16)"),
            Primitive::AtomicReduce => f.write_str("s.cross_block_reduce(atomicAdd)"),
        }
    }
}

const AXIS_NAMES: [&str; 6] = ["i", "j", "k", "l", "m", "n"];

fn axis_name(d: usize) -> String {
    AXIS_NAMES
        .get(d)
        .map(|s| s.to_string())
        .unwrap_or_else(|| format!("ax{d}"))
}

/// Renders a schedule as its primitive trace.
pub fn trace(schedule: &Schedule, n_operands: usize) -> Vec<Primitive> {
    let mut out = Vec::new();
    let mut order_outer = Vec::new();
    let mut order_inner = Vec::new();
    for (d, t) in schedule.output_tiles.iter().enumerate() {
        let ax = axis_name(d);
        if t.tile < t.extent {
            out.push(Primitive::Split {
                axis: ax.clone(),
                factor: t.tile,
            });
            order_outer.push(format!("{ax}o"));
            order_inner.push(format!("{ax}i"));
        } else {
            order_outer.push(ax);
        }
    }
    let n_out = schedule.output_tiles.len();
    for (r, t) in schedule.reduce_tiles.iter().enumerate() {
        let ax = format!("r{}", axis_name(n_out + r));
        if t.tile < t.extent {
            out.push(Primitive::Split {
                axis: ax.clone(),
                factor: t.tile,
            });
            order_outer.push(format!("{ax}o"));
            order_inner.push(format!("{ax}i"));
        } else {
            order_inner.push(ax);
        }
    }
    let mut order = order_outer.clone();
    order.extend(order_inner);
    out.push(Primitive::Reorder { order });
    if schedule.shared_mem_bytes > 0 {
        let at = order_outer
            .last()
            .cloned()
            .unwrap_or_else(|| "root".to_string());
        for operand in 0..n_operands {
            out.push(Primitive::CacheRead {
                operand,
                at: at.clone(),
            });
        }
    }
    if let Some(first) = order_outer.first() {
        out.push(Primitive::Bind {
            axis: first.clone(),
            hw: "blockIdx.x".to_string(),
        });
    }
    out.push(Primitive::Bind {
        axis: "ii".to_string(),
        hw: "threadIdx.x".to_string(),
    });
    if schedule.use_tensor_core {
        out.push(Primitive::Tensorize {
            axis: "ki".to_string(),
        });
    }
    if schedule.cross_block_reduction {
        out.push(Primitive::AtomicReduce);
    }
    out
}

/// The §6.3 propagation trace: the primitives that attach a
/// memory-intensive TE to its compute-intensive producer's schedule
/// ("Inherit tile shape from TE0's schedule … Move computation of TE1
/// into TE0's loop" in Fig. 2).
pub fn propagation_trace(producer_name: &str, producer: &Schedule) -> Vec<Primitive> {
    let mut out = Vec::new();
    for (d, t) in producer.output_tiles.iter().enumerate() {
        if t.tile < t.extent {
            out.push(Primitive::Split {
                axis: axis_name(d),
                factor: t.tile,
            });
        }
    }
    out.push(Primitive::ComputeAt {
        parent: producer_name.to_string(),
        axis: format!("{}o", axis_name(0)),
    });
    out
}

/// Renders a trace as the multi-line listing style of Fig. 2.
pub fn render(name: &str, primitives: &[Primitive]) -> String {
    let mut s = format!("# schedule for {name}\n");
    for p in primitives {
        s.push_str(&format!("{name}: {p}\n"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auto_schedule;
    use crate::GpuSpec;
    use souffle_te::{builders, TeId, TeProgram};
    use souffle_tensor::{DType, Shape};

    fn gemm_schedule() -> Schedule {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![512, 512]), DType::F16);
        let b = p.add_weight("B", Shape::new(vec![512, 512]), DType::F16);
        let _ = builders::matmul(&mut p, "mm", a, b);
        auto_schedule(&p, TeId(0), &GpuSpec::a100())
    }

    #[test]
    fn gemm_trace_has_fig2_shape() {
        let sch = gemm_schedule();
        let t = trace(&sch, 2);
        let rendered = render("TE0", &t);
        // Fig. 2's elements: split, reorder, cache_read, bind blockIdx.
        assert!(rendered.contains("s.split("), "{rendered}");
        assert!(rendered.contains("s.reorder("), "{rendered}");
        assert!(rendered.contains("cache_read"), "{rendered}");
        assert!(rendered.contains("blockIdx.x"), "{rendered}");
        assert!(rendered.contains("wmma_16x16"), "{rendered}");
    }

    #[test]
    fn propagation_trace_contains_compute_at() {
        let sch = gemm_schedule();
        let t = propagation_trace("TE0", &sch);
        assert!(t.iter().any(|p| matches!(p, Primitive::ComputeAt { .. })));
        let rendered = render("TE1", &t);
        assert!(rendered.contains("compute_at(s[TE0]"), "{rendered}");
    }

    #[test]
    fn elementwise_trace_is_flat() {
        let s = Schedule::elementwise(TeId(0), &[1000]);
        let t = trace(&s, 1);
        assert!(!t.iter().any(|p| matches!(p, Primitive::Tensorize { .. })));
        assert!(!t.iter().any(|p| matches!(p, Primitive::CacheRead { .. })));
    }

    #[test]
    fn primitive_display() {
        assert_eq!(
            Primitive::Split {
                axis: "i".into(),
                factor: 16
            }
            .to_string(),
            "io, ii = s.split(i, 16)"
        );
        assert_eq!(
            Primitive::Bind {
                axis: "io".into(),
                hw: "blockIdx.x".into()
            }
            .to_string(),
            "s.bind(io, blockIdx.x)"
        );
    }
}
