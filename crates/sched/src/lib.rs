#![warn(missing_docs)]
//! Ansor-lite: analytical schedule generation for tensor expressions.
//!
//! The paper uses Ansor to produce a schedule per TE and only consumes two
//! of its outputs (§5.4): the kernel **launch dimensions** and the
//! **register/shared-memory occupancy**, which feed the resource-aware
//! partitioner; plus the tile structure, which the schedule-propagation
//! step extends to memory-intensive consumers (§6.3).
//!
//! This crate substitutes Ansor with a deterministic analytical search
//! ("Ansor-lite"): it enumerates candidate tilings of a TE's iteration
//! space, estimates time with a roofline-style cost model on an A100-class
//! [`GpuSpec`], and returns the best [`Schedule`]. That exercises exactly
//! the code paths the paper's compiler needs while staying reproducible.
//!
//! # Example
//!
//! ```
//! use souffle_sched::{auto_schedule, GpuSpec};
//! use souffle_te::{builders, TeProgram, TeId};
//! use souffle_tensor::{DType, Shape};
//!
//! let mut p = TeProgram::new();
//! let a = p.add_input("A", Shape::new(vec![256, 256]), DType::F16);
//! let b = p.add_weight("B", Shape::new(vec![256, 256]), DType::F16);
//! let _c = builders::matmul(&mut p, "mm", a, b);
//! let spec = GpuSpec::a100();
//! let sch = auto_schedule(&p, TeId(0), &spec);
//! assert!(sch.grid_blocks >= 1);
//! assert!(sch.shared_mem_bytes <= spec.shared_mem_per_block_max);
//! ```

mod cost;
mod device;
pub mod occupancy;
pub mod primitives;
mod schedule;
mod search;

pub use cost::{operand_footprints as cost_operand_footprints, te_global_bytes, te_time_estimate};
pub use device::GpuSpec;
pub use occupancy::{estimate_occupancy, OccupancyEstimate};
pub use schedule::{Schedule, TileDim};
pub use search::{
    auto_schedule, program_signature, schedule_program, schedule_program_with_stats,
    ScheduleCacheStats, ScheduleMap,
};
