//! Ansor-lite schedule search.

use crate::cost::{operand_footprints, te_time_estimate};
use crate::{GpuSpec, Schedule, TileDim};
use souffle_te::{BinaryOp, ScalarExpr, TeId, TeProgram};
use std::collections::HashMap;

/// Schedules for every TE of a program, keyed by TE id.
pub type ScheduleMap = HashMap<TeId, Schedule>;

/// Generates a schedule for one TE: element-wise TEs get a flat
/// thread-per-element schedule; reduction TEs go through tile-size search
/// with the roofline cost model.
pub fn auto_schedule(program: &TeProgram, te: TeId, spec: &GpuSpec) -> Schedule {
    let te_ref = program.te(te);
    let out_shape = program.output_shape(te).clone();
    if !te_ref.is_reduction() {
        let mut s = Schedule::elementwise(te, out_shape.dims());
        s.estimated_time_s = te_time_estimate(program, te, &s, spec);
        return s;
    }
    search_reduction(program, te, spec)
}

/// Schedules every TE of a program, memoizing the search on a structural
/// TE signature: the many shape-identical TEs of layered models (every
/// BERT/LSTM layer repeats the same matmuls and element-wise ops) run the
/// tile search once and share the result.
pub fn schedule_program(program: &TeProgram, spec: &GpuSpec) -> ScheduleMap {
    schedule_program_with_stats(program, spec).0
}

/// Memoization counters of one [`schedule_program`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScheduleCacheStats {
    /// TEs whose schedule was copied from a structurally identical TE.
    pub hits: usize,
    /// TEs that ran the full search.
    pub misses: usize,
}

/// [`schedule_program`] returning the cache counters alongside the map.
pub fn schedule_program_with_stats(
    program: &TeProgram,
    spec: &GpuSpec,
) -> (ScheduleMap, ScheduleCacheStats) {
    let mut cache: HashMap<String, Schedule> = HashMap::new();
    let mut stats = ScheduleCacheStats::default();
    let map = program
        .te_ids()
        .map(|id| {
            let sig = te_signature(program, id);
            let schedule = match cache.get(&sig) {
                Some(hit) => {
                    stats.hits += 1;
                    let mut s = hit.clone();
                    s.te = id;
                    s
                }
                None => {
                    stats.misses += 1;
                    let s = auto_schedule(program, id, spec);
                    cache.insert(sig, s.clone());
                    s
                }
            };
            (id, schedule)
        })
        .collect();
    (map, stats)
}

/// Structural signature of a whole program: a stable 64-bit FNV-1a hash of
/// every TE's [`te_signature`] plus the tensor table (names, kinds, shapes,
/// dtypes). Two programs share a signature exactly when the scheduler and
/// compiler see the same structure — the shape-bucketed kernel cache uses
/// this as the structural half of its `ShapeClass` key.
pub fn program_signature(program: &TeProgram) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut feed = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for t in program.tensors() {
        feed(t.name.as_bytes());
        feed(format!("|{:?}|{:?}|{:?};", t.kind, t.shape.dims(), t.dtype).as_bytes());
    }
    for id in program.te_ids() {
        feed(te_signature(program, id).as_bytes());
        feed(program.te(id).name.as_bytes());
        feed(b";");
    }
    h
}

/// Structural signature of a TE: everything [`auto_schedule`] and the cost
/// model read — output dims and dtype, reduction extents and op, operand
/// shapes and dtypes, and the body (rendered, which covers every access
/// pattern) — and nothing they don't (the TE *name* is excluded, since
/// repeated layers differ only by name).
fn te_signature(program: &TeProgram, te: TeId) -> String {
    use std::fmt::Write;
    let t = program.te(te);
    let mut s = String::new();
    let _ = write!(
        s,
        "out={:?}/{:?};red={:?}/{:?}",
        program.output_shape(te).dims(),
        program.tensor(t.output).dtype,
        t.reduce,
        t.reduce_op,
    );
    for &inp in &t.inputs {
        let info = program.tensor(inp);
        let _ = write!(s, ";in={:?}/{:?}", info.shape.dims(), info.dtype);
    }
    let _ = write!(s, ";body={}", t.body);
    s
}

/// Whether the TE's body is a multiply-accumulate of two distinct operands
/// — the shape the tensor cores accelerate.
fn is_mma_body(body: &ScalarExpr) -> bool {
    fn contains_mul_of_inputs(e: &ScalarExpr) -> bool {
        match e {
            ScalarExpr::Binary(BinaryOp::Mul, a, b) => {
                reads_input(a) && reads_input(b)
                    || contains_mul_of_inputs(a)
                    || contains_mul_of_inputs(b)
            }
            ScalarExpr::Binary(_, a, b) => contains_mul_of_inputs(a) || contains_mul_of_inputs(b),
            ScalarExpr::Unary(_, a) => contains_mul_of_inputs(a),
            ScalarExpr::Select {
                on_true, on_false, ..
            } => contains_mul_of_inputs(on_true) || contains_mul_of_inputs(on_false),
            _ => false,
        }
    }
    fn reads_input(e: &ScalarExpr) -> bool {
        match e {
            ScalarExpr::Input { .. } => true,
            ScalarExpr::Unary(_, a) => reads_input(a),
            ScalarExpr::Binary(_, a, b) => reads_input(a) || reads_input(b),
            ScalarExpr::Select {
                on_true, on_false, ..
            } => reads_input(on_true) || reads_input(on_false),
            _ => false,
        }
    }
    contains_mul_of_inputs(body)
}

/// Tile sizes worth trying for one axis: the fixed power-of-two ladder
/// below the extent, plus the extent itself as an exact fit (capped at
/// 128, the largest tile the ladder considers). Sorted and duplicate-free
/// so extents sitting between ladder rungs (e.g. 48) are explored exactly
/// once instead of producing repeated clamped candidates.
fn tile_candidates(extent: i64) -> Vec<i64> {
    let mut out: Vec<i64> = [1i64, 4, 8, 16, 32, 64, 128]
        .into_iter()
        .filter(|&t| t < extent)
        .collect();
    out.push(extent.min(128));
    out.dedup();
    out
}

fn search_reduction(program: &TeProgram, te: TeId, spec: &GpuSpec) -> Schedule {
    let te_ref = program.te(te);
    let out_shape = program.output_shape(te).clone();
    let dims = out_shape.dims().to_vec();
    let rank = dims.len();
    let dtype = program.tensor(te_ref.output).dtype;
    let tensor_core = dtype.tensor_core_eligible()
        && is_mma_body(&te_ref.body)
        && te_ref.reduce.iter().product::<i64>() >= 16;

    // Tile at most the two largest dimensions; the rest stay at tile = 1.
    let mut order: Vec<usize> = (0..rank).collect();
    order.sort_by_key(|&d| std::cmp::Reverse(dims[d]));
    let tiled_dims: Vec<usize> = order.into_iter().take(2).collect();

    let reduce_total: i64 = te_ref.reduce.iter().product();
    let out_elems: i64 = dims.iter().product();

    let mut best: Option<Schedule> = None;
    // Rank-0 (scalar) outputs — e.g. a full reduction — have nothing to
    // tile: search only over the reduction split.
    let cands_a: Vec<i64> = match tiled_dims.first() {
        Some(&d) => tile_candidates(dims[d]),
        None => vec![1],
    };
    let cands_b: Vec<i64> = if tiled_dims.len() > 1 {
        tile_candidates(dims[tiled_dims[1]])
    } else {
        vec![1]
    };
    // Cross-block reduction split candidates: only worth exploring when the
    // output is small relative to the device (the reduce_sum-after-GEMM and
    // global-pool patterns of §2.3).
    let split_cands: Vec<i64> = if out_elems < (spec.num_sms as i64 * 256) && reduce_total >= 64 {
        vec![1, 2, 4, 8]
    } else {
        vec![1]
    };

    for &ta in &cands_a {
        for &tb in &cands_b {
            for &split in &split_cands {
                let mut tiles: Vec<TileDim> = dims
                    .iter()
                    .map(|&e| TileDim { extent: e, tile: 1 })
                    .collect();
                if let Some(&d) = tiled_dims.first() {
                    tiles[d].tile = ta;
                }
                if tiled_dims.len() > 1 {
                    tiles[tiled_dims[1]].tile = tb;
                }
                let block_elems: i64 = tiles.iter().map(|t| t.tile).product();
                let threads = pick_threads(block_elems, tensor_core);

                // Shared-memory staging: operand footprints over one tile
                // with a k-chunk of the reduction, double buffered.
                let k_chunk: Vec<i64> = te_ref.reduce.iter().map(|&r| r.min(32)).collect();
                let mut tile_bounds: Vec<i64> = tiles.iter().map(|t| t.tile).collect();
                tile_bounds.extend(k_chunk.iter().copied());
                let smem_elems: i64 = operand_footprints(program, te, &tile_bounds)
                    .into_iter()
                    .map(|(_, e)| e)
                    .sum::<i64>()
                    + block_elems;
                let smem = 2 * smem_elems as u64 * dtype.size_bytes();
                if smem > spec.shared_mem_per_block_max {
                    continue;
                }
                let regs = (32 + (block_elems / threads as i64).min(128) * 2) as u32;
                let blocks: i64 = tiles.iter().map(TileDim::num_tiles).product::<i64>() * split;
                let mut sch = Schedule {
                    te,
                    output_tiles: tiles,
                    reduce_tiles: te_ref
                        .reduce
                        .iter()
                        .map(|&r| TileDim {
                            extent: r,
                            tile: (r + split - 1) / split,
                        })
                        .collect(),
                    grid_blocks: blocks.max(1) as u64,
                    threads_per_block: threads,
                    shared_mem_bytes: smem,
                    regs_per_thread: regs,
                    use_tensor_core: tensor_core,
                    cross_block_reduction: split > 1,
                    estimated_time_s: 0.0,
                };
                let mut t = te_time_estimate(program, te, &sch, spec);
                if split > 1 {
                    // Atomics + the final combine add a small cost, but the
                    // extra parallelism often wins for skinny outputs.
                    t = t / (split as f64).sqrt() + 0.3e-6;
                }
                sch.estimated_time_s = t;
                if best.as_ref().is_none_or(|b| t < b.estimated_time_s) {
                    best = Some(sch);
                }
            }
        }
    }
    best.unwrap_or_else(|| {
        let mut s = Schedule::elementwise(te, &dims);
        s.estimated_time_s = te_time_estimate(program, te, &s, spec);
        s
    })
}

fn pick_threads(block_elems: i64, tensor_core: bool) -> u32 {
    if tensor_core {
        128
    } else {
        block_elems.clamp(32, 256) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use souffle_te::builders;
    use souffle_tensor::{DType, Shape};

    fn spec() -> GpuSpec {
        GpuSpec::a100()
    }

    #[test]
    fn program_signature_tracks_structure_and_shape() {
        let build = |n: i64, name: &str| {
            let mut p = TeProgram::new();
            let a = p.add_input("A", Shape::new(vec![n, 16]), DType::F32);
            let b = p.add_weight("B", Shape::new(vec![16, 4]), DType::F32);
            let c = builders::matmul(&mut p, name, a, b);
            p.mark_output(c);
            p
        };
        // Deterministic and shape-sensitive: same build hashes equal, a
        // different leading extent or TE name hashes differently.
        assert_eq!(
            program_signature(&build(8, "mm")),
            program_signature(&build(8, "mm"))
        );
        assert_ne!(
            program_signature(&build(8, "mm")),
            program_signature(&build(9, "mm"))
        );
        assert_ne!(
            program_signature(&build(8, "mm")),
            program_signature(&build(8, "mm2"))
        );
    }

    #[test]
    fn elementwise_gets_flat_schedule() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![1000]), DType::F32);
        let _ = builders::relu(&mut p, "r", a);
        let s = auto_schedule(&p, TeId(0), &spec());
        assert_eq!(s.grid_blocks, 4);
        assert!(!s.use_tensor_core);
        assert!(s.estimated_time_s > 0.0);
    }

    #[test]
    fn f16_gemm_uses_tensor_cores() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![512, 512]), DType::F16);
        let b = p.add_weight("B", Shape::new(vec![512, 512]), DType::F16);
        let _ = builders::matmul(&mut p, "mm", a, b);
        let s = auto_schedule(&p, TeId(0), &spec());
        assert!(s.use_tensor_core);
        assert!(s.shared_mem_bytes > 0);
        assert!(s.shared_mem_bytes <= spec().shared_mem_per_block_max);
    }

    #[test]
    fn f32_gemm_does_not_use_tensor_cores() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![256, 256]), DType::F32);
        let b = p.add_weight("B", Shape::new(vec![256, 256]), DType::F32);
        let _ = builders::matmul(&mut p, "mm", a, b);
        assert!(!auto_schedule(&p, TeId(0), &spec()).use_tensor_core);
    }

    #[test]
    fn skinny_reduction_splits_across_blocks() {
        let mut p = TeProgram::new();
        // reduce a [64, 4096] tensor to [64]: tiny output, large reduction.
        let a = p.add_input("A", Shape::new(vec![64, 4096]), DType::F32);
        let _ = builders::reduce_last(&mut p, "rs", souffle_te::ReduceOp::Sum, a);
        let s = auto_schedule(&p, TeId(0), &spec());
        assert!(
            s.cross_block_reduction,
            "expected two-phase reduction, got {s}"
        );
    }

    #[test]
    fn full_reduction_to_scalar_schedules_without_panicking() {
        use souffle_affine::IndexExpr;
        use souffle_te::ScalarExpr;
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![64, 4096]), DType::F32);
        let s = p.add_te(
            "sum_all",
            Shape::scalar(),
            DType::F32,
            vec![a],
            vec![64, 4096],
            Some(souffle_te::ReduceOp::Sum),
            ScalarExpr::input(0, vec![IndexExpr::var(0), IndexExpr::var(1)]),
        );
        p.mark_output(s);
        p.validate().unwrap();
        let sch = auto_schedule(&p, TeId(0), &spec());
        assert!(sch.grid_blocks >= 1);
        assert!(sch.output_tiles.is_empty());
        assert!(sch.estimated_time_s > 0.0);
        // A huge reduction feeding one output element should go two-phase.
        assert!(sch.cross_block_reduction, "expected split reduction: {sch}");
    }

    #[test]
    fn tile_candidates_are_sorted_unique_and_exact_fit() {
        // 48 sits between ladder rungs 32 and 64: it must appear as an
        // exact-fit candidate, once.
        assert_eq!(tile_candidates(48), vec![1, 4, 8, 16, 32, 48]);
        // Exact rung: no duplicate.
        assert_eq!(tile_candidates(64), vec![1, 4, 8, 16, 32, 64]);
        // Above the ladder: capped at 128.
        assert_eq!(tile_candidates(4096), vec![1, 4, 8, 16, 32, 64, 128]);
        // Degenerate extents.
        assert_eq!(tile_candidates(1), vec![1]);
        assert_eq!(tile_candidates(3), vec![1, 3]);
        for e in 1..200 {
            let c = tile_candidates(e);
            let mut sorted = c.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(c, sorted, "extent {e} candidates not sorted/unique");
            assert!(c.iter().all(|&t| t >= 1 && t <= e.min(128)));
        }
    }

    #[test]
    fn big_gemm_prefers_large_tiles() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![2048, 2048]), DType::F16);
        let b = p.add_weight("B", Shape::new(vec![2048, 2048]), DType::F16);
        let _ = builders::matmul(&mut p, "mm", a, b);
        let s = auto_schedule(&p, TeId(0), &spec());
        let max_tile = s.output_tiles.iter().map(|t| t.tile).max().unwrap();
        assert!(max_tile >= 64, "expected large tiles, got {s}");
    }

    #[test]
    fn schedule_program_covers_all_tes() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![64, 64]), DType::F16);
        let b = p.add_weight("B", Shape::new(vec![64, 64]), DType::F16);
        let c = builders::matmul(&mut p, "mm", a, b);
        let d = builders::sigmoid(&mut p, "sg", c);
        let _ = builders::exp(&mut p, "ex", d);
        let map = schedule_program(&p, &spec());
        assert_eq!(map.len(), 3);
        for id in p.te_ids() {
            assert!(map.contains_key(&id));
        }
    }

    #[test]
    fn schedule_search_is_memoized_across_identical_layers() {
        // Four structurally identical f16 GEMMs (different names, like
        // repeated transformer layers), one differently-shaped GEMM, and
        // two identical element-wise TEs.
        let mut p = TeProgram::new();
        let mut x = p.add_input("X", Shape::new(vec![128, 128]), DType::F16);
        for layer in 0..4 {
            let w = p.add_weight(&format!("W{layer}"), Shape::new(vec![128, 128]), DType::F16);
            x = builders::matmul(&mut p, &format!("mm{layer}"), x, w);
        }
        let wodd = p.add_weight("Wodd", Shape::new(vec![128, 64]), DType::F16);
        let y = builders::matmul(&mut p, "mm_odd", x, wodd);
        let s1 = builders::sigmoid(&mut p, "sig1", y);
        let _ = builders::sigmoid(&mut p, "sig2", s1);

        let (map, stats) = schedule_program_with_stats(&p, &spec());
        assert_eq!(map.len(), 7);
        // mm1..mm3 hit mm0's entry; sig2 hits sig1's. mm_odd must miss.
        assert_eq!(stats.hits, 4, "{stats:?}");
        assert_eq!(stats.misses, 3, "{stats:?}");

        // Memoized schedules are identical to a fresh per-TE search
        // (modulo the `te` field, which is re-pointed on a hit).
        for id in p.te_ids() {
            let mut fresh = auto_schedule(&p, id, &spec());
            fresh.te = id;
            assert_eq!(map[&id], fresh, "schedule for {id} diverged");
        }
        // And schedule_program agrees with the stats-returning variant.
        assert_eq!(schedule_program(&p, &spec()), map);
    }

    #[test]
    fn schedules_respect_shared_memory_cap() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4096, 4096]), DType::F32);
        let b = p.add_weight("B", Shape::new(vec![4096, 4096]), DType::F32);
        let _ = builders::matmul(&mut p, "mm", a, b);
        let s = auto_schedule(&p, TeId(0), &spec());
        assert!(s.shared_mem_bytes <= spec().shared_mem_per_block_max);
    }
}
