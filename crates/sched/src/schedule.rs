//! Schedules: the tiling/binding decisions Ansor-lite produces per TE.

use souffle_te::TeId;
use std::fmt;

/// Tiling of one iteration-space dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileDim {
    /// Extent of the dimension.
    pub extent: i64,
    /// Tile size assigned to one thread block (≤ extent).
    pub tile: i64,
}

impl TileDim {
    /// Number of tiles (blocks along this dimension).
    pub fn num_tiles(&self) -> i64 {
        (self.extent + self.tile - 1) / self.tile
    }
}

/// A schedule for one TE: the result of Ansor-lite's search, carrying
/// everything the partitioner (§5.4), schedule propagation (§6.3) and code
/// generation (§6.4) need.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// The TE this schedule belongs to.
    pub te: TeId,
    /// Tiling of each output dimension (the `split` factors).
    pub output_tiles: Vec<TileDim>,
    /// Tiling of each reduction dimension (`tile_k`); the whole extent when
    /// the reduction is kept inside one block.
    pub reduce_tiles: Vec<TileDim>,
    /// Thread-block grid size (kernel launch dimension).
    pub grid_blocks: u64,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Shared memory per block in bytes (operand staging buffers).
    pub shared_mem_bytes: u64,
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// Whether the inner loop maps onto tensor-core WMMA.
    pub use_tensor_core: bool,
    /// Whether the reduction is split across blocks (two-phase reduction
    /// finishing with atomics, §2.3). Always `false` for TEs without
    /// reduction axes.
    pub cross_block_reduction: bool,
    /// Analytical time estimate used during search, in seconds.
    pub estimated_time_s: f64,
}

impl Schedule {
    /// Elements of the output computed by one block.
    pub fn block_output_elems(&self) -> i64 {
        self.output_tiles.iter().map(|t| t.tile).product()
    }

    /// Total number of output elements.
    pub fn output_elems(&self) -> i64 {
        self.output_tiles.iter().map(|t| t.extent).product()
    }

    /// A trivial one-thread-per-element schedule for an element-wise TE,
    /// used as the fallback when search is skipped.
    pub fn elementwise(te: TeId, extents: &[i64]) -> Schedule {
        let n: i64 = extents.iter().product();
        let threads = 256u32;
        let grid = ((n + threads as i64 - 1) / threads as i64).max(1) as u64;
        Schedule {
            te,
            output_tiles: extents
                .iter()
                .map(|&e| TileDim {
                    extent: e,
                    tile: e.min(256),
                })
                .collect(),
            reduce_tiles: vec![],
            grid_blocks: grid,
            threads_per_block: threads,
            shared_mem_bytes: 0,
            regs_per_thread: 32,
            use_tensor_core: false,
            cross_block_reduction: false,
            estimated_time_s: 0.0,
        }
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: grid={} threads={} smem={}B regs={} tiles=[",
            self.te,
            self.grid_blocks,
            self.threads_per_block,
            self.shared_mem_bytes,
            self.regs_per_thread
        )?;
        for (i, t) in self.output_tiles.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}/{}", t.tile, t.extent)?;
        }
        write!(f, "]")?;
        if self.use_tensor_core {
            write!(f, " wmma")?;
        }
        if self.cross_block_reduction {
            write!(f, " atomic-reduce")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_dim_counts_tiles() {
        assert_eq!(
            TileDim {
                extent: 64,
                tile: 16
            }
            .num_tiles(),
            4
        );
        assert_eq!(
            TileDim {
                extent: 65,
                tile: 16
            }
            .num_tiles(),
            5
        );
        assert_eq!(
            TileDim {
                extent: 8,
                tile: 16
            }
            .num_tiles(),
            1
        );
    }

    #[test]
    fn elementwise_schedule_covers_space() {
        let s = Schedule::elementwise(TeId(0), &[64, 64]);
        assert_eq!(s.output_elems(), 4096);
        assert_eq!(s.grid_blocks, 16);
        assert!(!s.cross_block_reduction);
    }

    #[test]
    fn display_mentions_grid() {
        let s = Schedule::elementwise(TeId(3), &[10]);
        assert!(s.to_string().contains("grid="));
    }
}
