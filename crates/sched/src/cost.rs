//! Roofline-style analytical cost model shared by Ansor-lite and the
//! baseline strategies.

use crate::{GpuSpec, Schedule};
use souffle_te::{TeId, TeProgram};

/// Achieved fraction of peak compute for generated (non-hand-tuned) code.
pub const COMPUTE_EFFICIENCY: f64 = 0.55;
/// Achieved fraction of peak DRAM bandwidth.
pub const MEMORY_EFFICIENCY: f64 = 0.80;

/// Per-operand footprint (elements) of a TE's accesses over a box of
/// variable bounds (`bounds[i] = extent of variable i`; iteration variables
/// first, then reduction variables). Multiple accesses to the same operand
/// count once with the largest footprint (they overlap in practice —
/// spatial reuse inside a block).
pub fn operand_footprints(program: &TeProgram, te: TeId, bounds: &[i64]) -> Vec<(usize, i64)> {
    let te_ref = program.te(te);
    let mut pairs: Vec<(i64, i64)> = bounds.iter().map(|&b| (0, b - 1)).collect();
    // Inline-fold binders (reduction fusion) live above the iteration and
    // reduction variables; give them their full extents so a fold body's
    // accesses are priced like the reduction they replaced.
    if let Some(max_var) = te_ref.body.max_var() {
        if pairs.len() <= max_var {
            pairs.resize(max_var + 1, (0, 0));
        }
    }
    for (var, extent) in te_ref.body.collect_folds() {
        pairs[var] = (0, (extent - 1).max(0));
    }
    let mut per_operand: Vec<(usize, i64)> = Vec::new();
    for (operand, indices) in te_ref.body.accesses() {
        let shape = &program.tensor(te_ref.inputs[operand]).shape;
        let mut elems = 1i64;
        for (axis, idx) in indices.iter().enumerate() {
            let (lo, hi) = idx.interval(&pairs);
            // Clamp to the tensor: guarded accesses may range outside.
            let lo = lo.max(0);
            let hi = hi.min(shape.dim(axis) - 1);
            elems = elems.saturating_mul((hi - lo + 1).max(0));
        }
        match per_operand.iter_mut().find(|(o, _)| *o == operand) {
            Some((_, e)) => *e = (*e).max(elems),
            None => per_operand.push((operand, elems)),
        }
    }
    per_operand
}

/// Global-memory traffic of running a TE as its own unfused kernel:
/// `(read_bytes, write_bytes)`, assuming perfect caching inside the kernel
/// (each touched input element is read from DRAM once, plus one write per
/// output element).
pub fn te_global_bytes(program: &TeProgram, te: TeId) -> (u64, u64) {
    let te_ref = program.te(te);
    let out_shape = program.output_shape(te).clone();
    let mut bounds: Vec<i64> = out_shape.dims().to_vec();
    bounds.extend_from_slice(&te_ref.reduce);
    let reads: u64 = operand_footprints(program, te, &bounds)
        .into_iter()
        .map(|(operand, elems)| {
            let t = program.tensor(te_ref.inputs[operand]);
            (elems.min(t.shape.numel()) as u64) * t.dtype.size_bytes()
        })
        .sum();
    let out = program.tensor(te_ref.output);
    let writes = out.shape.numel() as u64 * out.dtype.size_bytes();
    (reads, writes)
}

/// Roofline time estimate for a TE executed under `schedule` as (part of) a
/// kernel: `max(compute time, memory time)` with empirically calibrated
/// efficiencies. Launch overhead is *not* included — kernel-level costs are
/// accounted by the simulator, which knows how many TEs share a kernel.
pub fn te_time_estimate(program: &TeProgram, te: TeId, schedule: &Schedule, spec: &GpuSpec) -> f64 {
    let te_ref = program.te(te);
    let out_shape = program.output_shape(te).clone();
    let flops = te_ref.flops(&out_shape) as f64;
    let peak = spec.peak_flops(schedule.use_tensor_core) * COMPUTE_EFFICIENCY;
    let compute_time = flops / peak;

    // Per-block traffic: footprint over the block's tile (full reduction
    // extent — a block eventually streams the whole reduced region).
    let mut tile_bounds: Vec<i64> = schedule.output_tiles.iter().map(|t| t.tile).collect();
    tile_bounds.extend(te_ref.reduce.iter().copied());
    let per_block_reads: u64 = operand_footprints(program, te, &tile_bounds)
        .into_iter()
        .map(|(operand, elems)| {
            let t = program.tensor(te_ref.inputs[operand]);
            elems as u64 * t.dtype.size_bytes()
        })
        .sum();
    let blocks: i64 = schedule
        .output_tiles
        .iter()
        .map(TileDimExt::num_tiles)
        .product();
    let out = program.tensor(te_ref.output);
    let write_bytes = out.shape.numel() as u64 * out.dtype.size_bytes();
    let read_bytes = per_block_reads.saturating_mul(blocks.max(1) as u64);
    let mem_time =
        (read_bytes + write_bytes) as f64 / (spec.global_bw_bytes_per_s * MEMORY_EFFICIENCY);

    // Waves: blocks beyond one wave serialize.
    let wave_cap = spec
        .max_blocks_per_wave(
            schedule.threads_per_block,
            schedule.shared_mem_bytes,
            schedule.regs_per_thread,
        )
        .max(1);
    let waves = schedule.grid_blocks.div_ceil(wave_cap).max(1) as f64;
    // A small per-wave scheduling cost keeps absurdly tiny tiles from
    // looking free.
    let wave_overhead = (waves - 1.0) * 0.2e-6;

    compute_time.max(mem_time) + wave_overhead
}

/// Internal helper trait so `cost` does not depend on schedule internals.
trait TileDimExt {
    fn num_tiles(&self) -> i64;
}

impl TileDimExt for crate::TileDim {
    fn num_tiles(&self) -> i64 {
        crate::TileDim::num_tiles(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use souffle_te::builders;
    use souffle_tensor::{DType, Shape};

    fn gemm_program(m: i64, k: i64, n: i64, dtype: DType) -> (TeProgram, TeId) {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![m, k]), dtype);
        let b = p.add_weight("B", Shape::new(vec![k, n]), dtype);
        let _ = builders::matmul(&mut p, "mm", a, b);
        (p, TeId(0))
    }

    #[test]
    fn unfused_bytes_count_operands_and_output() {
        let (p, te) = gemm_program(64, 64, 64, DType::F32);
        let (r, w) = te_global_bytes(&p, te);
        assert_eq!(r, 2 * 64 * 64 * 4);
        assert_eq!(w, 64 * 64 * 4);
    }

    #[test]
    fn f16_halves_traffic() {
        let (p32, te) = gemm_program(64, 64, 64, DType::F32);
        let (p16, _) = gemm_program(64, 64, 64, DType::F16);
        let (r32, _) = te_global_bytes(&p32, te);
        let (r16, _) = te_global_bytes(&p16, te);
        assert_eq!(r32, 2 * r16);
    }

    #[test]
    fn elementwise_footprint_matches_tensor() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![128]), DType::F32);
        let _ = builders::exp(&mut p, "e", a);
        let (r, w) = te_global_bytes(&p, TeId(0));
        assert_eq!(r, 128 * 4);
        assert_eq!(w, 128 * 4);
    }

    #[test]
    fn sliced_access_reads_less_than_whole_tensor() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![128]), DType::F32);
        let _ = builders::strided_slice(&mut p, "s", a, 0, 0, 1, 32);
        let (r, _) = te_global_bytes(&p, TeId(0));
        assert_eq!(r, 32 * 4);
    }

    #[test]
    fn time_estimate_positive_and_bandwidth_bound_for_elementwise() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![1 << 20]), DType::F32);
        let _ = builders::exp(&mut p, "e", a);
        let spec = GpuSpec::a100();
        let s = Schedule::elementwise(TeId(0), &[1 << 20]);
        let t = te_time_estimate(&p, TeId(0), &s, &spec);
        let min_mem = (2.0 * (1 << 20) as f64 * 4.0) / spec.global_bw_bytes_per_s;
        assert!(t >= min_mem, "estimate {t} below raw DRAM time {min_mem}");
        assert!(t < 1e-3);
    }

    #[test]
    fn larger_tiles_reduce_gemm_traffic_time() {
        use crate::TileDim;
        let (p, te) = gemm_program(1024, 1024, 1024, DType::F16);
        let spec = GpuSpec::a100();
        let mk = |tile: i64| Schedule {
            te,
            output_tiles: vec![
                TileDim { extent: 1024, tile },
                TileDim { extent: 1024, tile },
            ],
            reduce_tiles: vec![TileDim {
                extent: 1024,
                tile: 32,
            }],
            grid_blocks: ((1024 / tile) * (1024 / tile)) as u64,
            threads_per_block: 128,
            shared_mem_bytes: 16 * 1024,
            regs_per_thread: 64,
            use_tensor_core: true,
            cross_block_reduction: false,
            estimated_time_s: 0.0,
        };
        let t_small = te_time_estimate(&p, te, &mk(16), &spec);
        let t_large = te_time_estimate(&p, te, &mk(128), &spec);
        assert!(
            t_large < t_small,
            "128-tiles ({t_large}) should beat 16-tiles ({t_small})"
        );
    }
}
