//! GPU device description used by the scheduler, partitioner and simulator.

use std::fmt;

/// Static description of the simulated GPU.
///
/// Defaults follow the paper's evaluation platform: a 40 GB NVIDIA A100
/// (108 SMs, ~1.56 TB/s HBM2, 19.5 TFLOP/s FP32, 312 TFLOP/s FP16 tensor
/// cores, ~2 µs kernel-launch overhead per §8.3).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, for reports.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: u64,
    /// Maximum shared memory one block may allocate.
    pub shared_mem_per_block_max: u64,
    /// 32-bit registers per SM.
    pub registers_per_sm: u64,
    /// Global-memory bandwidth in bytes/second.
    pub global_bw_bytes_per_s: f64,
    /// FP32 FMA throughput in FLOP/s.
    pub fp32_flops: f64,
    /// FP16 tensor-core throughput in FLOP/s.
    pub fp16_tensor_flops: f64,
    /// Host-side overhead of one kernel launch, in seconds (§8.3: ≈2 µs).
    pub kernel_launch_overhead_s: f64,
    /// Cost of one grid-wide synchronization (cooperative groups), in
    /// seconds. Much cheaper than a kernel launch, which is what makes the
    /// paper's single-kernel strategy win.
    pub grid_sync_overhead_s: f64,
    /// Cost of a block-wide barrier, in seconds.
    pub block_sync_overhead_s: f64,
}

impl GpuSpec {
    /// The evaluation platform of the paper: NVIDIA A100-40GB (SXM).
    pub fn a100() -> Self {
        GpuSpec {
            name: "NVIDIA A100-SXM4-40GB (simulated)".to_string(),
            num_sms: 108,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            shared_mem_per_sm: 164 * 1024,
            shared_mem_per_block_max: 48 * 1024,
            registers_per_sm: 65_536,
            global_bw_bytes_per_s: 1.555e12,
            fp32_flops: 19.5e12,
            fp16_tensor_flops: 312e12,
            kernel_launch_overhead_s: 2.0e-6,
            grid_sync_overhead_s: 0.25e-6,
            block_sync_overhead_s: 0.02e-6,
        }
    }

    /// How many blocks of the given footprint can be resident on the whole
    /// device at once — the paper's "max blocks per wave" that bounds grid
    /// synchronization (§5.4).
    ///
    /// A zero result is clamped to `num_sms` lower bound of 0 blocks per SM
    /// being impossible: if a single block exceeds per-SM resources the
    /// schedule is infeasible and the caller must reject it, so 0 is
    /// returned in that case.
    pub fn max_blocks_per_wave(
        &self,
        threads_per_block: u32,
        shared_mem_bytes: u64,
        regs_per_thread: u32,
    ) -> u64 {
        if threads_per_block == 0 {
            return 0;
        }
        let by_threads = (self.max_threads_per_sm / threads_per_block.max(1)) as u64;
        let by_blocks = self.max_blocks_per_sm as u64;
        let by_smem = self
            .shared_mem_per_sm
            .checked_div(shared_mem_bytes)
            .unwrap_or(u64::MAX);
        let regs_per_block = regs_per_thread as u64 * threads_per_block as u64;
        let by_regs = self
            .registers_per_sm
            .checked_div(regs_per_block)
            .unwrap_or(u64::MAX);
        let per_sm = by_threads.min(by_blocks).min(by_smem).min(by_regs);
        per_sm * self.num_sms as u64
    }

    /// Fraction of per-SM resources one block occupies (the paper's
    /// `max_occ` term in the partitioning constraint `max_grid * max_occ < C`).
    pub fn occupancy_fraction(
        &self,
        threads_per_block: u32,
        shared_mem_bytes: u64,
        regs_per_thread: u32,
    ) -> f64 {
        let t = threads_per_block as f64 / self.max_threads_per_sm as f64;
        let s = shared_mem_bytes as f64 / self.shared_mem_per_sm as f64;
        let r = (regs_per_thread as u64 * threads_per_block as u64) as f64
            / self.registers_per_sm as f64;
        t.max(s).max(r)
    }

    /// Effective peak FLOP/s for a body, given tensor-core eligibility.
    pub fn peak_flops(&self, tensor_core: bool) -> f64 {
        if tensor_core {
            self.fp16_tensor_flops
        } else {
            self.fp32_flops
        }
    }
}

impl fmt::Display for GpuSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} SMs, {:.0} GB/s, {:.1}/{:.0} TFLOPS fp32/fp16tc)",
            self.name,
            self.num_sms,
            self.global_bw_bytes_per_s / 1e9,
            self.fp32_flops / 1e12,
            self.fp16_tensor_flops / 1e12,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_constants_sane() {
        let g = GpuSpec::a100();
        assert_eq!(g.num_sms, 108);
        assert!(g.fp16_tensor_flops > g.fp32_flops);
        assert!(g.kernel_launch_overhead_s > g.grid_sync_overhead_s);
    }

    #[test]
    fn wave_limit_by_threads() {
        let g = GpuSpec::a100();
        // 1024-thread blocks, no smem/regs pressure: 2 blocks/SM.
        assert_eq!(g.max_blocks_per_wave(1024, 0, 0), 2 * 108);
    }

    #[test]
    fn wave_limit_by_shared_memory() {
        let g = GpuSpec::a100();
        // 41 KB blocks: floor(164/41) = 4 per SM.
        assert_eq!(g.max_blocks_per_wave(64, 41 * 1024, 16), 4 * 108);
    }

    #[test]
    fn wave_limit_by_registers() {
        let g = GpuSpec::a100();
        // 256 threads * 128 regs = 32768 regs per block -> 2 per SM.
        assert_eq!(g.max_blocks_per_wave(256, 0, 128), 2 * 108);
    }

    #[test]
    fn wave_limit_zero_threads_is_zero() {
        assert_eq!(GpuSpec::a100().max_blocks_per_wave(0, 0, 0), 0);
    }

    #[test]
    fn occupancy_fraction_takes_max_pressure() {
        let g = GpuSpec::a100();
        let f = g.occupancy_fraction(256, 82 * 1024, 32);
        assert!((f - 0.5).abs() < 1e-9, "smem should dominate, got {f}");
    }

    #[test]
    fn peak_flops_selects_pipeline() {
        let g = GpuSpec::a100();
        assert_eq!(g.peak_flops(true), g.fp16_tensor_flops);
        assert_eq!(g.peak_flops(false), g.fp32_flops);
    }

    #[test]
    fn display_nonempty() {
        assert!(GpuSpec::a100().to_string().contains("A100"));
    }
}
