//! Analytical occupancy estimation (§9, "Cost model for TE program
//! partitioning").
//!
//! The paper extracts launch dimensions and register/shared-memory
//! occupancy by compiling the raw TE program and notes that "this can be
//! improved by building a cost model to estimate occupancy from the TE
//! program". This module is that improvement: a closed-form predictor of
//! the resources Ansor-lite's search will assign, usable by the
//! partitioner to avoid scheduling TEs it will immediately re-schedule.

use crate::GpuSpec;
use souffle_te::{TeId, TeProgram};

/// Predicted resource envelope of a TE's eventual schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancyEstimate {
    /// Predicted thread-block count.
    pub grid_blocks: u64,
    /// Predicted threads per block.
    pub threads_per_block: u32,
    /// Predicted shared memory per block (bytes).
    pub shared_mem_bytes: u64,
    /// Predicted registers per thread.
    pub regs_per_thread: u32,
}

impl OccupancyEstimate {
    /// Max blocks per wave under this estimate.
    pub fn max_blocks_per_wave(&self, spec: &GpuSpec) -> u64 {
        spec.max_blocks_per_wave(
            self.threads_per_block,
            self.shared_mem_bytes,
            self.regs_per_thread,
        )
    }
}

/// Predicts the schedule resources of a TE without running the search.
///
/// Element-wise TEs map to flat 256-thread blocks. Reduction TEs are
/// assumed to take a square-ish tile of ~`TILE` output elements per block
/// with double-buffered operand staging over a bounded k-chunk — the same
/// shape the search converges to.
pub fn estimate_occupancy(program: &TeProgram, te: TeId) -> OccupancyEstimate {
    let te_ref = program.te(te);
    let shape = program.output_shape(te);
    let out_elems = shape.numel();
    if !te_ref.is_reduction() {
        let threads = 256u32;
        return OccupancyEstimate {
            grid_blocks: ((out_elems + 255) / 256).max(1) as u64,
            threads_per_block: threads,
            shared_mem_bytes: 0,
            regs_per_thread: 32,
        };
    }
    // Reduction: tile ~4096 output elements per block (64x64 on matrices),
    // but never more than the output itself.
    const TILE: i64 = 4096;
    let tile = out_elems.min(TILE);
    let grid = ((out_elems + tile - 1) / tile).max(1) as u64;
    let dtype = program.tensor(te_ref.output).dtype;
    // Staging: each operand contributes roughly tile-side * k-chunk
    // elements; approximate with 2 operands x sqrt(tile) x 32, double
    // buffered, plus the accumulator tile.
    let side = (tile as f64).sqrt().ceil() as i64;
    let k_chunk = te_ref.reduce.iter().product::<i64>().min(32);
    let smem_elems = 2 * (2 * side * k_chunk + tile);
    let smem = (smem_elems as u64) * dtype.size_bytes();
    let tensor_core = dtype.tensor_core_eligible();
    OccupancyEstimate {
        grid_blocks: grid,
        threads_per_block: if tensor_core { 128 } else { 256 },
        shared_mem_bytes: smem.min(48 * 1024),
        regs_per_thread: 64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{auto_schedule, GpuSpec};
    use souffle_te::builders;
    use souffle_tensor::{DType, Shape};

    #[test]
    fn elementwise_estimate_matches_search_exactly() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![100_000]), DType::F32);
        let _ = builders::relu(&mut p, "r", a);
        let est = estimate_occupancy(&p, TeId(0));
        let sch = auto_schedule(&p, TeId(0), &GpuSpec::a100());
        assert_eq!(est.grid_blocks, sch.grid_blocks);
        assert_eq!(est.threads_per_block, sch.threads_per_block);
        assert_eq!(est.shared_mem_bytes, sch.shared_mem_bytes);
    }

    #[test]
    fn gemm_estimate_is_in_the_searchs_ballpark() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![1024, 1024]), DType::F16);
        let b = p.add_weight("B", Shape::new(vec![1024, 1024]), DType::F16);
        let _ = builders::matmul(&mut p, "mm", a, b);
        let spec = GpuSpec::a100();
        let est = estimate_occupancy(&p, TeId(0));
        let sch = auto_schedule(&p, TeId(0), &spec);
        // Within 8x on grid and shared memory: good enough for the
        // partitioner's feasibility check.
        let ratio = est.grid_blocks as f64 / sch.grid_blocks as f64;
        assert!(
            (0.125..=8.0).contains(&ratio),
            "grid estimate {} vs search {}",
            est.grid_blocks,
            sch.grid_blocks
        );
        assert!(est.shared_mem_bytes <= spec.shared_mem_per_block_max);
        // Both must agree on wave feasibility direction for this size.
        let est_wave = est.max_blocks_per_wave(&spec);
        assert!(est_wave > 0);
    }

    #[test]
    fn estimate_never_exceeds_device_limits() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4096, 4096]), DType::F32);
        let b = p.add_weight("B", Shape::new(vec![4096, 4096]), DType::F32);
        let _ = builders::matmul(&mut p, "mm", a, b);
        let spec = GpuSpec::a100();
        let est = estimate_occupancy(&p, TeId(0));
        assert!(est.shared_mem_bytes <= spec.shared_mem_per_block_max);
        assert!(est.threads_per_block <= spec.max_threads_per_sm);
    }
}
