//! End-to-end test of `souffle-cli --trace-out`: the shipped binary must
//! emit a valid Chrome trace_event JSON file whose span structure matches
//! the golden compile/eval shape (stage spans under `compile`, wavefront
//! levels under `eval`).

use souffle::trace::chrome;
use souffle::trace::json::{self, Value};
use std::path::PathBuf;
use std::process::Command;

fn run_cli(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_souffle-cli"))
        .args(args)
        .output()
        .expect("run souffle-cli")
}

fn event_names(doc: &str) -> Vec<String> {
    let root = json::parse(doc).expect("parse trace");
    root.get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array")
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .map(|e| e.get("name").and_then(Value::as_str).unwrap().to_string())
        .collect()
}

#[test]
fn trace_out_emits_valid_chrome_trace_with_golden_shape() {
    let path: PathBuf =
        std::env::temp_dir().join(format!("souffle-cli-trace-{}.json", std::process::id()));
    let out = run_cli(&["lstm", "--tiny", "--trace-out", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "cli failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&path).expect("trace file written");
    let _ = std::fs::remove_file(&path);

    let stats = chrome::validate(&doc).expect("valid Chrome trace JSON");
    assert!(stats.complete_events > 10, "{stats:?}");
    assert!(stats.metadata_events >= 1, "{stats:?}");

    // Golden shape: the pipeline stage spans appear in order under
    // `compile`, then the runtime's wavefront spans.
    let names = event_names(&doc);
    let pos = |n: &str| {
        names
            .iter()
            .position(|x| x == n)
            .unwrap_or_else(|| panic!("missing span `{n}` in {names:?}"))
    };
    let compile = pos("compile");
    let analysis = pos("analysis");
    let lower = pos("lower");
    let eval = pos("eval");
    let level0 = pos("level:0");
    assert!(compile < analysis && analysis < lower && lower < eval && eval < level0);
    assert!(
        names.iter().any(|n| n.starts_with("te:")),
        "no per-TE spans in {names:?}"
    );
    // Spans are recorded in creation order; Chrome events preserve it, so
    // sub-analysis passes sit between `analysis` and `lower`.
    let sched = pos("analysis:schedule");
    assert!(analysis < sched && sched < lower);
}

#[test]
fn trace_out_rejects_missing_path() {
    let out = run_cli(&["lstm", "--tiny", "--trace-out"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--trace-out expects a file path"), "{err}");
}
