//! Plain-text report formatting shared by the benchmark binaries.

/// A simple fixed-width table printer for the experiment binaries, so
/// every table/figure reproduction prints in the same aligned format.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("  {cell:>w$}"));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a duration in the unit the paper uses for the experiment.
pub fn fmt_ms(seconds: f64) -> String {
    format!("{:.3}", seconds * 1e3)
}

/// Formats a time in microseconds.
pub fn fmt_us(seconds: f64) -> String {
    format!("{:.2}", seconds * 1e6)
}

/// Formats bytes in megabytes with one decimal.
pub fn fmt_mb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["Model", "ms"]);
        t.row(vec!["BERT".into(), "1.22".into()]);
        t.row(vec!["ResNeXt-101".into(), "4.43".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("BERT"));
        assert!(s.lines().count() >= 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ms(0.001234), "1.234");
        assert_eq!(fmt_us(62.34e-6), "62.34");
        assert_eq!(fmt_mb(16_520_000), "16.5");
    }
}
