//! The end-to-end compilation pipeline.

use crate::SouffleOptions;
use souffle_analysis::AnalysisResult;
use souffle_baselines::{AnsorStrategy, Strategy, StrategyContext};
use souffle_gpusim::{simulate, ModelProfile, SimConfig};
use souffle_kernel::passes::{pipeline_pass, tensor_reuse_pass, PipelineStats, ReuseStats};
use souffle_kernel::{lower_partition, Kernel, LowerOptions};
use souffle_te::interp::{eval_program, EvalError};
use souffle_te::RewriteLog;
use souffle_te::{
    compile_program, CompiledProgram, Evaluator, ExecPlan, Runtime, RuntimeOptions, TeProgram,
    TensorId,
};
use souffle_tensor::Tensor;
use souffle_trace::{SpanId, Tracer};
use souffle_transform::{
    horizontal_fuse_program_logged, reduction_fuse_program_logged, vertical_fuse_program_logged,
    FusionStats, TransformStats,
};
use souffle_verify::{Certificate, Diagnostics};
use std::collections::HashMap;
use std::collections::HashSet;
use std::sync::OnceLock;
use std::time::Duration;

/// Timing and statistics of one compilation (§8.5's overhead study).
#[derive(Debug, Clone, Default)]
pub struct CompileStats {
    /// Horizontal + vertical transformation statistics.
    pub transform: TransformStats,
    /// Reduction-fusion stage counters (`fusion.*` on the trace spine):
    /// candidates, commits, cost rejections, and modeled bytes saved.
    pub fusion: FusionStats,
    /// LRU tensor-reuse pass statistics, summed over kernels.
    pub reuse: ReuseStats,
    /// Pipelining pass statistics, summed over kernels.
    pub pipeline: PipelineStats,
    /// Wall time of global analysis (dependence, classification,
    /// schedules, partitioning).
    pub analysis_time: Duration,
    /// Wall time of TE transformations.
    pub transform_time: Duration,
    /// Wall time of lowering + subprogram optimization.
    pub codegen_time: Duration,
    /// Wall time of the static verifier across all pipeline stages
    /// (zero when [`crate::SouffleOptions::verify`] is off).
    pub verify_time: Duration,
    /// Wall time of per-stage translation validation (zero when
    /// certification is off — see [`crate::SouffleOptions::certify`]).
    pub certify_time: Duration,
}

impl CompileStats {
    /// Total compilation wall time.
    pub fn total_time(&self) -> Duration {
        self.analysis_time
            + self.transform_time
            + self.codegen_time
            + self.verify_time
            + self.certify_time
    }
}

/// The result of compiling a model with Souffle.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The (possibly transformed) TE program that was lowered.
    pub program: TeProgram,
    /// Global analysis results for that program.
    pub analysis: AnalysisResult,
    /// Generated kernels in launch order.
    pub kernels: Vec<Kernel>,
    /// Compilation statistics.
    pub stats: CompileStats,
    /// Warning-severity verifier findings accumulated across pipeline
    /// stages (empty when verification is off). Errors never land here —
    /// they abort compilation.
    pub diagnostics: Diagnostics,
    /// Per-stage translation-validation certificates, in pipeline order
    /// (empty when certification is off). Each records what the certifier
    /// proved about that stage's rewrite.
    pub certificates: Vec<Certificate>,
}

impl Compiled {
    /// Number of kernels one inference launches.
    pub fn num_kernels(&self) -> usize {
        self.kernels.len()
    }

    /// Renders the generated kernels as CUDA-like source (the back-end
    /// code-generation stage, Fig. 2's `Fn_TE_Subprogram_0`).
    pub fn emit_cuda(&self) -> String {
        souffle_kernel::codegen::emit_model(&self.program, &self.kernels)
    }
}

/// Span names the pipeline records per compile, queried to derive
/// [`CompileStats`] durations (see DESIGN.md "Trace schema").
const VERIFY_SPANS: [&str; 6] = [
    "verify:frontend",
    "verify:horizontal",
    "verify:vertical",
    "verify:reduction-fusion",
    "verify:schedule-merge",
    "verify:kernel-lowering",
];

/// Translation-validation spans, one per certified stage (see
/// DESIGN.md "Translation validation").
const CERTIFY_SPANS: [&str; 4] = [
    "verify:certify:horizontal",
    "verify:certify:vertical",
    "verify:certify:reduction-fusion",
    "verify:certify:schedule-merge",
];

/// Pre-compile snapshot of per-span-name totals on a (possibly shared)
/// tracer, so one compile's stage durations can be extracted by delta even
/// when the same tracer has recorded earlier compiles or evals.
struct StageBaseline {
    base: HashMap<&'static str, u64>,
}

impl StageBaseline {
    const STAT_SPANS: [&'static str; 6] = [
        "analysis",
        "transform:horizontal",
        "transform:vertical",
        "transform:reduction",
        "lower",
        "subprogram-opt",
    ];

    fn capture(tracer: &Tracer) -> StageBaseline {
        let mut base = HashMap::new();
        for name in Self::STAT_SPANS
            .into_iter()
            .chain(VERIFY_SPANS)
            .chain(CERTIFY_SPANS)
        {
            base.insert(name, tracer.span_duration_ns(name));
        }
        StageBaseline { base }
    }

    /// Nanoseconds recorded under `names` since the capture.
    fn delta(&self, tracer: &Tracer, names: &[&'static str]) -> Duration {
        let ns: u64 = names
            .iter()
            .map(|n| tracer.span_duration_ns(n).saturating_sub(self.base[n]))
            .sum();
        Duration::from_nanos(ns)
    }
}

/// The Souffle compiler.
#[derive(Debug, Default)]
pub struct Souffle {
    options: SouffleOptions,
    /// Lazily created evaluation runtime (persistent work-stealing pool +
    /// buffer arena), shared by every `eval_reference` call on this
    /// compiler so pool threads and arena buffers are reused across
    /// inferences.
    runtime: OnceLock<Runtime>,
    /// Tracing sink for compile + eval instrumentation; disabled (free)
    /// unless installed via [`Souffle::with_tracer`] /
    /// [`Souffle::set_tracer`].
    tracer: Tracer,
}

impl Clone for Souffle {
    fn clone(&self) -> Self {
        // The runtime is per-instance state (pool threads, arena
        // buffers); a clone starts fresh and builds its own on first use.
        // The tracer clone feeds the same trace as the original.
        Souffle {
            options: self.options.clone(),
            runtime: OnceLock::new(),
            tracer: self.tracer.clone(),
        }
    }
}

impl Souffle {
    /// Creates a compiler with the given options.
    pub fn new(options: SouffleOptions) -> Self {
        Souffle {
            options,
            runtime: OnceLock::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Builder-style [`Souffle::set_tracer`].
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.set_tracer(tracer);
        self
    }

    /// Installs a tracing sink. Every subsequent compile records
    /// `compile`/`verify:*`/`analysis:*`/`lower` spans into it, and every
    /// eval records `eval`/`level:*`/`te:*` spans plus `arena.*`/`pool.*`
    /// counters. Pass [`Tracer::disabled`] to turn tracing back off.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The installed tracing sink (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The active options.
    pub fn options(&self) -> &SouffleOptions {
        &self.options
    }

    /// The evaluation runtime, created on first use from
    /// [`SouffleOptions::eval_threads`] / [`SouffleOptions::eval_arena`]
    /// and then persistent for the lifetime of this compiler.
    pub fn runtime(&self) -> &Runtime {
        self.runtime.get_or_init(|| {
            Runtime::with_options(RuntimeOptions {
                threads: self.options.eval_threads,
                arena: self.options.eval_arena,
                // An explicit thread request pins the cap (tests exercise
                // pools on narrow machines); the default adapts to the
                // machine and falls back to inline execution.
                max_parallelism: self.options.eval_threads,
                kernel_tier: self.options.kernel_tier,
                fast_math: self.options.fast_math,
            })
        })
    }

    /// Builds the wavefront execution plan for a compiled model from the
    /// global analysis: dependence-graph wavefronts give the levels, and
    /// the liveness pass gives each intermediate's last use (which keys
    /// the arena's buffer recycling). The plan constructor revalidates
    /// both against the program's def-use edges.
    fn exec_plan(compiled: &Compiled, cp: &CompiledProgram) -> ExecPlan {
        let mut level_of = vec![0usize; cp.tes().len()];
        for (lvl, wave) in compiled.analysis.wavefronts.iter().enumerate() {
            for te in wave {
                level_of[te.0] = lvl;
            }
        }
        let last_use: Vec<Option<usize>> = (0..compiled.program.num_tensors())
            .map(|i| {
                compiled
                    .analysis
                    .liveness
                    .get(&TensorId(i))
                    .and_then(|r| r.last_use)
            })
            .collect();
        ExecPlan::with_levels_and_last_use(cp, &level_of, &last_use)
    }

    /// Runs one verifier stage under a `verify:<stage>` span, accumulates
    /// warnings into `diags`, and fails with everything collected so far
    /// if the stage found errors. No-op when verification is disabled (no
    /// span is recorded, so `verify_time` stays zero).
    fn verify_stage(
        &self,
        tracer: &Tracer,
        parent: Option<SpanId>,
        diags: &mut Diagnostics,
        stage: &str,
        run: impl FnOnce() -> Diagnostics,
    ) -> Result<(), Diagnostics> {
        if !self.options.verify {
            return Ok(());
        }
        let _span = tracer.span_under(&format!("verify:{stage}"), parent);
        let found = run();
        let fail = found.has_errors();
        diags.merge(found);
        if fail {
            Err(std::mem::take(diags))
        } else {
            Ok(())
        }
    }

    /// Runs one translation-validation stage under a
    /// `verify:certify:<stage>` span: proves the stage's rewrite
    /// semantics-preserving, records the resulting [`Certificate`], and
    /// fails the compile on any unproven-equivalence error. Callers gate
    /// on [`crate::SouffleOptions::resolve_certify`].
    fn certify_stage(
        &self,
        tracer: &Tracer,
        parent: Option<SpanId>,
        diags: &mut Diagnostics,
        certs: &mut Vec<Certificate>,
        stage: &str,
        run: impl FnOnce() -> (Certificate, Diagnostics),
    ) -> Result<(), Diagnostics> {
        let _span = tracer.span_under(&format!("verify:certify:{stage}"), parent);
        let (cert, found) = run();
        let fail = found.has_errors();
        diags.merge(found);
        certs.push(cert);
        if fail {
            Err(std::mem::take(diags))
        } else {
            Ok(())
        }
    }

    /// Runs the full pipeline on a TE program, panicking if the static
    /// verifier rejects any stage's output. Use
    /// [`Souffle::compile_checked`] to receive the diagnostics instead.
    pub fn compile(&self, program: &TeProgram) -> Compiled {
        match self.compile_checked(program) {
            Ok(compiled) => compiled,
            Err(diags) => panic!("souffle-verify rejected the pipeline:\n{diags}"),
        }
    }

    /// Runs the full pipeline on a TE program, re-verifying the IR after
    /// every stage (frontend input, horizontal fusion, vertical fusion,
    /// schedule merging, kernel lowering) when
    /// [`crate::SouffleOptions::verify`] is set.
    ///
    /// # Errors
    ///
    /// Returns all diagnostics collected up to and including the first
    /// stage with an error-severity finding. Warnings alone never fail;
    /// they end up on [`Compiled::diagnostics`].
    pub fn compile_checked(&self, program: &TeProgram) -> Result<Compiled, Diagnostics> {
        // Stage timings come from trace spans (one mechanism for both
        // stats and tracing); when the user installed no tracer, a local
        // one records this compile only.
        let local;
        let tracer: &Tracer = if self.tracer.is_enabled() {
            &self.tracer
        } else {
            local = Tracer::new();
            &local
        };
        let baseline = StageBaseline::capture(tracer);
        let compile_span = tracer.span("compile");
        let root = compile_span.id();

        let mut stats = CompileStats::default();
        let mut diags = Diagnostics::new();
        let mut certs: Vec<Certificate> = Vec::new();
        let certify = self.options.resolve_certify();
        let spec = &self.options.spec;

        self.verify_stage(tracer, root, &mut diags, "frontend", || {
            souffle_verify::verify_program_stage(program, "frontend")
        })?;

        // --- Semantic-preserving TE transformations (§6.1, §6.2) ---
        let mut transformed = program.clone();
        if self.options.horizontal {
            let pre = certify.then(|| transformed.clone());
            let mut log = RewriteLog::new();
            let (p, s) = {
                let _span = tracer.span_under("transform:horizontal", root);
                horizontal_fuse_program_logged(&transformed, &mut log)
            };
            transformed = p;
            stats.transform.horizontal_groups = s.horizontal_groups;
            self.verify_stage(tracer, root, &mut diags, "horizontal", || {
                souffle_verify::verify_program_stage(&transformed, "horizontal")
            })?;
            if let Some(pre) = pre {
                self.certify_stage(tracer, root, &mut diags, &mut certs, "horizontal", || {
                    souffle_verify::certify_transform(&pre, &transformed, "horizontal", &log)
                })?;
            }
        }
        if self.options.vertical {
            let pre = certify.then(|| transformed.clone());
            let mut log = RewriteLog::new();
            let (p, s) = {
                let _span = tracer.span_under("transform:vertical", root);
                vertical_fuse_program_logged(&transformed, &mut log)
            };
            transformed = p;
            stats.transform.vertical_fused = s.vertical_fused;
            self.verify_stage(tracer, root, &mut diags, "vertical", || {
                souffle_verify::verify_program_stage(&transformed, "vertical")
            })?;
            if let Some(pre) = pre {
                self.certify_stage(tracer, root, &mut diags, &mut certs, "vertical", || {
                    souffle_verify::certify_transform(&pre, &transformed, "vertical", &log)
                })?;
            }
        }
        // --- Data-movement-aware reduction fusion (fold inlining) ---
        if self.options.vertical && self.options.resolve_reduction_fusion() {
            let pre = certify.then(|| transformed.clone());
            let mut log = RewriteLog::new();
            let (p, s) = {
                let _span = tracer.span_under("transform:reduction", root);
                reduction_fuse_program_logged(&transformed, &mut log)
            };
            transformed = p;
            stats.fusion = s;
            tracer.add("fusion.candidates", s.candidates as u64);
            tracer.add("fusion.fused", s.fused as u64);
            tracer.add("fusion.rejected_by_cost", s.rejected_by_cost as u64);
            tracer.add("fusion.bytes_saved", s.bytes_saved);
            self.verify_stage(tracer, root, &mut diags, "reduction-fusion", || {
                souffle_verify::verify_program_stage(&transformed, "reduction-fusion")
            })?;
            if let Some(pre) = pre {
                self.certify_stage(
                    tracer,
                    root,
                    &mut diags,
                    &mut certs,
                    "reduction-fusion",
                    || {
                        souffle_verify::certify_transform(
                            &pre,
                            &transformed,
                            "reduction-fusion",
                            &log,
                        )
                    },
                )?;
            }
        }
        stats.transform.tes_before = program.num_tes();
        stats.transform.tes_after = transformed.num_tes();

        // --- Global analysis + partitioning (§5) ---
        let analysis = AnalysisResult::analyze_traced(&transformed, spec, tracer, root);

        // --- Lowering (§6.4) + subprogram optimization (§6.5) ---
        let mut kernels = {
            let _span = tracer.span_under("lower", root);
            if self.options.global_sync {
                lower_partition(
                    &transformed,
                    &analysis.partition,
                    &analysis.schedules,
                    &analysis.classes,
                    LowerOptions::default(),
                )
            } else {
                // Without global sync, fall back to Ansor-style
                // epilogue-fused kernels over the transformed program
                // (the V0–V2 codegen).
                let ctx = StrategyContext::new(&transformed, spec);
                AnsorStrategy.compile(&ctx).kernels
            }
        };
        self.verify_stage(tracer, root, &mut diags, "schedule-merge", || {
            souffle_verify::verify_kernels_stage(&transformed, &kernels, "schedule-merge")
        })?;
        // Certify the merged schedules on the raw lowered streams — the
        // subprogram-opt passes below rewrite the instruction lists
        // (reuse elides loads) and are bytes-level, not dataflow-level.
        if certify {
            self.certify_stage(
                tracer,
                root,
                &mut diags,
                &mut certs,
                "schedule-merge",
                || souffle_verify::certify_schedule(&transformed, &kernels),
            )?;
        }
        if self.options.subprogram_opts {
            // Each block caches its tile of reused buffers; capacity
            // defaults to the device-wide shared memory.
            let cache = self
                .options
                .reuse_cache_bytes
                .unwrap_or(spec.num_sms as u64 * spec.shared_mem_per_sm);
            {
                let _span = tracer.span_under("subprogram-opt", root);
                for k in &mut kernels {
                    let r = tensor_reuse_pass(k, cache);
                    stats.reuse.loads_eliminated += r.loads_eliminated;
                    stats.reuse.bytes_saved += r.bytes_saved;
                    stats.reuse.bytes_spilled += r.bytes_spilled;
                    let p = pipeline_pass(k);
                    stats.pipeline.stages_pipelined += p.stages_pipelined;
                }
            }
            self.verify_stage(tracer, root, &mut diags, "kernel-lowering", || {
                souffle_verify::verify_kernels_stage(&transformed, &kernels, "kernel-lowering")
            })?;
        }
        drop(compile_span);
        stats.transform_time = baseline.delta(
            tracer,
            &[
                "transform:horizontal",
                "transform:vertical",
                "transform:reduction",
            ],
        );
        stats.analysis_time = baseline.delta(tracer, &["analysis"]);
        stats.codegen_time = baseline.delta(tracer, &["lower", "subprogram-opt"]);
        stats.verify_time = baseline.delta(tracer, &VERIFY_SPANS);
        stats.certify_time = baseline.delta(tracer, &CERTIFY_SPANS);

        Ok(Compiled {
            program: transformed,
            analysis,
            kernels,
            stats,
            diagnostics: diags,
            certificates: certs,
        })
    }

    /// Renders a human-readable compilation report: kernel/TE counts,
    /// per-stage timing (including verifier overhead), and the verifier's
    /// warnings deduplicated across stages (the same dead TE re-appears at
    /// every stage it survives).
    pub fn report(&self, compiled: &Compiled) -> String {
        use std::fmt::Write as _;
        let s = &compiled.stats;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "compiled {} TEs -> {} kernels",
            compiled.program.num_tes(),
            compiled.num_kernels()
        );
        // Static kernel-tier census: which TEs the compiled evaluator runs
        // through specialized native loops vs the bytecode VM (the
        // per-eval dispatch counts surface as `kernels.*` trace counters).
        let census = compile_program(&compiled.program).kernel_census();
        let _ = writeln!(
            out,
            "  kernel tier: {} specialized (copy_rows {}, ew_tile {}, row_dot {}, \
             slice_dot {}, slice_reduce {}), {} bytecode",
            census.specialized(),
            census.copy_rows,
            census.ew_tile,
            census.row_dot,
            census.slice_dot,
            census.slice_reduce,
            census.bytecode()
        );
        let f = &s.fusion;
        let _ = writeln!(
            out,
            "  reduction fusion: {} candidates, {} fused, {} rejected by cost, \
             {} modeled bytes saved",
            f.candidates, f.fused, f.rejected_by_cost, f.bytes_saved
        );
        let _ = writeln!(
            out,
            "  transform {:?}  analysis {:?}  codegen {:?}  verify {:?}  certify {:?}  \
             (total {:?})",
            s.transform_time,
            s.analysis_time,
            s.codegen_time,
            s.verify_time,
            s.certify_time,
            s.total_time()
        );
        for c in &compiled.certificates {
            let _ = writeln!(out, "  {c}");
        }
        let mut seen = HashSet::new();
        for d in compiled.diagnostics.warnings() {
            if seen.insert((d.code, d.loc.clone(), d.message.clone())) {
                let _ = writeln!(
                    out,
                    "  {}[{}] {}: {}",
                    d.severity(),
                    d.code,
                    d.loc,
                    d.message
                );
            }
        }
        if self.tracer.is_enabled() {
            let trace = self.tracer.snapshot();
            if !trace.spans.is_empty() {
                out.push_str("trace:\n");
                for line in trace.tree_report().lines() {
                    let _ = writeln!(out, "  {line}");
                }
            }
        }
        out
    }

    /// Executes a compiled model on the simulated A100.
    pub fn simulate(&self, compiled: &Compiled) -> ModelProfile {
        simulate(&compiled.kernels, &self.sim_config())
    }

    /// Numerically evaluates the compiled (transformed) TE program on
    /// `bindings` with the evaluator selected in the options — the naive
    /// interpreter for inspectable ground truth, or the compiled bytecode
    /// VM for speed. This is the reference semantics of the generated
    /// kernels: what the lowered code must compute.
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`] for missing/mis-shaped bindings or
    /// out-of-bounds reads.
    pub fn eval_reference(
        &self,
        compiled: &Compiled,
        bindings: &HashMap<TensorId, Tensor>,
    ) -> Result<HashMap<TensorId, Tensor>, EvalError> {
        match self.options.evaluator {
            Evaluator::Naive => eval_program(&compiled.program, bindings),
            Evaluator::Compiled => {
                let cp = compile_program(&compiled.program);
                let plan = Self::exec_plan(compiled, &cp);
                if self.tracer.is_enabled() {
                    let result = self.runtime().eval_keeping_intermediates_with_plan_traced(
                        &cp,
                        &plan,
                        bindings,
                        &self.tracer,
                        None,
                    );
                    self.record_runtime_counters();
                    result
                } else {
                    self.runtime()
                        .eval_keeping_intermediates_with_plan(&cp, &plan, bindings)
                }
            }
        }
    }

    /// Drains the runtime's per-window stats into tracer counters after a
    /// traced eval (`arena.*` buffer recycling, `pool.*` work stealing,
    /// `kernels.*` specialized-tier dispatches and fallback reasons).
    fn record_runtime_counters(&self) {
        let rs = self.runtime().take_stats();
        let t = &self.tracer;
        t.add("arena.reused", rs.arena.reused);
        t.add("arena.allocated", rs.arena.allocated);
        t.high_water("arena.high_water_bytes", rs.arena.high_water_bytes);
        t.add("pool.tasks", rs.pool.tasks);
        t.add("pool.steals", rs.pool.steals);
        t.high_water("pool.max_queue_depth", rs.pool.max_queue_depth);
        for (name, v) in rs.kernels.counters() {
            t.add(name, v);
        }
    }

    /// The inference hot path: evaluates the compiled (transformed) TE
    /// program with the wavefront runtime and returns **output tensors
    /// only**. Intermediates are recycled through the runtime's buffer
    /// arena (keyed by the analysis liveness results), so repeated calls
    /// perform no per-inference allocation for them. Output values are
    /// bit-identical to [`Souffle::eval_reference`].
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`] for missing/mis-shaped bindings or
    /// out-of-bounds reads, in the interpreter's order.
    pub fn eval_outputs(
        &self,
        compiled: &Compiled,
        bindings: &HashMap<TensorId, Tensor>,
    ) -> Result<HashMap<TensorId, Tensor>, EvalError> {
        let cp = compile_program(&compiled.program);
        let plan = Self::exec_plan(compiled, &cp);
        if self.tracer.is_enabled() {
            let result =
                self.runtime()
                    .eval_with_plan_traced(&cp, &plan, bindings, &self.tracer, None);
            self.record_runtime_counters();
            result
        } else {
            self.runtime().eval_with_plan(&cp, &plan, bindings)
        }
    }

    /// The simulator configuration Souffle-generated code runs under.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            spec: self.options.spec.clone(),
            ..SimConfig::a100()
        }
    }

    /// Convenience: compile and simulate in one call.
    pub fn run(&self, program: &TeProgram) -> (Compiled, ModelProfile) {
        let compiled = self.compile(program);
        let profile = self.simulate(&compiled);
        (compiled, profile)
    }

    /// Compiles an operator graph: every TE segment goes through the full
    /// pipeline; TE-unsupported operators become opaque library kernels
    /// that are never fused with their neighbours (§9, "Expression power
    /// of TE").
    pub fn compile_graph(
        &self,
        graph: &souffle_frontend::OpGraph,
    ) -> Result<GraphCompiled, souffle_frontend::GraphError> {
        let lowered = {
            let _span = self.tracer.span("frontend-lowering");
            graph.lower()?
        };
        let mut parts = Vec::new();
        for segment in lowered.segments {
            match segment {
                souffle_frontend::Segment::Te(program) => {
                    parts.push(GraphPart::Te(Box::new(self.compile(&program))));
                }
                souffle_frontend::Segment::Library(call) => {
                    parts.push(GraphPart::Library(library_kernel(&call)));
                }
            }
        }
        Ok(GraphCompiled { parts })
    }

    /// Simulates a compiled graph end to end.
    pub fn simulate_graph(&self, compiled: &GraphCompiled) -> ModelProfile {
        let kernels: Vec<Kernel> = compiled
            .parts
            .iter()
            .flat_map(|p| match p {
                GraphPart::Te(c) => c.kernels.clone(),
                GraphPart::Library(k) => vec![k.clone()],
            })
            .collect();
        simulate(&kernels, &self.sim_config())
    }
}

/// One compiled piece of an operator graph.
#[derive(Debug, Clone)]
pub enum GraphPart {
    /// A Souffle-compiled TE segment.
    Te(Box<Compiled>),
    /// An opaque library kernel.
    Library(Kernel),
}

/// A compiled operator graph: Souffle-optimized segments interleaved with
/// library kernels at the TE-unsupported operators.
#[derive(Debug, Clone)]
pub struct GraphCompiled {
    /// Parts in execution order.
    pub parts: Vec<GraphPart>,
}

impl GraphCompiled {
    /// Total kernels one inference launches.
    pub fn num_kernels(&self) -> usize {
        self.parts
            .iter()
            .map(|p| match p {
                GraphPart::Te(c) => c.num_kernels(),
                GraphPart::Library(_) => 1,
            })
            .sum()
    }

    /// Number of library-call kernels.
    pub fn num_library_kernels(&self) -> usize {
        self.parts
            .iter()
            .filter(|p| matches!(p, GraphPart::Library(_)))
            .count()
    }
}

/// Models a library operator as a single memory-streaming kernel: it reads
/// and writes its tensor once (the library implementation is tuned, but it
/// cannot fuse with anything around it).
fn library_kernel(call: &souffle_frontend::LibraryCall) -> Kernel {
    use souffle_kernel::{Instr, Stage};
    let bytes = call.output_shape.numel() as u64 * call.dtype.size_bytes();
    Kernel {
        name: format!("lib_{}", call.name),
        stages: vec![Stage {
            te: souffle_te::TeId(0),
            name: call.name.clone(),
            grid_blocks: ((call.output_shape.numel() + 255) / 256).max(1) as u64,
            threads_per_block: 256,
            shared_mem_bytes: 0,
            regs_per_thread: 32,
            instrs: vec![
                Instr::LdGlobal {
                    tensor: souffle_te::TensorId(0),
                    bytes,
                },
                Instr::Fma { flops: bytes * 4 },
                Instr::StGlobal {
                    tensor: souffle_te::TensorId(0),
                    bytes,
                },
            ],
            pipelined: false,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use souffle_te::builders;
    use souffle_tensor::{DType, Shape};

    fn fig2_program() -> TeProgram {
        let mut p = TeProgram::new();
        let i0 = p.add_input("I0", Shape::new(vec![64, 64]), DType::F16);
        let w0 = p.add_weight("W0", Shape::new(vec![64, 64]), DType::F16);
        let o0 = builders::matmul(&mut p, "TE0", i0, w0);
        let o1 = builders::sigmoid(&mut p, "TE1", o0);
        let w2 = p.add_weight("W2", Shape::new(vec![64, 64]), DType::F16);
        let o2 = builders::matmul(&mut p, "TE2", o1, w2);
        let o3 = builders::add(&mut p, "TE3", o0, o2);
        let w4 = p.add_weight("W4", Shape::new(vec![64, 256]), DType::F16);
        let o4 = builders::matmul(&mut p, "TE4", o3, w4);
        p.mark_output(o4);
        p
    }

    #[test]
    fn full_pipeline_produces_fewer_kernels_than_v0() {
        let p = fig2_program();
        let (c0, prof0) = Souffle::new(SouffleOptions::v0()).run(&p);
        let (c4, prof4) = Souffle::new(SouffleOptions::full()).run(&p);
        assert!(c4.num_kernels() <= c0.num_kernels());
        assert!(prof4.total_time_s() <= prof0.total_time_s());
        assert!(prof4.global_read_bytes() <= prof0.global_read_bytes());
    }

    #[test]
    fn ablation_latency_is_monotonically_nonincreasing() {
        let p = fig2_program();
        let mut last = f64::INFINITY;
        for (name, opts) in SouffleOptions::ablation() {
            let (_, prof) = Souffle::new(opts).run(&p);
            let t = prof.total_time_s();
            assert!(
                t <= last * 1.05,
                "{name} regressed: {t:.3e} vs previous {last:.3e}"
            );
            last = t.min(last);
        }
    }

    #[test]
    fn transformed_program_still_validates() {
        let p = fig2_program();
        let compiled = Souffle::new(SouffleOptions::full()).compile(&p);
        compiled.program.validate().unwrap();
        assert!(compiled.stats.total_time() > Duration::ZERO);
    }

    #[test]
    fn full_pipeline_single_kernel_for_small_program() {
        let p = fig2_program();
        let compiled = Souffle::new(SouffleOptions::full()).compile(&p);
        // The Fig. 2 program fits in one grid-synchronized kernel.
        assert_eq!(compiled.num_kernels(), 1, "{:?}", compiled.kernels.len());
        assert!(compiled.kernels[0].uses_grid_sync());
    }

    #[test]
    fn graph_with_library_op_compiles_in_parts() {
        use souffle_frontend::{OpGraph, OpKind};
        let mut g = OpGraph::new();
        let x = g
            .add(
                "x",
                OpKind::Input(Shape::new(vec![1, 4, 8, 8]), DType::F32),
                &[],
            )
            .unwrap();
        let r = g
            .add("relu", OpKind::Unary(souffle_te::UnaryOp::Relu), &[x])
            .unwrap();
        let rs = g.add("resize", OpKind::Resize { size: 16 }, &[r]).unwrap();
        let s = g
            .add("sig", OpKind::Unary(souffle_te::UnaryOp::Sigmoid), &[rs])
            .unwrap();
        g.mark_output(s);
        let souffle = Souffle::new(SouffleOptions::full());
        let compiled = souffle.compile_graph(&g).unwrap();
        assert_eq!(compiled.num_library_kernels(), 1);
        assert!(compiled.num_kernels() >= 3, "{}", compiled.num_kernels());
        let profile = souffle.simulate_graph(&compiled);
        assert!(profile.total_time_s() > 0.0);
        assert!(profile
            .kernels
            .iter()
            .any(|k| k.name.starts_with("lib_resize")));
    }

    #[test]
    fn fully_expressible_graph_has_no_library_kernels() {
        use souffle_frontend::{OpGraph, OpKind};
        let mut g = OpGraph::new();
        let x = g
            .add("x", OpKind::Input(Shape::new(vec![8, 8]), DType::F16), &[])
            .unwrap();
        let w = g
            .add("w", OpKind::Weight(Shape::new(vec![8, 8]), DType::F16), &[])
            .unwrap();
        let mm = g.add("mm", OpKind::MatMul, &[x, w]).unwrap();
        let sm = g.add("sm", OpKind::Softmax, &[mm]).unwrap();
        g.mark_output(sm);
        let souffle = Souffle::new(SouffleOptions::full());
        let compiled = souffle.compile_graph(&g).unwrap();
        assert_eq!(compiled.num_library_kernels(), 0);
        assert_eq!(compiled.parts.len(), 1);
    }

    #[test]
    fn eval_reference_agrees_across_evaluators() {
        use souffle_te::interp::random_bindings;
        let p = fig2_program();
        let bindings = random_bindings(&p, 7);
        let naive = Souffle::new(SouffleOptions {
            evaluator: souffle_te::Evaluator::Naive,
            ..SouffleOptions::full()
        });
        let fast = Souffle::new(SouffleOptions::full());
        let cn = naive.compile(&p);
        let cf = fast.compile(&p);
        let want = naive.eval_reference(&cn, &bindings).unwrap();
        let got = fast.eval_reference(&cf, &bindings).unwrap();
        for id in p.outputs() {
            let (w, g) = (&want[&id], &got[&id]);
            assert_eq!(w.shape(), g.shape());
            for (a, b) in w.data().iter().zip(g.data()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn pooled_eval_reference_is_bit_identical_and_reuses_buffers() {
        use souffle_te::interp::random_bindings;
        let p = fig2_program();
        let bindings = random_bindings(&p, 21);
        let naive = Souffle::new(SouffleOptions {
            evaluator: souffle_te::Evaluator::Naive,
            ..SouffleOptions::full()
        });
        let pooled = Souffle::new(SouffleOptions {
            eval_threads: Some(2),
            eval_arena: true,
            ..SouffleOptions::full()
        });
        assert_eq!(pooled.runtime().threads(), 2);
        let cn = naive.compile(&p);
        let cf = pooled.compile(&p);
        let want = naive.eval_reference(&cn, &bindings).unwrap();
        // Repeated evals through one Souffle instance recycle the arena;
        // results must stay bit-identical every time.
        for round in 0..5 {
            let got = if round % 2 == 0 {
                pooled.eval_reference(&cf, &bindings).unwrap()
            } else {
                pooled.eval_outputs(&cf, &bindings).unwrap()
            };
            for id in p.outputs() {
                let (w, g) = (&want[&id], &got[&id]);
                assert_eq!(w.shape(), g.shape());
                for (a, b) in w.data().iter().zip(g.data()) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
        let stats = pooled.runtime().arena_stats();
        assert!(stats.reused > 0, "arena must recycle buffers: {stats:?}");
    }

    #[test]
    fn verifier_is_clean_on_fig2_at_every_stage() {
        let p = fig2_program();
        for (name, mut opts) in SouffleOptions::ablation() {
            opts.verify = true;
            let compiled = Souffle::new(opts).compile_checked(&p).unwrap();
            assert!(
                !compiled.diagnostics.has_errors(),
                "{name}: {}",
                compiled.diagnostics
            );
            assert_eq!(compiled.diagnostics.num_warnings(), 0, "{name}");
            assert!(compiled.stats.verify_time > Duration::ZERO, "{name}");
        }
    }

    #[test]
    fn compile_checked_rejects_oob_program_at_frontend() {
        use souffle_te::ScalarExpr;
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let out = p.add_tensor(
            "o",
            Shape::new(vec![4]),
            DType::F32,
            souffle_te::TensorKind::Output,
        );
        p.push_te(souffle_te::TensorExpr {
            name: "o".into(),
            output: out,
            inputs: vec![a],
            reduce: vec![],
            reduce_op: None,
            body: ScalarExpr::input(
                0,
                vec![souffle_affine::IndexExpr::var(0).add(souffle_affine::IndexExpr::constant(4))],
            ),
        });
        let mut opts = SouffleOptions::full();
        opts.verify = true;
        let err = Souffle::new(opts).compile_checked(&p).unwrap_err();
        assert!(err.has_code(souffle_verify::Code::OobAccess), "{err}");
        assert!(err.iter().any(|d| d.stage.as_deref() == Some("frontend")));
    }

    #[test]
    fn report_surfaces_lint_warnings_once() {
        let mut p = fig2_program();
        let dead_src = p.add_input("X", Shape::new(vec![8]), DType::F32);
        let _dead = builders::exp(&mut p, "dead", dead_src);
        let mut opts = SouffleOptions::full();
        opts.verify = true;
        let souffle = Souffle::new(opts);
        let compiled = souffle.compile(&p);
        assert!(compiled.diagnostics.has_code(souffle_verify::Code::DeadTe));
        let report = souffle.report(&compiled);
        assert!(report.contains("warning[SV201]"), "{report}");
        // The same dead TE survives every stage, but the report
        // deduplicates it to one line.
        assert_eq!(report.matches("SV201").count(), 1, "{report}");
        assert!(report.contains("kernels"), "{report}");
    }

    #[test]
    fn verify_off_skips_verification() {
        let mut opts = SouffleOptions::full();
        opts.verify = false;
        let compiled = Souffle::new(opts).compile(&fig2_program());
        assert_eq!(compiled.stats.verify_time, Duration::ZERO);
        assert!(compiled.diagnostics.is_empty());
    }

    #[test]
    fn reuse_pass_reports_savings_on_temporal_reuse() {
        let p = fig2_program();
        let compiled = Souffle::new(SouffleOptions::full()).compile(&p);
        // O0 is consumed twice (TE1, TE3): the second consumer hits the
        // cache.
        assert!(
            compiled.stats.reuse.loads_eliminated > 0,
            "{:?}",
            compiled.stats.reuse
        );
    }
}
