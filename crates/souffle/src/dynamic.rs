//! Dynamic-shape support via multi-version kernels (§9, "Reusing
//! dynamic-shaped tensors"): "we can generate multiple versions of a
//! kernel and choose the appropriate one based on shape information
//! available at execution time".
//!
//! [`Souffle::compile_multi_version`] compiles one [`Compiled`] artifact
//! per shape bucket; [`MultiVersion::select`] picks the smallest bucket
//! covering the runtime extent (inputs are padded up to the bucket).
//!
//! [`ShapeCache`] is the lazy successor to the eager bucket table: keyed by
//! [`ShapeClass`] (structural program signature × bucket vector), it
//! compiles a bucket on first miss — exactly once even under concurrent
//! misses — and memoizes hits. `SOUFFLE_SHAPE_CACHE=off` disables the
//! memoization (every lookup rebuilds; results are identical), which the CI
//! sweep uses to prove the cache is semantics-free.

use crate::{Compiled, Souffle};
use souffle_te::TeProgram;
use souffle_trace::Tracer;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// A set of compiled shape buckets for one dynamic extent (e.g. sequence
/// length).
#[derive(Debug, Clone)]
pub struct MultiVersion {
    /// `(bucket extent, compiled artifact)`, sorted ascending by extent.
    buckets: Vec<(i64, Compiled)>,
}

impl MultiVersion {
    /// The bucket extents, ascending.
    pub fn bucket_sizes(&self) -> Vec<i64> {
        self.buckets.iter().map(|(s, _)| *s).collect()
    }

    /// Number of compiled versions.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether no versions were compiled.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Picks the smallest bucket whose extent covers `runtime_extent`;
    /// `None` when the extent exceeds every bucket (the caller must fall
    /// back to a recompile).
    pub fn select(&self, runtime_extent: i64) -> Option<&Compiled> {
        self.buckets
            .iter()
            .find(|(s, _)| *s >= runtime_extent)
            .map(|(_, c)| c)
    }

    /// The bucket extent [`MultiVersion::select`] would pad to.
    pub fn selected_bucket(&self, runtime_extent: i64) -> Option<i64> {
        self.buckets
            .iter()
            .map(|(s, _)| *s)
            .find(|&s| s >= runtime_extent)
    }
}

impl Souffle {
    /// Compiles one version of the model per shape bucket. `build` maps a
    /// bucket extent to the model's TE program at that extent.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is empty or not strictly ascending.
    pub fn compile_multi_version(
        &self,
        buckets: &[i64],
        build: impl Fn(i64) -> TeProgram,
    ) -> MultiVersion {
        assert!(!buckets.is_empty(), "at least one shape bucket required");
        assert!(
            buckets.windows(2).all(|w| w[0] < w[1]),
            "buckets must be strictly ascending"
        );
        MultiVersion {
            buckets: buckets
                .iter()
                .map(|&s| (s, self.compile(&build(s))))
                .collect(),
        }
    }
}

/// Environment variable controlling the shape-bucketed kernel cache:
/// `off`/`0`/`false` disables memoization (every lookup rebuilds).
pub const SHAPE_CACHE_ENV: &str = "SOUFFLE_SHAPE_CACHE";

/// The `SOUFFLE_SHAPE_CACHE` override, if set to a recognized value.
pub fn env_shape_cache() -> Option<bool> {
    match std::env::var(SHAPE_CACHE_ENV)
        .ok()?
        .trim()
        .to_ascii_lowercase()
        .as_str()
    {
        "on" | "1" | "true" => Some(true),
        "off" | "0" | "false" => Some(false),
        _ => None,
    }
}

/// Cache key for one compiled shape bucket: the structural signature of the
/// symbolic program (from [`souffle_sched::program_signature`]) crossed with
/// the concrete bucket vector the request was rounded up to (e.g.
/// `[batch_bucket, seq_bucket]`). Two requests share a compiled artifact
/// exactly when they share a `ShapeClass`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ShapeClass {
    /// Structural program signature (bucket-independent half of the key).
    pub sig: u64,
    /// Concrete bucket extents, one per dynamic dim, in declaration order.
    pub buckets: Vec<i64>,
}

impl ShapeClass {
    /// The bucket vector rendered for span names: `"4x64"`.
    pub fn bucket_label(&self) -> String {
        self.buckets
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join("x")
    }
}

enum SlotState<V> {
    /// Some worker is compiling this bucket; waiters block on the condvar.
    Building,
    /// Compiled artifact, shared by every subsequent hit.
    Ready(Arc<V>),
}

struct Slot<V> {
    state: Mutex<SlotState<V>>,
    ready: Condvar,
}

/// Resident entries with their last-touch stamp for LRU eviction.
type SlotMap<V> = HashMap<ShapeClass, (Arc<Slot<V>>, u64)>;

/// A lazy, thread-safe, optionally bounded cache of compiled shape buckets.
///
/// Semantics the serve property suite pins:
/// - **exactly-once compile**: concurrent lookups of a cold [`ShapeClass`]
///   run `build` once; the losers block until the artifact is ready and
///   share it (counted as hits — they did not compile).
/// - **counters**: every lookup bumps `shape_cache.hit` or
///   `shape_cache.miss` on the tracer; each build adds its wall time to
///   `shape_cache.compile_ms` and runs under a `compile:bucket:<label>`
///   span. Evictions bump `shape_cache.evict`.
/// - **eviction**: with a capacity, the least-recently-used *ready* entry
///   is dropped when a new class is inserted past the limit; recompiling an
///   evicted class must be bit-identical (the pipeline is deterministic).
/// - **off switch**: constructed disabled (`SOUFFLE_SHAPE_CACHE=off`),
///   every lookup is a miss that rebuilds — a semantics-free ablation.
pub struct ShapeCache<V> {
    slots: Mutex<SlotMap<V>>,
    clock: Mutex<u64>,
    capacity: Option<usize>,
    enabled: bool,
}

impl<V> ShapeCache<V> {
    /// An unbounded cache honoring the `SOUFFLE_SHAPE_CACHE` override.
    pub fn new() -> Self {
        ShapeCache {
            slots: Mutex::new(HashMap::new()),
            clock: Mutex::new(0),
            capacity: None,
            enabled: env_shape_cache().unwrap_or(true),
        }
    }

    /// A cache with explicit memoization + capacity settings (capacity
    /// `None` = unbounded).
    pub fn with_settings(enabled: bool, capacity: Option<usize>) -> Self {
        ShapeCache {
            slots: Mutex::new(HashMap::new()),
            clock: Mutex::new(0),
            capacity,
            enabled,
        }
    }

    /// Whether memoization is on (off under `SOUFFLE_SHAPE_CACHE=off`).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of resident entries (ready or building).
    pub fn len(&self) -> usize {
        self.slots.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `key` is resident (ready or being built).
    pub fn contains(&self, key: &ShapeClass) -> bool {
        self.slots.lock().unwrap().contains_key(key)
    }

    /// Drops `key` if resident and ready; returns whether it was dropped.
    pub fn evict(&self, key: &ShapeClass, tracer: &Tracer) -> bool {
        let mut slots = self.slots.lock().unwrap();
        let ready = slots
            .get(key)
            .is_some_and(|(slot, _)| matches!(*slot.state.lock().unwrap(), SlotState::Ready(_)));
        if ready {
            slots.remove(key);
            tracer.add("shape_cache.evict", 1);
        }
        ready
    }

    fn tick(&self) -> u64 {
        let mut c = self.clock.lock().unwrap();
        *c += 1;
        *c
    }

    fn build_timed(key: &ShapeClass, tracer: &Tracer, build: impl FnOnce() -> V) -> V {
        let span = tracer.span(&format!("compile:bucket:{}", key.bucket_label()));
        let start = Instant::now();
        let v = build();
        tracer.add("shape_cache.compile_ms", start.elapsed().as_millis() as u64);
        span.end();
        v
    }

    /// Looks up `key`, compiling it with `build` on a miss. See the type
    /// docs for the hit/miss/once-only/eviction contract.
    pub fn get_or_build(
        &self,
        key: ShapeClass,
        tracer: &Tracer,
        build: impl FnOnce() -> V,
    ) -> Arc<V> {
        if !self.enabled {
            tracer.add("shape_cache.miss", 1);
            return Arc::new(Self::build_timed(&key, tracer, build));
        }
        let (slot, winner) = {
            let mut slots = self.slots.lock().unwrap();
            let now = self.tick();
            match slots.get_mut(&key) {
                Some((slot, used)) => {
                    *used = now;
                    tracer.add("shape_cache.hit", 1);
                    (Arc::clone(slot), false)
                }
                None => {
                    tracer.add("shape_cache.miss", 1);
                    let slot = Arc::new(Slot {
                        state: Mutex::new(SlotState::Building),
                        ready: Condvar::new(),
                    });
                    slots.insert(key.clone(), (Arc::clone(&slot), now));
                    if let Some(cap) = self.capacity {
                        // Evict the least-recently-used ready entry (never
                        // the one being built, never a building slot).
                        while slots.len() > cap {
                            let lru = slots
                                .iter()
                                .filter(|(k, (s, _))| {
                                    **k != key
                                        && matches!(*s.state.lock().unwrap(), SlotState::Ready(_))
                                })
                                .min_by_key(|(_, (_, used))| *used)
                                .map(|(k, _)| k.clone());
                            match lru {
                                Some(k) => {
                                    slots.remove(&k);
                                    tracer.add("shape_cache.evict", 1);
                                }
                                None => break,
                            }
                        }
                    }
                    (slot, true)
                }
            }
        };
        if winner {
            let v = Arc::new(Self::build_timed(&key, tracer, build));
            let mut st = slot.state.lock().unwrap();
            *st = SlotState::Ready(Arc::clone(&v));
            slot.ready.notify_all();
            v
        } else {
            let mut st = slot.state.lock().unwrap();
            loop {
                match &*st {
                    SlotState::Ready(v) => return Arc::clone(v),
                    SlotState::Building => st = slot.ready.wait(st).unwrap(),
                }
            }
        }
    }
}

impl<V> Default for ShapeCache<V> {
    fn default() -> Self {
        ShapeCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SouffleOptions;
    use souffle_te::builders;
    use souffle_tensor::{DType, Shape};

    fn mlp_at(seq: i64) -> TeProgram {
        let mut p = TeProgram::new();
        let x = p.add_input("x", Shape::new(vec![seq, 32]), DType::F16);
        let w = p.add_weight("w", Shape::new(vec![32, 32]), DType::F16);
        let y = builders::matmul(&mut p, "mm", x, w);
        let y = builders::relu(&mut p, "relu", y);
        p.mark_output(y);
        p
    }

    #[test]
    fn selects_smallest_covering_bucket() {
        let souffle = Souffle::new(SouffleOptions::full());
        let mv = souffle.compile_multi_version(&[64, 128, 256], mlp_at);
        assert_eq!(mv.len(), 3);
        assert_eq!(mv.selected_bucket(50), Some(64));
        assert_eq!(mv.selected_bucket(64), Some(64));
        assert_eq!(mv.selected_bucket(65), Some(128));
        assert_eq!(mv.selected_bucket(256), Some(256));
        assert_eq!(mv.selected_bucket(257), None);
        assert!(mv.select(100).is_some());
        assert!(mv.select(1000).is_none());
    }

    #[test]
    fn larger_buckets_move_more_memory() {
        // (Latency at these tiny sizes is launch/parallelism dominated and
        // need not be monotone; traffic is.)
        let souffle = Souffle::new(SouffleOptions::full());
        let mv = souffle.compile_multi_version(&[64, 512], mlp_at);
        let small = souffle
            .simulate(mv.select(64).unwrap())
            .global_transfer_bytes();
        let large = souffle
            .simulate(mv.select(512).unwrap())
            .global_transfer_bytes();
        assert!(large > small, "{large} vs {small}");
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_buckets_panic() {
        let souffle = Souffle::new(SouffleOptions::full());
        let _ = souffle.compile_multi_version(&[128, 64], mlp_at);
    }

    fn key(sig: u64, buckets: &[i64]) -> ShapeClass {
        ShapeClass {
            sig,
            buckets: buckets.to_vec(),
        }
    }

    #[test]
    fn cache_hits_after_first_miss_and_pins_counters() {
        let tracer = Tracer::new();
        let cache: ShapeCache<i64> = ShapeCache::with_settings(true, None);
        let mut builds = 0;
        for _ in 0..3 {
            let v = cache.get_or_build(key(7, &[4, 64]), &tracer, || {
                builds += 1;
                42
            });
            assert_eq!(*v, 42);
        }
        assert_eq!(builds, 1);
        let t = tracer.snapshot();
        assert_eq!(t.counters.get("shape_cache.miss"), Some(&1));
        assert_eq!(t.counters.get("shape_cache.hit"), Some(&2));
        assert!(t.spans.iter().any(|s| s.name == "compile:bucket:4x64"));
    }

    #[test]
    fn distinct_shape_classes_compile_separately() {
        let tracer = Tracer::new();
        let cache: ShapeCache<Vec<i64>> = ShapeCache::with_settings(true, None);
        let a = cache.get_or_build(key(1, &[8]), &tracer, || vec![8]);
        let b = cache.get_or_build(key(1, &[16]), &tracer, || vec![16]);
        let c = cache.get_or_build(key(2, &[8]), &tracer, || vec![88]);
        assert_eq!((*a)[0], 8);
        assert_eq!((*b)[0], 16);
        assert_eq!((*c)[0], 88);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn disabled_cache_rebuilds_every_lookup() {
        let tracer = Tracer::new();
        let cache: ShapeCache<i64> = ShapeCache::with_settings(false, None);
        let mut builds = 0;
        for _ in 0..3 {
            let _ = cache.get_or_build(key(7, &[4]), &tracer, || {
                builds += 1;
                1
            });
        }
        assert_eq!(builds, 3);
        assert_eq!(tracer.snapshot().counters.get("shape_cache.miss"), Some(&3));
        assert!(cache.is_empty());
    }

    #[test]
    fn lru_eviction_drops_the_coldest_ready_entry() {
        let tracer = Tracer::new();
        let cache: ShapeCache<i64> = ShapeCache::with_settings(true, Some(2));
        let _ = cache.get_or_build(key(1, &[1]), &tracer, || 1);
        let _ = cache.get_or_build(key(1, &[2]), &tracer, || 2);
        // Touch [1] so [2] becomes the LRU, then overflow.
        let _ = cache.get_or_build(key(1, &[1]), &tracer, || unreachable!());
        let _ = cache.get_or_build(key(1, &[4]), &tracer, || 4);
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(&key(1, &[1])));
        assert!(!cache.contains(&key(1, &[2])));
        assert_eq!(
            tracer.snapshot().counters.get("shape_cache.evict"),
            Some(&1)
        );
        // A recompile of the evicted class is a fresh miss.
        let again = cache.get_or_build(key(1, &[2]), &tracer, || 2);
        assert_eq!(*again, 2);
    }

    #[test]
    fn concurrent_cold_lookups_compile_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let tracer = Tracer::new();
        let cache: Arc<ShapeCache<u64>> = Arc::new(ShapeCache::with_settings(true, None));
        let builds = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let builds = Arc::clone(&builds);
                let tracer = &tracer;
                scope.spawn(move || {
                    let v = cache.get_or_build(key(9, &[2, 16]), tracer, || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window so losers really block.
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        7
                    });
                    assert_eq!(*v, 7);
                });
            }
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1);
        let t = tracer.snapshot();
        assert_eq!(t.counters.get("shape_cache.miss"), Some(&1));
        assert_eq!(t.counters.get("shape_cache.hit"), Some(&7));
    }
}
