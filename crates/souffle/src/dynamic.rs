//! Dynamic-shape support via multi-version kernels (§9, "Reusing
//! dynamic-shaped tensors"): "we can generate multiple versions of a
//! kernel and choose the appropriate one based on shape information
//! available at execution time".
//!
//! [`Souffle::compile_multi_version`] compiles one [`Compiled`] artifact
//! per shape bucket; [`MultiVersion::select`] picks the smallest bucket
//! covering the runtime extent (inputs are padded up to the bucket).

use crate::{Compiled, Souffle};
use souffle_te::TeProgram;

/// A set of compiled shape buckets for one dynamic extent (e.g. sequence
/// length).
#[derive(Debug, Clone)]
pub struct MultiVersion {
    /// `(bucket extent, compiled artifact)`, sorted ascending by extent.
    buckets: Vec<(i64, Compiled)>,
}

impl MultiVersion {
    /// The bucket extents, ascending.
    pub fn bucket_sizes(&self) -> Vec<i64> {
        self.buckets.iter().map(|(s, _)| *s).collect()
    }

    /// Number of compiled versions.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether no versions were compiled.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Picks the smallest bucket whose extent covers `runtime_extent`;
    /// `None` when the extent exceeds every bucket (the caller must fall
    /// back to a recompile).
    pub fn select(&self, runtime_extent: i64) -> Option<&Compiled> {
        self.buckets
            .iter()
            .find(|(s, _)| *s >= runtime_extent)
            .map(|(_, c)| c)
    }

    /// The bucket extent [`MultiVersion::select`] would pad to.
    pub fn selected_bucket(&self, runtime_extent: i64) -> Option<i64> {
        self.buckets
            .iter()
            .map(|(s, _)| *s)
            .find(|&s| s >= runtime_extent)
    }
}

impl Souffle {
    /// Compiles one version of the model per shape bucket. `build` maps a
    /// bucket extent to the model's TE program at that extent.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is empty or not strictly ascending.
    pub fn compile_multi_version(
        &self,
        buckets: &[i64],
        build: impl Fn(i64) -> TeProgram,
    ) -> MultiVersion {
        assert!(!buckets.is_empty(), "at least one shape bucket required");
        assert!(
            buckets.windows(2).all(|w| w[0] < w[1]),
            "buckets must be strictly ascending"
        );
        MultiVersion {
            buckets: buckets
                .iter()
                .map(|&s| (s, self.compile(&build(s))))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SouffleOptions;
    use souffle_te::builders;
    use souffle_tensor::{DType, Shape};

    fn mlp_at(seq: i64) -> TeProgram {
        let mut p = TeProgram::new();
        let x = p.add_input("x", Shape::new(vec![seq, 32]), DType::F16);
        let w = p.add_weight("w", Shape::new(vec![32, 32]), DType::F16);
        let y = builders::matmul(&mut p, "mm", x, w);
        let y = builders::relu(&mut p, "relu", y);
        p.mark_output(y);
        p
    }

    #[test]
    fn selects_smallest_covering_bucket() {
        let souffle = Souffle::new(SouffleOptions::full());
        let mv = souffle.compile_multi_version(&[64, 128, 256], mlp_at);
        assert_eq!(mv.len(), 3);
        assert_eq!(mv.selected_bucket(50), Some(64));
        assert_eq!(mv.selected_bucket(64), Some(64));
        assert_eq!(mv.selected_bucket(65), Some(128));
        assert_eq!(mv.selected_bucket(256), Some(256));
        assert_eq!(mv.selected_bucket(257), None);
        assert!(mv.select(100).is_some());
        assert!(mv.select(1000).is_none());
    }

    #[test]
    fn larger_buckets_move_more_memory() {
        // (Latency at these tiny sizes is launch/parallelism dominated and
        // need not be monotone; traffic is.)
        let souffle = Souffle::new(SouffleOptions::full());
        let mv = souffle.compile_multi_version(&[64, 512], mlp_at);
        let small = souffle
            .simulate(mv.select(64).unwrap())
            .global_transfer_bytes();
        let large = souffle
            .simulate(mv.select(512).unwrap())
            .global_transfer_bytes();
        assert!(large > small, "{large} vs {small}");
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_buckets_panic() {
        let souffle = Souffle::new(SouffleOptions::full());
        let _ = souffle.compile_multi_version(&[128, 64], mlp_at);
    }
}
