//! `souffle-verify`: run the static IR verifier over the paper's models
//! at every pipeline stage and report the findings.
//!
//! ```sh
//! souffle-verify [model ...] [--variant V0..V4] [--tiny] [--quiet] [--no-certify]
//! ```
//!
//! With no model arguments, all six frontend models are checked at paper
//! scale. The exit code is non-zero iff any model produced an
//! error-severity diagnostic, which makes this the CI gate for the
//! verifier: every transformation stage of every model must prove clean.
//!
//! Per-stage translation validation (`verify::certify`) is forced on
//! unless `--no-certify` is given: each transform stage must be *proven*
//! equivalent to its input, with zero residual obligations, and a batch
//! certificate is additionally checked on a batch-4 rewrite of every
//! model. Certificates and certify timing print per model.

use souffle::{Souffle, SouffleOptions};
use souffle_frontend::{build_model, Model, ModelConfig};
use std::process::ExitCode;

fn parse_model(name: &str) -> Option<Model> {
    Some(match name.to_ascii_lowercase().as_str() {
        "bert" => Model::Bert,
        "resnext" => Model::ResNext,
        "lstm" => Model::Lstm,
        "efficientnet" | "effnet" => Model::EfficientNet,
        "swin" => Model::SwinTransformer,
        "mmoe" => Model::Mmoe,
        _ => return None,
    })
}

fn parse_variant(name: &str) -> Option<SouffleOptions> {
    SouffleOptions::ablation()
        .into_iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, o)| o)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: souffle-verify [bert|resnext|lstm|efficientnet|swin|mmoe ...] \
         [--variant V0..V4] [--tiny] [--quiet]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut models: Vec<Model> = Vec::new();
    let mut options = SouffleOptions::full();
    let mut config = ModelConfig::Paper;
    let mut quiet = false;
    let mut certify = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--variant" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| parse_variant(v)) else {
                    eprintln!("--variant expects V0..V4");
                    return usage();
                };
                options = v;
            }
            "--tiny" => config = ModelConfig::Tiny,
            "--quiet" => quiet = true,
            "--no-certify" => certify = false,
            arg => {
                let Some(m) = parse_model(arg) else {
                    eprintln!("unknown model: {arg}");
                    return usage();
                };
                models.push(m);
            }
        }
        i += 1;
    }
    if models.is_empty() {
        models = Model::ALL.to_vec();
    }
    options.verify = true;
    options.certify = Some(certify);
    let souffle = Souffle::new(options);

    let mut failed = false;
    for model in models {
        let program = build_model(model, config);
        match souffle.compile_checked(&program) {
            Ok(compiled) => {
                let w = compiled.diagnostics.num_warnings();
                let residual: usize = compiled.certificates.iter().map(|c| c.residual).sum();
                println!(
                    "{model}: ok — {} TEs, {} kernels, {w} warning(s), verify {:.1?}, \
                     certify {:.1?} ({} certificates, {residual} residual)",
                    compiled.program.num_tes(),
                    compiled.num_kernels(),
                    compiled.stats.verify_time,
                    compiled.stats.certify_time,
                    compiled.certificates.len(),
                );
                if !quiet {
                    for c in &compiled.certificates {
                        println!("  {c}");
                    }
                    if w > 0 {
                        print!("{}", souffle.report(&compiled));
                    }
                }
                if certify && residual > 0 {
                    // The CI gate demands *proofs*: an unproven obligation
                    // fails the run even though it is only warning-level.
                    failed = true;
                    println!("{model}: FAILED — {residual} residual certify obligation(s)");
                }
                // The batching rewrite is outside the compile pipeline
                // (souffle-serve applies it per bucket); certify it here
                // on a representative batch so the stage is gated too.
                if certify {
                    let batched = souffle_transform::batch_program(&program, 4);
                    let (bcert, bdiags) = souffle_verify::certify_batch(&program, &batched, 4);
                    if bdiags.has_errors() {
                        failed = true;
                        println!("{model}: batch certification FAILED\n{bdiags}");
                    } else if !quiet {
                        println!("  {bcert}");
                    }
                }
            }
            Err(diags) => {
                failed = true;
                println!(
                    "{model}: FAILED — {} error(s), {} warning(s)",
                    diags.num_errors(),
                    diags.num_warnings()
                );
                if !quiet {
                    print!("{diags}");
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
