//! `souffle-cli`: compile one of the paper's models and report what the
//! compiler did — the "driver" a downstream user runs first.
//!
//! ```sh
//! souffle-cli <model> [--variant V0..V4] [--emit-cuda] [--compare]
//! ```
//!
//! `<model>` is one of `bert`, `resnext`, `lstm`, `efficientnet`, `swin`,
//! `mmoe`. `--compare` also runs the six baselines. `--trace out.json`
//! dumps the simulated kernel timeline; `--trace-out out.json` records
//! the compiler + runtime span tree (one reference eval) as Chrome
//! trace_event JSON.

use souffle::trace::{chrome, Tracer};
use souffle::{Souffle, SouffleOptions};
use souffle_baselines::{all_baselines, StrategyContext};
use souffle_frontend::{build_model, Model, ModelConfig};
use souffle_gpusim::simulate;
use souffle_sched::GpuSpec;
use std::process::ExitCode;

fn parse_model(name: &str) -> Option<Model> {
    Some(match name.to_ascii_lowercase().as_str() {
        "bert" => Model::Bert,
        "resnext" => Model::ResNext,
        "lstm" => Model::Lstm,
        "efficientnet" | "effnet" => Model::EfficientNet,
        "swin" => Model::SwinTransformer,
        "mmoe" => Model::Mmoe,
        _ => return None,
    })
}

fn parse_variant(name: &str) -> Option<SouffleOptions> {
    SouffleOptions::ablation()
        .into_iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, o)| o)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: souffle-cli <bert|resnext|lstm|efficientnet|swin|mmoe> \
         [--variant V0..V4] [--tiny] [--emit-cuda] [--compare] [--trace out.json] \
         [--trace-out out.json]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(model_arg) = args.first() else {
        return usage();
    };
    let Some(model) = parse_model(model_arg) else {
        eprintln!("unknown model: {model_arg}");
        return usage();
    };
    let mut options = SouffleOptions::full();
    let mut emit_cuda = false;
    let mut compare = false;
    let mut trace_path: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut config = ModelConfig::Paper;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--variant" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| parse_variant(v)) else {
                    eprintln!("--variant expects V0..V4");
                    return usage();
                };
                options = v;
            }
            "--tiny" => config = ModelConfig::Tiny,
            "--trace" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--trace expects a file path");
                    return usage();
                };
                trace_path = Some(path.clone());
            }
            "--trace-out" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--trace-out expects a file path");
                    return usage();
                };
                trace_out = Some(path.clone());
            }
            "--emit-cuda" => emit_cuda = true,
            "--compare" => compare = true,
            other => {
                eprintln!("unknown flag: {other}");
                return usage();
            }
        }
        i += 1;
    }

    let program = build_model(model, config);
    println!(
        "{model}: {} TEs, {} tensors, {:.1} MB weights",
        program.num_tes(),
        program.num_tensors(),
        program.weight_bytes() as f64 / 1e6
    );
    let tracer = if trace_out.is_some() {
        Tracer::new()
    } else {
        Tracer::disabled()
    };
    let souffle = Souffle::new(options).with_tracer(tracer.clone());
    let compiled = souffle.compile(&program);
    let profile = souffle.simulate(&compiled);
    println!(
        "compiled in {:.1} ms: {} kernels | transform: {} horizontal, {} vertical | reuse: {} loads cut",
        compiled.stats.total_time().as_secs_f64() * 1e3,
        compiled.num_kernels(),
        compiled.stats.transform.horizontal_groups,
        compiled.stats.transform.vertical_fused,
        compiled.stats.reuse.loads_eliminated,
    );
    println!(
        "simulated: {:.3} ms | {:.1} MB traffic | {} grid syncs",
        profile.total_time_ms(),
        profile.global_transfer_bytes() as f64 / 1e6,
        profile.grid_syncs()
    );

    if compare {
        println!("\nbaselines:");
        for strategy in all_baselines() {
            if !strategy.supports(model) {
                println!("  {:<9} Failed (per Table 3)", strategy.name());
                continue;
            }
            let ctx = StrategyContext::new(&program, &GpuSpec::a100());
            let base = simulate(&strategy.compile(&ctx).kernels, &strategy.sim_config());
            println!(
                "  {:<9} {:>9.3} ms  {:>6} kernels  ({:.2}x vs Souffle)",
                strategy.name(),
                base.total_time_ms(),
                base.num_kernel_calls(),
                base.total_time_s() / profile.total_time_s()
            );
        }
    }
    if let Some(path) = trace_path {
        let json = souffle_gpusim::chrome_trace(&profile);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write trace {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote Chrome trace to {path} (open in chrome://tracing or Perfetto)");
    }
    if let Some(path) = trace_out {
        // One reference inference so the trace covers the runtime too.
        let bindings = souffle::te::interp::random_bindings(&program, 0);
        if let Err(e) = souffle.eval_outputs(&compiled, &bindings) {
            eprintln!("trace eval failed: {e}");
            return ExitCode::FAILURE;
        }
        let trace = tracer.take();
        if let Err(e) = trace.well_formed() {
            eprintln!("malformed trace: {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(&path, chrome::chrome_json(&trace)) {
            eprintln!("failed to write trace {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote compiler+runtime trace to {path} ({} spans; open in chrome://tracing)",
            trace.spans.len()
        );
    }
    if emit_cuda {
        println!("\n{}", compiled.emit_cuda());
    }
    ExitCode::SUCCESS
}
