//! Pipeline configuration, including the ablation points of Table 4.

use souffle_sched::GpuSpec;
use souffle_te::Evaluator;

/// Which optimization stages run — the knobs of the paper's ablation
/// study (§8.2): V0 is plain TVM+Ansor codegen; each step adds one
/// Souffle mechanism.
#[derive(Debug, Clone, PartialEq)]
pub struct SouffleOptions {
    /// Horizontal TE transformation (§6.1) — V1.
    pub horizontal: bool,
    /// Vertical TE transformation (§6.2) — V2.
    pub vertical: bool,
    /// Data-movement-aware reduction fusion: carry single-axis reductions
    /// (softmax denominators, layernorm moments) *inline* in their
    /// broadcast consumers as scoped folds when the bytes-moved cost model
    /// approves. Runs as its own stage between vertical fusion and global
    /// analysis, and only when `vertical` is on (its candidates are the
    /// post-vertical reduction chains). `Some(true)`/`Some(false)` force
    /// it; `None` resolves via `SOUFFLE_REDUCTION_FUSION` (on when unset).
    /// Bit-exact: fusion preserves per-element reduction order, and the
    /// stage is re-verified and oracle-checked like every other.
    pub reduction_fusion: Option<bool>,
    /// Resource-aware partitioning into grid-synchronized merged kernels
    /// (§5.4, §6.4) — V3. When off, kernels are generated per compute TE
    /// with epilogue fusion (Ansor-style).
    pub global_sync: bool,
    /// Subprogram-level optimization: instruction pipelining + LRU tensor
    /// buffer reuse (§6.5) — V4.
    pub subprogram_opts: bool,
    /// Capacity of the software-managed LRU tensor cache used by the
    /// reuse pass (§6.5). `None` uses the device-wide shared memory
    /// (each block caches its tile); the design-ablation bench sweeps
    /// this.
    pub reuse_cache_bytes: Option<u64>,
    /// Which reference evaluator [`crate::Souffle::eval_reference`] runs
    /// the (transformed) TE program with: the naive interpreter (ground
    /// truth) or the compiled bytecode VM (bit-identical, much faster).
    pub evaluator: Evaluator,
    /// Execution streams for the compiled evaluator's wavefront runtime
    /// (pool workers + calling thread). `None` resolves via
    /// `SOUFFLE_EVAL_THREADS`, else the machine parallelism. Results are
    /// bit-identical for every value.
    pub eval_threads: Option<usize>,
    /// Recycle intermediate tensor buffers through the runtime's arena
    /// across TEs and across repeated `eval_reference` calls.
    pub eval_arena: bool,
    /// Kernel-tier mode for the compiled evaluator: `Some(true)` forces
    /// the monomorphized native kernels, `Some(false)` forces pure
    /// bytecode, `None` resolves via `SOUFFLE_KERNEL_TIER` (on when
    /// unset). Bit-identical either way; this knob exists for the
    /// differential suites and A/B benchmarking.
    pub kernel_tier: Option<bool>,
    /// Relax `Sum` reduction order in the specialized dot kernels
    /// (multi-lane partial accumulators). Opt-in: changes float results,
    /// is excluded from every bit-identity oracle, and is benchmarked as
    /// its own row.
    pub fast_math: bool,
    /// Run the static verifier (`souffle-verify`) after every pipeline
    /// stage: the frontend program, each TE transformation, and the
    /// lowered kernels. Errors abort compilation
    /// ([`crate::Souffle::compile_checked`] returns them; `compile`
    /// panics with the rendered diagnostics); warnings are collected on
    /// [`crate::Compiled::diagnostics`]. Defaults to on in debug builds
    /// (and thus under `cargo test`), off in release builds.
    pub verify: bool,
    /// Per-stage translation validation (`souffle_verify::certify`): after
    /// every transform stage the certifier statically proves the rewritten
    /// program equivalent to its input (canonical-form comparison of
    /// unfolded tensor definitions, recorded-rewrite replay, merged-
    /// schedule dataflow validation) and attaches a
    /// [`souffle_verify::Certificate`] per stage to the compile result.
    /// `Some(true)`/`Some(false)` force it; `None` resolves via
    /// `SOUFFLE_CERTIFY`, else on in debug builds. Only effective when
    /// `verify` is on (certification is part of the verification tier).
    pub certify: Option<bool>,
    /// The target device.
    pub spec: GpuSpec,
}

impl SouffleOptions {
    /// V0: TVM + Ansor baseline codegen (no Souffle mechanisms).
    pub fn v0() -> Self {
        SouffleOptions {
            horizontal: false,
            vertical: false,
            reduction_fusion: None,
            global_sync: false,
            subprogram_opts: false,
            reuse_cache_bytes: None,
            evaluator: Evaluator::default(),
            eval_threads: None,
            eval_arena: true,
            kernel_tier: None,
            fast_math: false,
            verify: cfg!(debug_assertions),
            certify: None,
            spec: GpuSpec::a100(),
        }
    }

    /// V1: + horizontal transformation.
    pub fn v1() -> Self {
        SouffleOptions {
            horizontal: true,
            ..SouffleOptions::v0()
        }
    }

    /// V2: + vertical transformation.
    pub fn v2() -> Self {
        SouffleOptions {
            vertical: true,
            ..SouffleOptions::v1()
        }
    }

    /// V3: + global synchronization (merged subprogram kernels).
    pub fn v3() -> Self {
        SouffleOptions {
            global_sync: true,
            ..SouffleOptions::v2()
        }
    }

    /// V4 (= full Souffle): + subprogram-level optimization.
    pub fn v4() -> Self {
        SouffleOptions {
            subprogram_opts: true,
            ..SouffleOptions::v3()
        }
    }

    /// The complete pipeline (alias of [`SouffleOptions::v4`]).
    pub fn full() -> Self {
        SouffleOptions::v4()
    }

    /// Whether the reduction-fusion stage runs: the explicit option if
    /// set, else the `SOUFFLE_REDUCTION_FUSION` environment override,
    /// else on. The pipeline additionally requires `vertical` — the
    /// stage's candidates are post-vertical reduction chains.
    pub fn resolve_reduction_fusion(&self) -> bool {
        self.reduction_fusion
            .or_else(souffle_transform::env_reduction_fusion)
            .unwrap_or(true)
    }

    /// Whether the translation-validation stage runs: requires `verify`,
    /// then the explicit option if set, else the `SOUFFLE_CERTIFY`
    /// environment override, else on in debug builds.
    pub fn resolve_certify(&self) -> bool {
        self.verify
            && self
                .certify
                .or_else(souffle_verify::env_certify)
                .unwrap_or(cfg!(debug_assertions))
    }

    /// All ablation variants in order, with their Table 4 labels.
    pub fn ablation() -> Vec<(&'static str, SouffleOptions)> {
        vec![
            ("V0", SouffleOptions::v0()),
            ("V1", SouffleOptions::v1()),
            ("V2", SouffleOptions::v2()),
            ("V3", SouffleOptions::v3()),
            ("V4", SouffleOptions::v4()),
        ]
    }
}

impl Default for SouffleOptions {
    fn default() -> Self {
        SouffleOptions::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_is_monotonic() {
        let steps = SouffleOptions::ablation();
        assert_eq!(steps.len(), 5);
        let on = |o: &SouffleOptions| {
            [o.horizontal, o.vertical, o.global_sync, o.subprogram_opts]
                .iter()
                .filter(|&&b| b)
                .count()
        };
        for w in steps.windows(2) {
            assert_eq!(on(&w[1].1), on(&w[0].1) + 1);
        }
    }

    #[test]
    fn full_is_v4() {
        assert_eq!(SouffleOptions::full(), SouffleOptions::v4());
        assert_eq!(SouffleOptions::default(), SouffleOptions::v4());
    }
}
