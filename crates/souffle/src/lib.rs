#![warn(missing_docs)]
//! # Souffle: optimizing DNN inference via global analysis and tensor
//! # expressions — a Rust reproduction
//!
//! This crate is the top of the reproduction of *Optimizing Deep Learning
//! Inference via Global Analysis and Tensor Expressions* (ASPLOS 2024): a
//! **top-down** DNN inference optimizer. Instead of bottom-up operator
//! fusion, Souffle
//!
//! 1. lowers the whole model to tensor expressions (`souffle-te`),
//! 2. runs a global analysis over the complete tensor dependency graph —
//!    data reuse, element-wise dependence, compute/memory classification,
//!    liveness (`souffle-analysis`, §5),
//! 3. partitions the TE program into subprograms under the
//!    max-blocks-per-wave constraint needed for grid synchronization
//!    (§5.4),
//! 4. applies semantic-preserving horizontal/vertical TE transformations
//!    (`souffle-transform`, §6.1–6.2),
//! 5. merges each subprogram's schedules into one kernel with predicates
//!    and `grid.sync()` (§6.4), and
//! 6. optimizes inside each kernel: instruction-level memory/compute
//!    pipelining and LRU tensor-buffer reuse (§6.5).
//!
//! The hardware side of the paper (A100 + Nsight Compute) is substituted
//! by the `souffle-gpusim` simulator; see `DESIGN.md` for the
//! substitution map.
//!
//! # Quickstart
//!
//! ```
//! use souffle::{Souffle, SouffleOptions};
//! use souffle_frontend::{build_model, Model, ModelConfig};
//!
//! let program = build_model(Model::Mmoe, ModelConfig::Paper);
//! let souffle = Souffle::new(SouffleOptions::full());
//! let compiled = souffle.compile(&program);
//! let profile = souffle.simulate(&compiled);
//! println!(
//!     "MMoE: {} kernels, {:.3} ms",
//!     profile.num_kernel_calls(),
//!     profile.total_time_ms()
//! );
//! assert!(profile.num_kernel_calls() >= 1);
//! ```

pub mod dynamic;
mod options;
mod pipeline;
pub mod report;

pub use dynamic::{env_shape_cache, MultiVersion, ShapeCache, ShapeClass, SHAPE_CACHE_ENV};
pub use options::SouffleOptions;
pub use pipeline::{CompileStats, Compiled, GraphCompiled, GraphPart, Souffle};

// Re-export the component crates so downstream users need one dependency.
pub use souffle_affine as affine;
pub use souffle_analysis as analysis;
pub use souffle_baselines as baselines;
pub use souffle_frontend as frontend;
pub use souffle_gpusim as gpusim;
pub use souffle_kernel as kernel;
pub use souffle_sched as sched;
pub use souffle_te as te;
pub use souffle_tensor as tensor;
pub use souffle_trace as trace;
pub use souffle_transform as transform;
pub use souffle_verify as verify;
