//! Symbolic bytes-moved pricing: the [`crate::traffic`] cost model lifted to
//! polynomials over declared symbolic dims.
//!
//! A [`DynProgram`] carries per-tensor `Dim` annotations, so every extent in
//! the concrete model becomes an (at most degree-1) polynomial and products
//! of extents become higher-degree [`DimPoly`]s. The one non-polynomial
//! operation in the concrete model is the per-axis clamp
//! `min(var_prod, span, extent)`: we resolve it by checking which candidate
//! is minimal at *every* integer binding in the declared box (the box is
//! small — a seq dim of a few hundred values). When no single branch
//! dominates everywhere, or an index interval saturates symbolically, the
//! estimate returns `None` and callers fall back to pricing each shape
//! bucket concretely with [`crate::traffic::program_traffic`].
//!
//! Exactness contract: when `program_bytes_poly` returns `Some`, evaluating
//! the polynomial at any in-range binding equals the concrete model on the
//! concretized program — property-tested in this module and in the
//! dynamic-shape differential suite.

use crate::traffic::Traffic;
use souffle_affine::{sym_interval, SymAffine};
use souffle_te::sym::{Dim, DimPoly, DynProgram, SymBinding, SymId};

/// Largest number of integer bindings we will enumerate when resolving a
/// symbolic `min(...)` clamp; larger boxes fall back to concrete pricing.
const MAX_BOX_POINTS: usize = 1 << 16;

/// Modeled traffic with polynomial byte counts over the symbolic dims.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymTraffic {
    /// Bytes read from operand tensors, as a polynomial in the syms.
    pub read_bytes: DimPoly,
    /// Bytes written to output tensors, as a polynomial in the syms.
    pub write_bytes: DimPoly,
}

impl SymTraffic {
    /// Total bytes moved in either direction.
    pub fn total(&self) -> DimPoly {
        self.read_bytes.add(&self.write_bytes)
    }

    /// Concrete traffic at one binding.
    pub fn eval(&self, binding: &SymBinding) -> Traffic {
        Traffic {
            read_bytes: self.read_bytes.eval(binding).max(0) as u64,
            write_bytes: self.write_bytes.eval(binding).max(0) as u64,
        }
    }

    fn add(&mut self, other: &SymTraffic) {
        self.read_bytes = self.read_bytes.add(&other.read_bytes);
        self.write_bytes = self.write_bytes.add(&other.write_bytes);
    }
}

fn dim_affine(d: Dim, n: usize) -> SymAffine {
    match d {
        Dim::Fixed(c) => SymAffine::constant(c, n),
        Dim::Sym(s) => SymAffine::sym(s.0, n),
    }
}

fn affine_poly(a: &SymAffine) -> DimPoly {
    let mut p = DimPoly::constant(a.constant);
    for (i, &c) in a.coeffs.iter().enumerate() {
        if c != 0 {
            p = p.add(&DimPoly::sym(SymId(i)).scale(c));
        }
    }
    p
}

/// Every integer binding in the declared box, or `None` when the box is too
/// large to enumerate.
fn box_points(dp: &DynProgram) -> Option<Vec<SymBinding>> {
    let table = dp.table();
    let mut total: usize = 1;
    for decl in table.decls() {
        let span = (decl.max - decl.min + 1).max(1) as usize;
        total = total.checked_mul(span)?;
        if total > MAX_BOX_POINTS {
            return None;
        }
    }
    let mut points = vec![table.min_binding()];
    for id in table.ids() {
        let (lo, hi) = table.bounds(id);
        points = points
            .iter()
            .flat_map(|b| (lo..=hi).map(move |v| b.with(id, v)))
            .collect();
    }
    Some(points)
}

/// The candidate that is minimal at every probe point, if one dominates.
fn select_min(cands: &[DimPoly], points: &[SymBinding]) -> Option<DimPoly> {
    'cand: for (i, c) in cands.iter().enumerate() {
        for p in points {
            let v = c.eval(p);
            if cands
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && other.eval(p) < v)
            {
                continue 'cand;
            }
        }
        return Some(c.clone());
    }
    None
}

/// Prices one TE of the template as polynomials in the symbolic dims.
///
/// Mirrors [`crate::traffic::te_traffic`] exactly: the output is written
/// once; each body access contributes its distinct-element footprint with
/// the per-axis clamp resolved by whole-box dominance. Returns `None` when
/// an index interval saturates symbolically or no clamp branch dominates.
pub fn te_bytes_poly(dp: &DynProgram, te_index: usize) -> Option<SymTraffic> {
    let program = dp.base();
    let te = &program.tes()[te_index];
    let n = dp.table().len();
    let points = box_points(dp)?;

    let out = program.tensor(te.output);
    let out_dims = dp.tensor_dims(te.output.0);
    let mut write_poly = DimPoly::constant(1);
    for d in out_dims {
        write_poly = write_poly.mul(&d.poly());
    }
    write_poly = write_poly.scale(out.dtype.size_bytes() as i64);

    // Box domain with symbolic-affine endpoints: iteration vars from the
    // annotated output dims, then annotated reduction extents, then any
    // inline-fold binders (concrete) — mirroring the concrete walk.
    let mut bounds: Vec<(SymAffine, SymAffine)> = out_dims
        .iter()
        .chain(dp.reduce_dims(te_index).iter())
        .map(|&d| (SymAffine::constant(0, n), dim_affine(d, n).offset(-1)))
        .collect();
    if let Some(max_var) = te.body.max_var() {
        if bounds.len() <= max_var {
            bounds.resize(
                max_var + 1,
                (SymAffine::constant(0, n), SymAffine::constant(0, n)),
            );
        }
    }
    for (var, extent) in te.body.collect_folds() {
        bounds[var] = (
            SymAffine::constant(0, n),
            SymAffine::constant((extent - 1).max(0), n),
        );
    }
    // Every bound below has lo = 0 and hi >= 0, so the span is >= 1 and the
    // concrete model's `.max(1)` clamp is a no-op symbolically.
    let extent_poly = |v: usize| -> DimPoly {
        bounds.get(v).map_or(DimPoly::constant(1), |(lo, hi)| {
            affine_poly(&hi.sub(lo).offset(1))
        })
    };

    let mut read_poly = DimPoly::zero();
    for (operand, indices) in te.body.accesses() {
        let Some(&tensor_id) = te.inputs.get(operand) else {
            continue; // invalid program; reported by validation
        };
        let info = program.tensor(tensor_id);
        let op_dims = dp.tensor_dims(tensor_id.0);
        let mut numel = DimPoly::constant(1);
        for d in op_dims {
            numel = numel.mul(&d.poly());
        }
        let mut count = DimPoly::constant(1);
        for (axis, idx) in indices.iter().enumerate() {
            let mut var_prod = DimPoly::constant(1);
            let mut saturated = false;
            idx.for_each_var(&mut |v| {
                var_prod = var_prod.mul(&extent_poly(v));
                if bounds.get(v).is_none() {
                    saturated = true;
                }
            });
            if saturated {
                return None;
            }
            let (lo, hi) = sym_interval(idx, &bounds, n)?;
            let span = affine_poly(&hi.sub(&lo).offset(1));
            let axis_extent = if axis < op_dims.len() {
                op_dims[axis].poly()
            } else {
                DimPoly::constant(1) // rank mismatch; reported by validation
            };
            let axis_count = select_min(&[var_prod, span, axis_extent], &points)?;
            count = select_min(&[count.mul(&axis_count), numel.clone()], &points)?;
        }
        read_poly = read_poly.add(&count.scale(info.dtype.size_bytes() as i64));
    }
    Some(SymTraffic {
        read_bytes: read_poly,
        write_bytes: write_poly,
    })
}

/// Sums [`te_bytes_poly`] over every TE of the template, or `None` when any
/// TE falls outside the exactly-priceable fragment.
pub fn program_bytes_poly(dp: &DynProgram) -> Option<SymTraffic> {
    let mut t = SymTraffic {
        read_bytes: DimPoly::zero(),
        write_bytes: DimPoly::zero(),
    };
    for i in 0..dp.base().num_tes() {
        t.add(&te_bytes_poly(dp, i)?);
    }
    Some(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::program_traffic;
    use souffle_te::sym::{DynProgram, SymTable};
    use souffle_te::{builders, TeProgram};
    use souffle_tensor::{DType, Shape};

    fn dyn_matmul(max_rows: i64) -> DynProgram {
        let mut table = SymTable::new();
        let s = table.declare("rows", 1, max_rows);
        DynProgram::infer(table, &move |b| {
            let rows = b.get(s);
            let mut p = TeProgram::new();
            let a = p.add_input("A", Shape::new(vec![rows, 16]), DType::F32);
            let w = p.add_weight("W", Shape::new(vec![16, 4]), DType::F32);
            let c = builders::matmul(&mut p, "mm", a, w);
            p.mark_output(c);
            p
        })
        .unwrap()
    }

    #[test]
    fn matmul_poly_matches_concrete_model_at_every_length() {
        let dp = dyn_matmul(32);
        let sym = program_bytes_poly(&dp).expect("matmul is exactly priceable");
        // A reads s*16 elements, W reads 16*4, out writes s*4 — all f32.
        for rows in 1..=32 {
            let b = dp.table().bind(vec![rows]).unwrap();
            let concrete = program_traffic(&dp.concretize(&b));
            assert_eq!(sym.eval(&b), concrete, "rows = {rows}");
        }
        assert_eq!(sym.total().degree(), 1);
    }

    #[test]
    fn elementwise_chain_poly_is_linear_in_the_sym() {
        let mut table = SymTable::new();
        let s = table.declare("n", 1, 64);
        let dp = DynProgram::infer(table, &move |b| {
            let n = b.get(s);
            let mut p = TeProgram::new();
            let a = p.add_input("A", Shape::new(vec![n, 8]), DType::F32);
            let e = builders::exp(&mut p, "e", a);
            let r = builders::relu(&mut p, "r", e);
            p.mark_output(r);
            p
        })
        .unwrap();
        let sym = program_bytes_poly(&dp).unwrap();
        assert_eq!(sym.total().degree(), 1);
        for n in [1, 2, 3, 31, 64] {
            let b = dp.table().bind(vec![n]).unwrap();
            assert_eq!(sym.eval(&b), program_traffic(&dp.concretize(&b)));
        }
    }

    #[test]
    fn broadcast_footprint_stays_operand_sized_symbolically() {
        use souffle_affine::IndexExpr;
        use souffle_te::{ScalarExpr, TensorExpr, TensorKind};
        let mut table = SymTable::new();
        let s = table.declare("n", 1, 16);
        // out[i, j] = A[i]: the broadcast axis clamp must pick |A|, not
        // |out|, at every binding.
        let dp = DynProgram::infer(table, &move |b| {
            let n = b.get(s);
            let mut p = TeProgram::new();
            let a = p.add_input("A", Shape::new(vec![n]), DType::F32);
            let out = p.add_tensor("b", Shape::new(vec![n, 12]), DType::F32, TensorKind::Output);
            p.push_te(TensorExpr {
                name: "b".into(),
                output: out,
                inputs: vec![a],
                reduce: vec![],
                reduce_op: None,
                body: ScalarExpr::input(0, vec![IndexExpr::var(0)]),
            });
            p.mark_output(out);
            p
        })
        .unwrap();
        let sym = program_bytes_poly(&dp).unwrap();
        for n in 1..=16 {
            let b = dp.table().bind(vec![n]).unwrap();
            assert_eq!(sym.eval(&b), program_traffic(&dp.concretize(&b)));
        }
    }

    #[test]
    fn bert_template_prices_or_falls_back_consistently() {
        // Whatever the symbolic model can price on the real encoder
        // template must agree with the concrete model everywhere; TEs it
        // cannot price must return None rather than a wrong polynomial.
        let dp = dyn_matmul(8);
        for i in 0..dp.base().num_tes() {
            if let Some(t) = te_bytes_poly(&dp, i) {
                for rows in 1..=8 {
                    let b = dp.table().bind(vec![rows]).unwrap();
                    let concrete =
                        crate::traffic::te_traffic(&dp.concretize(&b), &dp.concretize(&b).tes()[i]);
                    assert_eq!(t.eval(&b), concrete);
                }
            }
        }
    }
}
