//! Reduction fusion: data-movement-aware fusion *through* reductions.
//!
//! Vertical transformation (§6.2) stops at one-relies-on-many edges: a
//! reduction's output is a genuinely smaller tensor, so classic inlining
//! would duplicate a whole reduction per consumer element. This pass
//! crosses that frontier for the common broadcast-consumption pattern —
//! a softmax denominator, a layernorm mean/variance — where an
//! element-wise consumer re-reads the reduced value once per element of
//! the reduced slice:
//!
//! ```text
//! den[i]    = sum_k exp_t[i, k]          // reduction TE
//! out[i, j] = exp_t[i, j] / den[i]       // broadcast consumer
//! ```
//!
//! becomes a single TE whose body carries the reduction *inline* as a
//! scoped fold (`ScalarExpr::Reduce`):
//!
//! ```text
//! out[i, j] = exp_t[i, j] / fold_sum(k < n, exp_t[i, k])
//! ```
//!
//! The `den` tensor never exists: no store of the reduction, no re-load
//! by the consumer. The price is recomputation — the fold re-reads the
//! reduction's operands from the consumer's loop — which the evaluator
//! amortizes by caching a fold's value while the variables it depends on
//! are unchanged, so a slice-invariant fold runs once per slice, exactly
//! the tiling-with-recomputation schedule of hand-written fused softmax
//! kernels.
//!
//! # Candidate shape
//!
//! A reduction is a candidate only when **every** reader is an
//! element-wise TE whose accesses to the reduction output do not mention
//! the reader's innermost iteration variable ("re-indexes only along the
//! reduced slice"). Two reasons, one per half of the rule:
//!
//! - *All* readers, because if any reader keeps the tensor materialized
//!   the store is paid anyway and fusion only adds recomputation.
//! - *Innermost-invariant* accesses, because that is where the reuse is:
//!   the fold's value is shared across the whole inner loop, so the
//!   cached fold recomputes once per slice. An access that varies along
//!   the innermost axis (a matmul output read element-wise) has no reuse
//!   to exploit — and keeping such reductions standalone preserves their
//!   specialized kernels (`row_dot`/`slice_dot`), which inline folds
//!   forgo.
//!
//! # Cost gate
//!
//! Every candidate is then priced with the bytes-moved model
//! ([`crate::traffic`]): the rewrite commits only when the modeled
//! traffic of the rewritten TEs drops below the original's. The classic
//! rejection is a reduction with several consumers over a wide slice:
//! each fused consumer re-reads the whole slice, and recomputation dwarfs
//! the store it saves.
//!
//! # Exactness
//!
//! Only single-axis reductions are fused, and a fold's combine order
//! (ascending binder) is identical to the standalone reduction
//! odometer's, so each fused output element sees exactly the float
//! operations of the unfused program in the same order — the rewrite is
//! bit-exact, and the pipeline oracle re-checks it per stage.

use crate::rewrite::{compact_inputs, dedup_inputs, rebuild_program};
use crate::traffic::te_traffic;
use souffle_affine::IndexExpr;
use souffle_te::{Rewrite, RewriteLog, ScalarExpr, TeProgram, TensorExpr, TensorId, TensorKind};

/// Environment variable overriding the pipeline's reduction-fusion stage:
/// `on`/`1`/`true` forces it, `off`/`0`/`false` disables it. Unset (or
/// unparseable) means auto, which is on. An explicit
/// `SouffleOptions::reduction_fusion` beats the environment (mirroring the
/// kernel-tier knob), so CI can sweep the stage across whole differential
/// suites without touching call sites.
pub const REDUCTION_FUSION_ENV: &str = "SOUFFLE_REDUCTION_FUSION";

/// The `SOUFFLE_REDUCTION_FUSION` override, if set and parseable.
pub fn env_reduction_fusion() -> Option<bool> {
    match std::env::var(REDUCTION_FUSION_ENV)
        .ok()?
        .trim()
        .to_ascii_lowercase()
        .as_str()
    {
        "on" | "1" | "true" => Some(true),
        "off" | "0" | "false" => Some(false),
        _ => None,
    }
}

/// Counters for one reduction-fusion run, surfaced as `fusion.*` on the
/// trace spine and in `Souffle::report()`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Reductions whose whole reader set was eligible for inlining.
    pub candidates: usize,
    /// Candidates committed (the reduction TE disappeared).
    pub fused: usize,
    /// Candidates rejected because modeled bytes moved did not drop.
    pub rejected_by_cost: usize,
    /// Total modeled bytes saved by the committed fusions.
    pub bytes_saved: u64,
    /// TEs before the pass.
    pub tes_before: usize,
    /// TEs after the pass.
    pub tes_after: usize,
}

impl FusionStats {
    /// Folds another run's counters into this one.
    pub fn merge(&mut self, other: &FusionStats) {
        self.candidates += other.candidates;
        self.fused += other.fused;
        self.rejected_by_cost += other.rejected_by_cost;
        self.bytes_saved += other.bytes_saved;
    }
}

/// Fuses single-axis reductions into their broadcast consumers where the
/// bytes-moved model approves. Returns the rewritten program and the
/// fusion counters.
pub fn reduction_fuse_program(program: &TeProgram) -> (TeProgram, FusionStats) {
    let mut log = RewriteLog::new();
    reduction_fuse_program_logged(program, &mut log)
}

/// Like [`reduction_fuse_program`], additionally recording every committed
/// fold inlining in `log` for the translation-validation pass.
pub fn reduction_fuse_program_logged(
    program: &TeProgram,
    log: &mut RewriteLog,
) -> (TeProgram, FusionStats) {
    let mut tes: Vec<TensorExpr> = program.tes().to_vec();
    let mut stats = FusionStats {
        tes_before: tes.len(),
        ..FusionStats::default()
    };

    // Examine reductions in program order. Committed fusions remove the
    // reduction TE and rewrite its consumers in place; the reader set is
    // rebuilt per candidate (programs are small post-vertical).
    let mut ri = 0usize;
    while ri < tes.len() {
        if !is_fusable_reduction(program, &tes[ri]) {
            ri += 1;
            continue;
        }
        let red_out = tes[ri].output;
        let readers: Vec<usize> = tes
            .iter()
            .enumerate()
            .filter(|(i, te)| *i != ri && te.inputs.contains(&red_out))
            .map(|(i, _)| i)
            .collect();
        if readers.is_empty()
            || !readers
                .iter()
                .all(|&c| eligible_consumer(program, &tes[c], red_out))
        {
            ri += 1;
            continue;
        }
        stats.candidates += 1;

        // Rewrite each reader against the fold-inlined reduction body and
        // price the before/after traffic of the affected TEs.
        let reduction = tes[ri].clone();
        let mut before = te_traffic(program, &reduction);
        let mut after_total = 0u64;
        let mut rewritten: Vec<(usize, TensorExpr)> = Vec::with_capacity(readers.len());
        for &c in &readers {
            before.add(te_traffic(program, &tes[c]));
            let fused = inline_reduction(program, &reduction, &tes[c]);
            after_total += te_traffic(program, &fused).total();
            rewritten.push((c, fused));
        }
        if after_total >= before.total() {
            stats.rejected_by_cost += 1;
            ri += 1;
            continue;
        }
        stats.bytes_saved += before.total() - after_total;
        stats.fused += 1;
        for (c, fused) in rewritten {
            log.push(Rewrite::ReductionFused {
                reduction_output: red_out,
                consumer_output: fused.output,
                extent: reduction.reduce[0],
                op: reduction.reduce_op.expect("validated reduction"),
            });
            tes[c] = fused;
        }
        tes.remove(ri);
        // Do not advance: the TE now at `ri` has not been examined.
    }

    stats.tes_after = tes.len();
    (rebuild_program(program, tes), stats)
}

/// Whether a TE is a reduction this pass can inline: single reduction
/// axis, an intermediate (non-output) result, and a fold-free body (a
/// body with folds would need capture-safe renaming on inline; such
/// bodies only arise from this pass, which never leaves a fusable
/// reduction behind them).
fn is_fusable_reduction(program: &TeProgram, te: &TensorExpr) -> bool {
    te.reduce.len() == 1
        && te.reduce_op.is_some()
        && !te.body.has_fold()
        && program.tensor(te.output).kind == TensorKind::Intermediate
}

/// Whether a reader TE may absorb the reduction as an inline fold:
/// element-wise, and every access to the reduction output is invariant
/// along the reader's innermost iteration variable (broadcast
/// consumption — see the module docs for why both halves matter).
fn eligible_consumer(program: &TeProgram, te: &TensorExpr, red_out: TensorId) -> bool {
    if !te.reduce.is_empty() {
        return false;
    }
    let rank = program.tensor(te.output).shape.rank();
    if rank == 0 {
        return false;
    }
    let innermost = rank - 1;
    let mut reads = false;
    for (slot, indices) in te.body.accesses() {
        if te.inputs.get(slot) != Some(&red_out) {
            continue;
        }
        reads = true;
        let mut mentions_innermost = false;
        for idx in indices {
            idx.for_each_var(&mut |v| {
                if v == innermost {
                    mentions_innermost = true;
                }
            });
        }
        if mentions_innermost {
            return false;
        }
    }
    reads
}

/// Builds the consumer with every read of the reduction's output replaced
/// by an inline fold of the reduction body.
fn inline_reduction(
    program: &TeProgram,
    reduction: &TensorExpr,
    consumer: &TensorExpr,
) -> TensorExpr {
    let mut out = consumer.clone();
    let slot = consumer
        .inputs
        .iter()
        .position(|&t| t == reduction.output)
        .expect("consumer reads the reduction");

    // The fold binder must clear the consumer's whole variable space:
    // its iteration variables (the consumer is element-wise, so that is
    // its output rank) and any binders from previously fused folds.
    let consumer_rank = program.tensor(consumer.output).shape.rank();
    let binder = consumer_rank.max(consumer.body.max_var().map_or(0, |m| m + 1));

    // Rename the reduction variable to the binder; iteration variables
    // stay 0..rank — inline_operand substitutes them with each access's
    // index expressions (which only mention consumer variables below the
    // binder, so no capture is possible).
    let r_rank = program.tensor(reduction.output).shape.rank();
    let mut rename: Vec<IndexExpr> = (0..r_rank).map(IndexExpr::var).collect();
    rename.push(IndexExpr::var(binder));
    let base = out.inputs.len();
    let renamed = reduction.body.substitute(&rename, &|o| o + base);
    let folded = ScalarExpr::fold(
        reduction.reduce_op.expect("validated reduction"),
        binder,
        reduction.reduce[0],
        renamed,
    );

    out.inputs.extend(reduction.inputs.iter().copied());
    out.body = out.body.inline_operand(slot, &folded);
    dedup_inputs(&mut out);
    compact_inputs(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::program_traffic;
    use crate::vertical_fuse_program;
    use souffle_te::interp::eval_with_random_inputs;
    use souffle_te::{builders, ReduceOp};
    use souffle_tensor::{DType, Shape};

    fn assert_bit_identical(before: &TeProgram, after: &TeProgram, seed: u64) {
        before.validate().expect("before validates");
        after.validate().expect("after validates");
        let o1 = eval_with_random_inputs(before, seed).expect("before evals");
        let o2 = eval_with_random_inputs(after, seed).expect("after evals");
        assert_eq!(o1.len(), o2.len());
        for (id, t1) in &o1 {
            let t2 = &o2[id];
            for (x, y) in t1.data().iter().zip(t2.data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "output {id}");
            }
        }
    }

    /// All fold binders in a body are distinct and above the free space.
    fn binders_are_disjoint(body: &ScalarExpr) -> bool {
        let folds = body.collect_folds();
        let free_max = body.max_free_var().map_or(0, |m| m + 1);
        let mut seen = std::collections::HashSet::new();
        folds
            .iter()
            .all(|&(var, _)| var >= free_max && seen.insert(var))
    }

    #[test]
    fn softmax_denominator_folds_into_div() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![16, 64]), DType::F32);
        let s = builders::softmax(&mut p, "sm", a);
        p.mark_output(s);
        let (v, _) = vertical_fuse_program(&p);
        let (q, stats) = reduction_fuse_program(&v);
        // Both the row max and the row sum disappear.
        assert_eq!(stats.fused, 2, "{stats:?}");
        assert_eq!(q.num_tes(), v.num_tes() - 2, "{q}");
        assert!(stats.bytes_saved > 0);
        let names: Vec<&str> = q.tes().iter().map(|te| te.name.as_str()).collect();
        assert!(!names.iter().any(|n| n.ends_with(".max")), "{names:?}");
        assert!(!names.iter().any(|n| n.ends_with(".sum")), "{names:?}");
        assert_bit_identical(&v, &q, 42);
        // Modeled program traffic drops by exactly the reported savings.
        let t_before = program_traffic(&v).total();
        let t_after = program_traffic(&q).total();
        assert_eq!(t_before - t_after, stats.bytes_saved);
    }

    #[test]
    fn layer_norm_moments_fold_into_consumers() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![8, 128]), DType::F32);
        let gamma = p.add_weight("G", Shape::new(vec![128]), DType::F32);
        let beta = p.add_weight("B", Shape::new(vec![128]), DType::F32);
        let n = builders::layer_norm(&mut p, "ln", a, gamma, beta, 1e-5);
        p.mark_output(n);
        let (v, _) = vertical_fuse_program(&p);
        let (q, stats) = reduction_fuse_program(&v);
        assert!(stats.fused >= 2, "mean and variance sums: {stats:?}");
        assert!(q.num_tes() < v.num_tes());
        assert_bit_identical(&v, &q, 7);
        for te in q.tes() {
            assert!(binders_are_disjoint(&te.body), "{}", te.name);
        }
    }

    #[test]
    fn matmul_read_along_innermost_is_not_a_candidate() {
        // relu reads mm[i, j] — the access varies along the consumer's
        // innermost axis, so there is no per-slice reuse and the GEMM
        // keeps its standalone (kernel-tier) form.
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![32, 32]), DType::F32);
        let w = p.add_weight("W", Shape::new(vec![32, 32]), DType::F32);
        let m = builders::matmul(&mut p, "mm", a, w);
        let r = builders::relu(&mut p, "act", m);
        p.mark_output(r);
        let (q, stats) = reduction_fuse_program(&p);
        assert_eq!(stats.candidates, 0, "{stats:?}");
        assert_eq!(stats.fused, 0, "{stats:?}");
        assert_eq!(q.num_tes(), p.num_tes());
    }

    #[test]
    fn wide_slice_with_many_consumers_is_rejected_by_cost() {
        // One row-sum feeding three broadcast consumers: each fused copy
        // would re-read the whole 4x256 slice, tripling reads to save a
        // 4-element store. The cost gate must refuse.
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4, 256]), DType::F32);
        let s = builders::reduce_last(&mut p, "s", ReduceOp::Sum, a);
        let mut outs = Vec::new();
        for i in 0..3 {
            let d = p.add_te(
                &format!("c{i}"),
                Shape::new(vec![4, 256]),
                DType::F32,
                vec![a, s],
                vec![],
                None,
                ScalarExpr::binary(
                    souffle_te::BinaryOp::Div,
                    ScalarExpr::input(0, vec![IndexExpr::var(0), IndexExpr::var(1)]),
                    ScalarExpr::input(1, vec![IndexExpr::var(0)]),
                ),
            );
            outs.push(d);
        }
        for o in outs {
            p.mark_output(o);
        }
        let (q, stats) = reduction_fuse_program(&p);
        assert_eq!(stats.candidates, 1, "{stats:?}");
        assert_eq!(stats.rejected_by_cost, 1, "{stats:?}");
        assert_eq!(stats.fused, 0);
        assert_eq!(q.num_tes(), p.num_tes());
    }

    #[test]
    fn reduction_feeding_a_reduction_is_not_a_candidate() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4, 8]), DType::F32);
        let s1 = builders::reduce_last(&mut p, "s1", ReduceOp::Sum, a);
        let s2 = builders::reduce_last(&mut p, "s2", ReduceOp::Sum, s1);
        p.mark_output(s2);
        let (q, stats) = reduction_fuse_program(&p);
        assert_eq!(stats.candidates, 0, "{stats:?}");
        assert_eq!(q.num_tes(), p.num_tes());
    }

    #[test]
    fn output_reductions_stay_materialized() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4, 64]), DType::F32);
        let e = builders::exp(&mut p, "e", a);
        let s = builders::reduce_last(&mut p, "den", ReduceOp::Sum, e);
        let d = p.add_te(
            "d",
            Shape::new(vec![4, 64]),
            DType::F32,
            vec![e, s],
            vec![],
            None,
            ScalarExpr::binary(
                souffle_te::BinaryOp::Div,
                ScalarExpr::input(0, vec![IndexExpr::var(0), IndexExpr::var(1)]),
                ScalarExpr::input(1, vec![IndexExpr::var(0)]),
            ),
        );
        p.mark_output(s); // the denominator itself is requested
        p.mark_output(d);
        let (q, stats) = reduction_fuse_program(&p);
        assert_eq!(stats.candidates, 0, "{stats:?}");
        assert_eq!(q.num_tes(), p.num_tes());
    }

    #[test]
    fn idempotent_at_fixpoint() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![16, 64]), DType::F32);
        let s = builders::softmax(&mut p, "sm", a);
        p.mark_output(s);
        let (v, _) = vertical_fuse_program(&p);
        let (q1, s1) = reduction_fuse_program(&v);
        let (q2, s2) = reduction_fuse_program(&q1);
        assert!(s1.fused > 0);
        assert_eq!(s2.fused, 0, "{s2:?}");
        assert_eq!(q1.num_tes(), q2.num_tes());
    }
}
