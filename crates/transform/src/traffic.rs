//! Bytes-moved cost model for fusion decisions.
//!
//! Estimates the global-memory traffic a TE program generates by walking
//! each body's access maps over the TE's box domain with interval
//! arithmetic — the same strength-reduced affine structure the compiler's
//! stride tables are built from. The model prices a *cache-resident slice*
//! execution: each access contributes its distinct-element footprint, not
//! its dynamic load count, which matches how the VM's fold cache executes
//! inline reductions (a slice-invariant fold body runs once per slice, so
//! it touches each operand element once — see `souffle_te`'s fold
//! evaluation).
//!
//! The reduction-fusion pass ([`crate::reduction`]) uses the model as its
//! gate: a candidate is fused only when the modeled bytes moved by the
//! rewritten TEs drop below the original's. The absolute numbers are also
//! cross-checked against the `gpusim` memory-hierarchy totals in tests, so
//! the model stays anchored to the simulator rather than drifting into a
//! private currency.

use souffle_te::{TeProgram, TensorExpr};

/// Modeled bytes moved through global memory, split by direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Traffic {
    /// Bytes read from operand tensors (distinct-footprint estimate).
    pub read_bytes: u64,
    /// Bytes written to output tensors.
    pub write_bytes: u64,
}

impl Traffic {
    /// Total bytes moved in either direction.
    pub fn total(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }

    /// Accumulates another estimate into this one.
    pub fn add(&mut self, other: Traffic) {
        self.read_bytes += other.read_bytes;
        self.write_bytes += other.write_bytes;
    }
}

/// Models one TE's traffic: the full output is written once; every body
/// access contributes the number of distinct operand elements its index
/// expressions can address over the box domain (iteration × reduction ×
/// fold-binder extents), clamped per axis by both the interval span and
/// the operand extent, and overall by the operand size.
pub fn te_traffic(program: &TeProgram, te: &TensorExpr) -> Traffic {
    let out = program.tensor(te.output);
    let mut t = Traffic {
        read_bytes: 0,
        write_bytes: out.shape.numel().max(0) as u64 * out.dtype.size_bytes(),
    };

    // Box domain: iteration vars from the output shape, reduction vars,
    // then any inline-fold binders (gaps degenerate).
    let mut bounds: Vec<(i64, i64)> = out
        .shape
        .dims()
        .iter()
        .chain(te.reduce.iter())
        .map(|&b| (0, (b - 1).max(0)))
        .collect();
    if let Some(max_var) = te.body.max_var() {
        if bounds.len() <= max_var {
            bounds.resize(max_var + 1, (0, 0));
        }
    }
    for (var, extent) in te.body.collect_folds() {
        bounds[var] = (0, (extent - 1).max(0));
    }
    let extent_of = |v: usize| bounds.get(v).map_or(1, |&(lo, hi)| (hi - lo + 1).max(1));

    for (operand, indices) in te.body.accesses() {
        let Some(&tensor_id) = te.inputs.get(operand) else {
            continue; // invalid program; reported by validation
        };
        let info = program.tensor(tensor_id);
        let numel = info.shape.numel().max(1);
        let mut count: i64 = 1;
        for (axis, idx) in indices.iter().enumerate() {
            // Distinct values this axis coordinate takes: at most the
            // product of the extents of the variables it reads, at most
            // its interval span, at most the axis extent.
            let mut var_prod: i64 = 1;
            idx.for_each_var(&mut |v| {
                var_prod = var_prod.saturating_mul(extent_of(v));
            });
            let (lo, hi) = idx.interval(&bounds);
            let span = hi.saturating_sub(lo).saturating_add(1).max(1);
            let axis_extent = if axis < info.shape.rank() {
                info.shape.dim(axis).max(1)
            } else {
                1 // rank mismatch; reported by validation
            };
            let axis_count = var_prod.min(span).min(axis_extent);
            count = count.saturating_mul(axis_count).min(numel);
        }
        t.read_bytes += count as u64 * info.dtype.size_bytes();
    }
    t
}

/// Sums [`te_traffic`] over every TE of the program.
pub fn program_traffic(program: &TeProgram) -> Traffic {
    let mut t = Traffic::default();
    for te in program.tes() {
        t.add(te_traffic(program, te));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use souffle_te::builders;
    use souffle_tensor::{DType, Shape};

    #[test]
    fn matmul_traffic_counts_both_factors_once() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![8, 16]), DType::F32);
        let b = p.add_weight("B", Shape::new(vec![16, 4]), DType::F32);
        let c = builders::matmul(&mut p, "mm", a, b);
        p.mark_output(c);
        let t = te_traffic(&p, &p.tes()[0]);
        // A[i, k]: 8*16 elements; B[k, j]: 16*4; out 8*4 — all f32.
        assert_eq!(t.read_bytes, (8 * 16 + 16 * 4) * 4);
        assert_eq!(t.write_bytes, 8 * 4 * 4);
    }

    #[test]
    fn broadcast_read_is_footprint_not_loads() {
        // out[i, j] = A[i] broadcast along j: footprint is |A|, not
        // |out| loads.
        use souffle_affine::IndexExpr;
        use souffle_te::{ScalarExpr, TensorExpr, TensorKind};
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![8]), DType::F32);
        let out = p.add_tensor("b", Shape::new(vec![8, 16]), DType::F32, TensorKind::Output);
        p.push_te(TensorExpr {
            name: "b".into(),
            output: out,
            inputs: vec![a],
            reduce: vec![],
            reduce_op: None,
            body: ScalarExpr::input(0, vec![IndexExpr::var(0)]),
        });
        let t = te_traffic(&p, &p.tes()[0]);
        assert_eq!(t.read_bytes, 8 * 4);
        assert_eq!(t.write_bytes, 8 * 16 * 4);
    }

    #[test]
    fn strided_slice_footprint_clamps_to_span() {
        // out[i] = A[2*i] over i<4 from |A|=8: span is 0..=6, variable
        // extent 4 — the tighter of the two (4) wins.
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![8]), DType::F32);
        let s = builders::strided_slice(&mut p, "s", a, 0, 0, 2, 4);
        p.mark_output(s);
        let t = te_traffic(&p, &p.tes()[0]);
        assert_eq!(t.read_bytes, 4 * 4);
    }

    #[test]
    fn program_traffic_sums_tes() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4, 8]), DType::F32);
        let e = builders::exp(&mut p, "e", a);
        let r = builders::relu(&mut p, "r", e);
        p.mark_output(r);
        let t = program_traffic(&p);
        assert_eq!(t.read_bytes, 2 * 32 * 4);
        assert_eq!(t.write_bytes, 2 * 32 * 4);
    }
}
