//! Batch transformation for serving: rewrites a TE program for a fixed
//! batch size `B` by giving every non-weight tensor a leading batch
//! dimension.
//!
//! The serving layer (`souffle-serve`) compiles one variant of each model
//! per batch *bucket* (1/2/4/8) instead of threading a dynamic batch
//! dimension through the frontend builders — the bucketed-variant
//! approach of Vortex (see PAPERS.md). This module is the rewrite behind
//! those variants.
//!
//! The transformation is intentionally *not* semantic-preserving in the
//! oracle's usual sense (shapes change); its contract is **batch
//! invariance**: slice `b` of every output of the batched program is
//! bit-identical to running the original program alone on request `b`'s
//! inputs. That holds by construction:
//!
//! - every non-weight tensor's shape becomes `[B, ...dims]`; weights keep
//!   their shape and are shared across the batch;
//! - every TE body keeps its arithmetic untouched — index variables are
//!   shifted up by one (`v_i → v_{i+1}`, making room for the new batch
//!   iteration variable `v_0`) and accesses to batched operands gain
//!   `v_0` as their leading index;
//! - no access ever crosses the batch boundary (the *only* index
//!   expression on a batch axis is exactly `v_0`), so element `b` of the
//!   output depends only on slice `b` of the inputs, computed by the same
//!   float operations in the same order as the unbatched program.
//!
//! The batch-invariance contract is enforced by the testkit oracle's
//! `Stage::BatchedServe` and by `tests/serve_differential.rs` across all
//! six models and every bucket.

use souffle_affine::IndexExpr;
use souffle_te::{Rewrite, RewriteLog, ScalarExpr, TeProgram, TensorExpr, TensorId, TensorKind};
use souffle_tensor::{Shape, Tensor};
use std::collections::HashMap;

/// Rewrites `program` for batch size `batch`: every non-weight tensor
/// gains a leading batch dimension, every TE iterates the batch axis as
/// its outermost iteration variable. Tensor ids are unchanged (the tensor
/// table is copied in order), so bindings and outputs of the original
/// program map 1:1 onto the batched one.
///
/// # Panics
///
/// Panics if `batch < 1`. Expects a validated program (the rewrite of an
/// invalid body may panic on out-of-range variables).
pub fn batch_program(program: &TeProgram, batch: i64) -> TeProgram {
    let mut log = RewriteLog::new();
    batch_program_logged(program, batch, &mut log)
}

/// Like [`batch_program`], additionally recording the batch rewrite in
/// `log` for the translation-validation pass.
pub fn batch_program_logged(program: &TeProgram, batch: i64, log: &mut RewriteLog) -> TeProgram {
    assert!(batch >= 1, "batch size must be >= 1, got {batch}");
    log.push(Rewrite::Batched { batch });
    let mut out = TeProgram::new();
    for t in program.tensors() {
        let shape = if t.kind == TensorKind::Weight {
            t.shape.clone()
        } else {
            let mut dims = Vec::with_capacity(t.shape.rank() + 1);
            dims.push(batch);
            dims.extend_from_slice(t.shape.dims());
            Shape::new(dims)
        };
        out.add_tensor(&t.name, shape, t.dtype, t.kind);
    }
    for te in program.tes() {
        let out_rank = program.tensor(te.output).shape.rank();
        let n_vars = out_rank + te.reduce.len();
        // v_i → v_{i+1}: the batch variable becomes v_0, iteration and
        // reduction variables keep their relative order (the batched
        // output has rank out_rank + 1, so reduction variables still
        // start right after the iteration variables). Size the shift
        // through any inline-fold binders (which live above n_vars) so
        // they move up with the rest and stay collision-free.
        let n_shift = n_vars.max(te.body.max_var().map_or(0, |m| m + 1));
        let shift: Vec<IndexExpr> = (1..=n_shift).map(IndexExpr::var).collect();
        let shifted = te.body.substitute(&shift, &|op| op);
        let body = prepend_batch_index(&shifted, &|op| {
            program.tensor(te.inputs[op]).kind != TensorKind::Weight
        });
        out.push_te(TensorExpr {
            name: te.name.clone(),
            output: te.output,
            inputs: te.inputs.clone(),
            reduce: te.reduce.clone(),
            reduce_op: te.reduce_op,
            body,
        });
    }
    out
}

/// Inserts `v_0` as the leading index of every access whose operand is
/// batched. Called on a body whose variables are already shifted, so `v_0`
/// is free for the batch axis. Conditions need no rewrite beyond the shift:
/// they index the iteration space, not tensors.
fn prepend_batch_index(body: &ScalarExpr, batched: &dyn Fn(usize) -> bool) -> ScalarExpr {
    match body {
        ScalarExpr::Const(c) => ScalarExpr::Const(*c),
        ScalarExpr::IndexValue(e) => ScalarExpr::IndexValue(e.clone()),
        ScalarExpr::Input { operand, indices } => {
            let mut indices = indices.clone();
            if batched(*operand) {
                indices.insert(0, IndexExpr::var(0));
            }
            ScalarExpr::Input {
                operand: *operand,
                indices,
            }
        }
        ScalarExpr::Unary(op, a) => {
            ScalarExpr::Unary(*op, Box::new(prepend_batch_index(a, batched)))
        }
        ScalarExpr::Binary(op, a, b) => ScalarExpr::Binary(
            *op,
            Box::new(prepend_batch_index(a, batched)),
            Box::new(prepend_batch_index(b, batched)),
        ),
        ScalarExpr::Select {
            cond,
            on_true,
            on_false,
        } => ScalarExpr::Select {
            cond: cond.clone(),
            on_true: Box::new(prepend_batch_index(on_true, batched)),
            on_false: Box::new(prepend_batch_index(on_false, batched)),
        },
        ScalarExpr::Reduce {
            op,
            var,
            extent,
            body,
        } => ScalarExpr::Reduce {
            op: *op,
            var: *var,
            extent: *extent,
            body: Box::new(prepend_batch_index(body, batched)),
        },
    }
}

/// Stacks same-shaped tensors along a new leading batch axis.
///
/// # Panics
///
/// Panics on an empty slice or mismatched shapes/dtypes.
pub fn stack_tensors(parts: &[&Tensor]) -> Tensor {
    let first = parts.first().expect("stack_tensors needs >= 1 tensor");
    let mut dims = Vec::with_capacity(first.shape().rank() + 1);
    dims.push(parts.len() as i64);
    dims.extend_from_slice(first.shape().dims());
    let mut data = Vec::with_capacity(first.data().len() * parts.len());
    for p in parts {
        assert_eq!(p.shape(), first.shape(), "stacked tensors must agree");
        assert_eq!(p.dtype(), first.dtype(), "stacked tensors must agree");
        data.extend_from_slice(p.data());
    }
    Tensor::from_parts(Shape::new(dims), first.dtype(), data)
}

/// Splits a batched tensor back into its per-request slices (the inverse
/// of [`stack_tensors`]).
///
/// # Panics
///
/// Panics on a rank-0 tensor.
pub fn split_batch(t: &Tensor) -> Vec<Tensor> {
    let dims = t.shape().dims();
    assert!(!dims.is_empty(), "split_batch needs a batch axis");
    let b = dims[0] as usize;
    let inner = Shape::new(dims[1..].to_vec());
    let n = inner.numel() as usize;
    (0..b)
        .map(|i| {
            Tensor::from_parts(
                inner.clone(),
                t.dtype(),
                t.data()[i * n..(i + 1) * n].to_vec(),
            )
        })
        .collect()
}

/// Builds bindings for the batched program from per-request bindings of
/// the original: non-weight free tensors are stacked in request order,
/// weights are taken from the first request (they are shared — callers
/// must bind identical weights on every request).
///
/// # Panics
///
/// Panics when a request misses a binding (serve validates at admission;
/// the oracle constructs bindings itself).
pub fn batch_bindings(
    program: &TeProgram,
    requests: &[&HashMap<TensorId, Tensor>],
) -> HashMap<TensorId, Tensor> {
    assert!(!requests.is_empty(), "batch_bindings needs >= 1 request");
    let mut out = HashMap::new();
    for id in program.free_tensors() {
        let info = program.tensor(id);
        let get = |r: &HashMap<TensorId, Tensor>| -> Tensor {
            r.get(&id)
                .unwrap_or_else(|| panic!("request misses binding for {} ({id})", info.name))
                .clone()
        };
        if info.kind == TensorKind::Weight {
            out.insert(id, get(requests[0]));
        } else {
            let parts: Vec<&Tensor> = requests
                .iter()
                .map(|r| {
                    r.get(&id).unwrap_or_else(|| {
                        panic!("request misses binding for {} ({id})", info.name)
                    })
                })
                .collect();
            out.insert(id, stack_tensors(&parts));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use souffle_te::interp::{eval_program, random_bindings};
    use souffle_te::{builders, compile_program};
    use souffle_tensor::DType;

    /// mm → softmax over a weight, plus a positional-encoding add: covers
    /// reductions, Select guards (softmax), IndexValue, and a shared
    /// weight.
    fn sample() -> TeProgram {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4, 6]), DType::F32);
        let w = p.add_weight("W", Shape::new(vec![6, 5]), DType::F32);
        let mm = builders::matmul(&mut p, "mm", a, w);
        let sm = builders::softmax(&mut p, "sm", mm);
        p.mark_output(sm);
        p.validate().unwrap();
        p
    }

    #[test]
    fn batched_program_validates_and_keeps_ids() {
        let p = sample();
        for b in [1, 2, 4, 8] {
            let bp = batch_program(&p, b);
            bp.validate().unwrap_or_else(|e| panic!("batch {b}: {e}"));
            assert_eq!(bp.num_tensors(), p.num_tensors());
            assert_eq!(bp.num_tes(), p.num_tes());
            assert_eq!(bp.outputs(), p.outputs());
            for id in p.free_tensors() {
                let (orig, batched) = (p.tensor(id), bp.tensor(id));
                if orig.kind == TensorKind::Weight {
                    assert_eq!(orig.shape, batched.shape, "weights stay unbatched");
                } else {
                    assert_eq!(batched.shape.dim(0), b);
                    assert_eq!(&batched.shape.dims()[1..], orig.shape.dims());
                }
            }
        }
    }

    #[test]
    fn batch_slices_are_bit_identical_to_per_request_eval() {
        let p = sample();
        let b = 4usize;
        // Distinct inputs per request, one shared weight set.
        let shared = random_bindings(&p, 100);
        let requests: Vec<HashMap<TensorId, Tensor>> = (0..b)
            .map(|i| {
                let mut r = random_bindings(&p, 200 + i as u64);
                for id in p.free_tensors() {
                    if p.tensor(id).kind == TensorKind::Weight {
                        r.insert(id, shared[&id].clone());
                    }
                }
                r
            })
            .collect();
        let refs: Vec<&HashMap<TensorId, Tensor>> = requests.iter().collect();
        let bp = batch_program(&p, b as i64);
        let stacked = batch_bindings(&p, &refs);
        let got = compile_program(&bp).eval(&stacked).unwrap();
        for (i, req) in requests.iter().enumerate() {
            let want = eval_program(&p, req).unwrap();
            for id in p.outputs() {
                let slices = split_batch(&got[&id]);
                assert_eq!(slices.len(), b);
                assert_eq!(slices[i].shape(), want[&id].shape());
                for (x, y) in want[&id].data().iter().zip(slices[i].data()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "request {i} output {id}");
                }
            }
        }
    }

    #[test]
    fn stack_and_split_roundtrip() {
        let t0 = Tensor::random(Shape::new(vec![2, 3]), 1);
        let t1 = Tensor::random(Shape::new(vec![2, 3]), 2);
        let stacked = stack_tensors(&[&t0, &t1]);
        assert_eq!(stacked.shape().dims(), &[2, 2, 3]);
        let parts = split_batch(&stacked);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].data(), t0.data());
        assert_eq!(parts[1].data(), t1.data());
    }

    #[test]
    #[should_panic(expected = "batch size must be >= 1")]
    fn zero_batch_panics() {
        batch_program(&sample(), 0);
    }
}
