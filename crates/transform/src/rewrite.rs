//! Shared program-rewriting machinery for the transformations.

use souffle_te::{ScalarExpr, TeProgram, TensorExpr, TensorId};
use std::collections::{HashMap, HashSet};

/// Statistics of a transformation run, used by the ablation study
/// (Table 4) and by tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransformStats {
    /// Number of producer-into-consumer inlinings performed.
    pub vertical_fused: usize,
    /// Number of horizontal groups merged.
    pub horizontal_groups: usize,
    /// TEs before the transformation.
    pub tes_before: usize,
    /// TEs after the transformation.
    pub tes_after: usize,
}

/// Rebuilds a program from an edited TE list, keeping the original tensor
/// table (ids stay stable) and re-sorting TEs topologically (stable in the
/// original order). New tensors introduced by a rewrite must already be in
/// `extra_tensors`-extended table of `base`.
///
/// # Panics
///
/// Panics if the TE list contains a dependence cycle.
pub fn rebuild_program(base: &TeProgram, tes: Vec<TensorExpr>) -> TeProgram {
    let mut out = TeProgram::new();
    for t in base.tensors() {
        out.add_tensor(&t.name, t.shape.clone(), t.dtype, t.kind);
    }
    for te in toposort(base, tes) {
        out.push_te(te);
    }
    out
}

/// Stable topological sort of a TE list by tensor dependences.
fn toposort(base: &TeProgram, tes: Vec<TensorExpr>) -> Vec<TensorExpr> {
    let producer: HashMap<TensorId, usize> = tes
        .iter()
        .enumerate()
        .map(|(i, te)| (te.output, i))
        .collect();
    let n = tes.len();
    let mut indegree = vec![0usize; n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, te) in tes.iter().enumerate() {
        let mut preds = HashSet::new();
        for input in &te.inputs {
            if let Some(&p) = producer.get(input) {
                if p != i {
                    preds.insert(p);
                }
            }
        }
        indegree[i] = preds.len();
        for p in preds {
            succs[p].push(i);
        }
    }
    // Min-heap on original index for stability; a sorted Vec suffices at
    // these sizes.
    let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    ready.sort_unstable();
    let mut order = Vec::with_capacity(n);
    while let Some(&i) = ready.first() {
        ready.remove(0);
        order.push(i);
        let mut newly = Vec::new();
        for &s in &succs[i] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                newly.push(s);
            }
        }
        for s in newly {
            let pos = ready.partition_point(|&x| x < s);
            ready.insert(pos, s);
        }
    }
    assert_eq!(order.len(), n, "TE dependence cycle after rewrite");
    let mut slots: Vec<Option<TensorExpr>> = tes.into_iter().map(Some).collect();
    let _ = base;
    order
        .into_iter()
        .map(|i| slots[i].take().expect("each TE emitted once"))
        .collect()
}

/// Drops input slots a TE body no longer reads and remaps the remaining
/// operand indices to be dense.
pub fn compact_inputs(te: &mut TensorExpr) {
    let used: HashSet<usize> = te.body.accesses().into_iter().map(|(o, _)| o).collect();
    if used.len() == te.inputs.len() {
        return;
    }
    let mut remap: HashMap<usize, usize> = HashMap::new();
    let mut new_inputs = Vec::new();
    for (old, &tensor) in te.inputs.iter().enumerate() {
        if used.contains(&old) {
            remap.insert(old, new_inputs.len());
            new_inputs.push(tensor);
        }
    }
    te.body = te.body.remap_operands(&|o| *remap.get(&o).unwrap_or(&o));
    te.inputs = new_inputs;
}

/// Deduplicates repeated tensors in a TE's input list, remapping body
/// operand slots to the first occurrence.
pub fn dedup_inputs(te: &mut TensorExpr) {
    let mut first: HashMap<TensorId, usize> = HashMap::new();
    let mut remap: HashMap<usize, usize> = HashMap::new();
    let mut new_inputs = Vec::new();
    for (old, &tensor) in te.inputs.iter().enumerate() {
        match first.get(&tensor) {
            Some(&slot) => {
                remap.insert(old, slot);
            }
            None => {
                let slot = new_inputs.len();
                first.insert(tensor, slot);
                remap.insert(old, slot);
                new_inputs.push(tensor);
            }
        }
    }
    te.body = te.body.remap_operands(&|o| remap[&o]);
    te.inputs = new_inputs;
}

/// Whether a TE's body is a pure view of one input (no arithmetic): a
/// memory operator in the paper's vocabulary (reshape, transpose, slice).
pub fn is_pure_view(te: &TensorExpr) -> bool {
    !te.is_reduction() && matches!(te.body, ScalarExpr::Input { .. })
}

#[cfg(test)]
mod tests {
    use super::*;
    use souffle_affine::IndexExpr;
    use souffle_te::{builders, BinaryOp};
    use souffle_tensor::{DType, Shape};

    #[test]
    fn rebuild_preserves_program() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let b = builders::exp(&mut p, "e", a);
        let _ = builders::relu(&mut p, "r", b);
        let rebuilt = rebuild_program(&p, p.tes().to_vec());
        assert_eq!(rebuilt.num_tes(), 2);
        assert!(rebuilt.validate().is_ok());
    }

    #[test]
    fn toposort_fixes_out_of_order_tes() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let b = builders::exp(&mut p, "e", a);
        let _ = builders::relu(&mut p, "r", b);
        // Reverse the TE order; rebuild must restore topological order.
        let mut tes = p.tes().to_vec();
        tes.reverse();
        let rebuilt = rebuild_program(&p, tes);
        assert!(rebuilt.validate().is_ok());
        assert_eq!(rebuilt.te(souffle_te::TeId(0)).name, "e");
    }

    #[test]
    fn compact_inputs_drops_unused() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let b = p.add_input("B", Shape::new(vec![4]), DType::F32);
        let _ = builders::add(&mut p, "s", a, b);
        let mut te = p.te(souffle_te::TeId(0)).clone();
        // Rewrite body to only read operand 1.
        te.body = ScalarExpr::input(1, vec![IndexExpr::var(0)]);
        compact_inputs(&mut te);
        assert_eq!(te.inputs, vec![b]);
        assert_eq!(te.body.accesses()[0].0, 0);
    }

    #[test]
    fn dedup_inputs_merges_repeats() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let mut te = TensorExpr {
            name: "sq".into(),
            output: TensorId(99),
            inputs: vec![a, a],
            reduce: vec![],
            reduce_op: None,
            body: ScalarExpr::binary(
                BinaryOp::Mul,
                ScalarExpr::input(0, vec![IndexExpr::var(0)]),
                ScalarExpr::input(1, vec![IndexExpr::var(0)]),
            ),
        };
        dedup_inputs(&mut te);
        assert_eq!(te.inputs, vec![a]);
        for (o, _) in te.body.accesses() {
            assert_eq!(o, 0);
        }
    }

    #[test]
    fn pure_view_detection() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4, 4]), DType::F32);
        let t = builders::transpose(&mut p, "t", a, &[1, 0]);
        let _ = builders::exp(&mut p, "e", t);
        assert!(is_pure_view(p.te(souffle_te::TeId(0))));
        assert!(!is_pure_view(p.te(souffle_te::TeId(1))));
    }
}
