#![warn(missing_docs)]
//! Semantic-preserving TE transformations (§6 of the paper).
//!
//! Two rewrites run over a TE program:
//!
//! - **Vertical transformation** (§6.2, [`vertical`]): chains of
//!   *one-relies-on-one* TEs are collapsed into a single TE by composing
//!   their index mapping functions (Eq. 2). Implementation-wise the
//!   producer's body is inlined into the consumer with index substitution —
//!   the general (quasi-affine) form of the paper's matrix composition.
//!   Pure memory operators (reshape/transpose/slice views) are additionally
//!   folded into *any* consumer, including reductions, which is how Souffle
//!   "eliminates all element-wise memory operators" (§2.3).
//!
//! - **Horizontal transformation** (§6.1, [`horizontal`], Fig. 3):
//!   independent TEs with identical reduction signatures are concatenated
//!   into one TE guarded by `if_then_else` predicates, increasing
//!   parallelism and letting a shared input be loaded once.
//!
//! A third, data-movement-aware rewrite ([`reduction`]) runs after the
//! two above in the pipeline: single-axis reductions consumed broadcast-
//! style (softmax denominators, layernorm moments) are carried *inline*
//! in their consumers as scoped folds, gated by the bytes-moved cost
//! model in [`traffic`]. It is not part of [`transform_program`] — the
//! pipeline stages it separately so it can be toggled and verified on
//! its own.
//!
//! Both rewrites return a *new* program; the original is untouched. Every
//! rewrite is checked in tests by evaluating both programs with the
//! reference interpreter on random inputs.

pub mod batch;
pub mod horizontal;
pub mod reduction;
pub mod sym_traffic;
pub mod traffic;
pub mod vertical;

mod rewrite;

pub use batch::{batch_bindings, batch_program, batch_program_logged, split_batch, stack_tensors};
pub use horizontal::{
    find_horizontal_groups, horizontal_fuse_program, horizontal_fuse_program_logged,
};
pub use reduction::{
    env_reduction_fusion, reduction_fuse_program, reduction_fuse_program_logged, FusionStats,
    REDUCTION_FUSION_ENV,
};
pub use rewrite::TransformStats;
pub use sym_traffic::{program_bytes_poly, te_bytes_poly, SymTraffic};
pub use traffic::{program_traffic, te_traffic, Traffic};
pub use vertical::{vertical_fuse_program, vertical_fuse_program_logged};

use souffle_te::TeProgram;

/// Runs horizontal then vertical transformation to fixpoint — the §6
/// transformation stage as a single call. Returns the transformed program
/// and combined statistics.
pub fn transform_program(program: &TeProgram) -> (TeProgram, TransformStats) {
    let (p1, h) = horizontal_fuse_program(program);
    let (p2, v) = vertical_fuse_program(&p1);
    (
        p2,
        TransformStats {
            horizontal_groups: h.horizontal_groups,
            vertical_fused: v.vertical_fused,
            tes_before: program.num_tes(),
            tes_after: v.tes_after,
        },
    )
}
