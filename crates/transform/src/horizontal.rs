//! Horizontal transformation of independent TEs (§6.1, Fig. 3).

use crate::rewrite::{dedup_inputs, rebuild_program, TransformStats};
use souffle_affine::IndexExpr;
use souffle_analysis::TeGraph;
use souffle_te::{
    CmpOp, Cond, ReduceOp, Rewrite, RewriteLog, ScalarExpr, TeId, TeProgram, TensorExpr, TensorId,
    TensorKind,
};
use souffle_tensor::Shape;
use std::collections::HashMap;

/// Maximum TEs merged into one horizontal group.
const MAX_GROUP: usize = 8;

/// Signature two TEs must share to be horizontally fusable: same reduction
/// structure, same dtype, same rank, and equal extents on every axis other
/// than the concatenation axis (axis 0).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct GroupKey {
    reduce: Vec<i64>,
    reduce_op: Option<ReduceOpKey>,
    tail_dims: Vec<i64>,
    dtype: souffle_tensor::DType,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ReduceOpKey {
    Sum,
    Max,
    Min,
}

impl From<ReduceOp> for ReduceOpKey {
    fn from(op: ReduceOp) -> Self {
        match op {
            ReduceOp::Sum => ReduceOpKey::Sum,
            ReduceOp::Max => ReduceOpKey::Max,
            ReduceOp::Min => ReduceOpKey::Min,
        }
    }
}

/// Finds groups of pairwise-independent TEs eligible for horizontal
/// transformation. Only groups of two or more are returned.
///
/// Independence is established through graph levels: dataflow edges
/// strictly increase the longest-path level, so TEs at the same level can
/// never depend on each other. Bucketing by (signature, level) therefore
/// yields provably independent groups in linear time — which is what makes
/// the wavefront-style LSTM of §8.4 (thousands of sibling GEMVs)
/// tractable. Same-signature TEs at *different* levels are occasionally
/// independent too; those rarer opportunities are left on the table.
pub fn find_horizontal_groups(program: &TeProgram, graph: &TeGraph) -> Vec<Vec<TeId>> {
    let mut buckets: HashMap<(GroupKey, usize), Vec<TeId>> = HashMap::new();
    for te_id in program.te_ids() {
        let te = program.te(te_id);
        let shape = program.output_shape(te_id);
        if shape.rank() == 0 {
            continue;
        }
        // Outputs that escape the program cannot be replaced by views of a
        // concatenated buffer without changing the program interface.
        if program.tensor(te.output).kind == TensorKind::Output {
            continue;
        }
        let key = GroupKey {
            reduce: te.reduce.clone(),
            reduce_op: te.reduce_op.map(ReduceOpKey::from),
            tail_dims: shape.dims()[1..].to_vec(),
            dtype: program.tensor(te.output).dtype,
        };
        buckets
            .entry((key, graph.level(te_id)))
            .or_default()
            .push(te_id);
    }
    let mut groups = Vec::new();
    for (_, mut members) in buckets {
        members.sort();
        for chunk in members.chunks(MAX_GROUP) {
            if chunk.len() >= 2 {
                debug_assert!(chunk
                    .iter()
                    .enumerate()
                    .all(|(i, &a)| chunk[i + 1..].iter().all(|&b| graph.independent(a, b))));
                groups.push(chunk.to_vec());
            }
        }
    }
    groups.sort_by_key(|g| g[0]);
    groups
}

/// Merges one group of independent TEs into a single concatenated TE plus
/// per-member view TEs re-extracting the original outputs (so downstream
/// consumers are untouched; the views are pure memory operators that the
/// vertical pass subsequently folds away).
fn fuse_group(
    program: &TeProgram,
    tes: &mut Vec<TensorExpr>,
    extra_tensors: &mut Vec<(String, Shape, souffle_tensor::DType)>,
    next_tensor_id: &mut usize,
    group: &[TeId],
    log: &mut RewriteLog,
) {
    let members: Vec<TensorExpr> = group.iter().map(|&id| program.te(id).clone()).collect();
    let rank = program.output_shape(group[0]).rank();
    let dim0_total: i64 = group
        .iter()
        .map(|&id| program.output_shape(id).dim(0))
        .sum();
    let mut out_dims = program.output_shape(group[0]).dims().to_vec();
    out_dims[0] = dim0_total;
    let dtype = program.tensor(members[0].output).dtype;

    // Combined input list and per-member slot offsets.
    let mut inputs: Vec<TensorId> = Vec::new();
    let mut offsets = Vec::with_capacity(members.len());
    for m in &members {
        offsets.push(inputs.len());
        inputs.extend(m.inputs.iter().copied());
    }

    // Each member's body, with axis-0 shifted into its segment and operand
    // slots offset into the combined list.
    let n_vars = rank + members[0].reduce.len();
    let mut cum = 0i64;
    let mut bodies = Vec::with_capacity(members.len());
    let mut cuts = Vec::with_capacity(members.len());
    for (m, &off) in members.iter().zip(&offsets) {
        let mut subs: Vec<IndexExpr> = (0..n_vars).map(IndexExpr::Var).collect();
        subs[0] = IndexExpr::var(0).sub(IndexExpr::constant(cum));
        bodies.push(m.body.substitute(&subs, &|o| o + off));
        cum += program.tensor(m.output).shape.dim(0);
        cuts.push(cum);
    }

    // Fold into nested if_then_else on the concat axis (Fig. 3).
    let mut body = bodies.pop().expect("group is non-empty");
    for i in (0..bodies.len()).rev() {
        body = ScalarExpr::select(
            Cond::cmp(CmpOp::Lt, IndexExpr::var(0), IndexExpr::constant(cuts[i])),
            bodies[i].clone(),
            body,
        );
    }

    let concat_tensor = TensorId(*next_tensor_id);
    *next_tensor_id += 1;
    let concat_name = format!(
        "hfuse({})",
        members
            .iter()
            .map(|m| m.name.as_str())
            .collect::<Vec<_>>()
            .join("+")
    );
    extra_tensors.push((concat_name.clone(), Shape::new(out_dims), dtype));
    let mut fused = TensorExpr {
        name: concat_name,
        output: concat_tensor,
        inputs,
        reduce: members[0].reduce.clone(),
        reduce_op: members[0].reduce_op,
        body,
    };
    dedup_inputs(&mut fused);

    // Replace members with views of the fused output.
    let member_outputs: Vec<TensorId> = members.iter().map(|m| m.output).collect();
    log.push(Rewrite::HorizontalGroup {
        members: member_outputs.clone(),
        concat: concat_tensor,
        cuts: cuts.clone(),
    });
    tes.retain(|te| !member_outputs.contains(&te.output));
    tes.push(fused);
    let mut start = 0i64;
    for m in &members {
        let extent = program.tensor(m.output).shape.dim(0);
        let mut idx: Vec<IndexExpr> = (0..rank).map(IndexExpr::Var).collect();
        idx[0] = IndexExpr::var(0).add(IndexExpr::constant(start));
        tes.push(TensorExpr {
            name: format!("{}.view", m.name),
            output: m.output,
            inputs: vec![concat_tensor],
            reduce: vec![],
            reduce_op: None,
            body: ScalarExpr::input(0, idx),
        });
        start += extent;
    }
}

/// Applies horizontal transformation to every eligible group in the
/// program. Returns the rewritten program and statistics.
pub fn horizontal_fuse_program(program: &TeProgram) -> (TeProgram, TransformStats) {
    let mut log = RewriteLog::new();
    horizontal_fuse_program_logged(program, &mut log)
}

/// Like [`horizontal_fuse_program`], additionally recording every fused
/// group in `log` for the translation-validation pass.
pub fn horizontal_fuse_program_logged(
    program: &TeProgram,
    log: &mut RewriteLog,
) -> (TeProgram, TransformStats) {
    let graph = TeGraph::build(program);
    let groups = find_horizontal_groups(program, &graph);
    if groups.is_empty() {
        return (
            program.clone(),
            TransformStats {
                tes_before: program.num_tes(),
                tes_after: program.num_tes(),
                ..TransformStats::default()
            },
        );
    }
    let mut tes: Vec<TensorExpr> = program.tes().to_vec();
    let mut extra: Vec<(String, Shape, souffle_tensor::DType)> = Vec::new();
    let mut next_tensor_id = program.num_tensors();
    for group in &groups {
        fuse_group(
            program,
            &mut tes,
            &mut extra,
            &mut next_tensor_id,
            group,
            log,
        );
    }
    // Rebuild over an extended tensor table.
    let mut base = program.clone();
    for (name, shape, dtype) in extra {
        base.add_tensor(&name, shape, dtype, TensorKind::Intermediate);
    }
    let out = rebuild_program(&base, tes);
    let stats = TransformStats {
        horizontal_groups: groups.len(),
        vertical_fused: 0,
        tes_before: program.num_tes(),
        tes_after: out.num_tes(),
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use souffle_te::{builders, interp::eval_with_random_inputs};
    use souffle_tensor::{DType, Tensor};
    use std::collections::HashMap as Map;

    fn assert_same_semantics(before: &TeProgram, after: &TeProgram, seed: u64) {
        before.validate().expect("before validates");
        after.validate().expect("after validates");
        let o1 = eval_with_random_inputs(before, seed).expect("before evals");
        let o2 = eval_with_random_inputs(after, seed).expect("after evals");
        assert_eq!(o1.len(), o2.len());
        for (id, t1) in &o1 {
            assert!(
                t1.allclose(&o2[id], 1e-4, 1e-4),
                "output {id} diverged by {:?}",
                t1.max_abs_diff(&o2[id])
            );
        }
    }

    /// The Fig. 3 example: two GEMMs with shapes (4,8)x(8,16) and
    /// (2,8)x(8,16) sharing the reduction extent.
    fn fig3_program() -> (TeProgram, TensorId) {
        let mut p = TeProgram::new();
        let a1 = p.add_input("A1", Shape::new(vec![4, 8]), DType::F32);
        let b1 = p.add_weight("B1", Shape::new(vec![8, 16]), DType::F32);
        let a2 = p.add_input("A2", Shape::new(vec![2, 8]), DType::F32);
        let b2 = p.add_weight("B2", Shape::new(vec![8, 16]), DType::F32);
        let c1 = builders::matmul(&mut p, "C1", a1, b1);
        let c2 = builders::matmul(&mut p, "C2", a2, b2);
        // A consumer keeps both alive; concat along axis 0 like the figure.
        let c = builders::concat(&mut p, "C", c1, c2, 0);
        p.mark_output(c);
        (p, c)
    }

    #[test]
    fn fig3_two_gemms_fuse() {
        let (p, _) = fig3_program();
        let g = TeGraph::build(&p);
        let groups = find_horizontal_groups(&p, &g);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0], vec![TeId(0), TeId(1)]);
        let (q, stats) = horizontal_fuse_program(&p);
        assert_eq!(stats.horizontal_groups, 1);
        // 1 fused GEMM + 2 views + 1 concat consumer.
        assert_eq!(q.num_tes(), 4);
        assert_same_semantics(&p, &q, 21);
    }

    #[test]
    fn fused_gemm_computes_concatenated_result() {
        let (p, c) = fig3_program();
        let (q, _) = horizontal_fuse_program(&p);
        // Evaluate with specific inputs and check the (6,16) result shape
        // semantics survive.
        let mut binds: Map<TensorId, Tensor> = Map::new();
        for id in q.free_tensors() {
            let info = q.tensor(id);
            binds.insert(id, Tensor::random(info.shape.clone(), id.0 as u64 + 1));
        }
        let o = souffle_te::interp::eval_program(&q, &binds).unwrap();
        assert_eq!(o[&c].shape().dims(), &[6, 16]);
    }

    #[test]
    fn dependent_tes_never_fuse() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![8, 8]), DType::F32);
        let w1 = p.add_weight("W1", Shape::new(vec![8, 8]), DType::F32);
        let x = builders::matmul(&mut p, "mm1", a, w1);
        let w2 = p.add_weight("W2", Shape::new(vec![8, 8]), DType::F32);
        let y = builders::matmul(&mut p, "mm2", x, w2);
        p.mark_output(y);
        let g = TeGraph::build(&p);
        assert!(find_horizontal_groups(&p, &g).is_empty());
    }

    #[test]
    fn qkv_pattern_fuses_and_shares_input() {
        // Three GEMMs sharing X: the fused TE should list X once.
        let mut p = TeProgram::new();
        let x = p.add_input("X", Shape::new(vec![16, 16]), DType::F32);
        let wq = p.add_weight("Wq", Shape::new(vec![16, 16]), DType::F32);
        let wk = p.add_weight("Wk", Shape::new(vec![16, 16]), DType::F32);
        let wv = p.add_weight("Wv", Shape::new(vec![16, 16]), DType::F32);
        let q_ = builders::matmul(&mut p, "q", x, wq);
        let k_ = builders::matmul(&mut p, "k", x, wk);
        let v_ = builders::matmul(&mut p, "v", x, wv);
        let qk = builders::add(&mut p, "qk", q_, k_);
        let qkv = builders::add(&mut p, "qkv", qk, v_);
        p.mark_output(qkv);
        let (t, stats) = horizontal_fuse_program(&p);
        assert_eq!(stats.horizontal_groups, 1);
        // Find the fused TE and check X appears once in its inputs.
        let fused = t
            .tes()
            .iter()
            .find(|te| te.name.starts_with("hfuse"))
            .expect("fused TE exists");
        let x_count = fused.inputs.iter().filter(|&&i| i == x).count();
        assert_eq!(x_count, 1, "shared input deduplicated");
        assert_same_semantics(&p, &t, 33);
    }

    #[test]
    fn mismatched_reduction_extents_do_not_fuse() {
        let mut p = TeProgram::new();
        let a1 = p.add_input("A1", Shape::new(vec![4, 8]), DType::F32);
        let b1 = p.add_weight("B1", Shape::new(vec![8, 16]), DType::F32);
        let a2 = p.add_input("A2", Shape::new(vec![4, 32]), DType::F32);
        let b2 = p.add_weight("B2", Shape::new(vec![32, 16]), DType::F32);
        let c1 = builders::matmul(&mut p, "C1", a1, b1);
        let c2 = builders::matmul(&mut p, "C2", a2, b2);
        let c = builders::add(&mut p, "C", c1, c2);
        p.mark_output(c);
        let g = TeGraph::build(&p);
        assert!(find_horizontal_groups(&p, &g).is_empty());
    }

    #[test]
    fn elementwise_groups_also_fuse() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![8]), DType::F32);
        let b = p.add_input("B", Shape::new(vec![8]), DType::F32);
        let ea = builders::exp(&mut p, "ea", a);
        let eb = builders::sigmoid(&mut p, "eb", b);
        let s = builders::add(&mut p, "s", ea, eb);
        p.mark_output(s);
        let (q, stats) = horizontal_fuse_program(&p);
        assert_eq!(stats.horizontal_groups, 1);
        assert_same_semantics(&p, &q, 9);
    }

    #[test]
    fn program_without_groups_is_unchanged() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![8]), DType::F32);
        let e = builders::exp(&mut p, "e", a);
        p.mark_output(e);
        let (q, stats) = horizontal_fuse_program(&p);
        assert_eq!(stats.horizontal_groups, 0);
        assert_eq!(q.num_tes(), p.num_tes());
    }

    #[test]
    fn combined_transform_cleans_up_views() {
        // After horizontal fusion the extraction views should be folded
        // away by the vertical pass wherever possible.
        let (p, _) = fig3_program();
        let (q, stats) = crate::transform_program(&p);
        assert_eq!(stats.horizontal_groups, 1);
        assert!(stats.vertical_fused >= 2, "views folded: {stats:?}");
        assert_same_semantics(&p, &q, 55);
    }
}
