//! Vertical transformation of one-relies-on-one chains (§6.2).

use crate::rewrite::{compact_inputs, dedup_inputs, is_pure_view, rebuild_program, TransformStats};
use souffle_te::{Rewrite, RewriteLog, TeProgram, TensorExpr, TensorId, TensorKind};
use std::collections::HashMap;

/// Collapses one-relies-on-one TE chains by composing index mapping
/// functions (Eq. 2), implemented as body inlining with index
/// substitution. Returns the rewritten program and statistics.
///
/// Fusion rules, iterated to fixpoint:
///
/// 1. An element-wise producer with exactly one consumer is inlined into
///    that consumer when the consumer is also element-wise (the paper's
///    one-relies-on-one chain refinement).
/// 2. A *pure view* producer (reshape/transpose/slice — no arithmetic) is
///    inlined into every consumer regardless of the consumer's kind: index
///    substitution into a reduction body is still exact, and duplicating a
///    view costs nothing. This is what eliminates all element-wise memory
///    operators (§2.3).
///
/// Producers whose outputs are program outputs are kept.
pub fn vertical_fuse_program(program: &TeProgram) -> (TeProgram, TransformStats) {
    let mut log = RewriteLog::new();
    vertical_fuse_program_logged(program, &mut log)
}

/// Like [`vertical_fuse_program`], additionally recording every inlining
/// in `log` for the translation-validation pass.
pub fn vertical_fuse_program_logged(
    program: &TeProgram,
    log: &mut RewriteLog,
) -> (TeProgram, TransformStats) {
    let mut tes: Vec<TensorExpr> = program.tes().to_vec();
    let tes_before = tes.len();
    let mut fused = 0usize;

    // Batched fixpoint: each pass rebuilds the producer/consumer maps once
    // and then applies every applicable fusion, so deep chains converge in
    // O(depth) passes even on wavefront-sized programs (the 12k-TE LSTM).
    const MAX_PASSES: usize = 64;
    for _pass in 0..MAX_PASSES {
        let producer_idx: HashMap<TensorId, usize> = tes
            .iter()
            .enumerate()
            .map(|(i, te)| (te.output, i))
            .collect();
        // Count actual body reads (not input-list slots): after input
        // deduplication a tensor may occupy one slot but be read several
        // times, and inlining a non-trivial producer into every read would
        // duplicate its arithmetic.
        let mut consumer_count: HashMap<TensorId, usize> = HashMap::new();
        for te in &tes {
            for (slot, _) in te.body.accesses() {
                if let Some(&input) = te.inputs.get(slot) {
                    *consumer_count.entry(input).or_insert(0) += 1;
                }
            }
        }

        let mut changed = false;
        for ci in 0..tes.len() {
            // Re-examine this consumer until none of its operands can be
            // inlined (a fused-in producer may expose further views).
            loop {
                let mut action: Option<(usize, usize)> = None; // (slot, producer)
                for (slot, &input) in tes[ci].inputs.iter().enumerate() {
                    let Some(&pi) = producer_idx.get(&input) else {
                        continue;
                    };
                    if pi == ci {
                        continue;
                    }
                    let producer = &tes[pi];
                    if program.tensor(input).kind != TensorKind::Intermediate {
                        continue; // program outputs must stay materialized
                    }
                    let elementwise_chain = !producer.is_reduction()
                        && !tes[ci].is_reduction()
                        && consumer_count.get(&input) == Some(&1);
                    let view_fold = is_pure_view(producer);
                    if elementwise_chain || view_fold {
                        action = Some((slot, pi));
                        break;
                    }
                }
                let Some((slot, pi)) = action else {
                    break;
                };
                // Remap the producer's operand slots past the consumer's,
                // then inline the producer body at the access's indices.
                let producer = tes[pi].clone();
                log.push(Rewrite::Inlined {
                    producer_output: producer.output,
                    consumer_output: tes[ci].output,
                });
                let consumer = &mut tes[ci];
                let base = consumer.inputs.len();
                let shifted_body = producer.body.remap_operands(&|o| o + base);
                consumer.inputs.extend(producer.inputs.iter().copied());
                consumer.body = consumer
                    .body
                    .inline_operand(slot, &shifted_body)
                    .simplified();
                dedup_inputs(consumer);
                compact_inputs(consumer);
                fused += 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        // Drop producers nothing reads anymore.
        let mut read: HashMap<TensorId, usize> = HashMap::new();
        for te in &tes {
            for &input in &te.inputs {
                *read.entry(input).or_insert(0) += 1;
            }
        }
        tes.retain(|te| {
            program.tensor(te.output).kind != TensorKind::Intermediate
                || read.get(&te.output).copied().unwrap_or(0) > 0
        });
    }

    let tes_after = tes.len();
    let out = rebuild_program(program, tes);
    (
        out,
        TransformStats {
            vertical_fused: fused,
            horizontal_groups: 0,
            tes_before,
            tes_after,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use souffle_te::{builders, interp::eval_with_random_inputs};
    use souffle_tensor::{DType, Shape};

    /// Asserts that `after` computes the same outputs as `before`.
    fn assert_same_semantics(before: &TeProgram, after: &TeProgram, seed: u64) {
        before.validate().expect("before validates");
        after.validate().expect("after validates");
        let o1 = eval_with_random_inputs(before, seed).expect("before evals");
        let o2 = eval_with_random_inputs(after, seed).expect("after evals");
        assert_eq!(o1.len(), o2.len(), "same number of outputs");
        for (id, t1) in &o1 {
            let t2 = &o2[id];
            assert!(
                t1.allclose(t2, 1e-4, 1e-4),
                "output {id} diverged: max diff {:?}",
                t1.max_abs_diff(t2)
            );
        }
    }

    #[test]
    fn fig4_chain_collapses_to_one_te() {
        // relu -> strided_slice -> permute (Fig. 4), a 3-TE chain that must
        // become a single semantic-preserving TE.
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4, 8]), DType::F32);
        let b = builders::relu(&mut p, "relu", a);
        let c = builders::strided_slice(&mut p, "slice", b, 0, 0, 2, 2);
        let d = builders::transpose(&mut p, "permute", c, &[1, 0]);
        p.mark_output(d);
        let (q, stats) = vertical_fuse_program(&p);
        assert_eq!(q.num_tes(), 1, "{q}");
        assert_eq!(stats.vertical_fused, 2);
        assert_same_semantics(&p, &q, 42);
    }

    #[test]
    fn elementwise_chain_fuses() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![16]), DType::F32);
        let mut cur = a;
        for i in 0..5 {
            cur = builders::unary(
                &mut p,
                &format!("u{i}"),
                [souffle_te::UnaryOp::Exp, souffle_te::UnaryOp::Sigmoid][i % 2],
                cur,
            );
        }
        p.mark_output(cur);
        let (q, stats) = vertical_fuse_program(&p);
        assert_eq!(q.num_tes(), 1);
        assert_eq!(stats.vertical_fused, 4);
        assert_same_semantics(&p, &q, 7);
    }

    #[test]
    fn view_folds_into_reduction() {
        // transpose feeding a matmul: the memory operator disappears into
        // the GEMM body (a "transposed-B GEMM").
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![8, 16]), DType::F32);
        let b = p.add_input("B", Shape::new(vec![32, 16]), DType::F32);
        let bt = builders::transpose(&mut p, "bt", b, &[1, 0]); // [16, 32]
        let c = builders::matmul(&mut p, "mm", a, bt);
        p.mark_output(c);
        let (q, stats) = vertical_fuse_program(&p);
        assert_eq!(q.num_tes(), 1, "{q}");
        assert_eq!(stats.vertical_fused, 1);
        assert_same_semantics(&p, &q, 3);
    }

    #[test]
    fn reshape_between_matmuls_is_eliminated() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![8, 8]), DType::F32);
        let w1 = p.add_weight("W1", Shape::new(vec![8, 8]), DType::F32);
        let x = builders::matmul(&mut p, "mm1", a, w1);
        let r = builders::reshape(&mut p, "rs", x, Shape::new(vec![8, 8])); // no-op reshape
        let w2 = p.add_weight("W2", Shape::new(vec![8, 8]), DType::F32);
        let y = builders::matmul(&mut p, "mm2", r, w2);
        p.mark_output(y);
        let (q, _) = vertical_fuse_program(&p);
        assert_eq!(q.num_tes(), 2, "reshape must vanish: {q}");
        assert_same_semantics(&p, &q, 5);
    }

    #[test]
    fn shared_elementwise_producer_is_kept() {
        // b feeds two consumers -> fusing would duplicate arithmetic;
        // rule 1 requires a single consumer.
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![16]), DType::F32);
        let b = builders::exp(&mut p, "e", a);
        let c = builders::relu(&mut p, "r", b);
        let d = builders::sigmoid(&mut p, "s", b);
        let e = builders::add(&mut p, "a", c, d);
        p.mark_output(e);
        let (q, _) = vertical_fuse_program(&p);
        // exp stays; relu and sigmoid fold into add; result: exp + add = 2.
        assert_eq!(q.num_tes(), 2, "{q}");
        assert_same_semantics(&p, &q, 11);
    }

    #[test]
    fn output_tensors_stay_materialized() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![8]), DType::F32);
        let b = builders::exp(&mut p, "e", a);
        let c = builders::relu(&mut p, "r", b);
        p.mark_output(b); // b itself is an output
        p.mark_output(c);
        let (q, stats) = vertical_fuse_program(&p);
        assert_eq!(stats.vertical_fused, 0);
        assert_eq!(q.num_tes(), 2);
        assert_same_semantics(&p, &q, 13);
    }

    #[test]
    fn softmax_partially_fuses() {
        // softmax = max, exp(sub), sum, div: the reductions stay, the
        // element-wise TEs fold where dependencies allow.
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4, 32]), DType::F32);
        let s = builders::softmax(&mut p, "sm", a);
        p.mark_output(s);
        let before = p.num_tes();
        let (q, _) = vertical_fuse_program(&p);
        assert!(q.num_tes() <= before);
        assert_same_semantics(&p, &q, 17);
    }

    #[test]
    fn idempotent_at_fixpoint() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![16]), DType::F32);
        let b = builders::exp(&mut p, "e", a);
        let c = builders::relu(&mut p, "r", b);
        p.mark_output(c);
        let (q1, _) = vertical_fuse_program(&p);
        let (q2, s2) = vertical_fuse_program(&q1);
        assert_eq!(s2.vertical_fused, 0);
        assert_eq!(q1.num_tes(), q2.num_tes());
    }
}
