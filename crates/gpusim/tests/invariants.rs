//! Simulator invariants over real Souffle-lowered kernels.
//!
//! The simulator is the experimental apparatus of every table and figure
//! in the paper reproduction, so it gets its own contract suite:
//!
//! * **Determinism** — simulating the same kernel sequence twice yields
//!   bit-identical profiles (the whole bench/CI story assumes this).
//! * **Occupancy** — any grid-synchronized (cooperative-launch) kernel
//!   must fit one wave: every stage's grid fits within the device's
//!   max-blocks-per-wave for that stage's resource footprint, otherwise
//!   the simulated grid sync would deadlock on real hardware.
//! * **Aggregation** — every `ModelProfile` total is exactly the sum of
//!   its per-kernel costs; nothing is double-counted or dropped.

use souffle_analysis::AnalysisResult;
use souffle_frontend::{build_model, Model, ModelConfig};
use souffle_gpusim::{simulate, SimConfig};
use souffle_kernel::{lower_partition, Kernel, LowerOptions};
use souffle_sched::GpuSpec;

const MODELS: [Model; 3] = [Model::Bert, Model::Lstm, Model::Mmoe];

fn souffle_kernels(model: Model) -> Vec<Kernel> {
    let program = build_model(model, ModelConfig::Tiny);
    let spec = GpuSpec::a100();
    let analysis = AnalysisResult::analyze(&program, &spec);
    lower_partition(
        &program,
        &analysis.partition,
        &analysis.schedules,
        &analysis.classes,
        LowerOptions::default(),
    )
}

#[test]
fn simulation_is_deterministic() {
    let cfg = SimConfig::a100();
    for model in MODELS {
        let kernels = souffle_kernels(model);
        let a = simulate(&kernels, &cfg);
        let b = simulate(&kernels, &cfg);
        assert_eq!(a.kernels, b.kernels, "{model}: nondeterministic profile");
        // A freshly lowered kernel list must simulate identically too —
        // lowering itself is deterministic.
        let c = simulate(&souffle_kernels(model), &cfg);
        assert_eq!(a.kernels, c.kernels, "{model}: lowering nondeterministic");
    }
}

#[test]
fn grid_synced_kernels_fit_one_wave() {
    let spec = GpuSpec::a100();
    for model in MODELS {
        for kernel in souffle_kernels(model) {
            if !kernel.uses_grid_sync() {
                continue;
            }
            for stage in &kernel.stages {
                let max_wave = spec.max_blocks_per_wave(
                    stage.threads_per_block,
                    stage.shared_mem_bytes,
                    stage.regs_per_thread,
                );
                assert!(
                    stage.grid_blocks <= max_wave,
                    "{model}/{}/{}: {} blocks > {} blocks/wave",
                    kernel.name,
                    stage.name,
                    stage.grid_blocks,
                    max_wave
                );
            }
        }
    }
}

#[test]
fn profile_totals_are_sums_of_per_kernel_costs() {
    let cfg = SimConfig::a100();
    for model in MODELS {
        let kernels = souffle_kernels(model);
        let p = simulate(&kernels, &cfg);
        assert_eq!(p.num_kernel_calls(), kernels.len());
        assert_eq!(
            p.total_time_s(),
            p.kernels.iter().map(|k| k.time_s).sum::<f64>(),
            "{model}"
        );
        assert_eq!(
            p.global_read_bytes(),
            p.kernels.iter().map(|k| k.global_read_bytes).sum::<u64>(),
            "{model}"
        );
        assert_eq!(
            p.global_transfer_bytes(),
            p.kernels
                .iter()
                .map(|k| k.global_read_bytes + k.global_write_bytes)
                .sum::<u64>(),
            "{model}"
        );
        assert_eq!(
            p.grid_syncs(),
            p.kernels.iter().map(|k| k.grid_syncs).sum::<u64>(),
            "{model}"
        );
        // Per-kernel traffic in turn matches the kernel's own accounting.
        for (kp, k) in p.kernels.iter().zip(&kernels) {
            assert_eq!(kp.global_read_bytes, k.global_read_bytes(), "{model}");
            assert_eq!(kp.global_write_bytes, k.global_write_bytes(), "{model}");
            assert_eq!(kp.flops, k.flops(), "{model}");
            assert!(kp.time_s > 0.0, "{model}: kernel with zero time");
        }
    }
}

#[test]
fn utilizations_are_fractions() {
    let cfg = SimConfig::a100();
    for model in MODELS {
        let p = simulate(&souffle_kernels(model), &cfg);
        for (name, u) in [
            ("lsu", p.lsu_utilization()),
            ("fma", p.fma_utilization()),
            ("tensor", p.tensor_utilization()),
        ] {
            assert!((0.0..=1.0).contains(&u), "{model}: {name} utilization {u}");
        }
    }
}
