//! Nsight-lite profiles produced by the simulator.

use std::fmt;

/// Per-kernel measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Kernel name.
    pub name: String,
    /// Wall time including launch overhead, seconds.
    pub time_s: f64,
    /// Time the memory (LSU) pipeline was busy, seconds.
    pub mem_busy_s: f64,
    /// Time the CUDA-core FMA pipeline was busy, seconds.
    pub fma_busy_s: f64,
    /// Time the tensor-core pipeline was busy, seconds.
    pub tensor_busy_s: f64,
    /// Bytes read from global memory.
    pub global_read_bytes: u64,
    /// Bytes written to global memory (including atomics).
    pub global_write_bytes: u64,
    /// Bytes served from the shared-memory tensor cache.
    pub shared_read_bytes: u64,
    /// Floating-point operations executed.
    pub flops: u64,
    /// Grid synchronizations executed.
    pub grid_syncs: u64,
}

/// Whole-model measurements: what Nsight Compute would report for one
/// inference.
#[derive(Debug, Clone, Default)]
pub struct ModelProfile {
    /// Per-kernel breakdown in launch order.
    pub kernels: Vec<KernelProfile>,
}

impl ModelProfile {
    /// End-to-end latency in seconds.
    pub fn total_time_s(&self) -> f64 {
        self.kernels.iter().map(|k| k.time_s).sum()
    }

    /// End-to-end latency in milliseconds (the unit of Table 3).
    pub fn total_time_ms(&self) -> f64 {
        self.total_time_s() * 1e3
    }

    /// End-to-end latency in microseconds (the unit of Table 1).
    pub fn total_time_us(&self) -> f64 {
        self.total_time_s() * 1e6
    }

    /// Number of kernel calls (Table 5).
    pub fn num_kernel_calls(&self) -> usize {
        self.kernels.len()
    }

    /// Bytes loaded from global memory (Table 1's "#Bytes load from
    /// global").
    pub fn global_read_bytes(&self) -> u64 {
        self.kernels.iter().map(|k| k.global_read_bytes).sum()
    }

    /// Total global transfer: reads + writes (Table 5's "memory transfer
    /// size", Table 6's "GPU global memory trans.").
    pub fn global_transfer_bytes(&self) -> u64 {
        self.kernels
            .iter()
            .map(|k| k.global_read_bytes + k.global_write_bytes)
            .sum()
    }

    /// LSU pipeline utilization: memory-busy time over total time
    /// (Table 6).
    pub fn lsu_utilization(&self) -> f64 {
        let t = self.total_time_s();
        if t == 0.0 {
            return 0.0;
        }
        self.kernels.iter().map(|k| k.mem_busy_s).sum::<f64>() / t
    }

    /// FMA pipeline utilization (Table 6).
    pub fn fma_utilization(&self) -> f64 {
        let t = self.total_time_s();
        if t == 0.0 {
            return 0.0;
        }
        self.kernels.iter().map(|k| k.fma_busy_s).sum::<f64>() / t
    }

    /// Tensor-core pipeline utilization.
    pub fn tensor_utilization(&self) -> f64 {
        let t = self.total_time_s();
        if t == 0.0 {
            return 0.0;
        }
        self.kernels.iter().map(|k| k.tensor_busy_s).sum::<f64>() / t
    }

    /// Total grid synchronizations.
    pub fn grid_syncs(&self) -> u64 {
        self.kernels.iter().map(|k| k.grid_syncs).sum()
    }
}

impl fmt::Display for ModelProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} kernels, {:.3} ms, {:.2} MB read, {:.2} MB transferred",
            self.num_kernel_calls(),
            self.total_time_ms(),
            self.global_read_bytes() as f64 / 1e6,
            self.global_transfer_bytes() as f64 / 1e6,
        )?;
        for k in &self.kernels {
            writeln!(
                f,
                "  {}: {:.2} us, {:.3} MB read, {} syncs",
                k.name,
                k.time_s * 1e6,
                k.global_read_bytes as f64 / 1e6,
                k.grid_syncs
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kp(time: f64, mem: f64, read: u64) -> KernelProfile {
        KernelProfile {
            name: "k".into(),
            time_s: time,
            mem_busy_s: mem,
            fma_busy_s: 0.0,
            tensor_busy_s: 0.0,
            global_read_bytes: read,
            global_write_bytes: read / 2,
            shared_read_bytes: 0,
            flops: 0,
            grid_syncs: 1,
        }
    }

    #[test]
    fn aggregates_sum_over_kernels() {
        let m = ModelProfile {
            kernels: vec![kp(1e-3, 5e-4, 1000), kp(2e-3, 1e-3, 2000)],
        };
        assert!((m.total_time_ms() - 3.0).abs() < 1e-9);
        assert_eq!(m.num_kernel_calls(), 2);
        assert_eq!(m.global_read_bytes(), 3000);
        assert_eq!(m.global_transfer_bytes(), 4500);
        assert!((m.lsu_utilization() - 0.5).abs() < 1e-9);
        assert_eq!(m.grid_syncs(), 2);
    }

    #[test]
    fn empty_profile_is_zero() {
        let m = ModelProfile::default();
        assert_eq!(m.total_time_s(), 0.0);
        assert_eq!(m.lsu_utilization(), 0.0);
    }

    #[test]
    fn display_reports_kernels() {
        let m = ModelProfile {
            kernels: vec![kp(1e-3, 5e-4, 1000)],
        };
        assert!(m.to_string().contains("1 kernels"));
    }
}
