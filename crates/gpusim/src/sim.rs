//! The simulator core.

use crate::{KernelProfile, ModelProfile};
use souffle_kernel::{Instr, Kernel, Stage};
use souffle_sched::GpuSpec;

/// Simulation configuration: the device plus achieved-efficiency knobs.
///
/// Baseline strategies use different efficiencies to reflect their code
/// quality (e.g. TensorRT's hand-tuned GEMMs achieve a higher fraction of
/// peak than compiler-generated code; §2.2 calls this out explicitly).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Device description.
    pub spec: GpuSpec,
    /// Fraction of peak compute achieved by the generated code.
    pub compute_efficiency: f64,
    /// Fraction of peak DRAM bandwidth achieved.
    pub memory_efficiency: f64,
    /// Aggregate shared-memory bandwidth in bytes/s (per device).
    pub shared_bw_bytes_per_s: f64,
    /// Multiplier on atomic traffic (read-modify-write costs more than a
    /// plain store).
    pub atomic_penalty: f64,
}

impl SimConfig {
    /// Configuration for compiler-generated code on the paper's A100.
    pub fn a100() -> Self {
        SimConfig {
            spec: GpuSpec::a100(),
            compute_efficiency: 0.55,
            memory_efficiency: 0.80,
            shared_bw_bytes_per_s: 19.5e12,
            atomic_penalty: 2.0,
        }
    }

    /// Same device with hand-tuned library efficiency (TensorRT-class).
    pub fn a100_hand_tuned() -> Self {
        SimConfig {
            compute_efficiency: 0.80,
            memory_efficiency: 0.90,
            ..SimConfig::a100()
        }
    }
}

/// Timing of one stage.
fn stage_time(stage: &Stage, cfg: &SimConfig) -> (f64, f64, f64, f64) {
    let spec = &cfg.spec;
    let mut read = 0u64;
    let mut write = 0u64;
    let mut shared = 0u64;
    let mut atomic = 0u64;
    let mut wmma_flops = 0u64;
    let mut fma_flops = 0u64;
    let mut grid_syncs = 0u64;
    let mut block_syncs = 0u64;
    for i in &stage.instrs {
        match i {
            Instr::LdGlobalToShared { bytes, .. } | Instr::LdGlobal { bytes, .. } => read += bytes,
            Instr::LdShared { bytes, .. } => shared += bytes,
            Instr::StSharedToGlobal { bytes, .. } | Instr::StGlobal { bytes, .. } => {
                write += bytes;
            }
            Instr::AtomicAdd { bytes } => atomic += bytes,
            Instr::Wmma { flops } => wmma_flops += flops,
            Instr::Fma { flops } => fma_flops += flops,
            Instr::GridSync => grid_syncs += 1,
            Instr::BlockSync => block_syncs += 1,
        }
    }

    // Parallelism derating: a stage that cannot fill the device gets a
    // proportionally smaller share of bandwidth/compute. Saturation needs
    // roughly 4 warps per SM.
    let threads = stage.grid_blocks as f64 * stage.threads_per_block as f64;
    let saturation = (threads / (spec.num_sms as f64 * 128.0)).clamp(1.0 / 64.0, 1.0);

    let global_bytes = (read + write) as f64 + atomic as f64 * cfg.atomic_penalty;
    let mem_time = global_bytes / (spec.global_bw_bytes_per_s * cfg.memory_efficiency * saturation)
        + shared as f64 / cfg.shared_bw_bytes_per_s;
    let tensor_time =
        wmma_flops as f64 / (spec.fp16_tensor_flops * cfg.compute_efficiency * saturation);
    let fma_time = fma_flops as f64 / (spec.fp32_flops * cfg.compute_efficiency * saturation);
    let compute_time = tensor_time + fma_time;

    let busy = if stage.pipelined {
        mem_time.max(compute_time)
    } else {
        mem_time + compute_time
    };
    let sync_time = grid_syncs as f64 * spec.grid_sync_overhead_s
        + block_syncs as f64 * spec.block_sync_overhead_s;

    // Pipe-active times use Nsight semantics: the time each pipe would be
    // busy at its peak rate. A derated stage keeps the pipe mostly idle,
    // so busy time is *smaller* than elapsed time. Shared-memory reads
    // (the software cache) keep the LSU busy without global traffic.
    let lsu_busy = (read + write) as f64 / spec.global_bw_bytes_per_s
        + atomic as f64 * cfg.atomic_penalty / spec.global_bw_bytes_per_s
        + shared as f64 / cfg.shared_bw_bytes_per_s;
    let fma_busy = fma_flops as f64 / spec.fp32_flops;
    let tensor_busy = wmma_flops as f64 / spec.fp16_tensor_flops;
    (busy + sync_time, lsu_busy, fma_busy, tensor_busy)
}

/// Executes a kernel sequence on the simulated device.
pub fn simulate(kernels: &[Kernel], cfg: &SimConfig) -> ModelProfile {
    let mut profile = ModelProfile::default();
    for kernel in kernels {
        let mut time = cfg.spec.kernel_launch_overhead_s;
        let mut mem_busy = 0.0;
        let mut fma_busy = 0.0;
        let mut tensor_busy = 0.0;
        let mut shared_read = 0u64;
        let mut grid_syncs = 0u64;
        for stage in &kernel.stages {
            let (t, m, f, tc) = stage_time(stage, cfg);
            time += t;
            mem_busy += m;
            fma_busy += f;
            tensor_busy += tc;
            shared_read += stage.shared_read_bytes();
            grid_syncs += stage.grid_syncs();
        }
        profile.kernels.push(KernelProfile {
            name: kernel.name.clone(),
            time_s: time,
            mem_busy_s: mem_busy,
            fma_busy_s: fma_busy,
            tensor_busy_s: tensor_busy,
            global_read_bytes: kernel.global_read_bytes(),
            global_write_bytes: kernel.global_write_bytes(),
            shared_read_bytes: shared_read,
            flops: kernel.flops(),
            grid_syncs,
        });
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use souffle_te::{TeId, TensorId};

    fn stage(instrs: Vec<Instr>, grid: u64, pipelined: bool) -> Stage {
        Stage {
            te: TeId(0),
            name: "s".into(),
            grid_blocks: grid,
            threads_per_block: 256,
            shared_mem_bytes: 0,
            regs_per_thread: 32,
            instrs,
            pipelined,
        }
    }

    fn mem_compute_stage(bytes: u64, flops: u64, pipelined: bool) -> Stage {
        stage(
            vec![
                Instr::LdGlobalToShared {
                    tensor: TensorId(0),
                    bytes,
                },
                Instr::Wmma { flops },
                Instr::StSharedToGlobal {
                    tensor: TensorId(1),
                    bytes: 0,
                },
            ],
            1024,
            pipelined,
        )
    }

    #[test]
    fn launch_overhead_dominates_empty_kernels() {
        let cfg = SimConfig::a100();
        let kernels: Vec<Kernel> = (0..10)
            .map(|i| Kernel {
                name: format!("k{i}"),
                stages: vec![],
            })
            .collect();
        let p = simulate(&kernels, &cfg);
        assert!((p.total_time_us() - 20.0).abs() < 1e-6);
        assert_eq!(p.num_kernel_calls(), 10);
    }

    #[test]
    fn pipelining_overlaps_memory_and_compute() {
        let cfg = SimConfig::a100();
        // Sized so mem and compute are comparable.
        let bytes = 100_000_000;
        let flops = 10_000_000_000;
        let serial = Kernel {
            name: "serial".into(),
            stages: vec![mem_compute_stage(bytes, flops, false)],
        };
        let piped = Kernel {
            name: "piped".into(),
            stages: vec![mem_compute_stage(bytes, flops, true)],
        };
        let ps = simulate(std::slice::from_ref(&serial), &cfg);
        let pp = simulate(std::slice::from_ref(&piped), &cfg);
        assert!(
            pp.total_time_s() < ps.total_time_s(),
            "pipelined {:.3e} must beat serial {:.3e}",
            pp.total_time_s(),
            ps.total_time_s()
        );
    }

    #[test]
    fn fewer_kernels_win_for_tiny_work() {
        let cfg = SimConfig::a100();
        let tiny = |n: &str| Kernel {
            name: n.into(),
            stages: vec![stage(
                vec![Instr::LdGlobal {
                    tensor: TensorId(0),
                    bytes: 1024,
                }],
                4,
                false,
            )],
        };
        let many: Vec<Kernel> = (0..8).map(|i| tiny(&format!("k{i}"))).collect();
        let one = vec![Kernel {
            name: "fused".into(),
            stages: many.iter().flat_map(|k| k.stages.clone()).collect(),
        }];
        let pm = simulate(&many, &cfg);
        let po = simulate(&one, &cfg);
        assert!(po.total_time_s() < pm.total_time_s());
        assert_eq!(pm.num_kernel_calls(), 8);
        assert_eq!(po.num_kernel_calls(), 1);
    }

    #[test]
    fn low_parallelism_is_derated() {
        let cfg = SimConfig::a100();
        let mk = |grid: u64| Kernel {
            name: "k".into(),
            stages: vec![stage(
                vec![Instr::LdGlobal {
                    tensor: TensorId(0),
                    bytes: 50_000_000,
                }],
                grid,
                false,
            )],
        };
        let wide = simulate(&[mk(1024)], &cfg);
        let narrow = simulate(&[mk(2)], &cfg);
        assert!(narrow.total_time_s() > 2.0 * wide.total_time_s());
    }

    #[test]
    fn atomics_cost_more_than_stores() {
        let cfg = SimConfig::a100();
        let with_atomic = Kernel {
            name: "a".into(),
            stages: vec![stage(
                vec![Instr::AtomicAdd { bytes: 10_000_000 }],
                1024,
                false,
            )],
        };
        let with_store = Kernel {
            name: "s".into(),
            stages: vec![stage(
                vec![Instr::StGlobal {
                    tensor: TensorId(0),
                    bytes: 10_000_000,
                }],
                1024,
                false,
            )],
        };
        let pa = simulate(std::slice::from_ref(&with_atomic), &cfg);
        let ps = simulate(std::slice::from_ref(&with_store), &cfg);
        assert!(pa.total_time_s() > ps.total_time_s());
    }

    #[test]
    fn grid_sync_cheaper_than_launch() {
        let cfg = SimConfig::a100();
        // one kernel with 3 grid syncs vs 4 kernels
        let synced = vec![Kernel {
            name: "coop".into(),
            stages: (0..4)
                .map(|i| {
                    stage(
                        if i > 0 { vec![Instr::GridSync] } else { vec![] },
                        108,
                        false,
                    )
                })
                .collect(),
        }];
        let split: Vec<Kernel> = (0..4)
            .map(|i| Kernel {
                name: format!("k{i}"),
                stages: vec![stage(vec![], 108, false)],
            })
            .collect();
        let pc = simulate(&synced, &cfg);
        let pl = simulate(&split, &cfg);
        assert!(pc.total_time_s() < pl.total_time_s());
        assert_eq!(pc.grid_syncs(), 3);
    }

    #[test]
    fn utilization_reflects_memory_boundedness() {
        let cfg = SimConfig::a100();
        let k = Kernel {
            name: "memk".into(),
            stages: vec![stage(
                vec![Instr::LdGlobal {
                    tensor: TensorId(0),
                    bytes: 1_000_000_000,
                }],
                1024,
                false,
            )],
        };
        let p = simulate(std::slice::from_ref(&k), &cfg);
        // Pipe-active time is measured at peak rate; elapsed time includes
        // the achieved-efficiency derating, so a fully memory-bound kernel
        // sits near (but below) the memory efficiency (0.8).
        assert!(p.lsu_utilization() > 0.7);
        assert!(p.fma_utilization() < 0.01);
    }

    #[test]
    fn hand_tuned_config_is_faster() {
        let k = Kernel {
            name: "mm".into(),
            stages: vec![mem_compute_stage(10_000_000, 100_000_000_000, false)],
        };
        let generic = simulate(std::slice::from_ref(&k), &SimConfig::a100());
        let tuned = simulate(std::slice::from_ref(&k), &SimConfig::a100_hand_tuned());
        assert!(tuned.total_time_s() < generic.total_time_s());
    }
}
