//! Chrome-trace export of a simulated execution.
//!
//! [`chrome_trace`] renders a [`ModelProfile`] as a `chrome://tracing` /
//! Perfetto-compatible JSON document with one track per pipeline (kernel
//! span, LSU busy, FMA busy, tensor-core busy) — the closest equivalent
//! of Nsight Systems' timeline view for the simulated device. The JSON is
//! emitted by hand; no serialization dependency is needed for this fixed
//! schema.

use crate::ModelProfile;
use std::fmt::Write as _;

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => vec![' '],
            c => vec![c],
        })
        .collect()
}

fn event(
    out: &mut String,
    name: &str,
    tid: u32,
    start_us: f64,
    dur_us: f64,
    args: &[(&str, String)],
) {
    let mut arg_s = String::new();
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            arg_s.push(',');
        }
        let _ = write!(arg_s, "\"{k}\":\"{}\"", escape(v));
    }
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{start_us:.3},\"dur\":{dur_us:.3},\"args\":{{{arg_s}}}}}",
        escape(name)
    );
}

/// Track ids in the emitted trace.
const TRACK_KERNEL: u32 = 0;
const TRACK_LSU: u32 = 1;
const TRACK_FMA: u32 = 2;
const TRACK_TENSOR: u32 = 3;

/// Renders the profile as Chrome-trace JSON (an object with a
/// `traceEvents` array), with kernels laid out back-to-back and per-pipe
/// busy spans nested inside each kernel span.
pub fn chrome_trace(profile: &ModelProfile) -> String {
    let mut events = String::new();
    let mut first = true;
    let mut cursor_us = 0.0f64;
    for k in &profile.kernels {
        let dur = k.time_s * 1e6;
        if !first {
            events.push(',');
        }
        first = false;
        event(
            &mut events,
            &k.name,
            TRACK_KERNEL,
            cursor_us,
            dur,
            &[
                ("read_bytes", k.global_read_bytes.to_string()),
                ("write_bytes", k.global_write_bytes.to_string()),
                ("flops", k.flops.to_string()),
                ("grid_syncs", k.grid_syncs.to_string()),
            ],
        );
        for (tid, busy, label) in [
            (TRACK_LSU, k.mem_busy_s, "lsu"),
            (TRACK_FMA, k.fma_busy_s, "fma"),
            (TRACK_TENSOR, k.tensor_busy_s, "tensor"),
        ] {
            if busy > 0.0 {
                events.push(',');
                event(
                    &mut events,
                    &format!("{label}:{}", k.name),
                    tid,
                    cursor_us,
                    busy * 1e6,
                    &[],
                );
            }
        }
        cursor_us += dur;
    }
    let mut meta = String::new();
    for (tid, name) in [
        (TRACK_KERNEL, "kernels"),
        (TRACK_LSU, "LSU busy"),
        (TRACK_FMA, "FMA busy"),
        (TRACK_TENSOR, "TensorCore busy"),
    ] {
        let _ = write!(
            meta,
            ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\"{name}\"}}}}"
        );
    }
    format!("{{\"traceEvents\":[{events}{meta}],\"displayTimeUnit\":\"ns\"}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelProfile;

    fn profile() -> ModelProfile {
        ModelProfile {
            kernels: vec![
                KernelProfile {
                    name: "subprogram_0".into(),
                    time_s: 10e-6,
                    mem_busy_s: 4e-6,
                    fma_busy_s: 1e-6,
                    tensor_busy_s: 6e-6,
                    global_read_bytes: 1000,
                    global_write_bytes: 500,
                    shared_read_bytes: 0,
                    flops: 12345,
                    grid_syncs: 2,
                },
                KernelProfile {
                    name: "lib_\"resize\"".into(), // name needing escaping
                    time_s: 5e-6,
                    mem_busy_s: 5e-6,
                    fma_busy_s: 0.0,
                    tensor_busy_s: 0.0,
                    global_read_bytes: 64,
                    global_write_bytes: 64,
                    shared_read_bytes: 0,
                    flops: 0,
                    grid_syncs: 0,
                },
            ],
        }
    }

    #[test]
    fn trace_is_structurally_valid_json() {
        let json = chrome_trace(&profile());
        // Balanced braces/brackets and required fields.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"subprogram_0\""));
        assert!(json.contains("\"grid_syncs\":\"2\""));
        assert!(json.contains("LSU busy"));
    }

    #[test]
    fn kernels_are_laid_out_sequentially() {
        let json = chrome_trace(&profile());
        // Second kernel starts at 10 us.
        assert!(json.contains("\"ts\":10.000"), "{json}");
    }

    #[test]
    fn quotes_in_names_are_escaped() {
        let json = chrome_trace(&profile());
        assert!(json.contains("lib_\\\"resize\\\""), "{json}");
    }

    #[test]
    fn empty_profile_is_valid() {
        let json = chrome_trace(&ModelProfile::default());
        assert!(json.contains("traceEvents"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
