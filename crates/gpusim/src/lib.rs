#![warn(missing_docs)]
//! An A100-class GPU simulator for the Souffle reproduction.
//!
//! The paper evaluates on real hardware with NVIDIA Nsight Compute; this
//! crate substitutes both. It executes the kernel IR of `souffle-kernel`
//! against a [`souffle_sched::GpuSpec`] and produces the same metrics the
//! paper reports:
//!
//! - end-to-end latency (Tables 1, 3, 4, Fig. 6),
//! - number of kernel calls (Tables 1, 5),
//! - global-memory transfer bytes (Tables 1, 5, 6),
//! - LSU / FMA pipeline utilization (Table 6).
//!
//! The timing model is a calibrated roofline: per stage,
//! `mem = bytes / (BW × eff)`, `compute = flops / (peak × eff)`, serialized
//! unless the instruction-level pipelining pass marked the stage
//! overlappable (`max` instead of `+`, §6.5). Kernel launches cost ~2 µs
//! (§8.3), grid syncs a fraction of that — which is precisely the trade
//! Souffle's single-kernel strategy exploits. Stages with too little
//! parallelism to fill the device are derated, which is what penalizes
//! wavefront-style execution (Fig. 7's Rammer LSTM).

mod profile;
mod sim;
pub mod timeline;

pub use profile::{KernelProfile, ModelProfile};
pub use sim::{simulate, SimConfig};
pub use timeline::chrome_trace;
