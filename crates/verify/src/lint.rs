//! Pass 4: dead-code lints (warnings).
//!
//! * `SV201` — a TE whose output never (transitively) feeds a program
//!   output: computed then thrown away.
//! * `SV202` — a caller-bound input or weight no TE ever reads.
//! * `SV204` — a `Select` guard that interval analysis proves constant
//!   over the TE's iteration domain: the branch never varies, so either
//!   the guard is vestigial or a fused domain was mis-sized.
//! * `SV205` — an inline fold whose body never reads its own binder:
//!   the fold multiplies/extremizes a loop-invariant value, which is
//!   almost always a dropped binder rename in reduction fusion.
//!
//! All are warnings: the program is well-defined, but dead work usually
//! means a fusion or pruning pass went wrong (or a model was built with
//! vestigial operands), and it skews the cost model's FLOP/byte counts.
//!
//! Liveness is a single backward sweep from the program outputs over the
//! TE list, so the pass stays linear even on the LSTM's unrolled
//! multi-thousand-TE programs. The guard/binder walks visit each body
//! node once with binder-scoped bounds.

use crate::diag::{Code, Diagnostics, Loc};
use souffle_te::canon::prove_cond;
use souffle_te::{ScalarExpr, TeProgram, TensorKind};

/// Bounds entry for variables nothing constrains (mirrors the canon
/// pass's unknown interval; wide enough to never prove anything).
const UNKNOWN: (i64, i64) = (i64::MIN / 4, i64::MAX / 4);

pub(crate) fn check(program: &TeProgram, diags: &mut Diagnostics) {
    let n = program.num_tensors();
    let mut live = vec![false; n];
    for id in program.outputs() {
        if id.0 < n {
            live[id.0] = true;
        }
    }
    // TEs are in definition order, so one reverse sweep propagates
    // liveness from outputs back to the tensors they depend on.
    let mut te_live = vec![false; program.num_tes()];
    for (i, te) in program.tes().iter().enumerate().rev() {
        if te.output.0 < n && live[te.output.0] {
            te_live[i] = true;
            for input in &te.inputs {
                if input.0 < n {
                    live[input.0] = true;
                }
            }
        }
    }

    // Consumption: which tensors are read by any TE at all (live or not —
    // an input read only by dead TEs is still "used", the dead TE is the
    // finding).
    let mut consumed = vec![false; n];
    for te in program.tes() {
        for input in &te.inputs {
            if input.0 < n {
                consumed[input.0] = true;
            }
        }
    }

    for (i, te) in program.tes().iter().enumerate() {
        if !te_live[i] {
            diags.push(
                Code::DeadTe,
                Loc::Te {
                    te: souffle_te::TeId(i),
                    name: te.name.clone(),
                },
                "output never reaches a program output".to_string(),
            );
        }
    }
    for (i, t) in program.tensors().iter().enumerate() {
        if matches!(t.kind, TensorKind::Input | TensorKind::Weight) && !consumed[i] {
            diags.push(
                Code::UnusedInput,
                Loc::Tensor {
                    tensor: souffle_te::TensorId(i),
                    name: t.name.clone(),
                },
                format!("caller-bound {:?} is never read", t.kind),
            );
        }
    }

    for (i, te) in program.tes().iter().enumerate() {
        if te.output.0 >= n {
            continue; // well-formedness reports the dangling output
        }
        let mut bounds: Vec<(i64, i64)> = program
            .tensor(te.output)
            .shape
            .dims()
            .iter()
            .map(|&d| (0, d - 1))
            .collect();
        for &e in &te.reduce {
            bounds.push((0, e - 1));
        }
        let loc = || Loc::Te {
            te: souffle_te::TeId(i),
            name: te.name.clone(),
        };
        walk_body(&te.body, &mut bounds, &loc, diags);
    }
}

/// Visits every `Select` guard and `Reduce` fold with binder-scoped
/// bounds, flagging constant guards (`SV204`) and dead binders (`SV205`).
fn walk_body(
    e: &ScalarExpr,
    bounds: &mut Vec<(i64, i64)>,
    loc: &dyn Fn() -> Loc,
    diags: &mut Diagnostics,
) {
    match e {
        ScalarExpr::Const(_) | ScalarExpr::IndexValue(_) | ScalarExpr::Input { .. } => {}
        ScalarExpr::Unary(_, a) => walk_body(a, bounds, loc, diags),
        ScalarExpr::Binary(_, a, b) => {
            walk_body(a, bounds, loc, diags);
            walk_body(b, bounds, loc, diags);
        }
        ScalarExpr::Select {
            cond,
            on_true,
            on_false,
        } => {
            if let Some(v) = prove_cond(cond, bounds) {
                diags.push(
                    Code::ConstGuard,
                    loc(),
                    format!(
                        "guard ({cond}) is always {v} over the iteration domain — the \
                         `Select` never branches"
                    ),
                );
            }
            walk_body(on_true, bounds, loc, diags);
            walk_body(on_false, bounds, loc, diags);
        }
        ScalarExpr::Reduce {
            var, extent, body, ..
        } => {
            if !fold_body_uses(body, *var) {
                diags.push(
                    Code::DeadFoldBinder,
                    loc(),
                    format!(
                        "fold binder v{var} (extent {extent}) is never read in the fold \
                         body — the iteration accumulates a loop-invariant value"
                    ),
                );
            }
            if bounds.len() <= *var {
                bounds.resize(*var + 1, UNKNOWN);
            }
            let saved = bounds[*var];
            bounds[*var] = (0, extent - 1);
            walk_body(body, bounds, loc, diags);
            bounds[*var] = saved;
        }
    }
}

/// Whether the fold body reads `var` (through index expressions, guards,
/// and nested folds, respecting shadowing).
fn fold_body_uses(e: &ScalarExpr, var: usize) -> bool {
    let ix_uses = |ix: &souffle_affine::IndexExpr| {
        let mut found = false;
        ix.for_each_var(&mut |v| {
            if v == var {
                found = true;
            }
        });
        found
    };
    match e {
        ScalarExpr::Const(_) => false,
        ScalarExpr::IndexValue(ix) => ix_uses(ix),
        ScalarExpr::Input { indices, .. } => indices.iter().any(ix_uses),
        ScalarExpr::Unary(_, a) => fold_body_uses(a, var),
        ScalarExpr::Binary(_, a, b) => fold_body_uses(a, var) || fold_body_uses(b, var),
        ScalarExpr::Select {
            cond,
            on_true,
            on_false,
        } => {
            let mut found = false;
            cond.for_each_var(&mut |v| {
                if v == var {
                    found = true;
                }
            });
            found || fold_body_uses(on_true, var) || fold_body_uses(on_false, var)
        }
        ScalarExpr::Reduce { var: v, body, .. } => *v != var && fold_body_uses(body, var),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use souffle_te::builders;
    use souffle_tensor::{DType, Shape};

    fn run(p: &TeProgram) -> Diagnostics {
        let mut d = Diagnostics::new();
        check(p, &mut d);
        d
    }

    #[test]
    fn fully_live_program_is_clean() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4, 8]), DType::F16);
        let w = p.add_weight("W", Shape::new(vec![8, 4]), DType::F16);
        let m = builders::matmul(&mut p, "mm", a, w);
        let r = builders::relu(&mut p, "r", m);
        p.mark_output(r);
        assert!(run(&p).is_empty());
    }

    #[test]
    fn dead_te_warns() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let e = builders::exp(&mut p, "e", a);
        let _dead = builders::relu(&mut p, "dead", a); // never marked output
        p.mark_output(e);
        let d = run(&p);
        assert!(d.has_code(Code::DeadTe), "{d}");
        assert_eq!(d.num_errors(), 0);
        assert!(d.render().contains("`dead`"), "{d}");
    }

    #[test]
    fn transitively_dead_chain_warns_on_every_link() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let live = builders::exp(&mut p, "live", a);
        let d1 = builders::relu(&mut p, "d1", a);
        let _d2 = builders::exp(&mut p, "d2", d1);
        p.mark_output(live);
        let d = run(&p);
        assert_eq!(d.iter().filter(|x| x.code == Code::DeadTe).count(), 2);
    }

    #[test]
    fn unused_input_warns() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let _unused = p.add_weight("W", Shape::new(vec![4]), DType::F32);
        let e = builders::exp(&mut p, "e", a);
        p.mark_output(e);
        let d = run(&p);
        assert!(d.has_code(Code::UnusedInput), "{d}");
        assert!(d.render().contains("`W`"), "{d}");
    }

    #[test]
    fn constant_guard_warns_sv204() {
        use souffle_affine::IndexExpr;
        use souffle_te::{Cond, ScalarExpr};
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        // v0 < 4 always holds on a [4] domain: the select never branches.
        let out = p.add_tensor("O", Shape::new(vec![4]), DType::F32, TensorKind::Output);
        p.push_te(souffle_te::TensorExpr {
            name: "guarded".into(),
            output: out,
            inputs: vec![a],
            reduce: vec![],
            reduce_op: None,
            body: ScalarExpr::select(
                Cond::cmp(
                    souffle_te::CmpOp::Lt,
                    IndexExpr::var(0),
                    IndexExpr::constant(4),
                ),
                ScalarExpr::input(0, vec![IndexExpr::var(0)]),
                ScalarExpr::Const(0.0),
            ),
        });
        p.mark_output(out);
        let d = run(&p);
        assert!(d.has_code(Code::ConstGuard), "{d}");
        assert_eq!(d.num_errors(), 0);
    }

    #[test]
    fn live_guard_does_not_warn() {
        use souffle_affine::IndexExpr;
        use souffle_te::{Cond, ScalarExpr};
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let out = p.add_tensor("O", Shape::new(vec![4]), DType::F32, TensorKind::Output);
        p.push_te(souffle_te::TensorExpr {
            name: "guarded".into(),
            output: out,
            inputs: vec![a],
            reduce: vec![],
            reduce_op: None,
            body: ScalarExpr::select(
                Cond::cmp(
                    souffle_te::CmpOp::Lt,
                    IndexExpr::var(0),
                    IndexExpr::constant(2),
                ),
                ScalarExpr::input(0, vec![IndexExpr::var(0)]),
                ScalarExpr::Const(0.0),
            ),
        });
        p.mark_output(out);
        let d = run(&p);
        assert!(!d.has_code(Code::ConstGuard), "{d}");
    }

    #[test]
    fn dead_fold_binder_warns_sv205() {
        use souffle_affine::IndexExpr;
        use souffle_te::{ReduceOp, ScalarExpr};
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let out = p.add_tensor("O", Shape::new(vec![4]), DType::F32, TensorKind::Output);
        // fold_{v1<8} sum A[v0]: the binder v1 is never read.
        p.push_te(souffle_te::TensorExpr {
            name: "deadfold".into(),
            output: out,
            inputs: vec![a],
            reduce: vec![],
            reduce_op: None,
            body: ScalarExpr::fold(
                ReduceOp::Sum,
                1,
                8,
                ScalarExpr::input(0, vec![IndexExpr::var(0)]),
            ),
        });
        p.mark_output(out);
        let d = run(&p);
        assert!(d.has_code(Code::DeadFoldBinder), "{d}");
        assert_eq!(d.num_errors(), 0);
    }

    #[test]
    fn live_fold_binder_does_not_warn() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4, 32]), DType::F32);
        let s = builders::softmax(&mut p, "sm", a);
        p.mark_output(s);
        let (v, _) = souffle_transform::vertical_fuse_program(&p);
        let (q, stats) = souffle_transform::reduction_fuse_program(&v);
        assert!(stats.fused > 0);
        let d = run(&q);
        assert!(!d.has_code(Code::DeadFoldBinder), "{d}");
        assert!(!d.has_code(Code::ConstGuard), "{d}");
    }

    #[test]
    fn input_read_only_by_dead_te_is_not_unused() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let b = p.add_input("B", Shape::new(vec![4]), DType::F32);
        let e = builders::exp(&mut p, "e", a);
        let _dead = builders::relu(&mut p, "dead", b);
        p.mark_output(e);
        let d = run(&p);
        assert!(d.has_code(Code::DeadTe));
        assert!(!d.has_code(Code::UnusedInput), "{d}");
    }
}
