//! Pass 4: dead-code lints (warnings).
//!
//! * `SV201` — a TE whose output never (transitively) feeds a program
//!   output: computed then thrown away.
//! * `SV202` — a caller-bound input or weight no TE ever reads.
//!
//! Both are warnings: the program is well-defined, but dead work usually
//! means a fusion or pruning pass went wrong (or a model was built with
//! vestigial operands), and it skews the cost model's FLOP/byte counts.
//!
//! Liveness is a single backward sweep from the program outputs over the
//! TE list, so the pass stays linear even on the LSTM's unrolled
//! multi-thousand-TE programs.

use crate::diag::{Code, Diagnostics, Loc};
use souffle_te::{TeProgram, TensorKind};

pub(crate) fn check(program: &TeProgram, diags: &mut Diagnostics) {
    let n = program.num_tensors();
    let mut live = vec![false; n];
    for id in program.outputs() {
        if id.0 < n {
            live[id.0] = true;
        }
    }
    // TEs are in definition order, so one reverse sweep propagates
    // liveness from outputs back to the tensors they depend on.
    let mut te_live = vec![false; program.num_tes()];
    for (i, te) in program.tes().iter().enumerate().rev() {
        if te.output.0 < n && live[te.output.0] {
            te_live[i] = true;
            for input in &te.inputs {
                if input.0 < n {
                    live[input.0] = true;
                }
            }
        }
    }

    // Consumption: which tensors are read by any TE at all (live or not —
    // an input read only by dead TEs is still "used", the dead TE is the
    // finding).
    let mut consumed = vec![false; n];
    for te in program.tes() {
        for input in &te.inputs {
            if input.0 < n {
                consumed[input.0] = true;
            }
        }
    }

    for (i, te) in program.tes().iter().enumerate() {
        if !te_live[i] {
            diags.push(
                Code::DeadTe,
                Loc::Te {
                    te: souffle_te::TeId(i),
                    name: te.name.clone(),
                },
                "output never reaches a program output".to_string(),
            );
        }
    }
    for (i, t) in program.tensors().iter().enumerate() {
        if matches!(t.kind, TensorKind::Input | TensorKind::Weight) && !consumed[i] {
            diags.push(
                Code::UnusedInput,
                Loc::Tensor {
                    tensor: souffle_te::TensorId(i),
                    name: t.name.clone(),
                },
                format!("caller-bound {:?} is never read", t.kind),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use souffle_te::builders;
    use souffle_tensor::{DType, Shape};

    fn run(p: &TeProgram) -> Diagnostics {
        let mut d = Diagnostics::new();
        check(p, &mut d);
        d
    }

    #[test]
    fn fully_live_program_is_clean() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4, 8]), DType::F16);
        let w = p.add_weight("W", Shape::new(vec![8, 4]), DType::F16);
        let m = builders::matmul(&mut p, "mm", a, w);
        let r = builders::relu(&mut p, "r", m);
        p.mark_output(r);
        assert!(run(&p).is_empty());
    }

    #[test]
    fn dead_te_warns() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let e = builders::exp(&mut p, "e", a);
        let _dead = builders::relu(&mut p, "dead", a); // never marked output
        p.mark_output(e);
        let d = run(&p);
        assert!(d.has_code(Code::DeadTe), "{d}");
        assert_eq!(d.num_errors(), 0);
        assert!(d.render().contains("`dead`"), "{d}");
    }

    #[test]
    fn transitively_dead_chain_warns_on_every_link() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let live = builders::exp(&mut p, "live", a);
        let d1 = builders::relu(&mut p, "d1", a);
        let _d2 = builders::exp(&mut p, "d2", d1);
        p.mark_output(live);
        let d = run(&p);
        assert_eq!(d.iter().filter(|x| x.code == Code::DeadTe).count(), 2);
    }

    #[test]
    fn unused_input_warns() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let _unused = p.add_weight("W", Shape::new(vec![4]), DType::F32);
        let e = builders::exp(&mut p, "e", a);
        p.mark_output(e);
        let d = run(&p);
        assert!(d.has_code(Code::UnusedInput), "{d}");
        assert!(d.render().contains("`W`"), "{d}");
    }

    #[test]
    fn input_read_only_by_dead_te_is_not_unused() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let b = p.add_input("B", Shape::new(vec![4]), DType::F32);
        let e = builders::exp(&mut p, "e", a);
        let _dead = builders::relu(&mut p, "dead", b);
        p.mark_output(e);
        let d = run(&p);
        assert!(d.has_code(Code::DeadTe));
        assert!(!d.has_code(Code::UnusedInput), "{d}");
    }
}
