//! Pass 5: per-stage translation validation.
//!
//! Every transform stage of the pipeline (horizontal, vertical,
//! reduction-fusion, batching, schedule-merge) claims to preserve program
//! semantics. The runtime differential oracle samples that claim on
//! concrete inputs; this pass *proves* it symbolically, per stage, and
//! emits a [`Certificate`] recording what was proven.
//!
//! # Method
//!
//! For a transform stage with `before`/`after` TE programs (sharing one
//! tensor-id space — the transforms copy the tensor table), the certifier
//! compares, for every tensor produced on both sides, the *unfolded*
//! definition of that tensor:
//!
//! 1. operand slots are remapped to tensor ids, so accesses compare
//!    across programs whose TEs hold different input lists;
//! 2. producers that exist on only one side (a vertically inlined
//!    element-wise TE, a fused-away reduction, a horizontal pack tensor)
//!    are substituted through — a standalone reduction becomes an
//!    explicit fold with a globally fresh binder, mirroring the fold the
//!    reduction-fusion rewrite creates;
//! 3. both unfolded bodies are canonicalized
//!    ([`souffle_te::canon::canonicalize`]) under the output's variable
//!    bounds, which resolves the horizontal pack's `v0 < cut` guards,
//!    normalizes affine index arithmetic, renames fold binders to De
//!    Bruijn positions, and flattens sums-of-products;
//! 4. structural equality of the canonical forms is the proof. A
//!    mismatch is classified by lockstep descent into a specific `SV21x`
//!    code: diverging access maps (`SV212`), fold odometers (`SV213`),
//!    domain guards (`SV211`), or a general mismatch (`SV210`).
//!
//! Canonical-form equality proves equivalence in real arithmetic
//! (reassociation of `Add`/`Mul` chains is licensed). The *bit-exactness*
//! claims the pipeline makes are narrower and proven separately: the
//! recorded [`Rewrite::ReductionFused`] entries are checked against both
//! programs so the inline fold's iteration odometer — ascending binder
//! over the same extent with the same combinator — is exactly the
//! standalone reduction's, and batching is validated by a lockstep
//! structural walk (`v_i → v_{i+1}` plus a leading `v0` on batched
//! accesses) that licenses no reassociation at all.
//!
//! Kernel lowering (schedule merging) rearranges execution rather than
//! arithmetic, so its check is a dataflow validation of the merged
//! instruction streams: every load is backed by a program input or an
//! earlier store, every program output is stored, and no tensor is
//! written by two different kernels (`SV214`).

use crate::diag::{Code, Diagnostics, Loc};
use souffle_affine::{IndexExpr, IndexMap};
use souffle_kernel::{Instr, Kernel};
use souffle_te::canon::canonicalize;
use souffle_te::{
    CmpOp, Cond, ReduceOp, Rewrite, RewriteLog, ScalarExpr, TeProgram, TensorId, TensorKind,
};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Environment variable overriding the pipeline's certify stage:
/// `on`/`1`/`true` forces it, `off`/`0`/`false` disables it. An explicit
/// `SouffleOptions::certify` beats the environment; unset means the
/// debug-build default.
pub const CERTIFY_ENV: &str = "SOUFFLE_CERTIFY";

/// The `SOUFFLE_CERTIFY` override, if set and parseable.
pub fn env_certify() -> Option<bool> {
    match std::env::var(CERTIFY_ENV)
        .ok()?
        .trim()
        .to_ascii_lowercase()
        .as_str()
    {
        "on" | "1" | "true" => Some(true),
        "off" | "0" | "false" => Some(false),
        _ => None,
    }
}

/// Whether certification should run absent an explicit option: the env
/// override if present, else on in debug builds (mirroring `verify`).
pub fn certify_default() -> bool {
    env_certify().unwrap_or(cfg!(debug_assertions))
}

/// Unfolded bodies beyond this node count are not canonicalized; the
/// obligation is recorded as residual (`SV215` warning) instead of
/// risking pathological blowup. Far above anything the models produce.
const MAX_UNFOLD_NODES: usize = 100_000;

/// What one certification run proved. Attached to `Compiled` and printed
/// by `Souffle::report()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The stage this certificate covers (`"vertical"`, `"batch"`, …).
    pub stage: String,
    /// Tensor definitions (or kernel stages, for schedule-merge) proven
    /// equivalent across the stage.
    pub matched: usize,
    /// Access-map identities proven (matched accesses in canonical
    /// bodies, recorded view maps, validated kernel loads).
    pub proven_maps: usize,
    /// Fold iteration odometers proven identical to their standalone
    /// reductions.
    pub folds_proven: usize,
    /// Obligations left unproven (each also surfaced as an `SV215`
    /// warning). Zero on every paper model.
    pub residual: usize,
}

impl Certificate {
    fn new(stage: &str) -> Self {
        Certificate {
            stage: stage.to_string(),
            matched: 0,
            proven_maps: 0,
            folds_proven: 0,
            residual: 0,
        }
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "certify[{}]: {} pairs, {} access maps, {} folds, {} residual",
            self.stage, self.matched, self.proven_maps, self.folds_proven, self.residual
        )
    }
}

/// Certifies one TE-level transform stage: proves every tensor produced
/// by both programs is defined by semantically equal expressions, and
/// replays the stage's recorded rewrites against both sides.
pub fn certify_transform(
    before: &TeProgram,
    after: &TeProgram,
    stage: &str,
    log: &RewriteLog,
) -> (Certificate, Diagnostics) {
    let mut cert = Certificate::new(stage);
    let mut diags = Diagnostics::new();

    let prod_b = producers(before);
    let prod_a = producers(after);
    let only_b: HashSet<TensorId> = prod_b
        .keys()
        .filter(|t| !prod_a.contains_key(t))
        .copied()
        .collect();
    let only_a: HashSet<TensorId> = prod_a
        .keys()
        .filter(|t| !prod_b.contains_key(t))
        .copied()
        .collect();

    let proven_by_log = check_log(before, after, &prod_b, &prod_a, log, &mut cert, &mut diags);

    let mut pairs: Vec<TensorId> = prod_b
        .keys()
        .filter(|t| prod_a.contains_key(t))
        .copied()
        .collect();
    pairs.sort();

    // Tensors whose defining TE is *syntactically* identical across the
    // stage (in tensor-id operand space) are proven equal by reflexivity
    // and stay opaque atoms; everything else must be unfolded through.
    let unchanged = |t: TensorId| {
        let tb = &before.tes()[prod_b[&t]];
        let ta = &after.tes()[prod_a[&t]];
        tb.reduce == ta.reduce
            && tb.reduce_op == ta.reduce_op
            && bodies_eq(&tb.body, &tb.inputs, &ta.body, &ta.inputs)
    };

    // Fresh binders for fold-ified reductions start above every variable
    // either program mentions.
    let mut fresh = fresh_base(before).max(fresh_base(after));

    // Shallow unfolders substitute through one-sided producers only:
    // tensors produced on both sides are opaque atoms, each proven equal
    // by its own pair (sound by induction over the acyclic program).
    let mut ub = Unfolder::new(before, only_b, &prod_b, false);
    let mut ua = Unfolder::new(after, only_a, &prod_a, false);
    // Deep unfolders (built lazily, only if a shallow comparison fails)
    // substitute through *every* produced tensor — the exact but
    // potentially large full unfolding, capped by the node budget.
    let mut deep: Option<(Unfolder, Unfolder)> = None;

    for t in pairs {
        let info = before.tensor(t);
        let loc = || Loc::Tensor {
            tensor: t,
            name: info.name.clone(),
        };
        if proven_by_log.contains(&t) {
            // Already proven (and counted) by the recorded-rewrite replay.
            continue;
        }
        if unchanged(t) {
            // Identical definitions over identical atoms.
            cert.matched += 1;
            cert.proven_maps += before.tes()[prod_b[&t]].body.accesses().len();
            continue;
        }
        let bounds: Vec<(i64, i64)> = info.shape.dims().iter().map(|&d| (0, d - 1)).collect();

        ub.overflow = false;
        ua.overflow = false;
        let body_b = ub.foldified(t, &mut fresh);
        let body_a = ua.foldified(t, &mut fresh);
        if !ub.overflow && !ua.overflow && body_b == body_a {
            // Syntactically identical unfoldings need no canonicalization.
            cert.matched += 1;
            cert.proven_maps += body_b.accesses().len();
            continue;
        }
        let mut outcome = if ub.overflow || ua.overflow {
            None
        } else {
            Some(canon_pair(&body_b, &body_a, &bounds))
        };

        if !matches!(outcome, Some((ref cb, ref ca)) if cb == ca) {
            // The modular proof failed (an atom's definition moved, or the
            // budget tripped): retry with full unfolding to free tensors.
            let (db, da) = deep.get_or_insert_with(|| {
                (
                    Unfolder::new(before, HashSet::new(), &prod_b, true),
                    Unfolder::new(after, HashSet::new(), &prod_a, true),
                )
            });
            db.overflow = false;
            da.overflow = false;
            let body_b = db.foldified(t, &mut fresh);
            let body_a = da.foldified(t, &mut fresh);
            outcome = if db.overflow || da.overflow {
                None
            } else {
                Some(canon_pair(&body_b, &body_a, &bounds))
            };
        }

        match outcome {
            None => {
                cert.residual += 1;
                diags.push(
                    Code::CertifyResidual,
                    loc(),
                    format!(
                        "{stage}: unfolded definition of `{}` exceeds {MAX_UNFOLD_NODES} \
                         nodes; equivalence not checked",
                        info.name
                    ),
                );
            }
            Some((cb, ca)) if cb == ca => {
                cert.matched += 1;
                cert.proven_maps += cb.accesses().len();
            }
            Some((cb, ca)) => {
                let (code, why) = classify(&cb, &ca);
                diags.push(
                    code,
                    loc(),
                    format!(
                        "{stage}: canonical definitions of `{}` diverge: {why}",
                        info.name
                    ),
                );
            }
        }
    }
    diags.tag_stage(stage);
    (cert, diags)
}

/// Canonicalizes both sides of a pair under shared bounds and a shared
/// De Bruijn base.
fn canon_pair(
    body_b: &ScalarExpr,
    body_a: &ScalarExpr,
    bounds: &[(i64, i64)],
) -> (ScalarExpr, ScalarExpr) {
    let base = 1 + body_b
        .max_var()
        .unwrap_or(0)
        .max(body_a.max_var().unwrap_or(0))
        .max(bounds.len());
    (
        canonicalize(body_b, bounds, base),
        canonicalize(body_a, bounds, base),
    )
}

/// Certifies the batch rewrite by an independent lockstep walk: the
/// batched program must be exactly the original with every variable
/// shifted up by one, a leading `v0` on every non-weight access, and a
/// leading batch extent on every non-weight shape — the construction
/// under which batch slices are bit-identical to per-request runs.
pub fn certify_batch(
    original: &TeProgram,
    batched: &TeProgram,
    batch: i64,
) -> (Certificate, Diagnostics) {
    let mut cert = Certificate::new("batch");
    let mut diags = Diagnostics::new();
    if original.num_tes() != batched.num_tes() || original.num_tensors() != batched.num_tensors() {
        diags.push(
            Code::CertifyMismatch,
            Loc::Program,
            format!(
                "batch: program shape changed: {} TEs / {} tensors -> {} TEs / {} tensors",
                original.num_tes(),
                original.num_tensors(),
                batched.num_tes(),
                batched.num_tensors()
            ),
        );
        diags.tag_stage("batch");
        return (cert, diags);
    }
    for (o, b) in original.tensors().iter().zip(batched.tensors()) {
        let ok = if o.kind == TensorKind::Weight {
            b.shape == o.shape
        } else {
            b.shape.rank() == o.shape.rank() + 1
                && b.shape.dim(0) == batch
                && &b.shape.dims()[1..] == o.shape.dims()
        };
        if o.kind != b.kind || !ok {
            diags.push(
                Code::CertifyDomain,
                Loc::Tensor {
                    tensor: TensorId(
                        original
                            .tensors()
                            .iter()
                            .position(|t| std::ptr::eq(t, o))
                            .unwrap_or(0),
                    ),
                    name: o.name.clone(),
                },
                format!(
                    "batch: tensor `{}` must gain a leading batch axis of {batch} (weights keep \
                     shape): {} -> {}",
                    o.name, o.shape, b.shape
                ),
            );
        }
    }
    for (te_o, te_b) in original.tes().iter().zip(batched.tes()) {
        let loc = || Loc::Tensor {
            tensor: te_o.output,
            name: original.tensor(te_o.output).name.clone(),
        };
        if te_o.output != te_b.output || te_o.inputs != te_b.inputs {
            diags.push(
                Code::CertifyMismatch,
                loc(),
                format!("batch: operand wiring of `{}` changed", te_o.name),
            );
            continue;
        }
        if te_o.reduce != te_b.reduce || te_o.reduce_op != te_b.reduce_op {
            diags.push(
                Code::CertifyOdometer,
                loc(),
                format!("batch: reduction signature of `{}` changed", te_o.name),
            );
            continue;
        }
        let weight = |op: usize| original.tensor(te_o.inputs[op]).kind == TensorKind::Weight;
        match expect_batched(&te_o.body, &te_b.body, &weight) {
            Ok(stats) => {
                cert.matched += 1;
                cert.proven_maps += stats.0;
                cert.folds_proven += stats.1;
            }
            Err((code, why)) => diags.push(
                code,
                loc(),
                format!(
                    "batch: body of `{}` is not the batch rewrite of the original: {why}",
                    te_o.name
                ),
            ),
        }
    }
    diags.tag_stage("batch");
    (cert, diags)
}

/// Certifies schedule merging: validates the dataflow of the merged
/// instruction streams against the TE program (see module docs).
pub fn certify_schedule(program: &TeProgram, kernels: &[Kernel]) -> (Certificate, Diagnostics) {
    let mut cert = Certificate::new("schedule-merge");
    let mut diags = Diagnostics::new();
    let external: HashSet<TensorId> = program
        .tensors()
        .iter()
        .enumerate()
        .filter(|(_, t)| matches!(t.kind, TensorKind::Input | TensorKind::Weight))
        .map(|(i, _)| TensorId(i))
        .collect();
    // tensor -> index of the kernel that stored it.
    let mut stored_by: HashMap<TensorId, usize> = HashMap::new();
    for (ki, kernel) in kernels.iter().enumerate() {
        for (si, stage) in kernel.stages.iter().enumerate() {
            let atomic_target = program.tes().get(stage.te.0).map(|te| te.output);
            for (ii, instr) in stage.instrs.iter().enumerate() {
                let loc = || Loc::Instr {
                    kernel: kernel.name.clone(),
                    stage: si,
                    instr: ii,
                };
                match *instr {
                    Instr::LdGlobalToShared { tensor, .. }
                    | Instr::LdGlobal { tensor, .. }
                    | Instr::LdShared { tensor, .. } => {
                        if external.contains(&tensor) || stored_by.contains_key(&tensor) {
                            cert.proven_maps += 1;
                        } else {
                            diags.push(
                                Code::CertifySchedule,
                                loc(),
                                format!(
                                    "kernel `{}` stage {si} loads {tensor} `{}` before any \
                                     kernel stores it",
                                    kernel.name,
                                    tensor_name(program, tensor)
                                ),
                            );
                        }
                    }
                    Instr::StSharedToGlobal { tensor, .. } | Instr::StGlobal { tensor, .. } => {
                        record_store(
                            program,
                            kernel,
                            ki,
                            si,
                            ii,
                            tensor,
                            &mut stored_by,
                            &mut diags,
                        );
                    }
                    Instr::AtomicAdd { .. } => {
                        if let Some(tensor) = atomic_target {
                            record_store(
                                program,
                                kernel,
                                ki,
                                si,
                                ii,
                                tensor,
                                &mut stored_by,
                                &mut diags,
                            );
                        }
                    }
                    Instr::GridSync | Instr::BlockSync | Instr::Wmma { .. } | Instr::Fma { .. } => {
                    }
                }
            }
            cert.matched += 1;
        }
    }
    for o in program.outputs() {
        if !stored_by.contains_key(&o) {
            diags.push(
                Code::CertifySchedule,
                Loc::Tensor {
                    tensor: o,
                    name: program.tensor(o).name.clone(),
                },
                format!(
                    "program output {o} `{}` is never stored by any kernel",
                    program.tensor(o).name
                ),
            );
        }
    }
    diags.tag_stage("schedule-merge");
    (cert, diags)
}

#[allow(clippy::too_many_arguments)]
fn record_store(
    program: &TeProgram,
    kernel: &Kernel,
    ki: usize,
    si: usize,
    ii: usize,
    tensor: TensorId,
    stored_by: &mut HashMap<TensorId, usize>,
    diags: &mut Diagnostics,
) {
    if let Some(&prev) = stored_by.get(&tensor) {
        if prev != ki {
            diags.push(
                Code::CertifySchedule,
                Loc::Instr {
                    kernel: kernel.name.clone(),
                    stage: si,
                    instr: ii,
                },
                format!(
                    "kernel `{}` stores {tensor} `{}` already stored by kernel {prev} — each \
                     tensor has one producer",
                    kernel.name,
                    tensor_name(program, tensor)
                ),
            );
        }
    }
    stored_by.insert(tensor, ki);
}

fn tensor_name(program: &TeProgram, tensor: TensorId) -> String {
    program
        .tensors()
        .get(tensor.0)
        .map(|t| t.name.clone())
        .unwrap_or_else(|| "?".to_string())
}

fn producers(p: &TeProgram) -> HashMap<TensorId, usize> {
    p.tes()
        .iter()
        .enumerate()
        .map(|(i, te)| (te.output, i))
        .collect()
}

/// One above every variable any TE of the program mentions (free,
/// reduction, or existing fold binder).
fn fresh_base(p: &TeProgram) -> usize {
    let mut base = 0usize;
    for te in p.tes() {
        let rank = p.tensor(te.output).shape.rank();
        base = base
            .max(rank + te.reduce.len())
            .max(te.body.max_var().map_or(0, |m| m + 1));
    }
    base
}

fn node_count(e: &ScalarExpr) -> usize {
    match e {
        ScalarExpr::Const(_) | ScalarExpr::IndexValue(_) | ScalarExpr::Input { .. } => 1,
        ScalarExpr::Unary(_, a) => 1 + node_count(a),
        ScalarExpr::Binary(_, a, b) => 1 + node_count(a) + node_count(b),
        ScalarExpr::Select {
            on_true, on_false, ..
        } => 1 + node_count(on_true) + node_count(on_false),
        ScalarExpr::Reduce { body, .. } => 1 + node_count(body),
    }
}

/// Unfolds tensor definitions on one side of a stage: producers in the
/// `inline` set (present only on this side) are substituted through,
/// standalone reductions becoming explicit folds over fresh binders. In
/// `all` (deep) mode every produced tensor is substituted instead — the
/// full unfolding to free tensors. Either way the total expression size
/// is budgeted by [`MAX_UNFOLD_NODES`]: when exceeded, `overflow` is set
/// and the partially unfolded expression must not be used for a verdict.
struct Unfolder<'a> {
    program: &'a TeProgram,
    inline: HashSet<TensorId>,
    all: bool,
    producers: &'a HashMap<TensorId, usize>,
    memo: HashMap<TensorId, (ScalarExpr, bool)>,
    /// Sticky within one `foldified` call tree; reset by the caller
    /// before each top-level query.
    overflow: bool,
}

impl<'a> Unfolder<'a> {
    fn new(
        program: &'a TeProgram,
        inline: HashSet<TensorId>,
        producers: &'a HashMap<TensorId, usize>,
        all: bool,
    ) -> Self {
        Unfolder {
            program,
            inline,
            all,
            producers,
            memo: HashMap::new(),
            overflow: false,
        }
    }

    fn should_inline(&self, t: TensorId) -> bool {
        if self.all {
            self.producers.contains_key(&t)
        } else {
            self.inline.contains(&t)
        }
    }

    /// The unfolded definition of `t` as an *expression* usable at an
    /// access site: TE-level reduction axes become explicit folds with
    /// globally fresh binders, exactly mirroring what reduction fusion
    /// constructs.
    fn foldified(&mut self, t: TensorId, fresh: &mut usize) -> ScalarExpr {
        if let Some((b, ov)) = self.memo.get(&t) {
            if *ov {
                self.overflow = true;
            }
            return b.clone();
        }
        let te = &self.program.tes()[self.producers[&t]];
        let mut b = te.body.remap_operands(&|o| te.inputs[o].0);
        let rank = self.program.tensor(t).shape.rank();
        if let Some(op) = te.reduce_op {
            let k = te.reduce.len();
            let n = b.max_var().map_or(0, |m| m + 1).max(rank + k);
            let mut subs: Vec<IndexExpr> = (0..n).map(IndexExpr::var).collect();
            let binders: Vec<usize> = (0..k)
                .map(|_| {
                    let v = *fresh;
                    *fresh += 1;
                    v
                })
                .collect();
            for (i, &bv) in binders.iter().enumerate() {
                subs[rank + i] = IndexExpr::var(bv);
            }
            b = b.substitute(&subs, &|o| o);
            for i in (0..k).rev() {
                b = ScalarExpr::fold(op, binders[i], te.reduce[i], b);
            }
        }
        let outer = self.overflow;
        self.overflow = false;
        let b = self.unfold(&b, fresh);
        let ov = self.overflow;
        self.overflow = outer || ov;
        self.memo.insert(t, (b.clone(), ov));
        b
    }

    fn unfold(&mut self, body: &ScalarExpr, fresh: &mut usize) -> ScalarExpr {
        let mut b = body.clone();
        loop {
            let count = node_count(&b);
            if count > MAX_UNFOLD_NODES {
                self.overflow = true;
                return b;
            }
            let mut target = None;
            let mut n_sites = 0usize;
            for (o, _) in b.accesses() {
                let t = TensorId(o);
                match target {
                    None if self.should_inline(t) => {
                        target = Some(t);
                        n_sites = 1;
                    }
                    Some(cur) if cur == t => n_sites += 1,
                    _ => {}
                }
            }
            let Some(t) = target else {
                return b;
            };
            let rep = self.foldified(t, fresh);
            // Every access site gets a copy of `rep`: budget the growth
            // before paying for it.
            if count + n_sites.saturating_mul(node_count(&rep)) > MAX_UNFOLD_NODES {
                self.overflow = true;
                return b;
            }
            b = b.inline_operand(t.0, &rep);
        }
    }
}

/// Replays a stage's recorded rewrites against the before/after programs:
/// fold odometers must match their standalone reductions, horizontal
/// packs must tile exactly, and each member view's access map must be the
/// recorded segment offset.
fn check_log(
    before: &TeProgram,
    after: &TeProgram,
    prod_b: &HashMap<TensorId, usize>,
    prod_a: &HashMap<TensorId, usize>,
    log: &RewriteLog,
    cert: &mut Certificate,
    diags: &mut Diagnostics,
) -> HashSet<TensorId> {
    let mut proven = HashSet::new();
    for entry in &log.entries {
        match entry {
            Rewrite::ReductionFused {
                reduction_output,
                consumer_output,
                extent,
                op,
            } => {
                let red = prod_b
                    .get(reduction_output)
                    .map(|&i| &before.tes()[i])
                    .cloned();
                let red_ok = red
                    .as_ref()
                    .map(|te| te.reduce == vec![*extent] && te.reduce_op == Some(*op))
                    .unwrap_or(false);
                if !red_ok {
                    diags.push(
                        Code::CertifyOdometer,
                        Loc::Tensor {
                            tensor: *reduction_output,
                            name: tensor_name(before, *reduction_output),
                        },
                        format!(
                            "recorded fold ({op:?}, extent {extent}) does not match the \
                             standalone reduction producing {reduction_output}"
                        ),
                    );
                    continue;
                }
                let fold_ok = prod_a
                    .get(consumer_output)
                    .map(|&i| &after.tes()[i])
                    .map(|te| fold_sigs(&te.body).contains(&(*extent, *op)))
                    .unwrap_or(false);
                if fold_ok {
                    cert.folds_proven += 1;
                } else {
                    diags.push(
                        Code::CertifyOdometer,
                        Loc::Tensor {
                            tensor: *consumer_output,
                            name: tensor_name(after, *consumer_output),
                        },
                        format!(
                            "consumer of fused reduction {reduction_output} carries no fold \
                             with ({op:?}, extent {extent})"
                        ),
                    );
                }
            }
            Rewrite::HorizontalGroup {
                members,
                concat,
                cuts,
            } => check_horizontal_group(
                before,
                after,
                prod_b,
                prod_a,
                members,
                *concat,
                cuts,
                &mut proven,
                cert,
                diags,
            ),
            Rewrite::Inlined { .. } | Rewrite::Batched { .. } => {
                // Proven wholesale by the canonical comparison / the
                // dedicated batch walk.
            }
        }
    }
    proven
}

#[allow(clippy::too_many_arguments)]
fn check_horizontal_group(
    before: &TeProgram,
    after: &TeProgram,
    prod_b: &HashMap<TensorId, usize>,
    prod_a: &HashMap<TensorId, usize>,
    members: &[TensorId],
    concat: TensorId,
    cuts: &[i64],
    proven: &mut HashSet<TensorId>,
    cert: &mut Certificate,
    diags: &mut Diagnostics,
) {
    let cshape = &after.tensor(concat).shape;
    if cuts.len() != members.len() || cuts.last().copied() != Some(cshape.dim(0)) {
        diags.push(
            Code::CertifyDomain,
            Loc::Tensor {
                tensor: concat,
                name: tensor_name(after, concat),
            },
            format!(
                "horizontal pack {concat} rows ({}) do not match recorded cuts {cuts:?}",
                cshape.dim(0)
            ),
        );
        return;
    }
    // The pack body, split into one branch per member if it is exactly
    // the guard chain `Select(v0 < cuts[0], b0, Select(v0 < cuts[1], ...))`
    // the transform constructs. Branch `i` then *is* the member's
    // semantics on its row segment (guards j < i are false there, guard i
    // is true — the cuts tile, checked above), which licenses a per-member
    // proof against one branch instead of unfolding the whole chain.
    let concat_te = prod_a.get(&concat).map(|&ti| &after.tes()[ti]);
    let branches = concat_te.and_then(|te| pack_branches(&te.body, cuts));

    let mut start = 0i64;
    for (i, &m) in members.iter().enumerate() {
        let mshape = &before.tensor(m).shape;
        let extent = mshape.dim(0);
        if cuts[i] - start != extent {
            diags.push(
                Code::CertifyDomain,
                Loc::Tensor {
                    tensor: m,
                    name: tensor_name(before, m),
                },
                format!(
                    "member {m} covers rows {start}..{} but has extent {extent} — the pack \
                     does not tile",
                    cuts[i]
                ),
            );
            start = cuts[i];
            continue;
        }
        // The member's after-side definition must be a pure view of the
        // pack at exactly its segment offset, and its image must stay
        // inside the segment.
        let view_ok = prod_a.get(&m).map(|&ti| &after.tes()[ti]).and_then(|te| {
            let rank = mshape.rank();
            let map = te.view_map(rank)?;
            if te.inputs != vec![concat] {
                return Some(false);
            }
            let mut expected: Vec<IndexExpr> = (0..rank).map(IndexExpr::var).collect();
            expected[0] = IndexExpr::var(0).add(IndexExpr::constant(start));
            let expected = IndexMap::new(rank, expected);
            if !map.equiv(&expected) {
                return Some(false);
            }
            let bounds: Vec<(i64, i64)> = mshape.dims().iter().map(|&d| (0, d - 1)).collect();
            let mut region: Vec<(i64, i64)> = cshape.dims().iter().map(|&d| (0, d - 1)).collect();
            region[0] = (start, cuts[i] - 1);
            Some(map.image_within(&bounds, &region))
        });
        match view_ok {
            Some(true) => {
                cert.proven_maps += 1;
                // The view is exact; if branch `i` of the pack matches the
                // member's old definition, the pair is fully proven here
                // and the main loop skips its (much costlier) unfold.
                if let (Some(cte), Some(branches), Some(&bi)) =
                    (concat_te, branches.as_ref(), prod_b.get(&m))
                {
                    let mte = &before.tes()[bi];
                    if mte.reduce == cte.reduce && mte.reduce_op == cte.reduce_op {
                        let rank = mshape.rank();
                        let nv = rank + cte.reduce.len();
                        let branch = branches[i].remap_operands(&|o| cte.inputs[o].0);
                        let n = branch.max_var().map_or(nv, |mv| (mv + 1).max(nv));
                        let mut subs: Vec<IndexExpr> = (0..n).map(IndexExpr::var).collect();
                        subs[0] = IndexExpr::var(0).add(IndexExpr::constant(start));
                        let branch = branch.substitute(&subs, &|o| o);
                        let body = mte.body.remap_operands(&|o| mte.inputs[o].0);
                        let mut bounds: Vec<(i64, i64)> =
                            mshape.dims().iter().map(|&d| (0, d - 1)).collect();
                        bounds.extend(mte.reduce.iter().map(|&e| (0, e - 1)));
                        let equal = branch == body || {
                            let (cb, ca) = canon_pair(&body, &branch, &bounds);
                            cb == ca
                        };
                        if equal {
                            proven.insert(m);
                            cert.matched += 1;
                            cert.proven_maps += body.accesses().len();
                        }
                        // Not equal: stay silent — the main loop's general
                        // unfold re-checks this member and classifies any
                        // genuine divergence.
                    }
                }
            }
            Some(false) => diags.push(
                Code::CertifyAccessMap,
                Loc::Tensor {
                    tensor: m,
                    name: tensor_name(before, m),
                },
                format!(
                    "member {m} is not re-derived as the recorded view of pack {concat} at \
                     row offset {start}"
                ),
            ),
            // The member is no longer a pure view (e.g. a later fixpoint
            // round fused it again); the canonical comparison still
            // covers its semantics.
            None => {}
        }
        start = cuts[i];
    }
}

/// Structural equality of two TE bodies whose operand slots resolve
/// through different input lists: `Input` nodes compare by resolved
/// tensor id, everything else by plain equality. Equivalent to comparing
/// `remap_operands` results without materializing either clone.
fn bodies_eq(a: &ScalarExpr, ia: &[TensorId], b: &ScalarExpr, ib: &[TensorId]) -> bool {
    use ScalarExpr::*;
    match (a, b) {
        (Const(x), Const(y)) => x == y,
        (IndexValue(x), IndexValue(y)) => x == y,
        (
            Input {
                operand: oa,
                indices: xa,
            },
            Input {
                operand: ob,
                indices: xb,
            },
        ) => ia[*oa] == ib[*ob] && xa == xb,
        (Unary(f, x), Unary(g, y)) => f == g && bodies_eq(x, ia, y, ib),
        (Binary(f, x1, x2), Binary(g, y1, y2)) => {
            f == g && bodies_eq(x1, ia, y1, ib) && bodies_eq(x2, ia, y2, ib)
        }
        (
            Select {
                cond: ca,
                on_true: ta,
                on_false: fa,
            },
            Select {
                cond: cb,
                on_true: tb,
                on_false: fb,
            },
        ) => ca == cb && bodies_eq(ta, ia, tb, ib) && bodies_eq(fa, ia, fb, ib),
        (
            Reduce {
                op: pa,
                var: va,
                extent: ea,
                body: ba,
            },
            Reduce {
                op: pb,
                var: vb,
                extent: eb,
                body: bb,
            },
        ) => pa == pb && va == vb && ea == eb && bodies_eq(ba, ia, bb, ib),
        _ => false,
    }
}

/// Splits a horizontal pack body into one branch per member, verifying
/// it is *exactly* the transform's guard chain
/// `Select(v0 < cuts[0], b0, Select(v0 < cuts[1], b1, ... b_last))`.
/// Returns `None` for any other shape (the general proof handles it).
fn pack_branches<'e>(body: &'e ScalarExpr, cuts: &[i64]) -> Option<Vec<&'e ScalarExpr>> {
    let mut out = Vec::with_capacity(cuts.len());
    let mut cur = body;
    for &cut in cuts.iter().take(cuts.len().checked_sub(1)?) {
        let ScalarExpr::Select {
            cond,
            on_true,
            on_false,
        } = cur
        else {
            return None;
        };
        let expected = Cond::cmp(CmpOp::Lt, IndexExpr::var(0), IndexExpr::constant(cut));
        if *cond != expected {
            return None;
        }
        out.push(&**on_true);
        cur = on_false;
    }
    out.push(cur);
    Some(out)
}

/// All `(extent, op)` fold signatures in a body.
fn fold_sigs(e: &ScalarExpr) -> Vec<(i64, ReduceOp)> {
    let mut out = Vec::new();
    collect_fold_sigs(e, &mut out);
    out
}

fn collect_fold_sigs(e: &ScalarExpr, out: &mut Vec<(i64, ReduceOp)>) {
    match e {
        ScalarExpr::Const(_) | ScalarExpr::IndexValue(_) | ScalarExpr::Input { .. } => {}
        ScalarExpr::Unary(_, a) => collect_fold_sigs(a, out),
        ScalarExpr::Binary(_, a, b) => {
            collect_fold_sigs(a, out);
            collect_fold_sigs(b, out);
        }
        ScalarExpr::Select {
            on_true, on_false, ..
        } => {
            collect_fold_sigs(on_true, out);
            collect_fold_sigs(on_false, out);
        }
        ScalarExpr::Reduce {
            op, extent, body, ..
        } => {
            out.push((*extent, *op));
            collect_fold_sigs(body, out);
        }
    }
}

fn ix_uses(ix: &IndexExpr, var: usize) -> bool {
    let mut found = false;
    ix.for_each_var(&mut |v| {
        if v == var {
            found = true;
        }
    });
    found
}

fn cond_uses(c: &Cond, var: usize) -> bool {
    let mut found = false;
    c.for_each_var(&mut |v| {
        if v == var {
            found = true;
        }
    });
    found
}

fn uses_var(e: &ScalarExpr, var: usize) -> bool {
    match e {
        ScalarExpr::Const(_) => false,
        ScalarExpr::IndexValue(ix) => ix_uses(ix, var),
        ScalarExpr::Input { indices, .. } => indices.iter().any(|ix| ix_uses(ix, var)),
        ScalarExpr::Unary(_, a) => uses_var(a, var),
        ScalarExpr::Binary(_, a, b) => uses_var(a, var) || uses_var(b, var),
        ScalarExpr::Select {
            cond,
            on_true,
            on_false,
        } => cond_uses(cond, var) || uses_var(on_true, var) || uses_var(on_false, var),
        ScalarExpr::Reduce { var: v, body, .. } => *v != var && uses_var(body, var),
    }
}

/// Classifies a canonical-form mismatch by lockstep descent: the first
/// structurally diverging pair of nodes names the failure mode.
fn classify(b: &ScalarExpr, a: &ScalarExpr) -> (Code, String) {
    debug_assert_ne!(b, a);
    match (b, a) {
        (
            ScalarExpr::Input {
                operand: ob,
                indices: ib,
            },
            ScalarExpr::Input {
                operand: oa,
                indices: ia,
            },
        ) if ob == oa && ib != ia => (
            Code::CertifyAccessMap,
            format!(
                "access maps of t{ob} differ: [{}] vs [{}]",
                fmt_indices(ib),
                fmt_indices(ia)
            ),
        ),
        (
            ScalarExpr::Reduce {
                op: o1,
                var: v1,
                extent: e1,
                body: b1,
            },
            ScalarExpr::Reduce {
                op: o2,
                var: v2,
                extent: e2,
                body: b2,
            },
        ) => {
            if o1 != o2 || e1 != e2 {
                (
                    Code::CertifyOdometer,
                    format!("fold odometers differ: {o1:?}×{e1} vs {o2:?}×{e2}"),
                )
            } else if uses_var(b1, *v1) != uses_var(b2, *v2) {
                (
                    Code::CertifyOdometer,
                    "one fold ignores its binder — an iteration rename was dropped".to_string(),
                )
            } else if b1 != b2 {
                classify(b1, b2)
            } else {
                (Code::CertifyMismatch, "fold binders diverge".to_string())
            }
        }
        (
            ScalarExpr::Select {
                cond: c1,
                on_true: t1,
                on_false: f1,
            },
            ScalarExpr::Select {
                cond: c2,
                on_true: t2,
                on_false: f2,
            },
        ) => {
            if c1 != c2 {
                (
                    Code::CertifyDomain,
                    format!("domain guards differ: ({c1}) vs ({c2})"),
                )
            } else if t1 != t2 {
                classify(t1, t2)
            } else {
                classify(f1, f2)
            }
        }
        // Exactly one side carries a residual guard: a domain was widened
        // or narrowed until the guard stopped (or started) resolving.
        (ScalarExpr::Select { cond, .. }, _) | (_, ScalarExpr::Select { cond, .. }) => (
            Code::CertifyDomain,
            format!("a domain guard ({cond}) survives on one side only"),
        ),
        (ScalarExpr::Unary(o1, a1), ScalarExpr::Unary(o2, a2)) if o1 == o2 => classify(a1, a2),
        (ScalarExpr::Binary(o1, l1, r1), ScalarExpr::Binary(o2, l2, r2)) if o1 == o2 => {
            if l1 != l2 {
                classify(l1, l2)
            } else {
                classify(r1, r2)
            }
        }
        _ => (
            Code::CertifyMismatch,
            format!("{} vs {}", summarize(b), summarize(a)),
        ),
    }
}

fn fmt_indices(ix: &[IndexExpr]) -> String {
    ix.iter()
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn summarize(e: &ScalarExpr) -> String {
    let s = e.to_string();
    if s.len() > 96 {
        format!(
            "{}…",
            &s[..s
                .char_indices()
                .take(96)
                .last()
                .map_or(0, |(i, c)| i + c.len_utf8())]
        )
    } else {
        s
    }
}

/// Lockstep batch-rewrite walk: `b` must be `o` with every variable
/// shifted up by one and a leading `v0` on non-weight accesses. Returns
/// `(accesses_proven, folds_proven)`.
fn expect_batched(
    o: &ScalarExpr,
    b: &ScalarExpr,
    weight: &dyn Fn(usize) -> bool,
) -> Result<(usize, usize), (Code, String)> {
    match (o, b) {
        (ScalarExpr::Const(x), ScalarExpr::Const(y)) if x == y => Ok((0, 0)),
        (ScalarExpr::IndexValue(e1), ScalarExpr::IndexValue(e2)) if shifted_eq(e1, e2) => {
            Ok((0, 0))
        }
        (
            ScalarExpr::Input {
                operand: o1,
                indices: i1,
            },
            ScalarExpr::Input {
                operand: o2,
                indices: i2,
            },
        ) if o1 == o2 => {
            let tail: &[IndexExpr] = if weight(*o1) {
                i2
            } else {
                match i2.split_first() {
                    Some((first, rest)) if *first == IndexExpr::var(0) => rest,
                    _ => {
                        return Err((
                            Code::CertifyAccessMap,
                            format!("batched access to t-slot {o1} lacks the leading v0"),
                        ))
                    }
                }
            };
            if i1.len() == tail.len() && i1.iter().zip(tail).all(|(a, b)| shifted_eq(a, b)) {
                Ok((1, 0))
            } else {
                Err((
                    Code::CertifyAccessMap,
                    format!(
                        "access map not shifted: [{}] vs [{}]",
                        fmt_indices(i1),
                        fmt_indices(i2)
                    ),
                ))
            }
        }
        (ScalarExpr::Unary(u1, a1), ScalarExpr::Unary(u2, a2)) if u1 == u2 => {
            expect_batched(a1, a2, weight)
        }
        (ScalarExpr::Binary(x1, l1, r1), ScalarExpr::Binary(x2, l2, r2)) if x1 == x2 => {
            let l = expect_batched(l1, l2, weight)?;
            let r = expect_batched(r1, r2, weight)?;
            Ok((l.0 + r.0, l.1 + r.1))
        }
        (
            ScalarExpr::Select {
                cond: c1,
                on_true: t1,
                on_false: f1,
            },
            ScalarExpr::Select {
                cond: c2,
                on_true: t2,
                on_false: f2,
            },
        ) => {
            if !cond_shifted_eq(c1, c2) {
                return Err((
                    Code::CertifyDomain,
                    format!("guard not shifted: ({c1}) vs ({c2})"),
                ));
            }
            let t = expect_batched(t1, t2, weight)?;
            let f = expect_batched(f1, f2, weight)?;
            Ok((t.0 + f.0, t.1 + f.1))
        }
        (
            ScalarExpr::Reduce {
                op: p1,
                var: v1,
                extent: e1,
                body: b1,
            },
            ScalarExpr::Reduce {
                op: p2,
                var: v2,
                extent: e2,
                body: b2,
            },
        ) => {
            if p1 != p2 || e1 != e2 || *v2 != v1 + 1 {
                return Err((
                    Code::CertifyOdometer,
                    format!("fold not shifted: {p1:?}×{e1}@v{v1} vs {p2:?}×{e2}@v{v2}"),
                ));
            }
            let inner = expect_batched(b1, b2, weight)?;
            Ok((inner.0, inner.1 + 1))
        }
        _ => Err((
            Code::CertifyMismatch,
            format!("{} vs {}", summarize(o), summarize(b)),
        )),
    }
}

fn shifted_eq(o: &IndexExpr, b: &IndexExpr) -> bool {
    let shifted = o.shift_vars(1);
    if &shifted == b {
        return true;
    }
    // Builder simplification may restructure; compare linear forms.
    let n = 1 + shifted.max_var().unwrap_or(0).max(b.max_var().unwrap_or(0));
    match (shifted.as_linear(n), b.as_linear(n)) {
        (Some(x), Some(y)) => x == y,
        _ => shifted.simplified() == b.simplified(),
    }
}

fn cond_shifted_eq(o: &Cond, b: &Cond) -> bool {
    match (o, b) {
        (Cond::Cmp(op1, a1, b1), Cond::Cmp(op2, a2, b2)) => {
            op1 == op2 && shifted_eq(a1, a2) && shifted_eq(b1, b2)
        }
        (Cond::And(a1, b1), Cond::And(a2, b2)) | (Cond::Or(a1, b1), Cond::Or(a2, b2)) => {
            cond_shifted_eq(a1, a2) && cond_shifted_eq(b1, b2)
        }
        (Cond::Not(a1), Cond::Not(a2)) => cond_shifted_eq(a1, a2),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use souffle_te::{builders, TeProgram};
    use souffle_tensor::{DType, Shape};
    use souffle_transform::{
        batch_program, horizontal_fuse_program_logged, reduction_fuse_program_logged,
        vertical_fuse_program_logged,
    };

    fn rebuild(program: &TeProgram, tes: Vec<souffle_te::TensorExpr>) -> TeProgram {
        let mut p = TeProgram::new();
        for t in program.tensors() {
            p.add_tensor(&t.name, t.shape.clone(), t.dtype, t.kind);
        }
        for te in tes {
            p.push_te(te);
        }
        p
    }

    fn assert_certified(c: &Certificate, d: &Diagnostics) {
        assert!(!d.has_errors(), "{d}");
        assert_eq!(d.num_warnings(), 0, "{d}");
        assert_eq!(c.residual, 0, "{c}");
    }

    #[test]
    fn vertical_inlining_certifies() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4, 8]), DType::F32);
        let b = builders::relu(&mut p, "relu", a);
        let c = builders::strided_slice(&mut p, "slice", b, 0, 0, 2, 2);
        let d = builders::transpose(&mut p, "permute", c, &[1, 0]);
        p.mark_output(d);
        let mut log = souffle_te::RewriteLog::new();
        let (q, _) = vertical_fuse_program_logged(&p, &mut log);
        assert!(!log.is_empty());
        let (cert, diags) = certify_transform(&p, &q, "vertical", &log);
        assert_certified(&cert, &diags);
        assert!(cert.matched >= 1, "{cert}");
    }

    #[test]
    fn horizontal_packing_certifies() {
        let mut p = TeProgram::new();
        let a1 = p.add_input("A1", Shape::new(vec![4, 8]), DType::F32);
        let b1 = p.add_weight("B1", Shape::new(vec![8, 16]), DType::F32);
        let a2 = p.add_input("A2", Shape::new(vec![2, 8]), DType::F32);
        let b2 = p.add_weight("B2", Shape::new(vec![8, 16]), DType::F32);
        let c1 = builders::matmul(&mut p, "C1", a1, b1);
        let c2 = builders::matmul(&mut p, "C2", a2, b2);
        let c = builders::concat(&mut p, "C", c1, c2, 0);
        p.mark_output(c);
        let mut log = souffle_te::RewriteLog::new();
        let (q, _) = horizontal_fuse_program_logged(&p, &mut log);
        assert_eq!(log.len(), 1);
        let (cert, diags) = certify_transform(&p, &q, "horizontal", &log);
        assert_certified(&cert, &diags);
        assert!(cert.proven_maps >= 2, "view maps proven: {cert}");
    }

    #[test]
    fn reduction_fusion_certifies_with_fold_proofs() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![16, 64]), DType::F32);
        let s = builders::softmax(&mut p, "sm", a);
        p.mark_output(s);
        let (v, _) = souffle_transform::vertical_fuse_program(&p);
        let mut log = souffle_te::RewriteLog::new();
        let (q, stats) = reduction_fuse_program_logged(&v, &mut log);
        assert!(stats.fused > 0);
        let (cert, diags) = certify_transform(&v, &q, "reduction-fusion", &log);
        assert_certified(&cert, &diags);
        assert!(cert.folds_proven >= 2, "{cert}");
    }

    #[test]
    fn swapped_access_map_is_rejected() {
        // Vertical-fuse, then swap two index expressions in one access of
        // the after program: the certifier must flag SV212.
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![8, 8]), DType::F32);
        let t = builders::transpose(&mut p, "t", a, &[1, 0]);
        let e = builders::exp(&mut p, "e", t);
        p.mark_output(e);
        let mut log = souffle_te::RewriteLog::new();
        let (q, _) = vertical_fuse_program_logged(&p, &mut log);
        // q's single TE body is exp(A[v1, v0]); un-swap the transpose.
        let mut tes = q.tes().to_vec();
        tes[0].body = ScalarExpr::unary(
            souffle_te::UnaryOp::Exp,
            ScalarExpr::input(0, vec![IndexExpr::var(0), IndexExpr::var(1)]),
        );
        let q = rebuild(&q, tes);
        let (_, diags) = certify_transform(&p, &q, "vertical", &log);
        assert!(diags.has_code(Code::CertifyAccessMap), "{diags}");
    }

    #[test]
    fn batch_rewrite_certifies_and_detects_missing_batch_index() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4, 6]), DType::F32);
        let w = p.add_weight("W", Shape::new(vec![6, 5]), DType::F32);
        let mm = builders::matmul(&mut p, "mm", a, w);
        let sm = builders::softmax(&mut p, "sm", mm);
        p.mark_output(sm);
        let bp = batch_program(&p, 4);
        let (cert, diags) = certify_batch(&p, &bp, 4);
        assert_certified(&cert, &diags);
        assert_eq!(cert.matched, p.num_tes());

        // Drop the batch index from one access.
        let bad = batch_program(&p, 4);
        let mut tes = bad.tes().to_vec();
        tes[0].body = drop_first_batch_index(&tes[0].body);
        let bad = rebuild(&bad, tes);
        let (_, diags) = certify_batch(&p, &bad, 4);
        assert!(diags.has_code(Code::CertifyAccessMap), "{diags}");
    }

    fn drop_first_batch_index(e: &ScalarExpr) -> ScalarExpr {
        match e {
            ScalarExpr::Input { operand, indices }
                if indices.first() == Some(&IndexExpr::var(0)) =>
            {
                ScalarExpr::Input {
                    operand: *operand,
                    indices: indices[1..].to_vec(),
                }
            }
            ScalarExpr::Binary(op, a, b) => ScalarExpr::Binary(
                *op,
                Box::new(drop_first_batch_index(a)),
                Box::new(b.as_ref().clone()),
            ),
            ScalarExpr::Unary(op, a) => ScalarExpr::Unary(*op, Box::new(drop_first_batch_index(a))),
            other => other.clone(),
        }
    }

    #[test]
    fn schedule_certify_accepts_store_load_chains_and_rejects_clobbers() {
        use souffle_kernel::Stage;
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![64]), DType::F32);
        let e = builders::exp(&mut p, "e", a);
        let r = builders::relu(&mut p, "r", e);
        p.mark_output(r);
        let stage = |te: usize, name: &str, instrs: Vec<Instr>| Stage {
            te: souffle_te::TeId(te),
            name: name.into(),
            grid_blocks: 4,
            threads_per_block: 128,
            shared_mem_bytes: 0,
            regs_per_thread: 32,
            instrs,
            pipelined: false,
        };
        let good = vec![Kernel {
            name: "k".into(),
            stages: vec![
                stage(
                    0,
                    "e",
                    vec![
                        Instr::LdGlobal {
                            tensor: a,
                            bytes: 256,
                        },
                        Instr::StGlobal {
                            tensor: e,
                            bytes: 256,
                        },
                    ],
                ),
                stage(
                    1,
                    "r",
                    vec![
                        Instr::GridSync,
                        Instr::LdGlobal {
                            tensor: e,
                            bytes: 256,
                        },
                        Instr::StGlobal {
                            tensor: r,
                            bytes: 256,
                        },
                    ],
                ),
            ],
        }];
        let (cert, diags) = certify_schedule(&p, &good);
        assert!(!diags.has_errors(), "{diags}");
        assert_eq!(cert.matched, 2);

        // Load of a tensor no kernel ever stores.
        let bad_load = vec![Kernel {
            name: "k".into(),
            stages: vec![stage(
                1,
                "r",
                vec![
                    Instr::LdGlobal {
                        tensor: e,
                        bytes: 256,
                    },
                    Instr::StGlobal {
                        tensor: r,
                        bytes: 256,
                    },
                ],
            )],
        }];
        let (_, diags) = certify_schedule(&p, &bad_load);
        assert!(diags.has_code(Code::CertifySchedule), "{diags}");

        // Two kernels storing the same tensor.
        let clobber = vec![
            Kernel {
                name: "k1".into(),
                stages: vec![stage(
                    0,
                    "e",
                    vec![Instr::StGlobal {
                        tensor: r,
                        bytes: 256,
                    }],
                )],
            },
            Kernel {
                name: "k2".into(),
                stages: vec![stage(
                    1,
                    "r",
                    vec![Instr::StGlobal {
                        tensor: r,
                        bytes: 256,
                    }],
                )],
            },
        ];
        let (_, diags) = certify_schedule(&p, &clobber);
        assert!(diags.has_code(Code::CertifySchedule), "{diags}");
    }

    #[test]
    fn env_knob_parses() {
        assert_eq!(env_certify(), None);
        assert!(matches!(certify_default(), true | false));
    }
}
