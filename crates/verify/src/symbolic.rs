//! Parametric bounds analysis over symbolic dimensions.
//!
//! For a [`DynProgram`] template this pass re-proves the affine bounds pass
//! (`SV010`) *for every binding of the declared symbolic dims at once*:
//! iteration-variable bounds become [`SymAffine`] forms (`0 ..= extent-1`
//! with the extent affine in the syms), every unguarded access interval is
//! computed with symbolic endpoints ([`souffle_affine::sym_interval`]), and
//! safety reduces to two affine sign conditions checked per coefficient
//! over the declared `min..=max` box. A violation is `SV020`: the access may
//! be safe at min-seq yet out of bounds at max-seq.
//!
//! Where the symbolic interval saturates (a quasi-affine `FloorDiv` whose
//! divisor does not divide the sym coefficients), the TE is recorded as
//! *saturated* and the caller falls back to concrete per-bucket proof —
//! [`verify_dyn_spec`] does this automatically at every bucket binding, and
//! structural generators (no template at all) are always proven per bucket.
//! Merged-kernel race checks (`SV1xx`) stay concrete: kernels only exist
//! per bucket, and every bucket compile runs the full verifier.

use crate::diag::{Code, Diagnostics, Loc};
use souffle_affine::{sym_interval, SymAffine};
use souffle_te::sym::{Dim, DynProgram, DynSpec, SymBinding};
use souffle_te::{ScalarExpr, TeId};

/// Outcome of a symbolic verification run.
#[derive(Debug, Clone, Default)]
pub struct SymVerifyReport {
    /// TEs whose every access was proven in-bounds parametrically.
    pub parametric_tes: usize,
    /// TEs where the symbolic interval saturated (proven per bucket instead).
    pub saturated_tes: Vec<TeId>,
    /// Concrete bucket bindings the fallback pass verified.
    pub fallback_bindings: Vec<Vec<i64>>,
}

impl SymVerifyReport {
    /// Whether every TE was proven without concrete fallback.
    pub fn fully_parametric(&self) -> bool {
        self.saturated_tes.is_empty()
    }
}

/// Parametric bounds proof for a template. Returns diagnostics (`SV020` /
/// `SV021`) plus the report of which TEs needed fallback.
pub fn verify_dyn(dp: &DynProgram) -> (Diagnostics, SymVerifyReport) {
    let mut diags = Diagnostics::new();
    let mut report = SymVerifyReport::default();
    let n = dp.table().len();
    let ranges: Vec<(i64, i64)> = dp.table().ids().map(|s| dp.table().bounds(s)).collect();
    let base = dp.base();

    // Spec consistency (SV021): the base binding must lie inside the
    // declared bounds (a shrunk declaration invalidates the lowering),
    // symbolic annotations must agree with the template at its base
    // binding, and no binding may produce an empty shape or reduction.
    for s in dp.table().ids() {
        let v = dp.base_binding().get(s);
        let (min, max) = dp.table().bounds(s);
        if v < min || v > max {
            diags.push(
                Code::SymSpec,
                Loc::Program,
                format!(
                    "template was lowered at {s} = {v}, outside the declared bounds \
                     {min}..={max}"
                ),
            );
        }
    }
    for (i, info) in base.tensors().iter().enumerate() {
        for (axis, (&concrete, dim)) in info.shape.dims().iter().zip(dp.tensor_dims(i)).enumerate()
        {
            let at_base = dim.eval(dp.base_binding());
            if at_base != concrete {
                diags.push(
                    Code::SymSpec,
                    Loc::Tensor {
                        tensor: souffle_te::TensorId(i),
                        name: info.name.clone(),
                    },
                    format!(
                        "axis {axis} declared {dim} = {at_base} at the base binding, \
                         but the template has extent {concrete}"
                    ),
                );
            }
            if min_extent(*dim, &ranges) < 1 {
                diags.push(
                    Code::SymSpec,
                    Loc::Tensor {
                        tensor: souffle_te::TensorId(i),
                        name: info.name.clone(),
                    },
                    format!("axis {axis} extent {dim} can be empty within the declared bounds"),
                );
            }
        }
    }
    if diags.has_errors() {
        return (diags, report);
    }

    for te_id in base.te_ids() {
        let te = base.te(te_id);
        let out_dims = dp.tensor_dims(te.output.0);
        let red_dims = dp.reduce_dims(te_id.0);
        // v_i in 0 ..= extent_i - 1, extent affine in the syms.
        let var_bounds: Vec<(SymAffine, SymAffine)> = out_dims
            .iter()
            .chain(red_dims)
            .map(|d| (SymAffine::constant(0, n), dim_affine(*d, n).offset(-1)))
            .collect();
        let loc = Loc::Te {
            te: te_id,
            name: te.name.clone(),
        };
        let mut saturated = false;
        walk(
            dp,
            te_id,
            &te.body,
            &var_bounds,
            &ranges,
            false,
            &loc,
            &mut diags,
            &mut saturated,
        );
        if saturated {
            report.saturated_tes.push(te_id);
        } else {
            report.parametric_tes += 1;
        }
    }
    (diags, report)
}

/// Full dynamic-shape verification: parametric proof of the template (when
/// there is one), then concrete `verify_program` fallback at every bucket
/// binding for saturated TEs or generator sources.
pub fn verify_dyn_spec(spec: &DynSpec) -> (Diagnostics, SymVerifyReport) {
    let (mut diags, mut report) = match spec.template() {
        Some(dp) => verify_dyn(dp),
        None => (Diagnostics::new(), SymVerifyReport::default()),
    };
    let needs_fallback = spec.template().is_none() || !report.fully_parametric();
    if needs_fallback && !diags.has_errors() {
        for binding in concrete_fallback_bindings(spec) {
            let p = spec.at(&binding);
            let mut d = crate::verify_program(&p);
            d.tag_stage(&format!("bucket{:?}", binding.values()));
            diags.merge(d);
            report.fallback_bindings.push(binding.values().to_vec());
        }
    }
    (diags, report)
}

fn concrete_fallback_bindings(spec: &DynSpec) -> Vec<SymBinding> {
    spec.table.bucket_bindings()
}

fn dim_affine(d: Dim, n: usize) -> SymAffine {
    match d {
        Dim::Fixed(k) => SymAffine::constant(k, n),
        Dim::Sym(s) => SymAffine::sym(s.0, n),
    }
}

fn min_extent(d: Dim, ranges: &[(i64, i64)]) -> i64 {
    match d {
        Dim::Fixed(k) => k,
        Dim::Sym(s) => ranges[s.0].0,
    }
}

#[allow(clippy::too_many_arguments)]
fn walk(
    dp: &DynProgram,
    te_id: TeId,
    body: &ScalarExpr,
    var_bounds: &[(SymAffine, SymAffine)],
    ranges: &[(i64, i64)],
    guarded: bool,
    loc: &Loc,
    diags: &mut Diagnostics,
    saturated: &mut bool,
) {
    let n = ranges.len();
    match body {
        ScalarExpr::Const(_) | ScalarExpr::IndexValue(_) => {}
        ScalarExpr::Input { operand, indices } => {
            if guarded {
                return; // runtime-checked padding access
            }
            let base = dp.base();
            let te = base.te(te_id);
            let Some(&tensor_id) = te.inputs.get(*operand) else {
                return; // well-formedness pass reports this
            };
            let Some(t) = base.tensors().get(tensor_id.0) else {
                return;
            };
            if indices.len() != t.shape.rank() {
                return; // SV004 territory
            }
            for (axis, idx) in indices.iter().enumerate() {
                if idx.max_var().is_some_and(|v| v >= var_bounds.len()) {
                    continue; // SV005 territory
                }
                let Some((lo, hi)) = sym_interval(idx, var_bounds, n) else {
                    *saturated = true;
                    continue;
                };
                let extent = dim_affine(dp.tensor_dims(tensor_id.0)[axis], n);
                // Safe iff lo >= 0 and extent - 1 - hi >= 0 over the box.
                let slack = extent.offset(-1).sub(&hi);
                if !lo.is_nonneg_over(ranges) || !slack.is_nonneg_over(ranges) {
                    diags.push(
                        Code::SymOob,
                        loc.clone(),
                        format!(
                            "unguarded access to operand {operand} ({tensor_id} `{}`) axis \
                             {axis} spans ({lo}, {hi}) over the declared sym bounds, extent \
                             {extent}",
                            t.name
                        ),
                    );
                }
            }
        }
        ScalarExpr::Unary(_, a) => walk(
            dp, te_id, a, var_bounds, ranges, guarded, loc, diags, saturated,
        ),
        ScalarExpr::Binary(_, a, b) => {
            walk(
                dp, te_id, a, var_bounds, ranges, guarded, loc, diags, saturated,
            );
            walk(
                dp, te_id, b, var_bounds, ranges, guarded, loc, diags, saturated,
            );
        }
        ScalarExpr::Select {
            on_true, on_false, ..
        } => {
            walk(
                dp, te_id, on_true, var_bounds, ranges, true, loc, diags, saturated,
            );
            walk(
                dp, te_id, on_false, var_bounds, ranges, true, loc, diags, saturated,
            );
        }
        ScalarExpr::Reduce {
            var, extent, body, ..
        } => {
            // Fold binders carry concrete extents; pad variable gaps with
            // the degenerate box exactly like the concrete pass.
            let mut inner = var_bounds.to_vec();
            let degenerate = (SymAffine::constant(0, n), SymAffine::constant(0, n));
            if inner.len() <= *var {
                inner.resize(*var + 1, degenerate);
            }
            inner[*var] = (
                SymAffine::constant(0, n),
                SymAffine::constant((*extent - 1).max(0), n),
            );
            walk(
                dp, te_id, body, &inner, ranges, guarded, loc, diags, saturated,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use souffle_affine::IndexExpr;
    use souffle_te::sym::{DynProgram, SymTable};
    use souffle_te::{builders, TeProgram};
    use souffle_tensor::{DType, Shape};

    fn chain(rows: i64, shift: i64) -> TeProgram {
        // B[v0, v1] = A[v0 + shift, v1] over (rows, 4): OOB when shift > 0.
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![rows, 4]), DType::F32);
        let out = p.add_tensor(
            "B",
            Shape::new(vec![rows, 4]),
            DType::F32,
            souffle_te::TensorKind::Output,
        );
        p.push_te(souffle_te::TensorExpr {
            name: "B".into(),
            output: out,
            inputs: vec![a],
            reduce: vec![],
            reduce_op: None,
            body: ScalarExpr::input(
                0,
                vec![
                    IndexExpr::var(0).add(IndexExpr::constant(shift)),
                    IndexExpr::var(1),
                ],
            ),
        });
        p
    }

    fn dyn_chain(shift: i64) -> DynProgram {
        let mut table = SymTable::new();
        let s = table.declare("seq", 1, 16);
        DynProgram::infer(table, &move |b| chain(b.get(s), shift)).unwrap()
    }

    #[test]
    fn safe_template_is_proven_parametrically() {
        let (d, r) = verify_dyn(&dyn_chain(0));
        assert!(d.is_empty(), "{d}");
        assert!(r.fully_parametric());
        assert_eq!(r.parametric_tes, 1);
    }

    #[test]
    fn symbolic_overflow_is_sv020() {
        // v0 + v0 is safe at seq = 1 (only index 0) but spans 2*s - 2 >= s
        // for s >= 2: parametrically out of bounds, concretely fine at min.
        let dp = dyn_chain(0).with_te_body(
            0,
            ScalarExpr::input(
                0,
                vec![
                    IndexExpr::Add(Box::new(IndexExpr::var(0)), Box::new(IndexExpr::var(0))),
                    IndexExpr::var(1),
                ],
            ),
        );
        // Concretely clean at the min bound...
        let at_min = dp.concretize(&dp.table().min_binding());
        assert!(crate::verify_program(&at_min).is_empty());
        // ...but rejected parametrically, with affine forms in the message.
        let (d, _) = verify_dyn(&dp);
        assert!(d.has_code(Code::SymOob), "{d}");
        assert_eq!(Code::SymOob.as_str(), "SV020");
        let msg = &d.errors().next().unwrap().message;
        assert!(msg.contains("s0"), "{msg}");
    }

    #[test]
    fn shrunk_annotation_is_sv020_and_shrunk_table_is_sv021() {
        // Annotation shrunk to the min extent while an access still spans
        // the symbolic output axis: safe at min-seq, OOB at max-seq.
        let dp = dyn_chain(0).with_tensor_dim(0, 0, souffle_te::sym::Dim::Fixed(1));
        let at_min = dp.concretize(&dp.table().min_binding());
        assert!(crate::verify_program(&at_min).is_empty());
        let (d, _) = verify_dyn(&dp);
        assert!(d.has_code(Code::SymOob), "{d}");

        // Declared bound shrunk out from under the lowering: SV021.
        let mut shrunk = SymTable::new();
        shrunk.declare("seq", 2, 16);
        let dp = dyn_chain(0).with_table(shrunk);
        let (d, _) = verify_dyn(&dp);
        assert!(d.has_code(Code::SymSpec), "{d}");
        assert_eq!(Code::SymSpec.as_str(), "SV021");
    }

    #[test]
    fn reshape_saturation_falls_back_per_bucket() {
        // (s, 6) -> (s, 2, 3): the flat/6 quotient divides exactly, but a
        // division by 4 of a 6-stride flat cannot be represented — force a
        // saturating case with an explicit non-divisible floor_div.
        let mut table = SymTable::new();
        let s = table.declare("seq", 1, 8);
        let dp = DynProgram::infer(table, &move |b| {
            let rows = b.get(s);
            let mut p = TeProgram::new();
            let a = p.add_input("A", Shape::new(vec![rows]), DType::F32);
            let out = p.add_tensor(
                "B",
                Shape::new(vec![rows]),
                DType::F32,
                souffle_te::TensorKind::Output,
            );
            p.push_te(souffle_te::TensorExpr {
                name: "B".into(),
                output: out,
                inputs: vec![a],
                reduce: vec![],
                reduce_op: None,
                // A[(v0 / 2) * 2]: safe, but hi = s - 1 has sym
                // coefficient 1, not divisible by 2 — the symbolic
                // interval saturates.
                body: ScalarExpr::input(0, vec![IndexExpr::var(0).floor_div(2).mul(2)]),
            });
            p
        })
        .unwrap();
        let (d, r) = verify_dyn(&dp);
        assert!(d.is_empty(), "{d}");
        assert!(!r.fully_parametric());
        // The spec-level driver then proves every bucket concretely.
        let spec = DynSpec {
            table: dp.table().clone(),
            source: souffle_te::sym::DynSource::Template(dp.clone()),
            pad_fill: vec![],
            derived: vec![],
            per_step: vec![],
        };
        let (d2, r2) = verify_dyn_spec(&spec);
        assert!(!d2.has_errors(), "{d2}");
        assert_eq!(
            r2.fallback_bindings,
            vec![vec![1], vec![2], vec![4], vec![8]]
        );
    }

    #[test]
    fn matmul_template_is_parametric_end_to_end() {
        let mut table = SymTable::new();
        let s = table.declare("seq", 1, 64);
        let dp = DynProgram::infer(table, &move |b| {
            let mut p = TeProgram::new();
            let a = p.add_input("A", Shape::new(vec![b.get(s), 8]), DType::F32);
            let w = p.add_weight("W", Shape::new(vec![8, 8]), DType::F32);
            let m = builders::matmul(&mut p, "mm", a, w);
            p.mark_output(m);
            p
        })
        .unwrap();
        let (d, r) = verify_dyn(&dp);
        assert!(d.is_empty(), "{d}");
        assert!(r.fully_parametric());
    }

    use souffle_te::sym::DynSpec;
    use souffle_te::ScalarExpr;
}
