//! Structured diagnostics: stable error codes, severities, locations, and
//! a renderable collection.

use souffle_te::{TeId, TensorId};
use std::fmt;

/// How serious a diagnostic is.
///
/// `Error` means the IR violates an invariant the pipeline relies on
/// (compiling further is meaningless); `Warning` flags suspicious but
/// well-defined programs (dead code, unused bindings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but well-defined; compilation proceeds.
    Warning,
    /// Invariant violation; the IR must not be lowered further.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable diagnostic codes.
///
/// The numbering is part of the tool's interface (tests and CI match on
/// it): `SV0xx` = TE-program structure and bounds, `SV1xx` = merged-kernel
/// safety, `SV20x` = lints, `SV21x` = translation validation (the
/// `verify::certify` pass; mismatch codes are errors, residuals warn).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// SV001: a TE reads a tensor defined later in the program.
    UseBeforeDef,
    /// SV002: a tensor is defined more than once (two TEs, or a TE
    /// defining a caller-bound input/weight).
    MultipleProducers,
    /// SV003: a body access names an operand slot with no backing tensor.
    BadOperand,
    /// SV004: an access has the wrong number of index expressions for the
    /// tensor's rank.
    RankMismatch,
    /// SV005: the body references an index variable outside
    /// `0..rank+reduce_rank`.
    VarOutOfRange,
    /// SV006: reduction axes and the reduce combinator disagree.
    ReduceMismatch,
    /// SV007: a reduction axis has a non-positive extent.
    BadReduceExtent,
    /// SV008: a tensor's shape has a non-positive extent (empty iteration
    /// or data space).
    BadShape,
    /// SV010: interval analysis cannot prove an unguarded access stays
    /// inside its buffer.
    OobAccess,
    /// SV020: symbolic interval analysis cannot prove an unguarded access
    /// in-bounds for *every* binding of the declared symbolic dims (it may
    /// be safe at min and overflow at max).
    SymOob,
    /// SV021: a dynamic-shape declaration is inconsistent — a symbolic
    /// extent annotation disagrees with the template program, or a bound
    /// admits an empty shape.
    SymSpec,
    /// SV101: a stage reads a tensor written by an earlier stage of the
    /// same kernel with no grid sync in between.
    MissingGridSync,
    /// SV102: two stages write the same tensor with no grid sync in
    /// between.
    WriteRace,
    /// SV201: a TE's output never (transitively) reaches a program output.
    DeadTe,
    /// SV202: a caller-bound input or weight is never read.
    UnusedInput,
    /// SV203: two tensors share a name (shadowing in reports and traces).
    DuplicateName,
    /// SV204: a `Select` guard is decidable from the variable bounds alone
    /// (a transform left a constant-foldable predicate behind).
    ConstGuard,
    /// SV205: a fold binder never appears in the fold body (the reduction
    /// sums a loop-invariant value; a transform dropped a binder rename).
    DeadFoldBinder,
    /// SV210: a transform stage changed a TE body in a way the certifier
    /// cannot match against the stage input (general semantic mismatch).
    CertifyMismatch,
    /// SV211: a transform stage changed an iteration-domain guard or view
    /// offset (the fused domain no longer tiles the stage input's).
    CertifyDomain,
    /// SV212: a transform stage changed an operand's access map (same
    /// operator structure, different tensor elements read).
    CertifyAccessMap,
    /// SV213: a fused fold's iteration odometer (combinator or extent)
    /// differs from the standalone reduction it replaced.
    CertifyOdometer,
    /// SV214: the merged schedule breaks dataflow order — a kernel stage
    /// reads a tensor no earlier stage produced, an output is never
    /// stored, or two kernels clobber the same tensor.
    CertifySchedule,
    /// SV215: an equivalence obligation the certifier could neither prove
    /// nor refute (residual; the differential oracle still covers it).
    CertifyResidual,
}

impl Code {
    /// Every code, in numbering order (drives the documentation table and
    /// exhaustiveness tests).
    pub const ALL: [Code; 24] = [
        Code::UseBeforeDef,
        Code::MultipleProducers,
        Code::BadOperand,
        Code::RankMismatch,
        Code::VarOutOfRange,
        Code::ReduceMismatch,
        Code::BadReduceExtent,
        Code::BadShape,
        Code::OobAccess,
        Code::SymOob,
        Code::SymSpec,
        Code::MissingGridSync,
        Code::WriteRace,
        Code::DeadTe,
        Code::UnusedInput,
        Code::DuplicateName,
        Code::ConstGuard,
        Code::DeadFoldBinder,
        Code::CertifyMismatch,
        Code::CertifyDomain,
        Code::CertifyAccessMap,
        Code::CertifyOdometer,
        Code::CertifySchedule,
        Code::CertifyResidual,
    ];

    /// The stable code string, e.g. `"SV010"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::UseBeforeDef => "SV001",
            Code::MultipleProducers => "SV002",
            Code::BadOperand => "SV003",
            Code::RankMismatch => "SV004",
            Code::VarOutOfRange => "SV005",
            Code::ReduceMismatch => "SV006",
            Code::BadReduceExtent => "SV007",
            Code::BadShape => "SV008",
            Code::OobAccess => "SV010",
            Code::SymOob => "SV020",
            Code::SymSpec => "SV021",
            Code::MissingGridSync => "SV101",
            Code::WriteRace => "SV102",
            Code::DeadTe => "SV201",
            Code::UnusedInput => "SV202",
            Code::DuplicateName => "SV203",
            Code::ConstGuard => "SV204",
            Code::DeadFoldBinder => "SV205",
            Code::CertifyMismatch => "SV210",
            Code::CertifyDomain => "SV211",
            Code::CertifyAccessMap => "SV212",
            Code::CertifyOdometer => "SV213",
            Code::CertifySchedule => "SV214",
            Code::CertifyResidual => "SV215",
        }
    }

    /// The fixed severity of this code.
    pub fn severity(self) -> Severity {
        match self {
            Code::DeadTe
            | Code::UnusedInput
            | Code::DuplicateName
            | Code::ConstGuard
            | Code::DeadFoldBinder
            | Code::CertifyResidual => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What a diagnostic points at.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Loc {
    /// The program as a whole.
    Program,
    /// One tensor expression.
    Te {
        /// Its id in the program.
        te: TeId,
        /// Its human-readable name.
        name: String,
    },
    /// One tensor.
    Tensor {
        /// Its id in the program.
        tensor: TensorId,
        /// Its human-readable name.
        name: String,
    },
    /// One instruction of a lowered kernel.
    Instr {
        /// The kernel's name.
        kernel: String,
        /// Stage index within the kernel.
        stage: usize,
        /// Instruction index within the stage.
        instr: usize,
    },
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Loc::Program => f.write_str("program"),
            Loc::Te { te, name } => write!(f, "{te} `{name}`"),
            Loc::Tensor { tensor, name } => write!(f, "{tensor} `{name}`"),
            Loc::Instr {
                kernel,
                stage,
                instr,
            } => write!(f, "kernel `{kernel}` stage {stage} instr {instr}"),
        }
    }
}

/// One finding: a code, a location, a human-readable message, and the
/// pipeline stage whose output it was found in (when known).
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// What the diagnostic points at.
    pub loc: Loc,
    /// Human-readable explanation.
    pub message: String,
    /// Pipeline stage label (`"frontend"`, `"vertical"`, …), if tagged.
    pub stage: Option<String>,
}

impl Diagnostic {
    /// The severity of this diagnostic (fixed per code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity(), self.code)?;
        if let Some(stage) = &self.stage {
            write!(f, " ({stage})")?;
        }
        write!(f, " {}: {}", self.loc, self.message)
    }
}

/// An ordered collection of diagnostics, as produced by one or more
/// verifier passes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diagnostics {
    diags: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection.
    pub fn new() -> Self {
        Diagnostics::default()
    }

    /// Records a finding.
    pub fn push(&mut self, code: Code, loc: Loc, message: impl Into<String>) {
        self.diags.push(Diagnostic {
            code,
            loc,
            message: message.into(),
            stage: None,
        });
    }

    /// Tags every not-yet-tagged diagnostic with a pipeline stage label.
    pub fn tag_stage(&mut self, stage: &str) {
        for d in &mut self.diags {
            if d.stage.is_none() {
                d.stage = Some(stage.to_string());
            }
        }
    }

    /// Appends all of `other`'s diagnostics.
    pub fn merge(&mut self, other: Diagnostics) {
        self.diags.extend(other.diags);
    }

    /// All diagnostics in discovery order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter()
    }

    /// Error-severity diagnostics only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.iter().filter(|d| d.severity() == Severity::Error)
    }

    /// Warning-severity diagnostics only.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.iter().filter(|d| d.severity() == Severity::Warning)
    }

    /// Number of error-severity diagnostics.
    pub fn num_errors(&self) -> usize {
        self.errors().count()
    }

    /// Number of warning-severity diagnostics.
    pub fn num_warnings(&self) -> usize {
        self.warnings().count()
    }

    /// Whether any error-severity diagnostic was recorded.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Whether a diagnostic with the given code was recorded.
    pub fn has_code(&self, code: Code) -> bool {
        self.iter().any(|d| d.code == code)
    }

    /// Total number of diagnostics.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Renders every diagnostic, one per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_numbered_by_family() {
        let mut seen = std::collections::HashSet::new();
        for c in Code::ALL {
            assert!(seen.insert(c.as_str()), "duplicate code {c}");
            assert!(c.as_str().starts_with("SV"));
            let family = &c.as_str()[2..3];
            // Structure (SV0xx) and kernel-safety (SV1xx) findings are
            // errors; lints (SV20x) warn. The certify subfamily (SV21x)
            // carries its own severities: proof failures are errors,
            // residual obligations warn.
            let certify = c.as_str() >= "SV210";
            match c.severity() {
                Severity::Warning => assert_eq!(family, "2", "{c}"),
                Severity::Error => assert!(family == "0" || family == "1" || certify, "{c}"),
            }
        }
    }

    #[test]
    fn render_includes_severity_code_stage_and_loc() {
        let mut d = Diagnostics::new();
        d.push(
            Code::OobAccess,
            Loc::Te {
                te: TeId(3),
                name: "op3".into(),
            },
            "axis 0 spans (0, 9), extent 4",
        );
        d.push(
            Code::DeadTe,
            Loc::Te {
                te: TeId(1),
                name: "dead".into(),
            },
            "output never reaches a program output",
        );
        d.tag_stage("vertical");
        let s = d.render();
        assert!(
            s.contains("error[SV010] (vertical) TE3 `op3`: axis 0"),
            "{s}"
        );
        assert!(s.contains("warning[SV201]"), "{s}");
        assert_eq!(d.num_errors(), 1);
        assert_eq!(d.num_warnings(), 1);
        assert!(d.has_errors());
        assert!(d.has_code(Code::DeadTe));
        assert!(!d.has_code(Code::WriteRace));
    }

    #[test]
    fn merge_preserves_order_and_tags() {
        let mut a = Diagnostics::new();
        a.push(Code::UseBeforeDef, Loc::Program, "x");
        a.tag_stage("frontend");
        let mut b = Diagnostics::new();
        b.push(Code::WriteRace, Loc::Program, "y");
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.iter().next().unwrap().stage.as_deref(), Some("frontend"));
        // tag_stage only fills empty stages.
        a.tag_stage("kernel-lowering");
        let stages: Vec<_> = a.iter().map(|d| d.stage.clone().unwrap()).collect();
        assert_eq!(stages, vec!["frontend", "kernel-lowering"]);
    }

    #[test]
    fn loc_display_formats() {
        assert_eq!(Loc::Program.to_string(), "program");
        assert_eq!(
            Loc::Instr {
                kernel: "subprogram_0".into(),
                stage: 1,
                instr: 0
            }
            .to_string(),
            "kernel `subprogram_0` stage 1 instr 0"
        );
    }
}
