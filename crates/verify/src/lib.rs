//! souffle-verify: static IR verifier for TE programs and merged kernels.
//!
//! The paper's global optimizations — horizontal fusion (§6.1), vertical
//! composition of index maps (§5.2, Eq. 2), schedule-based merging into
//! single-launch kernels (§6.2), and shared-memory reuse (§6.4/§6.5) —
//! all rewrite the IR aggressively. This crate re-proves the invariants
//! those rewrites must preserve, after every pipeline stage:
//!
//! 1. **Well-formedness** ([`wellformed`]): def-before-use, the
//!    single-producer property, operand arity/rank agreement, index-
//!    variable ranges, reduction sanity, non-empty shapes.
//! 2. **Affine bounds** ([`bounds`]): saturating interval evaluation of
//!    every unguarded quasi-affine access over its box domain, proving
//!    loads in-bounds — including accesses produced by Eq. 2 composition.
//! 3. **Merged-kernel safety** ([`races`]): cross-stage producer→consumer
//!    pairs and write-write conflicts inside one kernel launch must be
//!    separated by a grid-wide sync.
//! 4. **Lints** ([`lint`]): dead TEs and unused caller-bound inputs
//!    (warnings — legal but almost always a pipeline bug).
//!
//! Findings come back as [`Diagnostics`]: stable `SVxxx` codes, fixed
//! severities, and locations that name the TE/tensor/instruction at
//! fault. Nothing in this crate mutates the IR.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certify;
pub mod diag;
pub mod symbolic;

mod bounds;
mod lint;
mod races;
mod wellformed;

pub use certify::{
    certify_batch, certify_default, certify_schedule, certify_transform, env_certify, Certificate,
    CERTIFY_ENV,
};
pub use diag::{Code, Diagnostic, Diagnostics, Loc, Severity};
pub use symbolic::{verify_dyn, verify_dyn_spec, SymVerifyReport};

use souffle_kernel::Kernel;
use souffle_te::TeProgram;

/// Runs every program-level pass (well-formedness, bounds, lints) over
/// `program` and returns the findings.
pub fn verify_program(program: &TeProgram) -> Diagnostics {
    let mut diags = Diagnostics::new();
    wellformed::check(program, &mut diags);
    bounds::check(program, &mut diags);
    lint::check(program, &mut diags);
    diags
}

/// Like [`verify_program`], tagging every finding with a pipeline stage
/// label (`"frontend"`, `"vertical"`, …).
pub fn verify_program_stage(program: &TeProgram, stage: &str) -> Diagnostics {
    let mut diags = verify_program(program);
    diags.tag_stage(stage);
    diags
}

/// Runs the merged-kernel safety pass over lowered kernels.
pub fn verify_kernels(program: &TeProgram, kernels: &[Kernel]) -> Diagnostics {
    let mut diags = Diagnostics::new();
    races::check(program, kernels, &mut diags);
    diags
}

/// Like [`verify_kernels`], tagging every finding with a stage label.
pub fn verify_kernels_stage(program: &TeProgram, kernels: &[Kernel], stage: &str) -> Diagnostics {
    let mut diags = verify_kernels(program, kernels);
    diags.tag_stage(stage);
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use souffle_te::builders;
    use souffle_tensor::{DType, Shape};

    #[test]
    fn verify_program_runs_all_passes() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let _unused = p.add_input("U", Shape::new(vec![4]), DType::F32);
        let e = builders::exp(&mut p, "e", a);
        let _dead = builders::relu(&mut p, "dead", a);
        p.mark_output(e);
        let d = verify_program_stage(&p, "frontend");
        // Lint findings only; the program is structurally sound.
        assert!(!d.has_errors(), "{d}");
        assert!(d.has_code(Code::DeadTe));
        assert!(d.has_code(Code::UnusedInput));
        assert!(d.iter().all(|x| x.stage.as_deref() == Some("frontend")));
    }

    #[test]
    fn verify_kernels_is_clean_on_no_kernels() {
        let p = TeProgram::new();
        assert!(verify_kernels(&p, &[]).is_empty());
    }
}
