//! Pass 3: merged-kernel race detection.
//!
//! A merged kernel runs several TE stages back-to-back inside one launch
//! (§6.2 of the paper). Thread blocks are scheduled independently, so a
//! stage that reads a tensor produced by an *earlier stage of the same
//! kernel* observes complete data only if a grid-wide synchronization
//! (`grid.sync()`) separates the producing writes from the consuming
//! reads — block-local barriers are not enough. Likewise, two stages that
//! write the same buffer (shared-memory LRU reuse, partial-reduction
//! scratch) race unless a grid sync orders them.
//!
//! The pass walks each kernel's instruction stream in launch order with a
//! map of tensors written since the last grid sync, flagging:
//!
//! * `SV101` — a load of a tensor written by a *different* stage since the
//!   last `GridSync`;
//! * `SV102` — a store to a tensor already written by a different stage
//!   since the last `GridSync`.
//!
//! Accesses within a single stage are same-TE and ordered by the stage's
//! own block-local structure; they are never flagged.

use crate::diag::{Code, Diagnostics, Loc};
use souffle_kernel::{Instr, Kernel};
use souffle_te::{TeProgram, TensorId};
use std::collections::HashMap;

pub(crate) fn check(program: &TeProgram, kernels: &[Kernel], diags: &mut Diagnostics) {
    for kernel in kernels {
        check_kernel(program, kernel, diags);
    }
}

fn tensor_name(program: &TeProgram, tensor: TensorId) -> String {
    program
        .tensors()
        .get(tensor.0)
        .map(|t| t.name.clone())
        .unwrap_or_else(|| "?".to_string())
}

fn check_kernel(program: &TeProgram, kernel: &Kernel, diags: &mut Diagnostics) {
    // tensor -> index of the stage that last wrote it since the last
    // grid-wide sync.
    let mut written_since_sync: HashMap<TensorId, usize> = HashMap::new();

    for (si, stage) in kernel.stages.iter().enumerate() {
        // A stage's writes land on its own TE's output buffer; `AtomicAdd`
        // carries no tensor id, so resolve it through the program.
        let atomic_target = program.tes().get(stage.te.0).map(|te| te.output);

        for (ii, instr) in stage.instrs.iter().enumerate() {
            let loc = |instr: usize| Loc::Instr {
                kernel: kernel.name.clone(),
                stage: si,
                instr,
            };
            match *instr {
                Instr::GridSync => written_since_sync.clear(),
                Instr::BlockSync | Instr::Wmma { .. } | Instr::Fma { .. } => {}
                Instr::LdGlobalToShared { tensor, .. }
                | Instr::LdGlobal { tensor, .. }
                | Instr::LdShared { tensor, .. } => {
                    if let Some(&w) = written_since_sync.get(&tensor) {
                        if w != si {
                            diags.push(
                                Code::MissingGridSync,
                                loc(ii),
                                format!(
                                    "stage {si} `{}` reads {tensor} `{}` written by stage {w} \
                                     `{}` with no grid sync in between",
                                    stage.name,
                                    tensor_name(program, tensor),
                                    kernel.stages[w].name,
                                ),
                            );
                        }
                    }
                }
                Instr::StSharedToGlobal { tensor, .. } | Instr::StGlobal { tensor, .. } => {
                    record_write(
                        program,
                        kernel,
                        si,
                        ii,
                        tensor,
                        &mut written_since_sync,
                        diags,
                    );
                }
                Instr::AtomicAdd { .. } => {
                    if let Some(tensor) = atomic_target {
                        record_write(
                            program,
                            kernel,
                            si,
                            ii,
                            tensor,
                            &mut written_since_sync,
                            diags,
                        );
                    }
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn record_write(
    program: &TeProgram,
    kernel: &Kernel,
    si: usize,
    ii: usize,
    tensor: TensorId,
    written_since_sync: &mut HashMap<TensorId, usize>,
    diags: &mut Diagnostics,
) {
    if let Some(&w) = written_since_sync.get(&tensor) {
        if w != si {
            diags.push(
                Code::WriteRace,
                Loc::Instr {
                    kernel: kernel.name.clone(),
                    stage: si,
                    instr: ii,
                },
                format!(
                    "stage {si} `{}` and stage {w} `{}` both write {tensor} `{}` with no grid \
                     sync in between",
                    kernel.stages[si].name,
                    kernel.stages[w].name,
                    tensor_name(program, tensor),
                ),
            );
        }
    }
    written_since_sync.insert(tensor, si);
}

#[cfg(test)]
mod tests {
    use super::*;
    use souffle_kernel::Stage;
    use souffle_te::{builders, TeId};
    use souffle_tensor::{DType, Shape};

    /// A two-TE chain (exp → relu) plus a kernel skeleton over it.
    fn chain() -> (TeProgram, TensorId, TensorId) {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![64]), DType::F32);
        let e = builders::exp(&mut p, "e", a);
        let r = builders::relu(&mut p, "r", e);
        p.mark_output(r);
        (p, e, r)
    }

    fn stage(te: usize, name: &str, instrs: Vec<Instr>) -> Stage {
        Stage {
            te: TeId(te),
            name: name.into(),
            grid_blocks: 4,
            threads_per_block: 128,
            shared_mem_bytes: 0,
            regs_per_thread: 32,
            instrs,
            pipelined: false,
        }
    }

    fn run(p: &TeProgram, k: Kernel) -> Diagnostics {
        let mut d = Diagnostics::new();
        check(p, &[k], &mut d);
        d
    }

    #[test]
    fn synced_producer_consumer_is_clean() {
        let (p, e, r) = chain();
        let k = Kernel {
            name: "k".into(),
            stages: vec![
                stage(
                    0,
                    "e",
                    vec![Instr::StGlobal {
                        tensor: e,
                        bytes: 256,
                    }],
                ),
                stage(
                    1,
                    "r",
                    vec![
                        Instr::GridSync,
                        Instr::LdGlobal {
                            tensor: e,
                            bytes: 256,
                        },
                        Instr::StGlobal {
                            tensor: r,
                            bytes: 256,
                        },
                    ],
                ),
            ],
        };
        assert!(run(&p, k).is_empty());
    }

    #[test]
    fn missing_grid_sync_is_flagged() {
        let (p, e, r) = chain();
        let k = Kernel {
            name: "k".into(),
            stages: vec![
                stage(
                    0,
                    "e",
                    vec![Instr::StGlobal {
                        tensor: e,
                        bytes: 256,
                    }],
                ),
                stage(
                    1,
                    "r",
                    vec![
                        Instr::LdGlobal {
                            tensor: e,
                            bytes: 256,
                        },
                        Instr::StGlobal {
                            tensor: r,
                            bytes: 256,
                        },
                    ],
                ),
            ],
        };
        let d = run(&p, k);
        assert!(d.has_code(Code::MissingGridSync), "{d}");
        let diag = d.iter().next().unwrap();
        assert_eq!(
            diag.loc,
            Loc::Instr {
                kernel: "k".into(),
                stage: 1,
                instr: 0
            }
        );
    }

    #[test]
    fn block_sync_does_not_order_cross_stage_accesses() {
        let (p, e, r) = chain();
        let k = Kernel {
            name: "k".into(),
            stages: vec![
                stage(
                    0,
                    "e",
                    vec![Instr::StGlobal {
                        tensor: e,
                        bytes: 256,
                    }],
                ),
                stage(
                    1,
                    "r",
                    vec![
                        Instr::BlockSync, // not grid-wide
                        Instr::LdGlobal {
                            tensor: e,
                            bytes: 256,
                        },
                        Instr::StGlobal {
                            tensor: r,
                            bytes: 256,
                        },
                    ],
                ),
            ],
        };
        assert!(run(&p, k).has_code(Code::MissingGridSync));
    }

    #[test]
    fn write_write_conflict_without_sync_is_flagged() {
        let (p, e, _r) = chain();
        // Two stages writing the same (LRU-reused) buffer with no sync.
        let k = Kernel {
            name: "k".into(),
            stages: vec![
                stage(
                    0,
                    "e",
                    vec![Instr::StGlobal {
                        tensor: e,
                        bytes: 256,
                    }],
                ),
                stage(
                    1,
                    "r",
                    vec![Instr::StGlobal {
                        tensor: e,
                        bytes: 256,
                    }],
                ),
            ],
        };
        let d = run(&p, k);
        assert!(d.has_code(Code::WriteRace), "{d}");
    }

    #[test]
    fn same_stage_rewrite_is_fine() {
        let (p, e, _r) = chain();
        let k = Kernel {
            name: "k".into(),
            stages: vec![stage(
                0,
                "e",
                vec![
                    Instr::StGlobal {
                        tensor: e,
                        bytes: 128,
                    },
                    Instr::StGlobal {
                        tensor: e,
                        bytes: 128,
                    },
                    Instr::LdGlobal {
                        tensor: e,
                        bytes: 256,
                    },
                ],
            )],
        };
        assert!(run(&p, k).is_empty());
    }

    #[test]
    fn atomic_add_counts_as_write_to_stage_output() {
        let (p, e, r) = chain();
        let k = Kernel {
            name: "k".into(),
            stages: vec![
                // Stage of TE0 writes its output `e` via atomics...
                stage(0, "e", vec![Instr::AtomicAdd { bytes: 256 }]),
                // ...and the next stage reads it unsynchronized.
                stage(
                    1,
                    "r",
                    vec![
                        Instr::LdGlobal {
                            tensor: e,
                            bytes: 256,
                        },
                        Instr::StGlobal {
                            tensor: r,
                            bytes: 256,
                        },
                    ],
                ),
            ],
        };
        assert!(run(&p, k).has_code(Code::MissingGridSync));
    }

    #[test]
    fn sync_resets_write_write_tracking() {
        let (p, e, _r) = chain();
        let k = Kernel {
            name: "k".into(),
            stages: vec![
                stage(
                    0,
                    "e",
                    vec![Instr::StGlobal {
                        tensor: e,
                        bytes: 256,
                    }],
                ),
                stage(
                    1,
                    "r",
                    vec![
                        Instr::GridSync,
                        Instr::StGlobal {
                            tensor: e,
                            bytes: 256,
                        },
                    ],
                ),
            ],
        };
        assert!(run(&p, k).is_empty());
    }
}
