//! Pass 2: affine bounds analysis.
//!
//! Evaluates every unguarded quasi-affine access of every TE over the box
//! domain of its index space (saturating interval arithmetic, see
//! [`souffle_affine::IndexExpr::interval`]) and reports accesses that
//! cannot be proven in-bounds. Accesses nested under a `Select` guard are
//! runtime padding checks — legal out-of-bounds by construction — and are
//! skipped, matching the interpreter's lazy branch evaluation.
//!
//! Because the pass runs after every pipeline stage, it re-proves safety
//! of indices produced by vertical composition (`IndexMap::compose`,
//! Eq. 2 of the paper): a composed access is just another quasi-affine
//! expression over the consumer's iteration space.

use crate::diag::{Code, Diagnostics, Loc};
use souffle_te::{ScalarExpr, TeProgram};

pub(crate) fn check(program: &TeProgram, diags: &mut Diagnostics) {
    for te_id in program.te_ids() {
        let te = program.te(te_id);
        let Some(out_info) = program.tensors().get(te.output.0) else {
            continue; // reported by the well-formedness pass
        };
        // Iteration variables range over the output box, then the
        // reduction box.
        let mut var_bounds: Vec<(i64, i64)> = out_info
            .shape
            .dims()
            .iter()
            .chain(te.reduce.iter())
            .map(|&b| (0, b - 1))
            .collect();
        // Degenerate extents (caught as SV007/SV008) would make the box
        // empty; clamp so interval() stays meaningful.
        for b in &mut var_bounds {
            if b.1 < b.0 {
                b.1 = b.0;
            }
        }
        let loc = Loc::Te {
            te: te_id,
            name: te.name.clone(),
        };
        walk(program, te_id, &te.body, &var_bounds, false, &loc, diags);
    }
}

#[allow(clippy::too_many_arguments)]
fn walk(
    program: &TeProgram,
    te_id: souffle_te::TeId,
    body: &ScalarExpr,
    var_bounds: &[(i64, i64)],
    guarded: bool,
    loc: &Loc,
    diags: &mut Diagnostics,
) {
    match body {
        ScalarExpr::Const(_) | ScalarExpr::IndexValue(_) => {}
        ScalarExpr::Input { operand, indices } => {
            if guarded {
                return; // runtime-checked padding access
            }
            let te = program.te(te_id);
            let Some(&tensor_id) = te.inputs.get(*operand) else {
                return; // reported by the well-formedness pass
            };
            let Some(t) = program.tensors().get(tensor_id.0) else {
                return;
            };
            if indices.len() != t.shape.rank() {
                return; // SV004 already reported
            }
            for (axis, idx) in indices.iter().enumerate() {
                if idx.max_var().is_some_and(|v| v >= var_bounds.len()) {
                    continue; // SV005 already reported
                }
                let (lo, hi) = idx.interval(var_bounds);
                let extent = t.shape.dim(axis);
                if lo < 0 || hi >= extent {
                    diags.push(
                        Code::OobAccess,
                        loc.clone(),
                        format!(
                            "unguarded access to operand {operand} ({tensor_id} `{}`) axis \
                             {axis} spans ({lo}, {hi}), extent {extent}",
                            t.name
                        ),
                    );
                }
            }
        }
        ScalarExpr::Unary(_, a) => walk(program, te_id, a, var_bounds, guarded, loc, diags),
        ScalarExpr::Binary(_, a, b) => {
            walk(program, te_id, a, var_bounds, guarded, loc, diags);
            walk(program, te_id, b, var_bounds, guarded, loc, diags);
        }
        ScalarExpr::Select {
            on_true, on_false, ..
        } => {
            walk(program, te_id, on_true, var_bounds, true, loc, diags);
            walk(program, te_id, on_false, var_bounds, true, loc, diags);
        }
        ScalarExpr::Reduce {
            var, extent, body, ..
        } => {
            // The fold binder ranges over 0..extent inside the body; pad
            // any gap with the degenerate box (such vars never occur).
            let mut inner = var_bounds.to_vec();
            if inner.len() <= *var {
                inner.resize(*var + 1, (0, 0));
            }
            inner[*var] = (0, (*extent - 1).max(0));
            walk(program, te_id, body, &inner, guarded, loc, diags);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use souffle_affine::IndexExpr;
    use souffle_te::{builders, CmpOp, Cond, ScalarExpr, TensorExpr, TensorKind};
    use souffle_tensor::{DType, Shape};

    fn run(p: &TeProgram) -> Diagnostics {
        let mut d = Diagnostics::new();
        check(p, &mut d);
        d
    }

    #[test]
    fn in_bounds_program_is_clean() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![8, 16]), DType::F16);
        let w = p.add_weight("W", Shape::new(vec![16, 8]), DType::F16);
        let m = builders::matmul(&mut p, "mm", a, w);
        p.mark_output(m);
        assert!(run(&p).is_empty());
    }

    #[test]
    fn constant_offset_past_extent_is_flagged() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let out = p.add_tensor("o", Shape::new(vec![4]), DType::F32, TensorKind::Output);
        p.push_te(TensorExpr {
            name: "o".into(),
            output: out,
            inputs: vec![a],
            reduce: vec![],
            reduce_op: None,
            // A[v0 + 4]: spans (4, 7) against extent 4.
            body: ScalarExpr::input(0, vec![IndexExpr::var(0).add(IndexExpr::constant(4))]),
        });
        let d = run(&p);
        assert!(d.has_code(Code::OobAccess), "{d}");
        let msg = &d.iter().next().unwrap().message;
        assert!(msg.contains("spans (4, 7), extent 4"), "{msg}");
    }

    #[test]
    fn negative_stride_underflow_is_flagged() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let out = p.add_tensor("o", Shape::new(vec![4]), DType::F32, TensorKind::Output);
        p.push_te(TensorExpr {
            name: "o".into(),
            output: out,
            inputs: vec![a],
            reduce: vec![],
            reduce_op: None,
            // A[v0 - 1]: spans (-1, 2).
            body: ScalarExpr::input(0, vec![IndexExpr::var(0).sub(IndexExpr::constant(1))]),
        });
        assert!(run(&p).has_code(Code::OobAccess));
    }

    #[test]
    fn select_guarded_padding_access_is_skipped() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let out = p.add_tensor("pad", Shape::new(vec![8]), DType::F32, TensorKind::Output);
        // pad[i] = i < 4 ? A[i] : 0 — the access escapes for i in 4..8 but
        // is guarded, exactly the frontend's padding idiom.
        p.push_te(TensorExpr {
            name: "pad".into(),
            output: out,
            inputs: vec![a],
            reduce: vec![],
            reduce_op: None,
            body: ScalarExpr::select(
                Cond::cmp(CmpOp::Lt, IndexExpr::var(0), IndexExpr::constant(4)),
                ScalarExpr::input(0, vec![IndexExpr::var(0)]),
                ScalarExpr::Const(0.0),
            ),
        });
        assert!(run(&p).is_empty());
    }

    #[test]
    fn reduction_vars_use_reduce_extents() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4, 7]), DType::F32);
        let out = p.add_tensor("s", Shape::new(vec![4]), DType::F32, TensorKind::Output);
        p.push_te(TensorExpr {
            name: "s".into(),
            output: out,
            inputs: vec![a],
            reduce: vec![8], // one past A's axis-1 extent
            reduce_op: Some(souffle_te::ReduceOp::Sum),
            body: ScalarExpr::input(0, vec![IndexExpr::var(0), IndexExpr::var(1)]),
        });
        let d = run(&p);
        assert!(d.has_code(Code::OobAccess), "{d}");
    }
}
