//! Pass 1: structural well-formedness of a TE program.
//!
//! Checks def-before-use over the dependency graph, the single-producer
//! property, duplicate/shadowed tensor names, reduce-axis sanity, operand
//! arity and rank agreement, index-variable ranges, and that every tensor
//! (and thus every TE's index space) has a non-empty extent.

use crate::diag::{Code, Diagnostics, Loc};
use souffle_te::{TeId, TeProgram, TensorKind};
use std::collections::HashMap;

/// Location of a TE by id and name.
fn te_loc(program: &TeProgram, te: TeId) -> Loc {
    Loc::Te {
        te,
        name: program.te(te).name.clone(),
    }
}

pub(crate) fn check(program: &TeProgram, diags: &mut Diagnostics) {
    // Tensor table: positive extents, duplicate names.
    let mut names: HashMap<&str, usize> = HashMap::new();
    for (i, t) in program.tensors().iter().enumerate() {
        let loc = Loc::Tensor {
            tensor: souffle_te::TensorId(i),
            name: t.name.clone(),
        };
        if let Some(bad) = t.shape.dims().iter().position(|&d| d <= 0) {
            diags.push(
                Code::BadShape,
                loc.clone(),
                format!(
                    "axis {bad} has non-positive extent {} in shape {}",
                    t.shape.dim(bad),
                    t.shape
                ),
            );
        }
        if let Some(&first) = names.get(t.name.as_str()) {
            diags.push(
                Code::DuplicateName,
                loc,
                format!("shadows tensor t{first} of the same name"),
            );
        } else {
            names.insert(t.name.as_str(), i);
        }
    }

    // TE list: definition order, producers, reductions, accesses.
    let mut defined: Vec<bool> = program
        .tensors()
        .iter()
        .map(|t| matches!(t.kind, TensorKind::Input | TensorKind::Weight))
        .collect();
    let mut produced = vec![false; program.num_tensors()];

    for te_id in program.te_ids() {
        let te = program.te(te_id);
        let loc = te_loc(program, te_id);

        let Some(out_info) = program.tensors().get(te.output.0) else {
            diags.push(
                Code::BadOperand,
                loc,
                format!("output {} has no backing tensor", te.output),
            );
            continue;
        };
        if produced[te.output.0] {
            diags.push(
                Code::MultipleProducers,
                loc.clone(),
                format!("{} is already defined by an earlier TE", te.output),
            );
        } else if matches!(out_info.kind, TensorKind::Input | TensorKind::Weight) {
            diags.push(
                Code::MultipleProducers,
                loc.clone(),
                format!(
                    "{} is caller-bound ({:?}) and also produced by this TE",
                    te.output, out_info.kind
                ),
            );
        }
        produced[te.output.0] = true;

        if te.reduce.is_empty() != te.reduce_op.is_none() {
            diags.push(
                Code::ReduceMismatch,
                loc.clone(),
                format!(
                    "reduce axes {:?} and combinator {:?} are inconsistent",
                    te.reduce, te.reduce_op
                ),
            );
        }
        for (axis, &extent) in te.reduce.iter().enumerate() {
            if extent <= 0 {
                diags.push(
                    Code::BadReduceExtent,
                    loc.clone(),
                    format!("reduction axis {axis} has non-positive extent {extent}"),
                );
            }
        }

        // The TE's index space is implied by its output buffer: iteration
        // vars 0..rank from the output shape, then the reduction vars.
        // Inline-fold binders live above that space, so only free
        // occurrences are checked against it.
        let n_vars = out_info.shape.rank() + te.reduce.len();
        if let Some(max_var) = te.body.max_free_var() {
            if max_var >= n_vars {
                diags.push(
                    Code::VarOutOfRange,
                    loc.clone(),
                    format!(
                        "body references v{max_var} but the index space has only {n_vars} \
                         variables (output rank {} + {} reduction axes)",
                        out_info.shape.rank(),
                        te.reduce.len()
                    ),
                );
            }
        }
        for (var, extent) in te.body.collect_folds() {
            if extent <= 0 {
                diags.push(
                    Code::BadReduceExtent,
                    loc.clone(),
                    format!("inline fold over v{var} has non-positive extent {extent}"),
                );
            }
            if var < n_vars {
                diags.push(
                    Code::VarOutOfRange,
                    loc.clone(),
                    format!(
                        "inline fold binder v{var} collides with the TE's index space \
                         ({n_vars} variables); binders must be allocated above it"
                    ),
                );
            }
        }

        for (operand, indices) in te.body.accesses() {
            let Some(&tensor_id) = te.inputs.get(operand) else {
                diags.push(
                    Code::BadOperand,
                    loc.clone(),
                    format!("operand slot {operand} has no backing tensor"),
                );
                continue;
            };
            let Some(t) = program.tensors().get(tensor_id.0) else {
                diags.push(
                    Code::BadOperand,
                    loc.clone(),
                    format!("operand slot {operand} names stale tensor {tensor_id}"),
                );
                continue;
            };
            if !defined[tensor_id.0] {
                diags.push(
                    Code::UseBeforeDef,
                    loc.clone(),
                    format!(
                        "reads {tensor_id} `{}` before its definition",
                        program.tensor(tensor_id).name
                    ),
                );
            }
            if indices.len() != t.shape.rank() {
                diags.push(
                    Code::RankMismatch,
                    loc.clone(),
                    format!(
                        "access to operand {operand} has {} indices, tensor {tensor_id} has \
                         rank {}",
                        indices.len(),
                        t.shape.rank()
                    ),
                );
            }
        }
        defined[te.output.0] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use souffle_affine::IndexExpr;
    use souffle_te::{builders, ReduceOp, ScalarExpr, TensorExpr, TensorId};
    use souffle_tensor::{DType, Shape};

    fn run(p: &TeProgram) -> Diagnostics {
        let mut d = Diagnostics::new();
        check(p, &mut d);
        d
    }

    #[test]
    fn clean_program_has_no_findings() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4, 8]), DType::F16);
        let w = p.add_weight("W", Shape::new(vec![8, 4]), DType::F16);
        let m = builders::matmul(&mut p, "mm", a, w);
        p.mark_output(m);
        assert!(run(&p).is_empty());
    }

    #[test]
    fn duplicate_tensor_name_warns() {
        let mut p = TeProgram::new();
        let a = p.add_input("x", Shape::new(vec![4]), DType::F32);
        let e = builders::exp(&mut p, "x", a); // output tensor also named "x"
        p.mark_output(e);
        let d = run(&p);
        assert!(d.has_code(Code::DuplicateName));
        assert_eq!(d.num_errors(), 0);
        assert_eq!(d.iter().next().unwrap().severity(), Severity::Warning);
    }

    #[test]
    fn use_before_def_detected() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        // Manually append a TE reading a tensor defined by a later TE.
        let later = p.add_tensor(
            "later",
            Shape::new(vec![4]),
            DType::F32,
            souffle_te::TensorKind::Intermediate,
        );
        let early = p.add_tensor(
            "early",
            Shape::new(vec![4]),
            DType::F32,
            souffle_te::TensorKind::Output,
        );
        p.push_te(TensorExpr {
            name: "early".into(),
            output: early,
            inputs: vec![later],
            reduce: vec![],
            reduce_op: None,
            body: ScalarExpr::input(0, vec![IndexExpr::var(0)]),
        });
        p.push_te(TensorExpr {
            name: "later".into(),
            output: later,
            inputs: vec![a],
            reduce: vec![],
            reduce_op: None,
            body: ScalarExpr::input(0, vec![IndexExpr::var(0)]),
        });
        let d = run(&p);
        assert!(d.has_code(Code::UseBeforeDef), "{d}");
        assert!(d.has_errors());
    }

    #[test]
    fn te_defining_an_input_is_a_producer_conflict() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let b = p.add_input("B", Shape::new(vec![4]), DType::F32);
        p.push_te(TensorExpr {
            name: "bad".into(),
            output: a, // caller-bound
            inputs: vec![b],
            reduce: vec![],
            reduce_op: None,
            body: ScalarExpr::input(0, vec![IndexExpr::var(0)]),
        });
        assert!(run(&p).has_code(Code::MultipleProducers));
    }

    #[test]
    fn bad_reduce_extent_and_mismatch_detected() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4, 4]), DType::F32);
        let out = p.add_tensor(
            "r",
            Shape::new(vec![4]),
            DType::F32,
            souffle_te::TensorKind::Output,
        );
        p.push_te(TensorExpr {
            name: "r".into(),
            output: out,
            inputs: vec![a],
            reduce: vec![0], // non-positive extent
            reduce_op: Some(ReduceOp::Sum),
            body: ScalarExpr::input(0, vec![IndexExpr::var(0), IndexExpr::var(1)]),
        });
        let d = run(&p);
        assert!(d.has_code(Code::BadReduceExtent), "{d}");

        let mut p2 = TeProgram::new();
        let a2 = p2.add_input("A", Shape::new(vec![4]), DType::F32);
        let out2 = p2.add_tensor(
            "m",
            Shape::new(vec![4]),
            DType::F32,
            souffle_te::TensorKind::Output,
        );
        p2.push_te(TensorExpr {
            name: "m".into(),
            output: out2,
            inputs: vec![a2],
            reduce: vec![4],
            reduce_op: None, // missing combinator
            body: ScalarExpr::input(0, vec![IndexExpr::var(0)]),
        });
        assert!(run(&p2).has_code(Code::ReduceMismatch));
    }

    #[test]
    fn rank_and_var_range_detected() {
        // Shape::new asserts positive extents, so SV008 is defense-in-
        // depth only; rank and variable-range violations are reachable.
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4, 4]), DType::F32);
        let out = p.add_tensor(
            "o",
            Shape::new(vec![4]),
            DType::F32,
            souffle_te::TensorKind::Output,
        );
        p.push_te(TensorExpr {
            name: "o".into(),
            output: out,
            inputs: vec![a],
            reduce: vec![],
            reduce_op: None,
            // rank-1 access to rank-2 tensor, referencing v7.
            body: ScalarExpr::input(0, vec![IndexExpr::var(7)]),
        });
        let d = run(&p);
        assert!(d.has_code(Code::RankMismatch), "{d}");
        assert!(d.has_code(Code::VarOutOfRange), "{d}");
    }

    #[test]
    fn missing_operand_slot_detected() {
        let mut p = TeProgram::new();
        let out = p.add_tensor(
            "o",
            Shape::new(vec![4]),
            DType::F32,
            souffle_te::TensorKind::Output,
        );
        p.push_te(TensorExpr {
            name: "o".into(),
            output: out,
            inputs: vec![], // slot 0 unbound
            reduce: vec![],
            reduce_op: None,
            body: ScalarExpr::input(0, vec![IndexExpr::var(0)]),
        });
        assert!(run(&p).has_code(Code::BadOperand));
    }

    #[test]
    fn te_ids_survive_into_locations() {
        let mut p = TeProgram::new();
        let a = p.add_input("A", Shape::new(vec![4]), DType::F32);
        let e = builders::exp(&mut p, "e", a);
        let out = p.add_tensor(
            "o",
            Shape::new(vec![4]),
            DType::F32,
            souffle_te::TensorKind::Output,
        );
        p.push_te(TensorExpr {
            name: "o".into(),
            output: out,
            inputs: vec![e],
            reduce: vec![],
            reduce_op: None,
            body: ScalarExpr::input(0, vec![IndexExpr::var(3)]),
        });
        let d = run(&p);
        let diag = d.iter().next().unwrap();
        assert_eq!(
            diag.loc,
            Loc::Te {
                te: TeId(1),
                name: "o".into()
            }
        );
        let _ = TensorId(0); // silence unused import in some cfgs
    }
}
